/**
 * @file
 * Table III: default Piton measurement parameters.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "config/piton_params.hh"

int
main()
{
    using namespace piton;
    bench::banner("Table III", "Default Piton measurement parameters");

    const config::MeasurementDefaults d;
    TextTable t({"Parameter", "Value"});
    t.addRow({"Core Voltage (VDD)", fmtF(d.vddV, 2) + "V"});
    t.addRow({"SRAM Voltage (VCS)", fmtF(d.vcsV, 2) + "V"});
    t.addRow({"I/O Voltage (VIO)", fmtF(d.vioV, 2) + "V"});
    t.addRow({"Core Clock Frequency", fmtF(d.coreClockMhz, 2) + "MHz"});
    t.print(std::cout);

    std::cout << "\nMeasurement protocol: " << d.monitorSamples
              << " monitor samples at ~" << fmtF(d.monitorPollHz, 0)
              << " Hz after steady state; errors are sample standard"
                 " deviations.\n";
    return 0;
}
