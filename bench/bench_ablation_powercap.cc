/**
 * @file
 * Extension: power capping on Piton — the data-center knob the paper's
 * introduction motivates (power as a first-class citizen in TCO) and
 * Section IV-J's scheduling discussion touches.  Uses the Fig. 13
 * characterization to (a) size the largest HP configuration under a
 * cap and (b) drive a reactive measurement-based governor.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/power_cap.hh"
#include "telemetry/export.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Extension", "Power capping from the characterization");
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv, 16);

    core::PowerCapExperiment exp(sim::SystemOptions{}, args.samples);

    std::cout << "Static capping (HP, 2 T/C):\n";
    TextTable t({"Cap (W)", "Max cores", "Power (W)", "Headroom (mW)"});
    for (const double cap : {2.2, 2.6, 3.0, 3.4, 3.8, 4.2}) {
        const auto r = exp.maxCoresUnderCap(cap);
        t.addRow({fmtF(cap, 1), std::to_string(r.maxCores),
                  fmtF(r.powerAtMaxW, 3), fmtF(wToMw(r.headroomW), 0)});
    }
    t.print(std::cout);

    std::cout << "\nReactive governor at a 3.0 W cap (full demand at "
                 "t=0):\n";
    const auto trace = exp.reactiveGovernor(3.0, 0.5, 20.0);
    TextTable g({"t (s)", "Active cores", "Measured (W)"});
    for (std::size_t i = 0; i < trace.points.size(); i += 4) {
        const auto &pt = trace.points[i];
        g.addRow({fmtF(pt.timeS, 1), std::to_string(pt.activeCores),
                  fmtF(pt.measuredPowerW, 3)});
    }
    g.print(std::cout);
    std::cout << "\nsettled at " << trace.settledCores
              << " cores; time above cap: "
              << fmtF(100.0 * trace.violationFraction, 1)
              << "% (the initial overshoot while throttling down).\n";
    if (!args.outDir.empty()) {
        telemetry::exportTelemetry(args.outDir, "powercap",
                                   exp.telemetry());
        std::cout << "\ntelemetry: " << args.outDir
                  << "/powercap.{csv,jsonl} ("
                  << exp.telemetry().seriesCount() << " series)\n";
    }
    return 0;
}
