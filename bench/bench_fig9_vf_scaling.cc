/**
 * @file
 * Fig. 9: maximum frequency at which Linux boots vs VDD, for three
 * chips (VCS = VDD + 0.05 V), with PLL quantization error bars and the
 * thermal limitation of the leaky fast-corner Chip #1.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/vf_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 9", "Maximum Linux-boot frequency vs VDD");

    const core::VfScalingExperiment exp;
    const std::vector<double> grid =
        core::VfScalingExperiment::voltageGrid();
    // Points come back ordered chip-major: chip id 1..3 x the grid.
    const auto points =
        exp.runAll({1, 2, 3},
                   bench::parseBenchArgs(argc, argv, 128, 0).threads);

    TextTable t({"VDD (V)", "Chip #1 (MHz)", "Chip #2 (MHz)",
                 "Chip #3 (MHz)", "Notes"});
    for (std::size_t vi = 0; vi < grid.size(); ++vi) {
        std::string cells[3];
        std::string note;
        for (int id = 1; id <= 3; ++id) {
            const core::VfPoint &p =
                points[static_cast<std::size_t>(id - 1) * grid.size() + vi];
            cells[id - 1] = fmtF(p.fmaxMhz, 2) + " (+"
                            + fmtF(p.nextStepMhz - p.fmaxMhz, 2) + ")";
            if (p.thermallyLimited)
                note += "chip" + std::to_string(id) + " thermally limited; ";
        }
        t.addRow({fmtF(grid[vi], 2), cells[0], cells[1], cells[2], note});
    }
    t.print(std::cout);

    std::cout << "\nPaper anchors: ~514.33 MHz @ 1.0 V, ~285.74 MHz @"
                 " 0.8 V; Chip #1 fastest at\nlow voltage but collapses"
                 " at 1.2 V (cooling-limited).  (+x) values are the\n"
                 "next PLL quantization step (the failed test point /"
                 " error bar).\n";
    return 0;
}
