/**
 * @file
 * Fig. 8: detailed area breakdown of Piton at chip, tile, and core
 * levels (from the place-and-route database).
 */

#include <iostream>

#include "bench_util.hh"
#include "chip/area_model.hh"
#include "common/table.hh"

namespace
{

void
printLevel(const piton::chip::AreaLevel &level)
{
    using namespace piton;
    std::cout << level.name << " area: " << fmtF(level.totalMm2, 5)
              << " mm^2\n";
    TextTable t({"Block", "Percent", "Area (mm^2)"});
    for (const auto &b : level.blocks) {
        t.addRow({b.name, fmtF(b.percent, 2) + "%",
                  fmtF(level.totalMm2 * b.percent / 100.0, 4)});
    }
    t.addRow({"(sum)", fmtF(level.percentSum(), 2) + "%",
              fmtF(level.totalMm2 * level.percentSum() / 100.0, 4)});
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    using namespace piton;
    bench::banner("Fig. 8", "Area breakdown at chip, tile, core levels");

    const chip::AreaModel m;
    printLevel(m.chip());
    printLevel(m.tile());
    printLevel(m.core());

    std::cout << "Context for the NoC-energy insight: the three NoC"
                 " routers are "
              << fmtF(100.0 * m.nocRouterTileFraction(), 2)
              << "% of the tile.\n";
    return 0;
}
