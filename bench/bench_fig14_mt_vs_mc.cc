/**
 * @file
 * Fig. 14: power and energy of multithreading (2 T/C) versus multicore
 * (1 T/C) at equal thread counts, split into active and active-cores-
 * idle components (Chip #3, fixed iteration counts).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/scaling_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 14", "Multithreading vs multicore power/energy");

    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 128, 0);
    sim::SystemOptions opts;
    opts.sweepThreads = args.threads;
    opts.engineThreads = args.engineThreads;
    const core::MtVsMcExperiment exp(opts,
                                     /*iterations=*/12000,
                                     /*hist_elements=*/4096,
                                     /*hist_outer_iters=*/3);

    // runAll order: bench-major {Int, HP, Hist}, then T/C {1, 2}, then
    // thread counts 2..24 step 2 (12 points per config).
    const auto points = exp.runAll();
    constexpr std::size_t kThreadPoints = 12;

    std::size_t bench_idx = 0;
    for (const auto bench :
         {workloads::Microbench::Int, workloads::Microbench::HP,
          workloads::Microbench::Hist}) {
        std::cout << workloads::microbenchName(bench) << ":\n";
        TextTable t({"Threads", "Config", "Active P (W)", "Idle P (W)",
                     "Total P (W)", "Time (ms)", "Active E (mJ)",
                     "Idle E (mJ)", "Total E (mJ)"});
        for (std::uint32_t threads = 2; threads <= 24; threads += 2) {
            for (const std::uint32_t tpc : {1u, 2u}) {
                const core::MtMcPoint &p =
                    points[bench_idx * 2 * kThreadPoints
                           + (tpc - 1) * kThreadPoints + (threads / 2 - 1)];
                t.addRow({std::to_string(threads),
                          tpc == 1 ? "1 T/C (MC)" : "2 T/C (MT)",
                          fmtF(p.activePowerW, 3),
                          fmtF(p.activeCoresIdleW, 3),
                          fmtF(p.totalPowerW(), 3),
                          fmtF(p.executionSeconds * 1e3, 3),
                          fmtF(p.activeEnergyJ * 1e3, 3),
                          fmtF(p.activeCoresIdleEnergyJ * 1e3, 3),
                          fmtF(p.totalEnergyJ() * 1e3, 3)});
            }
        }
        t.print(std::cout);
        std::cout << '\n';
        ++bench_idx;
    }

    std::cout << "Shape checks (paper): for Int and HP, multithreading"
                 " consumes less power but\nmore energy than multicore"
                 " (execution-time ratio near 2, similar active power);\n"
                 "for Hist the memory/compute overlap makes"
                 " multithreading more energy efficient.\n";
    return 0;
}
