/**
 * @file
 * Load driver for the experiment service (src/service): bursts of
 * characterization requests through the scheduler, cold then warm,
 * reporting requests/s, cache hit rate, and per-request latency.
 *
 * Phases:
 *
 *  1. cold burst  — N distinct requests (unique seeds) pipelined
 *     through submit(); every one misses the cache and simulates;
 *  2. warm burst  — the same N requests again; every one must be an
 *     exact cache hit served byte-identically;
 *  3. sweep       — one Fig. 17-shaped sweep run twice: the repeat
 *     reuses the cached warm-start prefix image.
 *
 * Flags (bench_util.hh):
 *   --requests N   burst size (default 32)
 *   --threads N    scheduler worker threads
 *   --samples N    monitor samples per request
 *   --tcp          drive phase 2 through a loopback TCP server too,
 *                  asserting TCP bodies equal in-process bodies
 *   --verify       hard-fail (exit 1) unless every warm body is
 *                  byte-identical to its cold body
 *   --out DIR      export the service telemetry gauges to
 *                  DIR/service_throughput.{csv,jsonl}
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "service/client.hh"
#include "service/request.hh"
#include "service/scheduler.hh"
#include "service/server.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

service::ExperimentRequest
burstRequest(std::uint32_t samples, std::uint64_t seed)
{
    service::ExperimentRequest req;
    req.kind = service::Kind::MeasurePower;
    req.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Int);
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.samples = samples;
    req.warmupCycles = 4000;
    req.seed = seed;
    return req;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace piton;

    const bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*def_samples=*/8, /*def_threads=*/2,
        {"--verify", "--tcp"}, 0, {"--requests"});
    const std::size_t n_requests = static_cast<std::size_t>(
        std::strtoul(args.optionValue("--requests", "32").c_str(),
                     nullptr, 10));
    const bool verify = args.hasFlag("--verify");

    bench::banner("SERVICE", "experiment service throughput");
    std::printf("burst: %zu requests, %u samples each, %u worker "
                "thread(s)\n\n",
                n_requests, args.samples, args.threads);

    service::SchedulerConfig cfg;
    cfg.threads = args.threads;
    cfg.maxPending = n_requests + 8;
    cfg.queueCapacity = n_requests + 8;
    service::ExperimentScheduler sched(cfg);
    service::LocalClient client(sched);

    std::vector<service::ExperimentRequest> requests;
    requests.reserve(n_requests);
    for (std::size_t i = 0; i < n_requests; ++i)
        requests.push_back(burstRequest(args.samples, 0x517 + i));

    // Phase 1: cold burst, pipelined through submit().
    std::vector<service::ExperimentScheduler::Ticket> tickets;
    tickets.reserve(n_requests);
    const Clock::time_point cold_t0 = Clock::now();
    for (const auto &req : requests)
        tickets.push_back(sched.submit(req));
    std::vector<std::vector<std::uint8_t>> cold_bodies;
    cold_bodies.reserve(n_requests);
    for (auto &t : tickets) {
        const service::ServeResult r = t.result.get();
        if (r.status != service::Status::Ok) {
            std::fprintf(stderr, "cold request failed (status %u)\n",
                         static_cast<unsigned>(r.status));
            return 1;
        }
        cold_bodies.push_back(*r.body);
    }
    const double cold_ms = msSince(cold_t0);
    std::printf("cold burst:  %8.2f ms total, %8.1f req/s\n", cold_ms,
                1e3 * static_cast<double>(n_requests) / cold_ms);

    // Phase 2: warm burst, synchronous per-request latency.
    std::vector<double> warm_latency_ms;
    warm_latency_ms.reserve(n_requests);
    std::size_t warm_hits = 0;
    std::size_t warm_identical = 0;
    const Clock::time_point warm_t0 = Clock::now();
    for (std::size_t i = 0; i < n_requests; ++i) {
        const Clock::time_point t0 = Clock::now();
        const service::ClientResult r = client.run(requests[i]);
        warm_latency_ms.push_back(msSince(t0));
        warm_hits += r.servedFromCache ? 1 : 0;
        warm_identical += r.body == cold_bodies[i] ? 1 : 0;
    }
    const double warm_ms = msSince(warm_t0);
    std::printf("warm burst:  %8.2f ms total, %8.1f req/s, "
                "%zu/%zu cache hits\n",
                warm_ms, 1e3 * static_cast<double>(n_requests) / warm_ms,
                warm_hits, n_requests);
    std::printf("warm latency: p50 %.3f ms, p99 %.3f ms\n",
                percentile(warm_latency_ms, 0.50),
                percentile(warm_latency_ms, 0.99));
    std::printf("byte-identical warm bodies: %zu/%zu\n\n", warm_identical,
                n_requests);

    // Phase 3: warm-started sweep — the repeat forks the cached prefix.
    service::ExperimentRequest sweep = burstRequest(args.samples, 0x517);
    sweep.kind = service::Kind::Sweep;
    sweep.tails = {{1.0, 4}, {0.5, 4}, {0.0, 4}};
    const Clock::time_point sweep_cold_t0 = Clock::now();
    const service::ClientResult sweep_cold = client.run(sweep);
    const double sweep_cold_ms = msSince(sweep_cold_t0);
    const Clock::time_point sweep_warm_t0 = Clock::now();
    const service::ClientResult sweep_warm = client.run(sweep);
    const double sweep_warm_ms = msSince(sweep_warm_t0);
    const bool sweep_identical = sweep_warm.body == sweep_cold.body;
    std::printf("sweep: cold %.2f ms, repeat %.2f ms (%s)\n\n",
                sweep_cold_ms, sweep_warm_ms,
                sweep_identical ? "byte-identical" : "MISMATCH");

    // Optional: the same burst against a loopback TCP server.  The
    // server owns an independent scheduler with a cold cache, so this
    // additionally checks cross-instance determinism: a recomputed
    // result must still be byte-identical to the in-process one.
    bool tcp_ok = true;
    if (args.hasFlag("--tcp")) {
        service::ServerConfig scfg;
        scfg.port = 0; // ephemeral
        scfg.scheduler = cfg;
        service::ExperimentServer server(scfg);
        server.start();
        {
            service::TcpClient tcp(server.port());
            std::size_t tcp_identical = 0;
            const Clock::time_point tcp_t0 = Clock::now();
            for (std::size_t i = 0; i < n_requests; ++i) {
                const service::ClientResult r = tcp.run(requests[i]);
                tcp_identical += r.body == cold_bodies[i] ? 1 : 0;
            }
            const double tcp_ms = msSince(tcp_t0);
            tcp_ok = tcp_identical == n_requests;
            std::printf("tcp burst:   %8.2f ms total, %8.1f req/s, "
                        "%zu/%zu byte-identical to in-process\n\n",
                        tcp_ms,
                        1e3 * static_cast<double>(n_requests) / tcp_ms,
                        tcp_identical, n_requests);
        }
        server.stop();
    }

    const service::SchedulerMetrics m = sched.metrics();
    std::printf("scheduler: %llu submitted, %llu completed, %llu hits "
                "(hit rate %.2f), %llu shed, p50 %.3f ms, p99 %.3f ms\n",
                static_cast<unsigned long long>(m.submitted),
                static_cast<unsigned long long>(m.completed),
                static_cast<unsigned long long>(m.cacheHits), m.hitRate,
                static_cast<unsigned long long>(m.shed), m.latencyP50Ms,
                m.latencyP99Ms);
    std::printf("result cache: %zu entries, %zu bytes; prefix cache: "
                "%zu entries, %zu bytes\n",
                m.resultCache.entries, m.resultCache.bytes,
                m.prefixCache.entries, m.prefixCache.bytes);

    if (!args.outDir.empty()) {
        telemetry::TelemetryRecorder rec;
        sched.exportTelemetry(rec);
        telemetry::exportTelemetry(args.outDir, "service_throughput",
                                   rec);
        std::printf("telemetry exported to %s/service_throughput.*\n",
                    args.outDir.c_str());
    }

    if (verify) {
        const bool ok = warm_identical == n_requests
                        && warm_hits == n_requests && sweep_identical
                        && tcp_ok;
        std::printf("\nverify: %s\n", ok ? "PASS" : "FAIL");
        if (!ok)
            return 1;
    }
    return 0;
}
