/**
 * @file
 * Fig. 16: time series of power broken down into each Piton supply
 * over the execution of gcc-166 (phase-modulated surrogate profile
 * through the monitor chain).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/app_experiments.hh"
#include "telemetry/export.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 16", "Per-supply power time series (gcc-166)");
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

    core::PowerTimeSeriesExperiment exp;
    telemetry::TelemetryRecorder telem;
    const auto trace = exp.run(workloads::specProfile("gcc-166"), 2.0,
                               2000.0, &telem);

    // Print a decimated series (every 60 s) plus summary statistics.
    TextTable t({"Time (s)", "Core/VDD (mW)", "I/O/VIO (mW)",
                 "SRAM/VCS (mW)"});
    for (std::size_t i = 0; i < trace.size(); i += 30) {
        const auto &pt = trace[i];
        t.addRow({fmtF(pt.timeS, 0), fmtF(pt.coreMw, 1),
                  fmtF(pt.ioMw, 1), fmtF(pt.sramMw, 1)});
    }
    t.print(std::cout);

    RunningStats core_mw, io_mw, sram_mw;
    for (const auto &pt : trace) {
        core_mw.add(pt.coreMw);
        io_mw.add(pt.ioMw);
        sram_mw.add(pt.sramMw);
    }
    std::cout << "\nSummary over " << trace.size() << " samples:\n"
              << "  Core: mean " << fmtF(core_mw.mean(), 1) << " mW, range "
              << fmtF(core_mw.min(), 1) << ".." << fmtF(core_mw.max(), 1)
              << " (paper: ~1765-1790 mW)\n"
              << "  I/O:  mean " << fmtF(io_mw.mean(), 1) << " mW, range "
              << fmtF(io_mw.min(), 1) << ".." << fmtF(io_mw.max(), 1)
              << " (paper: ~0-600 mW bursts)\n"
              << "  SRAM: mean " << fmtF(sram_mw.mean(), 1) << " mW, range "
              << fmtF(sram_mw.min(), 1) << ".." << fmtF(sram_mw.max(), 1)
              << " (paper: ~268-280 mW)\n";
    if (!args.outDir.empty()) {
        telemetry::exportTelemetry(args.outDir, "fig16_timeseries", telem);
        std::cout << "\ntelemetry: " << args.outDir
                  << "/fig16_timeseries.{csv,jsonl} ("
                  << telem.seriesCount() << " series)\n";
    }
    return 0;
}
