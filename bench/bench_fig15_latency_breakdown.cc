/**
 * @file
 * Fig. 15: Piton system memory latency breakdown for a ldx from tile 0
 * — where the ~395 round-trip cycles (790 ns at 500.05 MHz) go, plus a
 * simulated end-to-end check against the Table VII average.
 */

#include <iostream>

#include "arch/chipset.hh"
#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "config/piton_params.hh"

int
main()
{
    using namespace piton;
    bench::banner("Fig. 15", "Memory latency breakdown (ldx from tile 0)");

    TextTable t({"Component", "Detail", "Cycles @ 500.05 MHz"});
    for (const auto &s : arch::Chipset::memoryLatencyStages())
        t.addRow({s.component, s.detail, std::to_string(s.coreCycles)});
    t.print(std::cout);

    const std::uint32_t total = arch::Chipset::nominalRoundTripCycles();
    std::cout << "\nTotal round trip: ~" << total << " cycles = ~"
              << fmtF(total / 500.05e6 * 1e9, 0) << " ns\n";

    // End-to-end check: measured average L2-miss latency through the
    // memory system (with controller jitter) vs Table VII's 424.
    config::PitonParams params;
    power::EnergyModel energy;
    power::EnergyLedger ledger;
    arch::MainMemory memory;
    arch::MemorySystem mem(params, energy, ledger, memory);
    RunningStats lat;
    Cycle now = 0;
    for (int i = 0; i < 4000; ++i) {
        RegVal data;
        // Fresh lines homed at tile 0 guarantee misses.
        const auto out = mem.load(
            0, static_cast<Addr>(i) * 409600, data, now);
        now += out.latency;
        lat.add(out.latency);
    }
    std::cout << "Simulated average L2-miss latency: "
              << fmtF(lat.mean(), 1) << " cycles (Table VII: 424)\n";
    return 0;
}
