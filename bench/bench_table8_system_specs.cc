/**
 * @file
 * Table VIII: Sun Fire T2000 and Piton system specifications.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "perfmodel/machine.hh"

int
main()
{
    using namespace piton;
    bench::banner("Table VIII", "Sun Fire T2000 vs Piton system specs");

    const perfmodel::MachineParams t1 = perfmodel::sunFireT2000();
    const perfmodel::MachineParams pt = perfmodel::pitonSystem();

    TextTable t({"System Parameter", t1.name, pt.name});
    auto row = [&t](const std::string &k, const std::string &a,
                    const std::string &b) { t.addRow({k, a, b}); };
    row("Operating System", t1.operatingSystem, pt.operatingSystem);
    row("Kernel Version", t1.kernelVersion, pt.kernelVersion);
    row("Memory Device Type", t1.memoryDeviceType, pt.memoryDeviceType);
    row("Rated Memory Clock", fmtF(t1.ratedMemoryClockMhz, 2) + "MHz",
        fmtF(pt.ratedMemoryClockMhz, 0) + "MHz");
    row("Actual Memory Clock", fmtF(t1.actualMemoryClockMhz, 2) + "MHz",
        fmtF(pt.actualMemoryClockMhz, 0) + "MHz");
    row("Rated Memory Timings (cycles)", t1.ratedTimingsCycles,
        pt.ratedTimingsCycles);
    row("Rated Memory Timings (ns)", t1.ratedTimingsNs, pt.ratedTimingsNs);
    row("Actual Memory Timings (cycles)", t1.actualTimingsCycles,
        pt.actualTimingsCycles);
    row("Actual Memory Timings (ns)", t1.actualTimingsNs,
        pt.actualTimingsNs);
    row("Memory Data Width", "64bits + 8bits ECC", "32bits");
    row("Memory Size", t1.memorySize, pt.memorySize);
    row("Memory Access Latency (Average)",
        fmtF(t1.memoryLatencyNs, 0) + "ns",
        fmtF(pt.memoryLatencyNs, 0) + "ns");
    row("Persistent Storage Type", t1.persistentStorage,
        pt.persistentStorage);
    row("Processor", t1.processor, pt.processor);
    row("Processor Frequency", fmtF(t1.processorFreqMhz / 1000.0, 0) + "GHz",
        fmtF(pt.processorFreqMhz, 2) + "MHz");
    row("Processor Cores", std::to_string(t1.cores),
        std::to_string(pt.cores));
    row("Processor Threads Per Core", std::to_string(t1.threadsPerCore),
        std::to_string(pt.threadsPerCore));
    row("Processor L2 Cache Size", t1.l2CacheSize, pt.l2CacheSize);
    row("Processor L2 Cache Access Latency", t1.l2LatencyNsText,
        pt.l2LatencyNsText);
    t.print(std::cout);

    std::cout << "\nDerived: Piton memory latency = "
              << fmtF(pt.memLatencyCycles(), 0)
              << " core cycles (the ~424 cycles of Table VII / Fig. 15); "
              << fmtF(pt.memoryLatencyNs / t1.memoryLatencyNs, 1)
              << "x the T2000's.\n";
    return 0;
}
