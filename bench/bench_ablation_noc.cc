/**
 * @file
 * Ablation: how large would NoC power be under different link-energy
 * assumptions?  The paper's insight — NoC energy is a small fraction of
 * chip power, contradicting models that make it dominant — depends on
 * the tile pitch / link capacitance.  This bench scales the per-bit
 * link energy (a proxy for longer links / larger tiles) and reports
 * the NoC share of total chip power under a heavy all-to-tile traffic
 * pattern, plus the EPF slope at each scale.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/equations.hh"
#include "sim/system.hh"

int
main()
{
    using namespace piton;
    bench::banner("Ablation", "NoC link energy vs chip power share");

    TextTable t({"Link-energy scale", "FSW EPF slope (pJ/hop)",
                 "NoC power @ saturation (mW)", "Share of chip power"});
    for (const double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        sim::SystemOptions opts;
        opts.energyParams.nocLinkBitTogglePj *= scale;
        opts.energyParams.nocRouterFlitPj *= scale;
        sim::System sys(opts);

        // Saturate the chip-bridge injection path with full-switching
        // packets to the far corner (the worst case for link energy).
        const Cycle window = sys.options().cyclesPerSample;
        double noc_w = 0.0, total_w = 0.0;
        double before_noc = 0.0;
        for (int i = 0; i < 64; ++i) {
            for (Cycle k = 0; k < window / core::kNocPatternCycles; ++k) {
                std::vector<RegVal> payload(6);
                for (std::size_t f = 0; f < payload.size(); ++f)
                    payload[f] = (f % 2 == 0) ? ~RegVal{0} : 0;
                sys.pitonChip().memSystem().injectPacket(24, payload);
            }
            const double noc_now =
                sys.pitonChip()
                    .ledger()
                    .category(power::Category::Noc)
                    .onChipCoreAndSram();
            const auto p = sys.windowTruePowers(window);
            if (i >= 8) { // skip warmup
                noc_w += (sys.pitonChip()
                              .ledger()
                              .category(power::Category::Noc)
                              .onChipCoreAndSram()
                          - before_noc)
                         / (window / sys.coreClockHz()) / 56.0;
                total_w += (p[0] + p[1]) / 56.0;
            }
            before_noc = noc_now;
        }
        const double epf_slope =
            jToPj(sys.energyModel().nocHopEnergy(64).total());
        t.addRow({fmtF(scale, 1) + "x", fmtF(epf_slope, 1),
                  fmtF(wToMw(noc_w), 1),
                  fmtF(100.0 * noc_w / total_w, 2) + "%"});
    }
    t.print(std::cout);

    std::cout << "\nAt Piton's measured link energy (1x), even saturated"
                 " injection keeps the NoC\nat a few percent of chip"
                 " power — the paper's contradiction of NoC-dominant\n"
                 "power models.  Only with several-fold longer/heavier"
                 " links does the share\napproach the levels those"
                 " models assume.\n";
    return 0;
}
