/**
 * @file
 * Table II: experimental system frequencies.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "config/piton_params.hh"

int
main()
{
    using namespace piton;
    bench::banner("Table II", "Experimental system frequencies");

    const config::SystemFrequencies f;
    TextTable t({"Interface", "Frequency"});
    t.addRow({"Gateway FPGA <-> Piton",
              fmtF(f.gatewayToPitonMhz, 0) + " MHz"});
    t.addRow({"Gateway FPGA <-> FMC <-> Chipset FPGA",
              fmtF(f.gatewayToChipsetMhz, 0) + " MHz"});
    t.addRow({"Chipset FPGA Logic", fmtF(f.chipsetLogicMhz, 0) + " MHz"});
    t.addRow({"DRAM DDR3 PHY",
              fmtF(f.dramPhyMhz, 0) + " MHz (1600 MT/s)"});
    t.addRow({"DDR3 DRAM Controller",
              fmtF(f.dramControllerMhz, 0) + " MHz"});
    t.addRow({"SD Card SPI", fmtF(f.sdCardSpiMhz, 0) + " MHz"});
    t.addRow({"UART Serial Port", fmtF(f.uartBps, 0) + " bps"});
    t.print(std::cout);
    return 0;
}
