/**
 * @file
 * Fig. 10: static and idle power, averaged across three chips, at each
 * (VDD, f) pair of the study — f is the minimum of the three chips'
 * maximum frequencies at that voltage.  Split into core (VDD) and SRAM
 * (VCS), static and dynamic — the four stacked components of the
 * figure.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/vf_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 10", "Static and idle power vs voltage/frequency");
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 48, 0);
    const std::uint32_t samples = args.samples;

    sim::SystemOptions opts;
    opts.sweepThreads = args.threads;
    opts.engineThreads = args.engineThreads;
    const core::StaticIdleExperiment exp(opts, samples);
    TextTable t({"VDD (V)", "f (MHz)", "Core Static (W)", "SRAM Static (W)",
                 "Core Dynamic (W)", "SRAM Dynamic (W)", "Total Idle (W)"});
    for (const auto &row : exp.runAll()) {
        t.addRow({fmtF(row.vddV, 2), fmtF(row.freqMhz, 2),
                  fmtF(row.coreStaticW, 3), fmtF(row.sramStaticW, 3),
                  fmtF(row.coreDynamicW, 3), fmtF(row.sramDynamicW, 3),
                  fmtF(row.totalIdleW(), 3)});
    }
    t.print(std::cout);

    std::cout << "\nPaper: power follows an exponential-looking"
                 " relationship with voltage and\nfrequency; ~2.0 W idle"
                 " at (1.0 V, 514 MHz) rising to ~6-7 W at 1.2 V;\nthe"
                 " frequency at 1.2 V drops below the 1.15 V point"
                 " (thermal limit).\n";
    return 0;
}
