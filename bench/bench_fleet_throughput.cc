/**
 * @file
 * Saturation bench for the distributed experiment fleet (src/fleet):
 * drives the shared deterministic load set (fleet/load.hh) through a
 * coordinator over in-process piton-served workers and reports
 * per-configuration throughput, scaling vs a single worker, and
 * byte-identity against a single-node LocalClient reference.
 *
 * Phases:
 *
 *  1. reference    — every point served by one in-process scheduler;
 *     the resulting bodies are the byte-identity baseline;
 *  2. fleet W=1    — same points through a coordinator over ONE
 *     worker (coordination overhead measured, not hidden);
 *  3. fleet W=N    — same points over N workers, driven from
 *     --concurrency client threads; near-linear scaling expected on
 *     multi-core hosts (on a single-CPU container the workers share
 *     one core, so the ratio is reported, not gated);
 *  4. failover     — N workers again, killing the worker that owns a
 *     known upcoming point after a quarter of the load: the remaining
 *     requests re-route, and every body must STILL match phase 1.
 *
 * Flags (bench_util.hh):
 *   --points N           load-set size (default 64)
 *   --fleet-workers N    workers in phases 3/4 (default 2)
 *   --threads N          scheduler threads per worker (default 1)
 *   --concurrency N      client threads driving the fleet (default 4)
 *   --verify             hard-fail unless every phase's bodies are
 *                        byte-identical to the reference, all
 *                        statuses Ok, and the failover phase actually
 *                        failed over (failovers > 0)
 *   --require-scaling X  hard-fail if phase-3 throughput < X times
 *                        phase 2 (leave unset on single-CPU hosts)
 *   --out DIR            export fleet.* telemetry gauges
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "fleet/coordinator.hh"
#include "fleet/load.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"

namespace
{

using namespace piton;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct WorkerSet
{
    std::vector<std::unique_ptr<service::ExperimentServer>> servers;
    std::vector<std::uint16_t> ports;
};

WorkerSet
spawnWorkers(std::size_t count, unsigned threads, std::size_t points)
{
    WorkerSet set;
    for (std::size_t i = 0; i < count; ++i) {
        service::ServerConfig cfg;
        cfg.port = 0; // ephemeral
        cfg.workerId = "bench-w" + std::to_string(i);
        cfg.scheduler.threads = threads;
        cfg.scheduler.maxPending = points + 8;
        cfg.scheduler.queueCapacity = points + 8;
        auto server = std::make_unique<service::ExperimentServer>(cfg);
        server->start();
        set.ports.push_back(server->port());
        set.servers.push_back(std::move(server));
    }
    return set;
}

struct PhaseResult
{
    double ms = 0.0;
    std::size_t identical = 0;
    std::size_t ok = 0;
    fleet::FleetMetrics metrics;
};

/** Drive all `points` through `coord` from `concurrency` threads,
 *  comparing each body against the reference.  `kill_after` > 0 stops
 *  `victim` once that many requests have completed. */
PhaseResult
drivePhase(fleet::FleetCoordinator &coord, std::size_t points,
           unsigned concurrency,
           const std::vector<std::vector<std::uint8_t>> &reference,
           std::size_t kill_after = 0,
           service::ExperimentServer *victim = nullptr)
{
    PhaseResult out;
    std::vector<std::uint8_t> ok(points, 0), identical(points, 0);
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> killed{false};
    const Clock::time_point t0 = Clock::now();
    parallelFor(points, concurrency, [&](std::size_t i) {
        const service::ClientResult r = coord.run(fleet::loadPoint(i));
        ok[i] = r.status == service::Status::Ok ? 1 : 0;
        identical[i] = r.body == reference[i] ? 1 : 0;
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (victim != nullptr && done >= kill_after
            && !killed.exchange(true))
            victim->stop(); // in-flight work drains, then the port dies
    });
    out.ms = msSince(t0);
    for (std::size_t i = 0; i < points; ++i) {
        out.ok += ok[i];
        out.identical += identical[i];
    }
    out.metrics = coord.metrics();
    return out;
}

void
printPhase(const char *name, const PhaseResult &r, std::size_t points)
{
    std::printf("%-12s %8.2f ms, %8.1f req/s, %zu/%zu ok, %zu/%zu "
                "byte-identical, retries %llu, failovers %llu\n",
                name, r.ms,
                1e3 * static_cast<double>(points) / std::max(r.ms, 1e-9),
                r.ok, points, r.identical, points,
                static_cast<unsigned long long>(r.metrics.retries),
                static_cast<unsigned long long>(r.metrics.failovers));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace piton;

    const bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*def_samples=*/4, /*def_threads=*/1, {"--verify"},
        0,
        {"--points", "--fleet-workers", "--concurrency",
         "--require-scaling"});
    const std::size_t points = static_cast<std::size_t>(
        std::strtoul(args.optionValue("--points", "64").c_str(), nullptr,
                     10));
    const std::size_t fleet_workers = std::max<std::size_t>(
        1, std::strtoul(
               args.optionValue("--fleet-workers", "2").c_str(),
               nullptr, 10));
    const unsigned concurrency = static_cast<unsigned>(std::max(
        1ul,
        std::strtoul(args.optionValue("--concurrency", "4").c_str(),
                     nullptr, 10)));
    const double require_scaling = std::strtod(
        args.optionValue("--require-scaling", "0").c_str(), nullptr);
    const bool verify = args.hasFlag("--verify");

    bench::banner("FLEET", "distributed fleet saturation");
    std::printf("%zu points, %zu fleet worker(s) x %u scheduler "
                "thread(s), %u client thread(s)\n\n",
                points, fleet_workers, args.threads, concurrency);

    // Phase 1: single-node reference.
    service::SchedulerConfig ref_cfg;
    ref_cfg.threads = args.threads;
    ref_cfg.maxPending = points + 8;
    ref_cfg.queueCapacity = points + 8;
    service::ExperimentScheduler ref_sched(ref_cfg);
    service::LocalClient reference(ref_sched);
    std::vector<std::vector<std::uint8_t>> ref_bodies(points);
    const Clock::time_point ref_t0 = Clock::now();
    for (std::size_t i = 0; i < points; ++i) {
        const service::ClientResult r = reference.run(fleet::loadPoint(i));
        if (r.status != service::Status::Ok) {
            std::fprintf(stderr, "reference point %zu failed\n", i);
            return 1;
        }
        ref_bodies[i] = r.body;
    }
    const double ref_ms = msSince(ref_t0);
    std::printf("%-12s %8.2f ms, %8.1f req/s\n", "reference", ref_ms,
                1e3 * static_cast<double>(points)
                    / std::max(ref_ms, 1e-9));

    // Phase 2: fleet over one worker (coordination overhead).
    PhaseResult one;
    {
        WorkerSet ws = spawnWorkers(1, args.threads, points);
        fleet::FleetConfig fcfg;
        fcfg.workerPorts = ws.ports;
        fleet::FleetCoordinator coord(fcfg);
        one = drivePhase(coord, points, concurrency, ref_bodies);
        for (auto &s : ws.servers)
            s->stop();
    }
    printPhase("fleet W=1", one, points);

    // Phase 3: the full fleet.
    PhaseResult full;
    {
        WorkerSet ws = spawnWorkers(fleet_workers, args.threads, points);
        fleet::FleetConfig fcfg;
        fcfg.workerPorts = ws.ports;
        fleet::FleetCoordinator coord(fcfg);
        full = drivePhase(coord, points, concurrency, ref_bodies);
        for (auto &s : ws.servers)
            s->stop();
    }
    char label[32];
    std::snprintf(label, sizeof(label), "fleet W=%zu", fleet_workers);
    printPhase(label, full, points);
    const double scaling = one.ms / std::max(full.ms, 1e-9);
    std::printf("scaling: %.2fx at %zu workers (1.0x = no gain; "
                "single-CPU hosts serialize the workers)\n\n",
                scaling, fleet_workers);

    // Phase 4: failover.  The victim owns a point from the second
    // half of the load, so at least one post-kill request MUST
    // re-route — failovers > 0 is then a hard invariant, not luck.
    PhaseResult failover;
    bool failover_hit_victim = false;
    {
        const std::size_t nw = std::max<std::size_t>(2, fleet_workers);
        WorkerSet ws = spawnWorkers(nw, args.threads, points);
        fleet::FleetConfig fcfg;
        fcfg.workerPorts = ws.ports;
        fleet::FleetCoordinator coord(fcfg);
        const std::string victim_id =
            coord.ownerOf(fleet::loadPoint(points / 2 + points / 4));
        service::ExperimentServer *victim = nullptr;
        for (std::size_t i = 0; i < nw; ++i)
            if (ws.servers[i]->workerId() == victim_id)
                victim = ws.servers[i].get();
        failover_hit_victim = victim != nullptr;
        failover = drivePhase(coord, points, concurrency, ref_bodies,
                              /*kill_after=*/points / 4, victim);
        for (auto &s : ws.servers)
            s->stop();

        if (!args.outDir.empty()) {
            telemetry::TelemetryRecorder rec;
            coord.exportTelemetry(rec);
            telemetry::exportTelemetry(args.outDir, "fleet_throughput",
                                       rec);
            std::printf("telemetry exported to %s/fleet_throughput.*\n",
                        args.outDir.c_str());
        }
    }
    printPhase("failover", failover, points);

    if (verify) {
        const bool bodies_ok = one.identical == points
                               && full.identical == points
                               && failover.identical == points;
        const bool status_ok = one.ok == points && full.ok == points
                               && failover.ok == points;
        const bool failed_over =
            failover_hit_victim && failover.metrics.failovers > 0;
        const bool scaling_ok =
            require_scaling <= 0.0 || scaling >= require_scaling;
        const bool pass =
            bodies_ok && status_ok && failed_over && scaling_ok;
        std::printf("\nverify: %s (bodies %s, statuses %s, failover %s"
                    "%s)\n",
                    pass ? "PASS" : "FAIL", bodies_ok ? "ok" : "FAIL",
                    status_ok ? "ok" : "FAIL",
                    failed_over ? "ok" : "FAIL",
                    require_scaling > 0.0
                        ? (scaling_ok ? ", scaling ok" : ", scaling FAIL")
                        : "");
        if (!pass)
            return 1;
    }
    return 0;
}
