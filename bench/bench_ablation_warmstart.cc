/**
 * @file
 * Ablation: warm-started sweep fan-out from a shared checkpoint.
 *
 * The fan-effectiveness sweep (Fig. 17's knob) shares a long thermal
 * warmup prefix across every point: the chip runs the HP microbench to
 * a steady state, and only then does the fan setting diverge.  This
 * bench runs that sweep two ways —
 *
 *   warm (default): simulate the prefix once, checkpoint it
 *                   (sim::SweepWarmStart), fork each point from the
 *                   image;
 *   --cold:         re-simulate the prefix per point (the old way);
 *   --verify:       run both and compare bit-for-bit (power-sample
 *                   bit patterns, final die temperature, telemetry
 *                   CSV bytes), then report the wall-clock ratio.
 *
 * Checkpoint-file plumbing (bench_util.hh):
 *   --checkpoint-out FILE    write the post-prefix image to FILE;
 *   --checkpoint-every N     while running the prefix, also save a
 *                            rolling checkpoint every N windows
 *                            (requires --checkpoint-out);
 *   --resume-from FILE       skip the prefix entirely and fork the
 *                            sweep from FILE (a prior --checkpoint-out).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "checkpoint/archive.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "sim/warm_start.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

constexpr double kFanPoints[] = {1.0, 0.75, 0.5, 0.25, 0.0};
constexpr std::size_t kNumPoints = sizeof(kFanPoints) / sizeof(double);
constexpr std::uint32_t kPrefixWindows = 64;
constexpr std::uint32_t kCores = 8;
constexpr std::uint32_t kThreadsPerCore = 2;

sim::SystemOptions
sweepOptions()
{
    sim::SystemOptions opts; // defaults: 25 tiles, fastPath on
    return opts;
}

/** Donor/cold prefix: load HP and run the shared warmup windows.  The
 *  returned programs must stay alive while `sys` keeps running (forks
 *  restored from a checkpoint carry their own images instead). */
std::vector<isa::Program>
runPrefix(sim::System &sys, std::uint32_t checkpoint_every = 0,
          const std::string &checkpoint_out = {})
{
    std::vector<isa::Program> programs = workloads::loadMicrobench(
        sys, workloads::Microbench::HP, kCores, kThreadsPerCore,
        /*iterations=*/0);
    for (std::uint32_t w = 0; w < kPrefixWindows; ++w) {
        sys.windowTruePowers(sys.options().cyclesPerSample);
        if (checkpoint_every > 0 && (w + 1) % checkpoint_every == 0)
            sys.save(checkpoint_out);
    }
    return programs;
}

/** One sweep point's divergent suffix: set the fan, record `windows`
 *  sample windows.  Everything compared by --verify comes from here. */
struct PointResult
{
    double fan = 1.0;
    std::vector<std::uint64_t> onChipBits; ///< per-window P, raw bits
    double meanOnChipW = 0.0;
    double finalDieC = 0.0;
    std::string csv; ///< full telemetry export, byte-comparable
};

PointResult
runPoint(sim::System &sys, telemetry::TelemetryRecorder &rec, double fan,
         std::uint32_t windows)
{
    PointResult r;
    r.fan = fan;
    sys.thermalModel().setFanEffectiveness(fan);
    // Settle at the fan point's equilibrium the way System::measure
    // does: the microsecond-scale sample windows sit far below the
    // thermal time constants, so the die is pinned at the steady state
    // for the observed power (leakage then differs per fan point).
    // These settle windows are recorded too — identically in the warm
    // and cold flows, so the CSV byte-compare covers them.
    for (int i = 0; i < 4; ++i) {
        const auto p =
            sys.windowTruePowers(sys.options().cyclesPerSample);
        sys.thermalModel().setState(
            sys.thermalModel().steadyState(p[0] + p[1]));
    }
    double sum = 0.0;
    for (std::uint32_t w = 0; w < windows; ++w) {
        const auto p =
            sys.windowTruePowers(sys.options().cyclesPerSample);
        const double on_chip = p[0] + p[1];
        sum += on_chip;
        std::uint64_t bits = 0;
        std::memcpy(&bits, &on_chip, sizeof(bits));
        r.onChipBits.push_back(bits);
    }
    r.meanOnChipW = sum / windows;
    r.finalDieC = sys.dieTempC();
    std::ostringstream os;
    telemetry::writeCsv(os, rec);
    r.csv = os.str();
    return r;
}

std::vector<PointResult>
runWarm(const sim::SweepWarmStart &ws, std::uint32_t windows,
        unsigned threads)
{
    std::vector<PointResult> results(kNumPoints);
    parallelFor(kNumPoints, threads, [&](std::size_t i) {
        telemetry::TelemetryRecorder rec;
        const std::unique_ptr<sim::System> sys = ws.fork(rec);
        results[i] = runPoint(*sys, rec, kFanPoints[i], windows);
    });
    return results;
}

std::vector<PointResult>
runCold(std::uint32_t windows, unsigned threads)
{
    std::vector<PointResult> results(kNumPoints);
    parallelFor(kNumPoints, threads, [&](std::size_t i) {
        sim::System sys(sweepOptions());
        const auto programs = runPrefix(sys);
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        results[i] = runPoint(sys, rec, kFanPoints[i], windows);
    });
    return results;
}

void
printResults(const char *mode, const std::vector<PointResult> &results,
             double wall_s)
{
    std::cout << mode << " sweep (" << kPrefixWindows
              << "-window shared prefix, " << results[0].onChipBits.size()
              << " recorded windows per point):\n";
    TextTable t({"Fan eff", "Mean on-chip P (W)", "Final die (C)"});
    for (const auto &r : results)
        t.addRow({fmtF(r.fan, 2), fmtF(r.meanOnChipW, 4),
                  fmtF(r.finalDieC, 3)});
    t.print(std::cout);
    std::printf("wall clock: %.3f s\n\n", wall_s);
}

} // namespace

int
main(int argc, char **argv)
{
    using Clock = std::chrono::steady_clock;
    bench::banner("Ablation", "Warm-started sweep from a checkpoint");

    const bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*def_samples=*/16, /*def_threads=*/0,
        {"--cold", "--verify"});
    const std::uint32_t windows = args.samples;
    const bool cold_only = args.hasFlag("--cold");
    const bool verify = args.hasFlag("--verify");
    // --checkpoint-every/--checkpoint-out consistency is enforced
    // centrally by parseBenchArgs.

    std::vector<PointResult> warm, cold;
    double warm_s = 0.0, cold_s = 0.0;

    if (!cold_only || verify) {
        const auto t0 = Clock::now();
        sim::SweepWarmStart ws = [&] {
            if (!args.resumeFrom.empty()) {
                std::cout << "prefix: resumed from '" << args.resumeFrom
                          << "' (shared warmup skipped)\n";
                return sim::SweepWarmStart::fromImage(
                    sweepOptions(), ckpt::readFile(args.resumeFrom));
            }
            sim::System donor(sweepOptions());
            const auto programs = runPrefix(donor, args.checkpointEvery,
                                            args.checkpointOut);
            return sim::SweepWarmStart::capture(donor);
        }();
        if (!args.checkpointOut.empty() && args.resumeFrom.empty()) {
            ckpt::writeFile(args.checkpointOut, ws.bytes());
            std::cout << "prefix checkpoint (" << ws.bytes().size()
                      << " bytes) -> " << args.checkpointOut << '\n';
        }
        warm = runWarm(ws, windows, args.threads);
        warm_s = std::chrono::duration<double>(Clock::now() - t0).count();
        printResults("Warm-start", warm, warm_s);
    }

    if (cold_only || verify) {
        const auto t0 = Clock::now();
        cold = runCold(windows, args.threads);
        cold_s = std::chrono::duration<double>(Clock::now() - t0).count();
        printResults("Cold (prefix per point)", cold, cold_s);
    }

    if (!args.outDir.empty()) {
        // Re-run point 0 serially to export a representative telemetry
        // file (recorders live inside the parallel region above).
        telemetry::TelemetryRecorder rec;
        sim::System sys(sweepOptions());
        const auto programs = runPrefix(sys);
        sys.attachTelemetry(&rec);
        runPoint(sys, rec, kFanPoints[0], windows);
        telemetry::exportTelemetry(args.outDir, "ablation_warmstart", rec);
    }

    if (verify) {
        bool ok = true;
        for (std::size_t i = 0; i < kNumPoints; ++i) {
            const bool same = warm[i].onChipBits == cold[i].onChipBits
                              && warm[i].csv == cold[i].csv
                              && std::memcmp(&warm[i].finalDieC,
                                             &cold[i].finalDieC,
                                             sizeof(double))
                                     == 0;
            if (!same) {
                std::printf("MISMATCH at fan=%.2f\n", kFanPoints[i]);
                ok = false;
            }
        }
        std::printf("verify: warm-start vs cold %s; warm %.3f s vs cold"
                    " %.3f s (%.2fx)\n",
                    ok ? "BIT-IDENTICAL" : "FAILED", warm_s, cold_s,
                    warm_s > 0 ? cold_s / warm_s : 0.0);
        if (!ok)
            return 1;
    } else {
        std::cout << "The warm path pays the " << kPrefixWindows
                  << "-window prefix once instead of once per point;\n"
                     "--verify re-runs the sweep cold and checks the"
                     " outputs are bit-identical.\n";
    }
    return 0;
}
