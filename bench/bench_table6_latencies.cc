/**
 * @file
 * Table VI: instruction latencies used in the EPI calculations,
 * cross-checked against the cycle simulator (the paper verifies them
 * "through simulation, ensuring pipeline stalls and instruction
 * scheduling was as expected").
 */

#include <iostream>

#include "arch/piton_chip.hh"
#include "bench_util.hh"
#include "chip/chip_instance.hh"
#include "common/table.hh"
#include "isa/assembler.hh"

namespace
{

using namespace piton;

/** Measure the occupancy of one instruction by timing a dependent
 *  hot loop of `count` copies against an empty loop. */
double
measureLatency(const std::string &body, int count)
{
    auto run = [](const isa::Program &p) {
        config::PitonParams params;
        power::EnergyModel energy;
        arch::PitonChip chip(params, chip::makeChip(2), energy);
        chip.loadProgram(0, 0, &p);
        const auto r = chip.run(200'000'000);
        return static_cast<double>(r.cyclesElapsed);
    };
    std::string with = "        set 1000000, %r1\n        set 3, %r2\n"
                       "        set 0, %r4\nloop:\n";
    std::string without = with;
    for (int i = 0; i < count; ++i)
        with += body + "\n";
    const std::string tail = "        add %r4, 1, %r4\n"
                             "        cmp %r4, 2000\n        bl loop\n"
                             "        halt\n";
    with += tail;
    without += tail;
    const double cycles_with = run(isa::assemble(with));
    const double cycles_without = run(isa::assemble(without));
    return (cycles_with - cycles_without) / (2000.0 * count);
}

} // namespace

int
main()
{
    bench::banner("Table VI", "Instruction latencies (simulation-verified)");

    struct Row
    {
        const char *group;
        const char *name;
        std::string body;
        int count;
        unsigned expected;
    };
    const Row rows[] = {
        {"Integer (64-bit)", "nop", "        nop", 8, 1},
        {"Integer (64-bit)", "and", "        and %r1, %r2, %r3", 8, 1},
        {"Integer (64-bit)", "add", "        add %r1, %r2, %r3", 8, 1},
        {"Integer (64-bit)", "mulx", "        mulx %r1, %r2, %r3", 4, 11},
        {"Integer (64-bit)", "sdivx", "        sdivx %r1, %r2, %r3", 2, 72},
        {"FP Double Precision", "faddd", "        faddd %f1, %f2, %f3", 2,
         22},
        {"FP Double Precision", "fmuld", "        fmuld %f1, %f2, %f3", 2,
         25},
        {"FP Double Precision", "fdivd", "        fdivd %f1, %f2, %f3", 2,
         79},
        {"FP Single Precision", "fadds", "        fadds %f1, %f2, %f3", 2,
         22},
        {"FP Single Precision", "fmuls", "        fmuls %f1, %f2, %f3", 2,
         25},
        {"FP Single Precision", "fdivs", "        fdivs %f1, %f2, %f3", 2,
         50},
        {"Memory (64-bit) L1/L1.5 Hit", "ldx",
         "        ldx [%r1 + 0], %r3", 4, 3},
        // Branch rows pair the branch with a cmp (1 cycle, subtracted
        // below); count 1 keeps the fall-through label unique.
        {"Control", "beq taken",
         "        cmp %r2, 3\n        beq next\nnext:", 1, 3 + 1},
        {"Control", "bne nottaken",
         "        cmp %r2, 3\n        bne loop2\nloop2:", 1, 3 + 1},
    };

    TextTable t({"Group", "Instruction", "Table VI (cycles)",
                 "Simulated (cycles)"});
    for (const auto &r : rows) {
        const double measured = measureLatency(r.body, r.count);
        // The branch rows include the paired cmp (1 cycle).
        t.addRow({r.group, r.name,
                  std::to_string(r.expected
                                 - (std::string(r.group) == "Control" ? 1
                                                                      : 0)),
                  piton::fmtF(measured
                                  - (std::string(r.group) == "Control"
                                         ? 1.0
                                         : 0.0),
                              2)});
    }
    t.print(std::cout);
    std::cout << "\nStore latency (stx, store buffer has space): 10 "
                 "cycles of buffer occupancy\n(drain-rate verified by the "
                 "stx(NF) EPI test, Fig. 11 bench).\n";
    return 0;
}
