/**
 * @file
 * Extension: closed-loop governor comparison (DESIGN.md §13).
 *
 * Runs the same phased power-management scenario under each DVFS
 * policy and compares the energy/EPI/thermal trajectories — the
 * Fig. 16/17-style experiments with the control loop closed.  The
 * built-in scenario is a Fig. 16-flavoured cap schedule over the HP
 * microbenchmark (the paper's highest-power application) with a phase
 * change to Int; --scenario FILE substitutes any scenario kv-file
 * (its governor key is overridden per compared policy), --governor
 * NAME restricts the comparison to one policy, and --out DIR exports
 * the full telemetry (window schema + governor.* epoch series) per
 * policy.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "governor/scenario.hh"
#include "sim/system.hh"
#include "telemetry/export.hh"

namespace
{

/** Fig. 16-flavoured built-in: HP under a stepped watt budget, then a
 *  phase change to the Int kernel under a tighter cap. */
const char *const kBuiltinScenario = R"(
name             = cap_schedule
workload         = hp
tiles            = 25
threads_per_core = 2
iterations       = 0
epoch_windows    = 2
cap_w            = 3.0
phases           = 3
phase0.cycles    = 120000
phase1.cycles    = 120000
phase1.cap_w     = 1.5
phase2.cycles    = 120000
phase2.cap_w     = 2.2
phase2.workload  = int
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Extension", "Closed-loop DVFS governor comparison");
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

    const governor::Scenario base =
        args.scenario.empty()
            ? governor::Scenario::fromText(kBuiltinScenario, "<builtin>")
            : governor::Scenario::fromFile(args.scenario);

    std::vector<std::string> policies = {"none", "ondemand", "pidcap",
                                         "theas"};
    if (!args.governor.empty())
        policies = {args.governor};

    std::cout << "scenario '" << base.name << "': " << base.workload
              << " on " << base.tiles << " tiles x "
              << base.threadsPerCore << " T/C, "
              << base.phases.size() << " phases\n\n";

    TextTable t({"Governor", "Cycles", "Time (ms)", "Energy (mJ)",
                 "EPI (nJ)", "Avg power (W)", "Die (C)"});
    for (const std::string &policy : policies) {
        governor::Scenario sc = base;
        sc.gov.policy = policy;
        if (policy == "pidcap" && sc.gov.capW <= 0.0)
            sc.gov.capW = 2.5;

        sim::SystemOptions opts;
        opts.engineThreads = args.engineThreads;
        sim::System sys(opts);
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        const governor::ScenarioResult r = governor::runScenario(sys, sc);

        t.addRow({r.policy, std::to_string(r.cycles),
                  fmtF(r.seconds * 1e3, 3), fmtF(r.energyJ * 1e3, 3),
                  fmtF(r.epi * 1e9, 3), fmtF(r.avgPowerW, 3),
                  fmtF(r.finalDieTempC, 2)});

        if (!args.outDir.empty()) {
            const std::string name = "governor_compare_" + r.policy;
            telemetry::exportTelemetry(args.outDir, name, rec);
            std::cout << "telemetry: " << args.outDir << "/" << name
                      << ".{csv,jsonl} (" << rec.seriesCount()
                      << " series)\n";
        }
    }
    if (!args.outDir.empty())
        std::cout << "\n";
    t.print(std::cout);

    std::cout
        << "\nEach policy sees the identical scenario; differences are"
           " pure control-loop\nbehaviour.  pidcap tracks the phase cap"
           " schedule, ondemand rides utilization,\ntheas throttles"
           " memory-bound tiles and gates idle ones, none is the"
           " static\nbaseline table.  Deterministic: bit-identical at"
           " any --engine-threads.\n";
    return 0;
}
