/**
 * @file
 * Table VII: memory system energy for different cache hit/miss
 * scenarios, measured end-to-end with the EPI methodology over
 * set-aliasing ldx loops.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/epi_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Table VII", "Memory system energy (ldx scenarios)");
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 128, 0);
    const std::uint32_t samples = args.samples;

    sim::SystemOptions opts;
    opts.sweepThreads = args.threads;
    opts.engineThreads = args.engineThreads;
    core::MemoryEnergyExperiment exp(opts, samples);
    const auto rows = exp.runAll();

    const char *paper[] = {"0.28646±0.00089", "1.54±0.25", "1.87±0.32",
                           "1.97±0.39", "308.7±3.3"};
    TextTable t({"Cache Hit/Miss Scenario", "Latency (cycles)",
                 "Mean LDX Energy (nJ)", "Paper (nJ)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        t.addRow({workloads::memoryScenarioName(r.scenario),
                  std::to_string(r.latency),
                  fmtPm(r.energyNj, r.errNj, 3), paper[i]});
    }
    t.print(std::cout);

    std::cout << "\nInsights reproduced:\n"
              << " - local vs remote L2 difference is small (low NoC"
                 " energy);\n"
              << " - an L2 miss costs two orders of magnitude more than"
                 " any hit\n   (recompute rather than reload).\n";
    return 0;
}
