/**
 * @file
 * Shared helpers for the reproduction benches: banner printing and the
 * one common command-line parser.  Every bench that takes arguments
 * goes through parseBenchArgs so the flag set, defaults, and the
 * hard-error behaviour on unknown flags are identical across binaries.
 */

#ifndef PITON_BENCH_BENCH_UTIL_HH
#define PITON_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace piton::bench
{

inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("Reproduction of: McKeown et al., \"Power and Energy\n"
                "Characterization of an Open Source 25-core Manycore\n"
                "Processor\", HPCA 2018.\n");
    std::printf("==============================================================\n\n");
}

/** Parsed common bench arguments (see parseBenchArgs). */
struct BenchArgs
{
    /** Monitor samples per measurement (the paper records 128). */
    std::uint32_t samples = 128;
    /** Sweep-level worker threads (0 = all hardware threads).
     *  Results are bit-identical at any value (common/parallel.hh). */
    unsigned threads = 1;
    /** Sharded-engine worker threads inside each simulated chip
     *  (SystemOptions::engineThreads; 0 = all hardware threads).
     *  Bit-identical at any value (DESIGN.md §12). */
    unsigned engineThreads = 1;
    /** Telemetry output directory (--out); empty = no export. */
    std::string outDir;
    /** Periodic checkpoint cadence in sample windows
     *  (--checkpoint-every; 0 = disabled). */
    std::uint32_t checkpointEvery = 0;
    /** Checkpoint file to write (--checkpoint-out; empty = none). */
    std::string checkpointOut;
    /** Checkpoint file to resume from (--resume-from; empty = cold
     *  start). */
    std::string resumeFrom;
    /** DVFS governor policy (--governor; empty = bench default, which
     *  is the static-table "none" policy). */
    std::string governor;
    /** Scenario kv-file (--scenario; empty = the bench's built-in
     *  scenario).  See src/governor/scenario.hh for the schema. */
    std::string scenario;
    /** Extra boolean flags seen (from the caller's allow-list). */
    std::vector<std::string> flags;
    /** Extra valued options seen (from the caller's allow-list).  At
     *  most one entry per name: a repeated flag is a parse-time hard
     *  error, never a silent last-one-wins. */
    std::vector<std::pair<std::string, std::string>> options;
    /** Positional arguments, in order. */
    std::vector<std::string> positionals;

    bool
    hasFlag(const char *f) const
    {
        for (const auto &s : flags)
            if (s == f)
                return true;
        return false;
    }

    std::string
    optionValue(const char *name, std::string def = {}) const
    {
        for (auto it = options.rbegin(); it != options.rend(); ++it)
            if (it->first == name)
                return it->second;
        return def;
    }
};

namespace detail
{

[[noreturn]] inline void
usageError(const char *prog, const char *msg, const char *arg)
{
    std::fprintf(stderr, "%s: %s%s%s\n", prog, msg, arg ? ": " : "",
                 arg ? arg : "");
    std::fprintf(stderr,
                 "usage: %s [--samples N] [--threads N]"
                 " [--engine-threads N] [--out DIR]"
                 " [--checkpoint-every N] [--checkpoint-out FILE]"
                 " [--resume-from FILE] [--governor POLICY]"
                 " [--scenario FILE] [extra flags] [positionals]\n",
                 prog);
    std::exit(2);
}

inline long
numericValue(const char *prog, const char *flag, const char *value)
{
    if (value == nullptr)
        usageError(prog, "missing value for", flag);
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0 || errno == ERANGE
        || v > 0x7fffffffL) // fits the uint32_t/unsigned fields
        usageError(prog, "bad numeric value for", flag);
    return v;
}

} // namespace detail

/**
 * Parse the common bench flags:
 *   --samples N         monitor samples per measurement
 *   --threads N         sweep worker threads (0 = all hardware threads)
 *   --engine-threads N  sharded-engine threads per simulated chip
 *                       (0 = all hardware threads)
 *   --out DIR           telemetry export directory (benches that record
 *                       telemetry write <dir>/<bench>.{csv,jsonl})
 * plus any caller-allowed boolean `extra_flags` (e.g. "--full"),
 * caller-allowed valued `extra_opts` (e.g. "--port", consuming the
 * next argument), and up to `max_positionals` positional arguments.
 * Anything else — an unknown flag, a repeated flag, a flag missing
 * its value, a non-numeric count, or an excess positional — is a hard
 * error: usage goes to stderr and the process exits with status 2.
 * Rejecting duplicates matters for reproducibility: a stale flag left
 * in a wrapper script must fail loudly, not silently lose to (or
 * override) the one appended later.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, std::uint32_t def_samples = 128,
               unsigned def_threads = 1,
               std::initializer_list<const char *> extra_flags = {},
               std::size_t max_positionals = 0,
               std::initializer_list<const char *> extra_opts = {})
{
    BenchArgs args;
    args.samples = def_samples;
    args.threads = def_threads;
    const char *prog = argc > 0 ? argv[0] : "bench";
    std::vector<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a[0] == '-') {
            for (const std::string &s : seen)
                if (s == a)
                    detail::usageError(prog, "duplicate flag", a);
            seen.emplace_back(a);
        }
        if (std::strcmp(a, "--samples") == 0) {
            args.samples = static_cast<std::uint32_t>(
                detail::numericValue(prog, a, next));
            ++i;
        } else if (std::strcmp(a, "--threads") == 0) {
            args.threads = static_cast<unsigned>(
                detail::numericValue(prog, a, next));
            ++i;
        } else if (std::strcmp(a, "--engine-threads") == 0) {
            args.engineThreads = static_cast<unsigned>(
                detail::numericValue(prog, a, next));
            ++i;
        } else if (std::strcmp(a, "--out") == 0) {
            if (next == nullptr)
                detail::usageError(prog, "missing value for", a);
            args.outDir = next;
            ++i;
        } else if (std::strcmp(a, "--checkpoint-every") == 0) {
            args.checkpointEvery = static_cast<std::uint32_t>(
                detail::numericValue(prog, a, next));
            ++i;
        } else if (std::strcmp(a, "--checkpoint-out") == 0) {
            if (next == nullptr)
                detail::usageError(prog, "missing value for", a);
            args.checkpointOut = next;
            ++i;
        } else if (std::strcmp(a, "--resume-from") == 0) {
            if (next == nullptr)
                detail::usageError(prog, "missing value for", a);
            args.resumeFrom = next;
            ++i;
        } else if (std::strcmp(a, "--governor") == 0) {
            if (next == nullptr)
                detail::usageError(prog, "missing value for", a);
            args.governor = next;
            ++i;
        } else if (std::strcmp(a, "--scenario") == 0) {
            if (next == nullptr)
                detail::usageError(prog, "missing value for", a);
            args.scenario = next;
            ++i;
        } else if (a[0] == '-') {
            bool known = false;
            for (const char *f : extra_flags)
                if (std::strcmp(a, f) == 0) {
                    args.flags.emplace_back(a);
                    known = true;
                    break;
                }
            for (const char *o : extra_opts) {
                if (known || std::strcmp(a, o) != 0)
                    continue;
                if (next == nullptr)
                    detail::usageError(prog, "missing value for", a);
                args.options.emplace_back(a, next);
                known = true;
                ++i;
            }
            if (!known)
                detail::usageError(prog, "unknown flag", a);
        } else {
            if (args.positionals.size() >= max_positionals)
                detail::usageError(prog, "unexpected argument", a);
            args.positionals.emplace_back(a);
        }
    }

    // Cross-flag validation: mutually exclusive or dependent flag
    // combinations are hard errors here, not per-bench warnings, so
    // every binary rejects them identically.
    if (args.checkpointEvery > 0 && args.checkpointOut.empty())
        detail::usageError(prog, "--checkpoint-every requires",
                           "--checkpoint-out");
    if (args.hasFlag("--sampled")) {
        // A sampled run re-simulates slices forked from its own
        // profile; layering it over an unrelated resume image or a
        // periodic checkpoint stream is undefined.
        if (!args.resumeFrom.empty())
            detail::usageError(prog, "--sampled is incompatible with",
                               "--resume-from");
        if (args.checkpointEvery > 0 || !args.checkpointOut.empty())
            detail::usageError(prog, "--sampled is incompatible with",
                               "--checkpoint-every/--checkpoint-out");
    }
    return args;
}

} // namespace piton::bench

#endif // PITON_BENCH_BENCH_UTIL_HH
