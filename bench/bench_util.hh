/**
 * @file
 * Shared helpers for the reproduction benches: banner printing and a
 * --samples override so the full suite can be run quickly.
 */

#ifndef PITON_BENCH_BENCH_UTIL_HH
#define PITON_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace piton::bench
{

inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("Reproduction of: McKeown et al., \"Power and Energy\n"
                "Characterization of an Open Source 25-core Manycore\n"
                "Processor\", HPCA 2018.\n");
    std::printf("==============================================================\n\n");
}

/** Parse --samples N (default: the paper's 128 monitor samples). */
inline std::uint32_t
samplesArg(int argc, char **argv, std::uint32_t def = 128)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--samples") == 0)
            return static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    return def;
}

/** Parse --threads N: sweep-level worker threads (0 = all hardware
 *  threads).  Results are bit-identical at any value. */
inline unsigned
threadsArg(int argc, char **argv, unsigned def = 1)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--threads") == 0)
            return static_cast<unsigned>(std::atoi(argv[i + 1]));
    return def;
}

} // namespace piton::bench

#endif // PITON_BENCH_BENCH_UTIL_HH
