/**
 * @file
 * Ablation: store-buffer depth versus rollback behaviour and store
 * energy.  The paper's stx(F) measurement exists because the 8-entry
 * buffer fills under back-to-back stores; this bench sweeps the depth
 * and shows how rollback rate (and the resulting wasted energy) would
 * change with a different design point.
 */

#include <iostream>

#include "arch/piton_chip.hh"
#include "bench_util.hh"
#include "chip/chip_instance.hh"
#include "common/table.hh"
#include "isa/program.hh"

int
main()
{
    using namespace piton;
    bench::banner("Ablation", "Store-buffer depth vs rollback energy");

    TextTable t({"Entries", "Stores", "Rollbacks", "Rollbacks/store",
                 "Exec+rollback energy (uJ)", "Cycles"});
    for (const std::uint32_t entries : {2u, 4u, 8u, 16u, 32u}) {
        config::PitonParams params;
        params.storeBufferEntries = entries;
        power::EnergyModel energy;
        arch::PitonChip chip(params, chip::makeChip(2), energy, 17);

        // Back-to-back stores to two hot L1.5 lines (the stx(F) test).
        isa::ProgramBuilder b;
        b.set(1, 0x20000).set(2, 0xA5A5A5A5A5A5A5A5ULL).set(30, 0);
        b.label("loop");
        for (int i = 0; i < 16; ++i)
            b.stx(2, 1, (i % 2) * 8);
        b.addi(30, 30, 1);
        b.cmpi(30, 2000);
        b.bl("loop");
        b.halt();
        const isa::Program p = b.build();
        chip.loadProgram(0, 0, &p);
        const auto r = chip.run(100'000'000);

        const auto &thread = chip.core(0).thread(0);
        const double energy_uj =
            (chip.ledger().category(power::Category::Exec)
                 .onChipCoreAndSram()
             + chip.ledger().category(power::Category::Rollback)
                   .onChipCoreAndSram())
            * 1e6;
        t.addRow({std::to_string(entries),
                  std::to_string(thread.instsExecuted),
                  std::to_string(thread.storeRollbacks),
                  fmtF(static_cast<double>(thread.storeRollbacks) / 32000.0,
                       2),
                  fmtF(energy_uj, 2), std::to_string(r.cyclesElapsed)});
    }
    t.print(std::cout);

    std::cout << "\nDeeper buffers absorb longer store bursts: rollback"
                 " (replay) energy falls\nand throughput rises, at the"
                 " area/latency cost of a larger CAM — the\ndesign"
                 " tradeoff behind Piton's 8-entry choice.\n";
    return 0;
}
