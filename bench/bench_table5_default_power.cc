/**
 * @file
 * Table V: default power parameters (Chip #2) — static power with all
 * inputs (including clocks) grounded, and idle power with clocks
 * running at 500.05 MHz, both measured through the board's monitor
 * chain with the 128-sample protocol.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/vf_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Table V", "Default power parameters (Chip #2)");
    const std::uint32_t samples =
        bench::parseBenchArgs(argc, argv).samples;

    const core::DefaultPowerResult r = core::measureDefaultPower(2, samples);
    TextTable t({"Parameter", "Measured", "Paper"});
    t.addRow({"Static Power @ Room Temperature",
              fmtPm(r.staticMw, r.staticErrMw, 1) + " mW",
              "389.3±1.5 mW"});
    t.addRow({"Idle Power @ 500.05MHz",
              fmtPm(r.idleMw, r.idleErrMw, 1) + " mW", "2015.3±1.5 mW"});
    t.print(std::cout);

    std::cout << "\nChip #3 (microbenchmark studies):\n";
    const core::DefaultPowerResult r3 = core::measureDefaultPower(3, samples);
    TextTable t3({"Parameter", "Measured", "Paper"});
    t3.addRow({"Static Power @ Room Temperature",
               fmtPm(r3.staticMw, r3.staticErrMw, 1) + " mW",
               "364.8±1.9 mW"});
    t3.addRow({"Idle Power @ 500.05MHz",
               fmtPm(r3.idleMw, r3.idleErrMw, 1) + " mW",
               "1906.2±2.0 mW"});
    t3.print(std::cout);
    return 0;
}
