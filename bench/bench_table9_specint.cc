/**
 * @file
 * Table IX: SPECint 2006 performance, power, and energy — the
 * UltraSPARC T1 baseline versus the Piton system, via the analytic
 * CPI/power model over the surrogate workload profiles.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/app_experiments.hh"

int
main()
{
    using namespace piton;
    bench::banner("Table IX", "SPECint 2006 performance, power, energy");

    const perfmodel::SpecModel model = core::makePaperSpecModel();
    // Paper's reported values for side-by-side comparison.
    struct PaperRow
    {
        const char *name;
        double pitonMin, slowdown, powerW, energyKj;
    };
    const PaperRow paper[] = {
        {"bzip2-chicken", 57.36, 4.89, 2.199, 7.566},
        {"bzip2-source", 129.02, 5.46, 2.119, 16.404},
        {"gcc-166", 38.28, 6.70, 2.094, 4.809},
        {"gcc-200", 70.67, 7.67, 2.156, 9.139},
        {"gobmk-13x13", 77.51, 4.65, 2.127, 9.889},
        {"h264ref-foreman-baseline", 71.08, 3.12, 2.149, 9.162},
        {"hmmer-nph3", 164.94, 3.41, 2.400, 23.750},
        {"libquantum", 1175.70, 5.83, 2.287, 161.363},
        {"omnetpp", 727.04, 9.97, 2.096, 91.431},
        {"perlbench-checkspam", 92.56, 8.00, 2.137, 11.863},
        {"perlbench-diffmail", 184.37, 7.97, 2.141, 22.320},
        {"sjeng", 569.22, 4.66, 2.080, 71.043},
        {"xalancbmk", 730.03, 7.09, 2.148, 94.077},
    };

    TextTable t({"Benchmark/Input", "T1 (min)", "Piton (min)",
                 "[paper]", "Slowdown", "[paper]", "Avg Power (W)",
                 "[paper]", "Energy (kJ)", "[paper]"});
    const auto results = model.evaluateAll();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &p = paper[i];
        t.addRow({r.name, fmtF(r.t1Minutes, 2), fmtF(r.pitonMinutes, 2),
                  fmtF(p.pitonMin, 2), fmtF(r.slowdown, 2),
                  fmtF(p.slowdown, 2), fmtF(r.pitonAvgPowerW, 3),
                  fmtF(p.powerW, 3), fmtF(r.pitonEnergyKj, 3),
                  fmtF(p.energyKj, 3)});
    }
    t.print(std::cout);

    std::cout << "\nShape checks: omnetpp is the worst slowdown, h264ref"
                 " the best; hmmer and\nlibquantum draw the most power"
                 " (high I/O activity); energy tracks runtime.\n";
    return 0;
}
