/**
 * @file
 * Extension: the multi-socket memory-energy ladder.  Piton's NoCs and
 * coherence extend off-chip for inter-chip shared memory (Section II);
 * this bench extends Table VII's ladder with the cross-socket rungs a
 * multi-socket characterization would add, and shows how the average
 * shared-memory access cost grows with socket count under line
 * interleaving.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "multichip/multichip.hh"

int
main()
{
    using namespace piton;
    bench::banner("Extension", "Multi-socket shared-memory ladder");

    // The extended ladder on a 2-socket system.
    {
        multichip::MultiChipSystem sys(2);
        // Warm a remote-homed line at its home socket.
        const Addr remote_line = 0x40;
        sys.localLoad(1, 0, remote_line, 1);
        const auto warm_cross = sys.crossChipLoad(0, 12, remote_line, 100);
        const auto cold_cross = sys.crossChipLoad(0, 12, 0x9000040, 200);

        TextTable t({"Scenario", "Latency (cycles)", "Latency (ns)"});
        t.addRow({"L1 hit (Table VII)", "3", fmtF(3 / 0.50005, 0)});
        t.addRow({"Local L2 hit (Table VII)", "34",
                  fmtF(34 / 0.50005, 0)});
        t.addRow({"Remote L2 hit, 8 hops (Table VII)", "52",
                  fmtF(52 / 0.50005, 0)});
        t.addRow({"Local L2 miss / DRAM (Table VII)", "~424",
                  fmtF(424 / 0.50005, 0)});
        t.addRow({"Remote-chip L2 hit (extension)",
                  std::to_string(warm_cross.latency),
                  fmtF(warm_cross.latency / 0.50005, 0)});
        t.addRow({"Remote-chip L2 miss (extension)",
                  std::to_string(cold_cross.latency),
                  fmtF(cold_cross.latency / 0.50005, 0)});
        t.print(std::cout);
    }

    // Average warm shared-access latency vs socket count.
    std::cout << "\nLine-interleaved shared array, warm, accessed from "
                 "socket 0 tile 12:\n";
    TextTable s({"Sockets", "Avg latency (cycles)", "Fabric crossings",
                 "Cross-socket fraction"});
    for (const std::uint32_t sockets : {1u, 2u, 4u, 8u}) {
        multichip::MultiChipSystem sys(sockets);
        // Warm 64 lines at their homes.
        for (Addr a = 0; a < 64 * 64; a += 64)
            sys.localLoad(sys.homeSocket(a), 0, a, 1);
        RunningStats lat;
        Cycle now = 1000;
        for (Addr a = 0; a < 64 * 64; a += 64) {
            const auto out = sys.crossChipLoad(0, 12, a, now);
            now += out.latency;
            lat.add(out.latency);
        }
        s.addRow({std::to_string(sockets), fmtF(lat.mean(), 1),
                  std::to_string(sys.fabricCrossings()),
                  fmtF(100.0 * (sockets - 1) / sockets, 0) + "%"});
    }
    s.print(std::cout);

    std::cout << "\nCross-socket rungs sit between an on-chip remote L2"
                 " hit and a DRAM miss:\nthe coherence fabric keeps"
                 " shared data on-package cheaper than memory, the\n"
                 "scaling argument behind Piton's multi-socket design"
                 " (and CDR's role in\nbounding its directory state).\n";
    return 0;
}
