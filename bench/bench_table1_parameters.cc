/**
 * @file
 * Table I: Piton parameter summary.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "config/piton_params.hh"

int
main()
{
    using namespace piton;
    bench::banner("Table I", "Piton parameter summary");

    const config::PitonParams p;
    TextTable t({"Parameter", "Value"});
    auto row = [&t](const std::string &k, const std::string &v) {
        t.addRow({k, v});
    };
    row("Process", p.process);
    row("Die Size", fmtF(p.dieAreaMm2, 0) + "mm^2 (" + fmtF(p.dieEdgeMm, 0)
                        + "mm x " + fmtF(p.dieEdgeMm, 0) + "mm)");
    row("Transistor Count", "> 460 million");
    row("Package", p.package);
    row("Nominal Core Volt. (VDD)", fmtF(p.nominalVddV, 2) + "V");
    row("Nominal SRAM Volt. (VCS)", fmtF(p.nominalVcsV, 2) + "V");
    row("Nominal I/O Volt. (VIO)", fmtF(p.nominalVioV, 2) + "V");
    row("Off-chip Interface Width",
        std::to_string(p.offChipInterfaceBits) + "-bit (each direction)");
    row("Tile Count", std::to_string(p.tileCount) + " ("
                          + std::to_string(p.meshWidth) + "x"
                          + std::to_string(p.meshHeight) + ")");
    row("NoC Count", std::to_string(p.nocCount));
    row("NoC Width",
        std::to_string(p.nocWidthBits) + "-bit (each direction)");
    row("Cores per Tile", std::to_string(p.coresPerTile));
    row("Threads per Core", std::to_string(p.threadsPerCore));
    row("Total Thread Count", std::to_string(p.totalThreads));
    row("Core ISA", p.coreIsa);
    row("Core Pipeline Depth",
        std::to_string(p.corePipelineDepth) + " stages");
    auto cache_rows = [&row](const std::string &name,
                             const config::CacheParams &c) {
        row(name + " Size", std::to_string(c.sizeBytes / 1024) + "KB");
        row(name + " Associativity",
            std::to_string(c.associativity) + "-way");
        row(name + " Line Size", std::to_string(c.lineBytes) + "B");
    };
    cache_rows("L1 Instruction Cache", p.l1i);
    cache_rows("L1 Data Cache", p.l1d);
    cache_rows("L1.5 Data Cache", p.l15);
    cache_rows("L2 Cache Slice", p.l2Slice);
    row("L2 Cache Size per Chip",
        fmtF(static_cast<double>(p.totalL2Bytes()) / 1024.0 / 1024.0, 1)
            + "MB");
    row("Coherence Protocol", p.coherenceProtocol);
    row("Coherence Point", p.coherencePoint);
    t.print(std::cout);
    return 0;
}
