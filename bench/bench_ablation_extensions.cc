/**
 * @file
 * Ablation of the Piton features the paper names but does not
 * characterize in isolation:
 *  - Execution Drafting (ExecD): energy saved when both threads run
 *    similar code;
 *  - Coherence Domain Restriction (CDR): directory energy vs domain
 *    size;
 *  - SRAM repair: good-die yield vs spare resources (Table IV's
 *    "possibly fixable with SRAM repair" classes).
 */

#include <iostream>

#include "arch/piton_chip.hh"
#include "bench_util.hh"
#include "chip/chip_instance.hh"
#include "chip/yield_model.hh"
#include "common/table.hh"
#include "isa/assembler.hh"

namespace
{

using namespace piton;

void
execDraftingStudy()
{
    std::cout << "Execution Drafting (identical threads, integer loop):\n";
    const isa::Program prog = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        and %r3, %r2, %r4
        cmp %r1, 30000
        bl loop
        halt
    )");
    TextTable t({"ExecD", "Drafted insts", "Exec energy (uJ)", "Saving"});
    double baseline = 0.0;
    for (const bool drafting : {false, true}) {
        config::PitonParams params;
        power::EnergyModel energy;
        arch::PitonChip chip(params, chip::makeChip(2), energy, 33);
        chip.setExecDrafting(drafting);
        chip.loadProgram(0, 0, &prog);
        chip.loadProgram(0, 1, &prog);
        chip.run(4'000'000'000ULL);
        const double exec_uj = chip.ledger()
                                   .category(power::Category::Exec)
                                   .onChipCoreAndSram()
                               * 1e6;
        if (!drafting)
            baseline = exec_uj;
        t.addRow({drafting ? "on" : "off",
                  std::to_string(chip.draftedInsts()), fmtF(exec_uj, 2),
                  drafting ? fmtF(100.0 * (1.0 - exec_uj / baseline), 1)
                                 + "%"
                           : "-"});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
cdrStudy()
{
    std::cout << "Coherence Domain Restriction (directory energy per L2 "
                 "access):\n";
    TextTable t({"Domain size (tiles)", "L2+dir energy per access (pJ)"});
    for (const std::uint32_t domain_tiles : {2u, 4u, 8u, 16u, 25u}) {
        config::PitonParams params;
        power::EnergyModel energy;
        power::EnergyLedger ledger;
        arch::MainMemory memory;
        arch::MemorySystem mem(params, energy, ledger, memory);
        if (domain_tiles < 25)
            mem.addCoherenceDomain(0x100000, 0x10000,
                                   (1u << domain_tiles) - 1);
        RegVal d;
        const double before =
            ledger.category(power::Category::CacheL2).total();
        mem.load(0, 0x100000, d, 1);
        const double per_access =
            jToPj(ledger.category(power::Category::CacheL2).total()
                  - before);
        t.addRow({std::to_string(domain_tiles), fmtF(per_access, 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
repairStudy()
{
    std::cout << "SRAM repair (good-die yield, 100k simulated dies):\n";
    const chip::YieldModel model;
    TextTable t({"Spares per array", "Good yield",
                 "SRAM-fail classes remaining"});
    for (const std::uint32_t spares : {0u, 1u, 2u, 4u}) {
        chip::RepairConfig repair;
        repair.sparesPerArray = spares;
        const auto s = model.testDiesWithRepair(100000, 77, repair);
        const double sram_fail =
            s.percent(chip::DieStatus::UnstableDeterministic)
            + s.percent(chip::DieStatus::UnstableNondeterministic);
        t.addRow({std::to_string(spares),
                  fmtF(s.percent(chip::DieStatus::Good), 1) + "%",
                  fmtF(sram_fail, 2) + "%"});
    }
    t.print(std::cout);
    std::cout << "\nWith even one spare row/column per array, nearly all"
                 " of Table IV's\n\"possibly fixable\" dies (25% of the"
                 " batch) become good — yield approaches\nthe 15.6%"
                 " short-circuit limit.\n";
}

} // namespace

int
main()
{
    bench::banner("Ablation",
                  "ExecD / CDR / SRAM-repair feature studies");
    execDraftingStudy();
    cdrStudy();
    repairStudy();
    return 0;
}
