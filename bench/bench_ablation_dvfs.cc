/**
 * @file
 * Extension: the energy-optimal operating point.  Combining Fig. 9
 * (fmax vs VDD) with Fig. 10 (power vs V/f) answers the question the
 * two figures exist to enable: for a fixed amount of work, which
 * operating point minimizes energy?  Low voltage wins on power but
 * stretches runtime over the leakage floor; high voltage races ahead
 * but pays V^2 — the classic DVFS bathtub.
 *
 * Every point runs through the governor subsystem (DESIGN.md §13): the
 * static table is simply the "none" policy pinned at that operating
 * point.  --governor then drops a closed-loop policy onto the same
 * fixed kernel from the nominal point, answering how close the policy
 * lands to the static-optimal energy without being told the table;
 * --scenario runs a scenario kv-file instead.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/vf_experiments.hh"
#include "governor/scenario.hh"
#include "isa/assembler.hh"
#include "sim/system.hh"

namespace
{

const char *const kKernelSrc = R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        and %r3, %r2, %r4
        or  %r4, %r1, %r5
        cmp %r1, 6000
        bl loop
        halt
    )";

/** The fixed work: the integer kernel on all 50 threads, governed. */
piton::sim::CompletionResult
runGoverned(piton::sim::SystemOptions opts, const piton::isa::Program &kernel,
            piton::governor::Governor &gov, unsigned engine_threads)
{
    using namespace piton;
    opts.engineThreads = engine_threads;
    sim::System sys(opts);
    sys.attachGovernor(&gov);
    for (TileId tile = 0; tile < 25; ++tile) {
        sys.loadProgram(tile, 0, &kernel);
        sys.loadProgram(tile, 1, &kernel);
    }
    const sim::CompletionResult r = sys.runToCompletion(4'000'000'000ULL);
    sys.attachGovernor(nullptr);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Extension", "Energy-optimal DVFS operating point");
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv, 16);

    if (!args.scenario.empty()) {
        const governor::Scenario sc =
            governor::Scenario::fromFile(args.scenario);
        sim::SystemOptions opts;
        opts.engineThreads = args.engineThreads;
        sim::System sys(opts);
        const governor::ScenarioResult r = governor::runScenario(sys, sc);
        TextTable t({"Phase", "Cycles", "Time (ms)", "Energy (mJ)",
                     "Avg power (W)", "Die (C)"});
        for (std::size_t i = 0; i < r.phases.size(); ++i) {
            const governor::PhaseResult &ph = r.phases[i];
            t.addRow({std::to_string(i), std::to_string(ph.run.cycles),
                      fmtF(ph.run.seconds * 1e3, 3),
                      fmtF(ph.run.onChipEnergyJ * 1e3, 3),
                      fmtF(ph.avgPowerW, 3), fmtF(ph.dieTempC, 2)});
        }
        t.print(std::cout);
        std::cout << "\nscenario '" << r.name << "' under " << r.policy
                  << ": " << fmtF(r.energyJ * 1e3, 3) << " mJ over "
                  << fmtF(r.seconds * 1e3, 3) << " ms\n";
        return 0;
    }

    const isa::Program kernel = isa::assemble(kKernelSrc);
    const core::VfScalingExperiment vf;
    TextTable t({"VDD (V)", "f (MHz)", "Avg power (W)", "Time (ms)",
                 "Energy (mJ)"});
    double best_e = 1e9, best_v = 0.0;
    for (const double v : core::VfScalingExperiment::voltageGrid()) {
        // Run at Chip #2's maximum frequency for this voltage: one row
        // of the static V-f table, expressed as the "none" governor.
        const core::VfPoint p = vf.measure(2, v);
        sim::SystemOptions opts;
        opts.vddV = v;
        opts.vcsV = v + 0.05;
        opts.coreClockMhz = p.fmaxMhz;
        governor::GovernorParams gp;
        gp.policy = "none";
        const auto gov = governor::makeGovernor(gp);
        const sim::CompletionResult r =
            runGoverned(opts, kernel, *gov, args.engineThreads);
        if (!r.completed)
            continue;
        const double energy_mj = r.onChipEnergyJ * 1e3;
        t.addRow({fmtF(v, 2), fmtF(p.fmaxMhz, 1),
                  fmtF(r.onChipEnergyJ / r.seconds, 3),
                  fmtF(r.seconds * 1e3, 3), fmtF(energy_mj, 4)});
        if (energy_mj < best_e) {
            best_e = energy_mj;
            best_v = v;
        }
    }
    t.print(std::cout);

    std::cout << "\nenergy-optimal point: VDD = " << fmtF(best_v, 2)
              << " V (" << fmtF(best_e, 3)
              << " mJ for the fixed kernel)\n"
                 "For this fully-parallel kernel the V^2 dynamic term"
                 " dominates across the\nwhole operating range, so"
                 " energy falls monotonically toward the low-voltage\n"
                 "end — near-threshold operation wins until the"
                 " leakage-over-runtime floor\ntakes over below the"
                 " modelled range.  Quantifying that tradeoff is why\n"
                 "DVFS policies need exactly the Fig. 9 + Fig. 10"
                 " characterization.\n";

    if (!args.governor.empty() && args.governor != "none") {
        governor::GovernorParams gp;
        gp.policy = args.governor;
        if (gp.policy == "pidcap")
            gp.capW = 1.5; // mid-bathtub budget for the comparison
        const auto gov = governor::makeGovernor(gp);
        const sim::CompletionResult r = runGoverned(
            sim::SystemOptions{}, kernel, *gov, args.engineThreads);
        std::cout << "\nclosed-loop '" << gov->name()
                  << "' from the nominal point: "
                  << fmtF(r.onChipEnergyJ * 1e3, 3) << " mJ in "
                  << fmtF(r.seconds * 1e3, 3)
                  << " ms (static-optimal: " << fmtF(best_e, 3)
                  << " mJ at " << fmtF(best_v, 2) << " V)\n";
    }
    return 0;
}
