/**
 * @file
 * Extension: the energy-optimal operating point.  Combining Fig. 9
 * (fmax vs VDD) with Fig. 10 (power vs V/f) answers the question the
 * two figures exist to enable: for a fixed amount of work, which
 * operating point minimizes energy?  Low voltage wins on power but
 * stretches runtime over the leakage floor; high voltage races ahead
 * but pays V^2 — the classic DVFS bathtub.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/vf_experiments.hh"
#include "isa/assembler.hh"
#include "sim/system.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Extension", "Energy-optimal DVFS operating point");
    const std::uint32_t samples =
        bench::parseBenchArgs(argc, argv, 16).samples;

    // Fixed work: an integer kernel on all 50 threads.
    const isa::Program kernel = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        and %r3, %r2, %r4
        or  %r4, %r1, %r5
        cmp %r1, 6000
        bl loop
        halt
    )");

    const core::VfScalingExperiment vf;
    TextTable t({"VDD (V)", "f (MHz)", "Avg power (W)", "Time (ms)",
                 "Energy (mJ)"});
    double best_e = 1e9, best_v = 0.0;
    for (const double v : core::VfScalingExperiment::voltageGrid()) {
        // Run at Chip #2's maximum frequency for this voltage.
        const core::VfPoint p = vf.measure(2, v);
        sim::SystemOptions opts;
        opts.vddV = v;
        opts.vcsV = v + 0.05;
        opts.coreClockMhz = p.fmaxMhz;
        sim::System sys(opts);
        for (TileId tile = 0; tile < 25; ++tile) {
            sys.loadProgram(tile, 0, &kernel);
            sys.loadProgram(tile, 1, &kernel);
        }
        (void)samples;
        const sim::CompletionResult r =
            sys.runToCompletion(4'000'000'000ULL);
        if (!r.completed)
            continue;
        const double energy_mj = r.onChipEnergyJ * 1e3;
        t.addRow({fmtF(v, 2), fmtF(p.fmaxMhz, 1),
                  fmtF(r.onChipEnergyJ / r.seconds, 3),
                  fmtF(r.seconds * 1e3, 3), fmtF(energy_mj, 4)});
        if (energy_mj < best_e) {
            best_e = energy_mj;
            best_v = v;
        }
    }
    t.print(std::cout);

    std::cout << "\nenergy-optimal point: VDD = " << fmtF(best_v, 2)
              << " V (" << fmtF(best_e, 3)
              << " mJ for the fixed kernel)\n"
                 "For this fully-parallel kernel the V^2 dynamic term"
                 " dominates across the\nwhole operating range, so"
                 " energy falls monotonically toward the low-voltage\n"
                 "end — near-threshold operation wins until the"
                 " leakage-over-runtime floor\ntakes over below the"
                 " modelled range.  Quantifying that tradeoff is why\n"
                 "DVFS policies need exactly the Fig. 9 + Fig. 10"
                 " characterization.\n";
    return 0;
}
