/**
 * @file
 * Extension: build a power model FROM the characterization — the
 * paper's primary open-data use case.  Fits a linear per-class event
 * model to measured (rates, power) observations and validates it by
 * predicting the power of workloads outside the training set.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/power_model_fit.hh"
#include "isa/assembler.hh"
#include "workloads/microbenchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Extension", "Fit a power model from measurements");
    const std::uint32_t samples =
        bench::parseBenchArgs(argc, argv, 24).samples;

    core::PowerModelFit fitter(sim::SystemOptions{}, samples);
    std::cout << "collecting the training set (single-class loops, two "
                 "operand patterns each)...\n";
    const auto train = fitter.standardTrainingSet();
    const auto model = fitter.fit(train);
    if (!model.valid) {
        std::cout << "fit failed (singular system)\n";
        return 1;
    }

    std::cout << "\nRecovered per-class EPI (average-activity pJ):\n";
    TextTable t({"Class", "Fitted EPI (pJ)"});
    for (std::size_t c = 0; c < model.classEpiPj.size(); ++c) {
        if (model.classEpiPj[c] == 0.0)
            continue;
        t.addRow({isa::className(static_cast<isa::InstClass>(c)),
                  fmtF(model.classEpiPj[c], 1)});
    }
    t.print(std::cout);

    std::cout << "\nValidation on unseen workloads:\n";
    TextTable v({"Workload", "Measured (W)", "Predicted (W)", "Error"});
    auto validate = [&](const std::string &name,
                        const isa::Program &program) {
        const auto obs = fitter.observe(name, program);
        const double predicted = model.predictW(obs.classRates);
        v.addRow({name, fmtF(obs.measuredPowerW, 3), fmtF(predicted, 3),
                  fmtF(100.0
                           * (predicted - obs.measuredPowerW)
                           / obs.measuredPowerW,
                       1)
                      + "%"});
    };
    validate("Int loop", workloads::makeIntLoop(0));
    validate("mixed alu/branch", isa::assemble(R"(
        set 7, %r1
    loop:
        mulx %r1, %r1, %r2
        add %r2, 1, %r1
        xor %r1, %r2, %r3
        cmp %r3, 0
        bne loop
        halt
    )"));
    validate("fp kernel", isa::assemble(R"(
        set 0, %r1
    loop:
        faddd %f1, %f2, %f3
        fmuld %f3, %f2, %f4
        add %r1, 1, %r1
        cmp %r1, 0
        bne loop
        halt
    )"));
    v.print(std::cout);

    std::cout << "\nThe fitted coefficients recover the energy table"
                 " that generated the\nmeasurements (the thread-switch"
                 " and branch overheads fold into the fitted\nvalues),"
                 " and the model predicts unseen mixes within a few"
                 " percent —\nexactly the workflow the paper's open"
                 " data enables.\n";
    return 0;
}
