/**
 * @file
 * Fig. 13: full-chip power scaling with core count for the Int, HP,
 * and Hist microbenchmarks, in 1 T/C and 2 T/C configurations
 * (Chip #3), with least-squares mW/core trendlines.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/scaling_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 13", "Power scaling with core count");
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 48, 0);
    const std::uint32_t samples = args.samples;

    sim::SystemOptions opts;
    opts.sweepThreads = args.threads;
    opts.engineThreads = args.engineThreads;
    const core::PowerScalingExperiment exp(opts, samples);
    const std::vector<std::uint32_t> grid = {1,  3,  5,  7,  9,  11, 13,
                                             15, 17, 19, 21, 23, 25};
    const auto points = exp.runAll(grid);

    TextTable t({"Cores", "Int 1T/C (W)", "Int 2T/C (W)", "HP 1T/C (W)",
                 "HP 2T/C (W)", "Hist 1T/C (W)", "Hist 2T/C (W)"});
    for (const std::uint32_t c : grid) {
        std::array<std::string, 6> cells;
        for (const auto &p : points) {
            if (p.cores != c)
                continue;
            const std::size_t col =
                static_cast<std::size_t>(p.bench) * 2
                + (p.threadsPerCore - 1);
            cells[col] = fmtF(p.fullChipPowerW, 3);
        }
        t.addRow({std::to_string(c), cells[0], cells[1], cells[2],
                  cells[3], cells[4], cells[5]});
    }
    t.print(std::cout);

    std::cout << "\nTrendlines:\n";
    TextTable tr({"Benchmark", "T/C", "mW/core", "Paper (mW/core)", "r^2"});
    auto paper_slope = [](workloads::Microbench b, std::uint32_t tpc) {
        switch (b) {
          case workloads::Microbench::Int: return tpc == 1 ? 22.8 : 37.4;
          case workloads::Microbench::HP: return tpc == 1 ? 35.6 : 57.8;
          default: return tpc == 1 ? 14.5 : 14.4;
        }
    };
    for (const auto &trend : core::PowerScalingExperiment::trends(points)) {
        tr.addRow({workloads::microbenchName(trend.bench),
                   std::to_string(trend.threadsPerCore),
                   fmtF(trend.mwPerCore, 1),
                   fmtF(paper_slope(trend.bench, trend.threadsPerCore), 1),
                   fmtF(trend.r2, 3)});
    }
    tr.print(std::cout);

    std::cout << "\nShape checks: linear scaling for Int/HP; HP highest,"
                 " Hist lowest; 2 T/C\nscales faster for Int/HP; Hist"
                 " 2 T/C rises then drops beyond ~17 cores\n(lock"
                 " contention + shrinking per-thread work).\n";
    return 0;
}
