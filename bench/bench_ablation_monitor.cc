/**
 * @file
 * Ablation: measurement-infrastructure quality versus reported error
 * bars.  The paper's 128-sample / 17 Hz monitor protocol bounds every
 * error bar it reports; this bench sweeps sample count and monitor
 * noise and shows how the reported mean and standard deviation of the
 * idle-power measurement respond — the experiment-design view of
 * Section III-A.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

int
main()
{
    using namespace piton;
    bench::banner("Ablation", "Monitor samples/noise vs error bars");

    std::cout << "Sample-count sweep (paper protocol: 128):\n";
    TextTable t({"Samples", "Idle mean (mW)", "Stddev (mW)",
                 "Std error of mean (mW)"});
    for (const std::uint32_t samples : {8u, 16u, 32u, 64u, 128u, 256u}) {
        sim::System sys;
        const auto m = sys.measure(samples);
        t.addRow({std::to_string(samples), fmtF(wToMw(m.onChipMeanW()), 1),
                  fmtF(wToMw(m.onChipStddevW()), 2),
                  fmtF(wToMw(m.onChipStddevW())
                           / std::sqrt(static_cast<double>(samples)),
                       3)});
    }
    t.print(std::cout);

    std::cout << "\nMonitor current-noise sweep (default 1.4 mA):\n";
    TextTable n({"Noise (mA)", "Idle mean (mW)", "Stddev (mW)"});
    for (const double noise_ma : {0.2, 0.7, 1.4, 2.8, 5.6}) {
        sim::System sys;
        sys.testBoard().monitor().currentNoiseA = noise_ma * 1e-3;
        const auto m = sys.measure(128);
        n.addRow({fmtF(noise_ma, 1), fmtF(wToMw(m.onChipMeanW()), 1),
                  fmtF(wToMw(m.onChipStddevW()), 2)});
    }
    n.print(std::cout);

    std::cout << "\nThe mean stays unbiased as samples shrink or noise"
                 " grows, but the error\nbars widen: the NoC EPF study"
                 " (Fig. 12), whose signal is a few mW, is\nexactly the"
                 " experiment that needed the full protocol.\n";
    return 0;
}
