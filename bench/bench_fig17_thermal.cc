/**
 * @file
 * Fig. 17: chip power as a function of package temperature for
 * different numbers of active threads (HP workload), sweeping
 * temperature by tilting the fan — heat sink removed, 100.01 MHz,
 * VDD 0.9 V / VCS 0.95 V, on the thermal-study chip.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/thermal_experiments.hh"
#include "telemetry/export.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 17", "Power vs package temperature (fan sweep)");
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 24, 0);

    sim::SystemOptions opts = core::thermalStudyOptions();
    opts.sweepThreads = args.threads;
    opts.engineThreads = args.engineThreads;
    const core::ThermalSweepExperiment exp(opts, args.samples);
    // The sweep runs through the telemetry path: one recorder per
    // family task, merged in task order (bit-identical at any
    // --threads value).
    telemetry::TelemetryRecorder telem;
    TextTable t({"Threads", "Fan eff.", "Package T (C)", "Power (mW)"});
    for (const auto &p : exp.runAll(&telem)) {
        t.addRow({std::to_string(p.activeThreads),
                  fmtF(p.fanEffectiveness, 2),
                  fmtF(p.packageTempC, 1),
                  fmtF(wToMw(p.powerW), 0)});
    }
    t.print(std::cout);
    if (!args.outDir.empty()) {
        telemetry::exportTelemetry(args.outDir, "fig17_thermal", telem);
        std::cout << "\ntelemetry: " << args.outDir
                  << "/fig17_thermal.{csv,jsonl} (" << telem.seriesCount()
                  << " series)\n";
    }

    std::cout << "\nShape checks (paper): more active threads shift the"
                 " curve up; at fixed\nthread count, power grows"
                 " (exponential leakage) as the fan tilt raises the\n"
                 "package temperature; paper range ~36-56 C / 500-900"
                 " mW.\n";
    return 0;
}
