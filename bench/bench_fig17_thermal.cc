/**
 * @file
 * Fig. 17: chip power as a function of package temperature for
 * different numbers of active threads (HP workload), sweeping
 * temperature by tilting the fan — heat sink removed, 100.01 MHz,
 * VDD 0.9 V / VCS 0.95 V, on the thermal-study chip.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/thermal_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 17", "Power vs package temperature (fan sweep)");
    const std::uint32_t samples = bench::samplesArg(argc, argv, 24);

    sim::SystemOptions opts = core::thermalStudyOptions();
    opts.sweepThreads = bench::threadsArg(argc, argv, 0);
    const core::ThermalSweepExperiment exp(opts, samples);
    TextTable t({"Threads", "Fan eff.", "Package T (C)", "Power (mW)"});
    for (const auto &p : exp.runAll()) {
        t.addRow({std::to_string(p.activeThreads),
                  fmtF(p.fanEffectiveness, 2),
                  fmtF(p.packageTempC, 1),
                  fmtF(wToMw(p.powerW), 0)});
    }
    t.print(std::cout);

    std::cout << "\nShape checks (paper): more active threads shift the"
                 " curve up; at fixed\nthread count, power grows"
                 " (exponential leakage) as the fan tilt raises the\n"
                 "package temperature; paper range ~36-56 C / 500-900"
                 " mW.\n";
    return 0;
}
