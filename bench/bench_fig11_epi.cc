/**
 * @file
 * Fig. 11: energy per instruction for the sixteen instruction variants
 * with minimum, random, and maximum operand values — the full EPI
 * study run end-to-end (assembly tests on 25 cores, idle subtraction,
 * the EPI equation of Section IV-E, stx(NF) nop correction).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/epi_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 11", "Energy per instruction (EPI)");
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 64, 0);
    const std::uint32_t samples = args.samples;

    sim::SystemOptions opts;
    opts.sweepThreads = args.threads;
    opts.engineThreads = args.engineThreads;
    core::EpiExperiment exp(opts, samples);
    std::cout << "Idle power (subtracted): "
              << fmtF(wToMw(exp.idlePowerW()), 1) << " mW\n\n";

    // runAll fans one (variant, pattern) task per worker thread; rows
    // come back in variant order, min/random/max for operand variants.
    const auto rows = exp.runAll();
    std::size_t r = 0;
    TextTable t({"Instruction", "Latency", "EPI min (pJ)",
                 "EPI random (pJ)", "EPI max (pJ)", "±err (pJ)"});
    for (const auto &v : workloads::epiVariants()) {
        std::string min_s = "-", max_s = "-";
        core::EpiRow rnd;
        if (v.hasOperands) {
            min_s = fmtF(rows[r++].epiPj, 0);
            rnd = rows[r++];
            max_s = fmtF(rows[r++].epiPj, 0);
        } else {
            rnd = rows[r++];
        }
        t.addRow({v.label, std::to_string(v.latency), min_s,
                  fmtF(rnd.epiPj, 0), max_s, fmtF(rnd.errPj, 1)});
    }
    t.print(std::cout);

    std::cout << "\nAnchors from the paper: add(random) ~ 1/3 of an"
                 " L1-hit ldx (286 pJ);\nsdivx and fdivd near 1 nJ;"
                 " operand values shift EPI significantly;\nstx(F)"
                 " carries rollback energy above stx(NF).\n";
    return 0;
}
