/**
 * @file
 * Ablation: line-to-slice mapping (Section IV-F's software-configurable
 * low/mid/high address-bit selection) versus home-tile distribution and
 * average load latency for a shared-array workload.
 */

#include <array>
#include <iostream>

#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

int
main()
{
    using namespace piton;
    bench::banner("Ablation", "Line->slice mapping vs locality");

    TextTable t({"Mapping", "Distinct homes (4 MB array)",
                 "Avg hops (from tile 12)", "Avg warm load latency"});
    for (const auto mapping : {config::LineToSliceMapping::LowOrder,
                               config::LineToSliceMapping::MidOrder,
                               config::LineToSliceMapping::HighOrder}) {
        config::PitonParams params;
        power::EnergyModel energy;
        power::EnergyLedger ledger;
        arch::MainMemory memory;
        arch::MemorySystem mem(params, energy, ledger, memory);
        mem.setSliceMapping(mapping);

        // A 4 MB array accessed at 64 B granularity from center tile 12.
        std::array<bool, 25> seen{};
        RunningStats hops;
        for (Addr a = 0; a < 4 * 1024 * 1024; a += 4096) {
            const TileId home = mem.homeTile(a);
            seen[home] = true;
            hops.add(config::hopDistance(params, 12, home));
        }
        int homes = 0;
        for (const bool s : seen)
            homes += s;

        // Warm latency: one pass to fill, one pass measured (strided
        // past the private caches so the L2 placement dominates).
        RunningStats lat;
        Cycle now = 0;
        for (int pass = 0; pass < 2; ++pass) {
            for (Addr a = 0; a < 64 * 1024; a += 2048) {
                RegVal d;
                const auto out = mem.load(12, a, d, now);
                now += out.latency;
                if (pass == 1)
                    lat.add(out.latency);
            }
        }

        const char *name =
            mapping == config::LineToSliceMapping::LowOrder ? "low-order"
            : mapping == config::LineToSliceMapping::MidOrder
                ? "mid-order"
                : "high-order";
        t.addRow({name, std::to_string(homes), fmtF(hops.mean(), 2),
                  fmtF(lat.mean(), 1)});
    }
    t.print(std::cout);

    std::cout << "\nLow-order mapping stripes consecutive lines across"
                 " all 25 slices (max\nbandwidth, average ~4 hops);"
                 " high-order mapping places whole regions in one\n"
                 "slice — the knob the memory-energy study (Table VII)"
                 " uses to steer local\nvs remote L2 hits.\n";
    return 0;
}
