/**
 * @file
 * Fig. 18: power and temperature under synchronized vs interleaved
 * scheduling of the two-phase test application on all 50 threads —
 * time series, hysteresis, and the average-temperature difference.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/thermal_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 18", "Synchronized vs interleaved scheduling");
    const std::uint32_t samples =
        bench::parseBenchArgs(argc, argv, 24).samples;

    const core::SchedulingExperiment exp(core::thermalStudyOptions(),
                                         samples);
    std::cout << "Phase powers (dynamic component):\n"
              << "  compute phase: "
              << fmtF(wToMw(exp.computePhasePowerW()), 0) << " mW\n"
              << "  idle (nop) phase: "
              << fmtF(wToMw(exp.idlePhasePowerW()), 0) << " mW\n\n";

    const auto sync =
        exp.run(core::Schedule::Synchronized, 10.0, 400.0, 0.5);
    const auto inter =
        exp.run(core::Schedule::Interleaved, 10.0, 400.0, 0.5);

    // Decimated time series (one row per 20 s) for both schedules.
    TextTable t({"Time (s)", "Sync P (mW)", "Sync T (C)",
                 "Inter P (mW)", "Inter T (C)"});
    for (std::size_t i = 0; i < sync.trace.size(); i += 40) {
        t.addRow({fmtF(sync.trace[i].timeS, 0),
                  fmtF(wToMw(sync.trace[i].powerW), 0),
                  fmtF(sync.trace[i].packageTempC, 2),
                  fmtF(wToMw(inter.trace[i].powerW), 0),
                  fmtF(inter.trace[i].packageTempC, 2)});
    }
    t.print(std::cout);

    TextTable s({"Schedule", "Avg P (mW)", "Avg pkg T (C)",
                 "Temp swing (C)"});
    for (const auto *r : {&sync, &inter}) {
        s.addRow({core::scheduleName(r->schedule),
                  fmtF(wToMw(r->avgPowerW), 1),
                  fmtF(r->avgPackageTempC, 3), fmtF(r->tempSwingC, 3)});
    }
    std::cout << '\n';
    s.print(std::cout);

    std::cout << "\nAverage package temperature difference"
                 " (sync - interleaved): "
              << fmtF(sync.avgPackageTempC - inter.avgPackageTempC, 3)
              << " C (paper: 0.22 C).\nSynchronized scheduling traces a"
                 " much wider power/temperature hysteresis\nloop;"
                 " interleaving limits peak power and lowers average"
                 " temperature.\n";
    return 0;
}
