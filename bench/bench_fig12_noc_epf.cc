/**
 * @file
 * Fig. 12: NoC energy per flit vs hop count for the four bit-switching
 * patterns (NSW/HSW/FSW/FSWA), via chipset-injected invalidation
 * packets and the EPF equation (7 valid flits per 47 cycles).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/noc_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace piton;
    bench::banner("Fig. 12", "NoC energy per flit vs hop count");
    const std::uint32_t samples =
        bench::parseBenchArgs(argc, argv, 64).samples;

    core::NocEnergyExperiment exp(sim::SystemOptions{}, samples);
    std::vector<core::EpfRow> rows = exp.runAll();

    TextTable t({"Hops", "NSW (pJ)", "HSW (pJ)", "FSW (pJ)", "FSWA (pJ)"});
    for (std::uint32_t h = 0; h <= 8; ++h) {
        std::array<std::string, 4> cells;
        for (const auto &r : rows) {
            if (r.hops == h)
                cells[static_cast<std::size_t>(r.pattern)] =
                    fmtPm(r.epfPj, r.errPj, 1);
        }
        t.addRow({std::to_string(h), cells[0], cells[1], cells[2],
                  cells[3]});
    }
    t.print(std::cout);

    std::cout << "\nTrendlines (pJ/hop):\n";
    TextTable tr({"Pattern", "Measured (pJ/hop)", "Paper (pJ/hop)", "r^2"});
    const char *paper[] = {"3.58", "11.16", "16.68", "16.98"};
    for (const auto &trend : core::NocEnergyExperiment::trends(rows)) {
        tr.addRow({core::switchPatternName(trend.pattern),
                   fmtF(trend.pjPerHop, 2),
                   paper[static_cast<std::size_t>(trend.pattern)],
                   fmtF(trend.r2, 3)});
    }
    tr.print(std::cout);

    std::cout << "\nInsight: an 8-hop full-chip flit costs about one add"
                 " instruction —\ncomputation, not on-chip data movement,"
                 " dominates chip power.\n";
    return 0;
}
