/**
 * @file
 * Ablation: sampled simulation (DESIGN.md §14).
 *
 * A phased workload (integer / memory / idle phases, repeated) runs on
 * all 25 tiles three ways:
 *
 *   full:       plain runToCompletion — the exact reference energy,
 *               execution time, and EPI;
 *   profile:    the same run under the interval profiler (BBV
 *               histograms + per-interval checkpoint images);
 *   --sampled:  cluster the profile's intervals into phases, re-simulate
 *               only one representative slice per cluster (forked from
 *               its interval-start image), and stitch a whole-run
 *               estimate with a 95% confidence interval.
 *
 * The default mode runs all three and reports the stitched estimate
 * against the exact reference: relative error, CI coverage, the
 * fraction of instructions actually re-simulated, and the wall-clock
 * ratio of the full run to the slice replays (the speedup every
 * *additional* estimate from the same profile enjoys).
 *
 * Flags (beyond bench_util.hh's common set):
 *   --sampled            skip the plain full run; profile + stitch only
 *   --interval-insns N   profiling interval size in instructions
 *   --max-slices N       clusters / representative slices
 *   --verify             exit non-zero unless the stitched EPI is
 *                        within kEpiTolerance of the exact value, the
 *                        CI covers it, and the simulated fraction is
 *                        at most kMaxSimulatedFrac
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "isa/program.hh"
#include "sampling/cluster.hh"
#include "sampling/profiler.hh"
#include "sampling/sampled_run.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;
using Clock = std::chrono::steady_clock;

/** Committed accuracy/coverage tolerances (the CI job's contract). */
constexpr double kEpiTolerance = 0.02;     ///< |EPI error| / EPI
constexpr double kMaxSimulatedFrac = 0.10; ///< re-simulated insns share

constexpr std::uint32_t kTiles = 25;
constexpr std::uint32_t kThreadsPerCore = 2;
constexpr Cycle kMaxCycles = 4'000'000'000ULL;

void
loadKernel(sim::System &sys, const isa::Program &kernel)
{
    for (TileId tile = 0; tile < kTiles; ++tile)
        for (ThreadId tid = 0; tid < kThreadsPerCore; ++tid) {
            const RegVal hwid = tile * kThreadsPerCore + tid;
            sys.loadProgram(tile, tid, &kernel,
                            {{1, workloads::kMixedDataBase + hwid * 4096}});
        }
}

double
wallS(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Ablation", "Sampled simulation (phase clustering)");
    // --samples here is the phased kernel's outer repetition count: 96
    // reps give ~325 intervals, enough for the 8 slices to amortize to
    // a >10x wall-clock win (CI runs a smaller 24-rep smoke).
    const bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*def_samples=*/96, /*def_threads=*/0,
        {"--sampled", "--verify"}, 0, {"--interval-insns", "--max-slices"});
    const std::uint64_t reps = args.samples; // outer phase repetitions
    const bool sampled_only = args.hasFlag("--sampled");
    const bool verify = args.hasFlag("--verify");
    const std::uint64_t interval_insns = static_cast<std::uint64_t>(
        std::strtoull(args.optionValue("--interval-insns", "100000").c_str(),
                      nullptr, 10));
    const std::uint32_t max_slices = static_cast<std::uint32_t>(
        std::strtoul(args.optionValue("--max-slices", "8").c_str(), nullptr,
                     10));

    sim::SystemOptions opts;
    opts.engineThreads = args.engineThreads;
    opts.bbvBuckets = 128;
    const isa::Program kernel = workloads::makePhasedEnergyProgram(reps);

    // Exact reference.  The profiling run reproduces it bit-for-bit
    // (BBV counters never feed back into timing or energy), so under
    // --sampled the profile's own totals serve as the reference and
    // only the full-run wall clock is skipped.
    double full_s = 0.0;
    double exact_j = 0.0, exact_epi = 0.0;
    std::uint64_t exact_insns = 0;
    if (!sampled_only) {
        sim::System sys(opts);
        loadKernel(sys, kernel);
        const auto t0 = Clock::now();
        const sim::CompletionResult res = sys.runToCompletion(kMaxCycles);
        full_s = wallS(t0);
        if (!res.completed) {
            std::fprintf(stderr, "full run did not complete\n");
            return 1;
        }
        exact_j = res.onChipEnergyJ;
        exact_insns = res.insts;
        std::printf("full run:   %llu insns, %.6f mJ, %.3f s wall\n",
                    static_cast<unsigned long long>(res.insts),
                    res.onChipEnergyJ * 1e3, full_s);
    }

    // Profile the same run.
    sampling::ProfilerOptions popts;
    popts.intervalInsns = interval_insns;
    sim::System psys(opts);
    loadKernel(psys, kernel);
    sampling::IntervalProfiler prof(psys, popts);
    const auto tp = Clock::now();
    const sim::CompletionResult pres = prof.run(kMaxCycles);
    const double prof_s = wallS(tp);
    if (!pres.completed) {
        std::fprintf(stderr, "profiling run did not complete\n");
        return 1;
    }
    if (sampled_only) {
        exact_j = prof.totalEnergyJ();
        exact_insns = prof.totalInsns();
    }
    exact_epi = exact_insns != 0
                    ? exact_j / static_cast<double>(exact_insns)
                    : 0.0;
    std::printf("profile:    %zu intervals of ~%llu insns, %.3f s wall\n",
                prof.intervals().size(),
                static_cast<unsigned long long>(interval_insns), prof_s);

    // Cluster + replay + stitch.
    sampling::SampledOptions sopts;
    sopts.maxSlices = max_slices;
    sopts.threads = args.threads;
    const auto ts = Clock::now();
    const sampling::SampledEstimate est =
        sampling::runSampled(prof.intervals(), opts, sopts);
    const double stitch_s = wallS(ts);

    std::printf("sampled:    %zu slices over %u clustered intervals, "
                "%.3f s wall\n\n",
                est.slices.size(), est.clusteredIntervals, stitch_s);

    TextTable t({"Quantity", "Exact", "Sampled", "CI95", "Rel err"});
    const double e_err =
        exact_j > 0.0 ? (est.energyJ - exact_j) / exact_j : 0.0;
    t.addRow({"On-chip energy (mJ)", fmtF(exact_j * 1e3, 6),
              fmtF(est.energyJ * 1e3, 6), fmtF(est.energyCi95J * 1e3, 6),
              fmtF(e_err * 1e2, 3) + "%"});
    t.addRow({"EPI (nJ/insn)", fmtF(exact_epi * 1e9, 6),
              fmtF(est.epi * 1e9, 6), fmtF(est.epiCi95 * 1e9, 6),
              fmtF(e_err * 1e2, 3) + "%"});
    t.print(std::cout);

    const double speedup = full_s > 0.0 && stitch_s > 0.0
                               ? full_s / stitch_s
                               : 0.0;
    std::printf("\nsimulated fraction: %.4f (%llu of %llu insns)\n",
                est.simulatedFrac,
                static_cast<unsigned long long>(est.simulatedInsns),
                static_cast<unsigned long long>(est.totalInsns));
    if (speedup > 0.0)
        std::printf("wall-clock speedup vs full run: %.1fx "
                    "(cluster+replay+stitch)\n",
                    speedup);
    const bool covered = std::abs(est.energyJ - exact_j)
                         <= est.energyCi95J + 1e-15;
    std::printf("CI covers exact value: %s\n", covered ? "yes" : "NO");

    if (verify) {
        bool ok = true;
        if (std::abs(e_err) > kEpiTolerance) {
            std::fprintf(stderr,
                         "FAIL: |EPI error| %.4f > tolerance %.4f\n",
                         std::abs(e_err), kEpiTolerance);
            ok = false;
        }
        if (est.simulatedFrac > kMaxSimulatedFrac) {
            std::fprintf(stderr,
                         "FAIL: simulated fraction %.4f > %.4f\n",
                         est.simulatedFrac, kMaxSimulatedFrac);
            ok = false;
        }
        if (!covered) {
            std::fprintf(stderr,
                         "FAIL: CI does not cover the exact energy\n");
            ok = false;
        }
        // The replayed slices must reproduce their profiled intervals
        // bit-for-bit — that is the determinism contract the estimator
        // stands on.
        for (const auto &s : est.slices) {
            const sampling::IntervalRecord &rec =
                prof.intervals()[s.interval];
            if (s.insns != rec.insns || s.cycles != rec.cycles) {
                std::fprintf(stderr,
                             "FAIL: slice %u replay diverged from its "
                             "profiled interval\n",
                             s.interval);
                ok = false;
            }
        }
        std::printf("verify: %s\n", ok ? "PASS" : "FAIL");
        return ok ? 0 : 1;
    }
    return 0;
}
