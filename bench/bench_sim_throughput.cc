/**
 * @file
 * Engineering microbenchmarks (google-benchmark): simulator throughput
 * of the pieces that dominate experiment runtime — core issue loop,
 * memory-system transactions, NoC packet routing, thermal stepping,
 * and a full measurement window.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "arch/piton_chip.hh"
#include "chip/chip_instance.hh"
#include "common/parallel.hh"
#include "isa/assembler.hh"
#include "sampling/profiler.hh"
#include "sampling/sampled_run.hh"
#include "service/client.hh"
#include "service/request.hh"
#include "service/scheduler.hh"
#include "sim/system.hh"
#include "thermal/thermal_model.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

void
BM_CoreIssueLoop(benchmark::State &state)
{
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy);
    const isa::Program p = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        ba loop
    )");
    chip.loadProgram(0, 0, &p);
    chip.run(10000); // warm the I-cache
    for (auto _ : state)
        chip.run(10000);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoreIssueLoop);

/**
 * Full-chip throughput at each sharded-engine thread count (the PR 6
 * tentpole's headline number).  Results are bit-identical at every
 * arg — the sweep exists to quantify the wall-clock scaling of the
 * run-ahead rounds, so it tracks real time: gang workers burn CPU
 * time that would otherwise flatter the multithreaded entries.
 */
void
BM_FullChipInt(benchmark::State &state)
{
    sim::SystemOptions opts;
    opts.engineThreads = static_cast<unsigned>(state.range(0));
    sim::System sys(opts);
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::Int, 25, 2, /*iterations=*/0);
    sys.pitonChip().run(50000);
    for (auto _ : state)
        sys.pitonChip().run(5000);
    state.SetItemsProcessed(state.iterations() * 5000 * 25);
}
BENCHMARK(BM_FullChipInt)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void
BM_MemorySystemL2Miss(benchmark::State &state)
{
    config::PitonParams params;
    power::EnergyModel energy;
    power::EnergyLedger ledger;
    arch::MainMemory memory;
    arch::MemorySystem mem(params, energy, ledger, memory);
    Cycle now = 0;
    Addr a = 0;
    for (auto _ : state) {
        RegVal data;
        mem.load(0, a, data, now);
        a += 409600; // always a fresh L2 set alias
        now += 424;
        benchmark::DoNotOptimize(data);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemorySystemL2Miss);

void
BM_NocPacket8Hops(benchmark::State &state)
{
    config::PitonParams params;
    power::EnergyModel energy;
    power::EnergyLedger ledger;
    arch::MainMemory memory;
    arch::MemorySystem mem(params, energy, ledger, memory);
    const std::vector<RegVal> payload(6, 0xAAAAAAAAAAAAAAAAULL);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.injectPacket(24, payload));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocPacket8Hops);

void
BM_ThermalStep(benchmark::State &state)
{
    thermal::ThermalModel tm;
    for (auto _ : state)
        tm.step(2.0, 0.001);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalStep);

void
BM_MeasurementWindow(benchmark::State &state)
{
    sim::System sys;
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::HP, 25, 2, /*iterations=*/0);
    sys.pitonChip().run(50000);
    for (auto _ : state)
        benchmark::DoNotOptimize(sys.windowTruePowers(2000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasurementWindow);

/**
 * Sweep throughput: eight V-f operating points, each a full System
 * (warmup + measurement) on an independent simulated chip — the shape
 * of every figure-producing experiment.  Arg is the worker-thread
 * count; the sweep result is bit-identical at every arg, so the only
 * thing that changes is wall-clock time.
 */
void
BM_SweepVfOperatingPoints(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    constexpr std::size_t kPoints = 8;
    std::vector<double> power_w(kPoints);
    for (auto _ : state) {
        parallelFor(kPoints, threads, [&](std::size_t i) {
            sim::SystemOptions o;
            o.seed = deriveTaskSeed(0x517, i);
            o.vddV = 0.80 + 0.05 * static_cast<double>(i);
            o.vcsV = o.vddV + 0.05;
            sim::System sys(o);
            const auto programs = workloads::loadMicrobench(
                sys, workloads::Microbench::Int, 25, 2,
                /*iterations=*/0);
            power_w[i] = sys.measure(8).onChipMeanW();
        });
        benchmark::DoNotOptimize(power_w);
    }
    state.SetItemsProcessed(state.iterations() * kPoints);
}
BENCHMARK(BM_SweepVfOperatingPoints)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Sampled-run estimate from a standing profile: the per-estimate cost
 * of sampled simulation (DESIGN.md §14) — cluster the interval BBVs,
 * fork each representative slice from its checkpoint image, re-simulate
 * the slices, stitch.  The profile itself is paid once outside the
 * timing loop, exactly as a sweep reusing one profile would pay it.
 * Items processed counts the instructions the estimate *stands for*,
 * so the rate is directly comparable to BM_FullChipInt's.
 */
void
BM_SampledFullChip(benchmark::State &state)
{
    sim::SystemOptions opts;
    opts.bbvBuckets = 128;
    sim::System sys(opts);
    const isa::Program kernel = workloads::makePhasedEnergyProgram(24);
    for (TileId tile = 0; tile < 25; ++tile)
        for (ThreadId tid = 0; tid < 2; ++tid) {
            const RegVal hwid = tile * 2 + tid;
            sys.loadProgram(tile, tid, &kernel,
                            {{1, workloads::kMixedDataBase + hwid * 4096}});
        }
    sampling::ProfilerOptions popts;
    popts.intervalInsns = 100'000;
    sampling::IntervalProfiler prof(sys, popts);
    prof.run(4'000'000'000ULL);

    sampling::SampledOptions sopts;
    sopts.threads = 1;
    std::uint64_t total = 0;
    for (auto _ : state) {
        const sampling::SampledEstimate est =
            sampling::runSampled(prof.intervals(), opts, sopts);
        total += est.totalInsns;
        benchmark::DoNotOptimize(est.energyJ);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_SampledFullChip)->UseRealTime()->Unit(benchmark::kMillisecond);

/** A small power request for the service-path benchmarks: 2 cores,
 *  short warmup, a handful of monitor samples. */
service::ExperimentRequest
smallServiceRequest(std::uint64_t seed)
{
    service::ExperimentRequest req;
    req.kind = service::Kind::MeasurePower;
    req.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Int);
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.samples = 4;
    req.warmupCycles = 4000;
    req.seed = seed;
    return req;
}

/**
 * Service fast path: an exact result-cache hit.  Measures the full
 * serve path (canonicalize, hash, shard lookup, CRC verify) minus the
 * simulation itself — the latency a repeated experiment pays.
 */
void
BM_ServiceLocalCacheHit(benchmark::State &state)
{
    service::SchedulerConfig cfg;
    cfg.threads = 1;
    service::ExperimentScheduler sched(cfg);
    service::LocalClient client(sched);
    const service::ExperimentRequest req = smallServiceRequest(0x517);
    client.run(req); // populate the cache
    for (auto _ : state) {
        const service::ClientResult r = client.run(req);
        benchmark::DoNotOptimize(r.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
// Execution happens on the scheduler's worker thread, so iteration
// budgeting must track wall clock, not this thread's CPU time.
BENCHMARK(BM_ServiceLocalCacheHit)->UseRealTime();

/**
 * Service slow path: every iteration uses a fresh seed, so every
 * request misses and simulates — scheduling + execution + cache
 * publish end to end.
 */
void
BM_ServiceLocalColdMiss(benchmark::State &state)
{
    service::SchedulerConfig cfg;
    cfg.threads = 1;
    service::ExperimentScheduler sched(cfg);
    service::LocalClient client(sched);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const service::ClientResult r =
            client.run(smallServiceRequest(seed++));
        benchmark::DoNotOptimize(r.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceLocalColdMiss)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

/**
 * BENCHMARK_MAIN() plus provenance stamps.  `library_build_type` in
 * the JSON context only describes how the google-benchmark *library*
 * was compiled; the number that actually governs the recorded rates is
 * how the simulator objects in this binary were compiled.  Stamping it
 * here lets the perf-smoke job (and anyone reading the checked-in
 * baseline) reject debug-build recordings mechanically instead of by
 * eyeballing flags.
 */
int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("sim_build_type", "release");
#else
    benchmark::AddCustomContext("sim_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
