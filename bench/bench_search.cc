/**
 * @file
 * Placement/DVFS search bench (DESIGN.md §16): random sampling vs
 * simulated annealing vs the genetic algorithm at an equal explore
 * budget on the phased workload, with the determinism gauntlet behind
 * --verify.
 *
 * Phases:
 *
 *  1. comparison — each engine (random, sa, ga) searches the same
 *     task at the same budget through one shared in-process oracle;
 *     the report shows best EPI, oracle traffic, and cache-hit ratio
 *     (cross-engine revisits make the shared memo pay off);
 *  2. --verify   — hard gates (exit 1 on any failure):
 *       - replay: every engine rerun at the same seed produces a
 *         bit-identical best candidate and trajectory,
 *       - backend: SA through a LocalClient service scheduler equals
 *         SA through the in-process executor, point for point,
 *       - thread-invariance: an oracle at --threads N equals the
 *         single-threaded oracle,
 *       - cache: revisited candidates hit a cache (ratio > 0 across
 *         the comparison phase),
 *       - coverage: total oracle calls stay far below the exhaustive
 *         space,
 *       - quality: sa and ga end at an objective no worse than random
 *         at the equal budget.
 *
 * Flags (bench_util.hh):
 *   --budget N     explore evaluations per engine (default 24)
 *   --cores N      worker threads to place (default 3)
 *   --seed N       search seed (default 1)
 *   --threads N    oracle batch threads (results thread-invariant)
 *   --sampled      explore through sampled runs (slices join the
 *                  cache identity; the final re-eval stays exact)
 *   --verify       run the determinism gauntlet
 *   --out DIR      export search.* telemetry of the SA run to
 *                  DIR/search.{csv,jsonl}
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "search/searcher.hh"
#include "service/client.hh"
#include "service/scheduler.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

search::SearchTask
makeTask(std::uint32_t cores, bool sampled)
{
    search::SearchTask task;
    task.space = search::defaultSpace(cores, /*chip_id=*/2);
    task.objective.goal = search::Goal::MinEpi;
    task.base.chipId = 2;
    task.base.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Phased);
    task.base.workload.iterations = 2;
    task.base.workload.threadsPerCore = 2;
    task.base.maxCycles = 50'000'000;
    task.exploreIterations = 1;
    if (sampled)
        task.exploreSampledSlices = 8;
    return task;
}

bool
sameTrajectory(const search::SearchResult &a, const search::SearchResult &b)
{
    if (a.trajectory.size() != b.trajectory.size())
        return false;
    for (std::size_t i = 0; i < a.trajectory.size(); ++i)
        if (a.trajectory[i].oracleCalls != b.trajectory[i].oracleCalls
            || a.trajectory[i].bestScore != b.trajectory[i].bestScore)
            return false;
    return true;
}

bool
checkIdentical(const char *what, const search::SearchResult &a,
               const search::SearchResult &b, int &failures)
{
    const bool same = search::candidateBytes(a.best)
                          == search::candidateBytes(b.best)
                      && a.bestScore == b.bestScore
                      && sameTrajectory(a, b);
    if (same) {
        std::printf("verify: %-34s OK\n", what);
    } else {
        std::fprintf(stderr, "verify: %-34s FAILED\n", what);
        ++failures;
    }
    return same;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*def_samples=*/16, /*def_threads=*/1,
        {"--verify", "--sampled"}, 0, {"--budget", "--cores", "--seed"});
    const bool verify = args.hasFlag("--verify");
    const bool sampled = args.hasFlag("--sampled");
    const auto budget = static_cast<std::uint32_t>(
        std::strtoul(args.optionValue("--budget", "24").c_str(), nullptr,
                     10));
    const auto cores = static_cast<std::uint32_t>(
        std::strtoul(args.optionValue("--cores", "3").c_str(), nullptr,
                     10));
    const auto seed = static_cast<std::uint64_t>(
        std::strtoul(args.optionValue("--seed", "1").c_str(), nullptr, 10));

    bench::banner("SEARCH", "placement/DVFS search vs random baseline");

    const search::SearchTask task = makeTask(cores, sampled);
    search::SearcherOptions opts;
    opts.seed = seed;
    opts.budget = budget;
    opts.batch = 6;
    opts.population = 6;

    telemetry::TelemetryRecorder recorder;

    // Phase 1: all engines share one oracle, so any candidate an
    // earlier engine explored is a memo hit for a later one.
    std::printf("task: %u cores over %zu rungs, %s explore fidelity,"
                " budget %u/engine (exhaustive space %.3g)\n\n",
                cores, task.space.rungs.size(),
                sampled ? "sampled" : "exact", budget,
                search::exhaustiveSize(task.space));
    search::InProcessOracle shared(args.threads);
    std::vector<search::SearchResult> results;
    for (const std::string &engine : search::searcherNames()) {
        search::SearcherOptions engine_opts = opts;
        if (engine == "sa" && !args.outDir.empty())
            engine_opts.recorder = &recorder;
        results.push_back(search::makeSearcher(engine)->search(
            task, shared, engine_opts));
        const search::SearchResult &r = results.back();
        std::printf("%-7s best EPI %.6e J/inst (final %.6e), %" PRIu64
                    " calls, hit ratio %.3f\n",
                    r.engine.c_str(), r.bestScore, r.finalScore,
                    r.oracleCalls, r.cacheHitRatio);
    }
    const search::SearchResult &random_r = results[0];
    const search::SearchResult &sa_r = results[1];
    const search::SearchResult &ga_r = results[2];

    if (!args.outDir.empty()) {
        telemetry::exportTelemetry(args.outDir, "search", recorder);
        std::printf("\ntelemetry: %s/search.{csv,jsonl}\n",
                    args.outDir.c_str());
    }

    if (!verify)
        return 0;

    std::printf("\n");
    int failures = 0;

    // Replay: same seed, fresh oracle → bit-identical search.
    for (const std::string &engine : search::searcherNames()) {
        search::InProcessOracle a(args.threads), b(args.threads);
        const search::SearchResult ra =
            search::makeSearcher(engine)->search(task, a, opts);
        const search::SearchResult rb =
            search::makeSearcher(engine)->search(task, b, opts);
        checkIdentical(("replay " + engine).c_str(), ra, rb, failures);
    }

    // Backend identity: the service scheduler path (canonicalize →
    // cache → executor → encoded body) must drive the search to the
    // same candidates as the executor-direct path.
    {
        search::InProcessOracle direct(args.threads);
        const search::SearchResult rd =
            search::makeSearcher("sa")->search(task, direct, opts);
        service::SchedulerConfig cfg;
        cfg.threads = 1;
        service::ExperimentScheduler sched(cfg);
        service::LocalClient local(sched);
        search::ClientOracle service_oracle(local);
        const search::SearchResult rs =
            search::makeSearcher("sa")->search(task, service_oracle, opts);
        checkIdentical("backend in-process vs service", rd, rs, failures);
    }

    // Thread-invariance: the oracle's batch parallelism must not leak
    // into results (DESIGN.md §12 extended to the search layer).
    {
        search::InProcessOracle one(1), many(4);
        const search::SearchResult r1 =
            search::makeSearcher("ga")->search(task, one, opts);
        const search::SearchResult r4 =
            search::makeSearcher("ga")->search(task, many, opts);
        checkIdentical("oracle threads 1 vs 4", r1, r4, failures);
    }

    // Cache effectiveness: the comparison phase revisited candidates.
    const double shared_ratio =
        shared.stats().calls > 0
            ? static_cast<double>(shared.stats().cacheHits)
                  / static_cast<double>(shared.stats().calls)
            : 0.0;
    if (shared_ratio > 0.0) {
        std::printf("verify: %-34s OK (ratio %.3f)\n",
                    "cache hits on revisits", shared_ratio);
    } else {
        std::fprintf(stderr, "verify: %-34s FAILED\n",
                     "cache hits on revisits");
        ++failures;
    }

    // Coverage: the search sampled a vanishing fraction of the space.
    const double space_size = search::exhaustiveSize(task.space);
    const auto total_calls =
        static_cast<double>(shared.stats().calls);
    if (total_calls < space_size) {
        std::printf("verify: %-34s OK (%.0f of %.3g)\n",
                    "oracle calls < exhaustive space", total_calls,
                    space_size);
    } else {
        std::fprintf(stderr, "verify: %-34s FAILED\n",
                     "oracle calls < exhaustive space");
        ++failures;
    }

    // Quality: the metaheuristics must not lose to random sampling at
    // the same explore budget.
    for (const search::SearchResult *r : {&sa_r, &ga_r}) {
        if (r->bestScore <= random_r.bestScore) {
            std::printf("verify: %-34s OK (%.6e <= %.6e)\n",
                        (r->engine + " >= random").c_str(), r->bestScore,
                        random_r.bestScore);
        } else {
            std::fprintf(stderr, "verify: %-34s FAILED (%.6e > %.6e)\n",
                         (r->engine + " >= random").c_str(), r->bestScore,
                         random_r.bestScore);
            ++failures;
        }
    }

    if (failures == 0) {
        std::printf("\nverify: all gates passed\n");
        return 0;
    }
    std::fprintf(stderr, "\nverify: %d gate(s) FAILED\n", failures);
    return 1;
}
