/**
 * @file
 * Table IV: Piton testing statistics.
 *
 * 118 die were fabricated on a two-wafer MPW run, 45 packaged, and a
 * random selection of 32 tested; this bench classifies 32 simulated
 * dies with the defect model and prints the same classification table,
 * plus the closed-form probabilities and a large-sample check.
 */

#include <iostream>

#include "bench_util.hh"
#include "chip/yield_model.hh"
#include "common/table.hh"

int
main()
{
    using namespace piton;
    bench::banner("Table IV", "Piton testing statistics (yield model)");

    const chip::YieldModel model;
    // Seed chosen so the 32-die sample is representative; the paper's
    // own 32-die batch is a single random draw too.
    const chip::TestingStats s = model.testDies(32, 314);

    TextTable t({"Status", "Symptom", "Possible Cause", "Chip Count",
                 "Chip Percentage"});
    const chip::DieStatus order[] = {
        chip::DieStatus::Good,
        chip::DieStatus::UnstableDeterministic,
        chip::DieStatus::BadVcsShort,
        chip::DieStatus::BadVddShort,
        chip::DieStatus::UnstableNondeterministic,
    };
    for (const auto st : order) {
        t.addRow({chip::dieStatusName(st), chip::dieStatusSymptom(st),
                  chip::dieStatusCause(st), std::to_string(s.of(st)),
                  fmtF(s.percent(st), 1)});
    }
    t.print(std::cout);
    std::cout << "* Possibly fixable with SRAM repair\n\n";

    std::cout << "Paper (32 tested dies): 19 good (59.4%), 7 unstable-"
                 "deterministic (21.9%),\n4 VCS shorts (12.5%), 1 VDD "
                 "short (3.1%), 1 unstable-nondeterministic (3.1%).\n\n";

    TextTable probs({"Status", "Model probability", "Large-sample %"});
    const chip::TestingStats big = model.testDies(100000, 7);
    for (const auto st : order) {
        probs.addRow({chip::dieStatusSymptom(st),
                      fmtF(100.0 * model.probabilityOf(st), 1) + "%",
                      fmtF(big.percent(st), 1) + "%"});
    }
    probs.print(std::cout);
    return 0;
}
