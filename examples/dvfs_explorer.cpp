/**
 * @file
 * DVFS operating-point explorer: for a chosen chip and VDD, report the
 * maximum boot frequency (device- and thermally-limited), idle power,
 * and the power of a full-chip integer workload — the Fig. 9 / Fig. 10
 * methodology as a user-facing tool.
 *
 * Usage:
 *   dvfs_explorer [--chip N] [--vdd VOLTS]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chip/fmax_solver.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace piton;

    int chip_id = 2;
    double vdd = 1.00;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--chip") == 0)
            chip_id = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--vdd") == 0)
            vdd = std::atof(argv[i + 1]);
    }
    const double vcs = vdd + 0.05;

    const chip::FmaxSolver solver(power::VfModel{}, power::EnergyModel{},
                                  thermal::ThermalParams{});
    const chip::ChipInstance inst = chip::makeChip(chip_id);
    const chip::FmaxResult fmax = solver.solve(inst, vdd, vcs);

    std::printf("%s at VDD=%.2f V, VCS=%.2f V:\n", inst.name.c_str(), vdd,
                vcs);
    std::printf("  device-limited fmax : %.2f MHz\n", fmax.rawMhz);
    std::printf("  reported fmax       : %.2f MHz%s\n", fmax.fmaxMhz,
                fmax.thermallyLimited ? "  (thermally limited!)" : "");
    std::printf("  die temperature     : %.1f C at %.2f W boot power\n\n",
                fmax.dieTempC, fmax.powerW);

    // Measure idle and full-chip Int power at the selected point.
    sim::SystemOptions opts;
    opts.chipId = chip_id;
    opts.vddV = vdd;
    opts.vcsV = vcs;
    opts.coreClockMhz = fmax.fmaxMhz;
    sim::System sys(opts);
    std::printf("  idle power          : %.1f mW\n",
                wToMw(sys.idlePowerW()));
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::Int, 25, 2, /*iterations=*/0);
    const auto m = sys.measure(48);
    std::printf("  Int on 50 threads   : %.1f ± %.1f mW\n",
                wToMw(m.onChipMeanW()), wToMw(m.onChipStddevW()));
    return 0;
}
