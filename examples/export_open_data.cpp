/**
 * @file
 * Open-data export: write the characterization results as CSV files,
 * mirroring the paper's release of all collected data at
 * openpiton.org.  By default exports the fast datasets (area, yield,
 * V-f curves, system specs, SPECint model, Fig. 15 stages); pass
 * --full to also run and export the measurement-based studies (EPI,
 * memory energy, NoC EPF).
 *
 * Usage:
 *   export_open_data [output-dir] [--full] [--threads N]
 *
 * --threads N fans the sweep-style studies (V-f, EPI, memory energy)
 * out over N worker threads (0 = all hardware threads); the exported
 * CSVs are bit-identical at any thread count.
 */

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_util.hh"

#include "arch/chipset.hh"
#include "chip/area_model.hh"
#include "chip/yield_model.hh"
#include "common/table.hh"
#include "core/app_experiments.hh"
#include "core/epi_experiment.hh"
#include "core/noc_experiment.hh"
#include "core/vf_experiments.hh"

namespace
{

using namespace piton;

void
writeCsv(const std::filesystem::path &dir, const std::string &name,
         const std::vector<std::vector<std::string>> &rows)
{
    std::ofstream out(dir / name);
    CsvWriter w(out);
    for (const auto &row : rows)
        w.writeRow(row);
    std::cout << "wrote " << (dir / name).string() << " (" << rows.size()
              << " rows)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const piton::bench::BenchArgs args = piton::bench::parseBenchArgs(
        argc, argv, /*def_samples=*/128, /*def_threads=*/1,
        /*extra_flags=*/{"--full"}, /*max_positionals=*/1);
    const bool full = args.hasFlag("--full");
    const unsigned threads = args.threads;
    const std::filesystem::path dir =
        args.positionals.empty() ? "open_data" : args.positionals[0];
    std::filesystem::create_directories(dir);

    // Fig. 8: area breakdown.
    {
        std::vector<std::vector<std::string>> rows = {
            {"level", "block", "percent", "area_mm2"}};
        const chip::AreaModel m;
        for (const auto *level : {&m.chip(), &m.tile(), &m.core()}) {
            for (const auto &b : level->blocks)
                rows.push_back(
                    {level->name, b.name, fmtF(b.percent, 2),
                     fmtF(level->totalMm2 * b.percent / 100.0, 5)});
        }
        writeCsv(dir, "fig8_area_breakdown.csv", rows);
    }

    // Table IV: yield.
    {
        std::vector<std::vector<std::string>> rows = {
            {"status", "symptom", "count_of_32", "model_probability"}};
        const chip::YieldModel m;
        const auto s = m.testDies(32, 314);
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(chip::DieStatus::NumStatuses);
             ++i) {
            const auto st = static_cast<chip::DieStatus>(i);
            rows.push_back({chip::dieStatusName(st),
                            chip::dieStatusSymptom(st),
                            std::to_string(s.of(st)),
                            fmtF(m.probabilityOf(st), 4)});
        }
        writeCsv(dir, "table4_yield.csv", rows);
    }

    // Fig. 9: V-f scaling for three chips.
    {
        std::vector<std::vector<std::string>> rows = {
            {"chip", "vdd_v", "fmax_mhz", "next_step_mhz",
             "thermally_limited", "die_temp_c"}};
        const core::VfScalingExperiment exp;
        for (const auto &p : exp.runAll({1, 2, 3}, threads)) {
            rows.push_back({std::to_string(p.chipId), fmtF(p.vddV, 2),
                            fmtF(p.fmaxMhz, 2), fmtF(p.nextStepMhz, 2),
                            p.thermallyLimited ? "1" : "0",
                            fmtF(p.dieTempC, 1)});
        }
        writeCsv(dir, "fig9_vf_scaling.csv", rows);
    }

    // Fig. 15: memory latency stages.
    {
        std::vector<std::vector<std::string>> rows = {
            {"component", "detail", "core_cycles"}};
        for (const auto &s : arch::Chipset::memoryLatencyStages())
            rows.push_back(
                {s.component, s.detail, std::to_string(s.coreCycles)});
        writeCsv(dir, "fig15_latency_stages.csv", rows);
    }

    // Table IX: SPECint model results.
    {
        std::vector<std::vector<std::string>> rows = {
            {"benchmark", "t1_minutes", "piton_minutes", "slowdown",
             "piton_avg_power_w", "piton_energy_kj", "cpi_t1",
             "cpi_piton"}};
        const auto model = core::makePaperSpecModel();
        for (const auto &r : model.evaluateAll()) {
            rows.push_back({r.name, fmtF(r.t1Minutes, 2),
                            fmtF(r.pitonMinutes, 2), fmtF(r.slowdown, 2),
                            fmtF(r.pitonAvgPowerW, 3),
                            fmtF(r.pitonEnergyKj, 3), fmtF(r.cpiT1, 3),
                            fmtF(r.cpiPiton, 3)});
        }
        writeCsv(dir, "table9_specint.csv", rows);
    }

    if (!full) {
        std::cout << "\n(fast datasets only; rerun with --full for the "
                     "EPI / memory-energy / NoC studies)\n";
        return 0;
    }

    // Fig. 11: EPI.
    {
        std::vector<std::vector<std::string>> rows = {
            {"instruction", "operand_pattern", "latency_cycles", "epi_pj",
             "err_pj"}};
        sim::SystemOptions opts;
        opts.sweepThreads = threads;
        core::EpiExperiment exp(opts, 64);
        for (const auto &r : exp.runAll()) {
            rows.push_back(
                {r.variant, workloads::operandPatternName(r.pattern),
                 std::to_string(
                     workloads::epiVariant(r.variant).latency),
                 fmtF(r.epiPj, 1), fmtF(r.errPj, 2)});
        }
        writeCsv(dir, "fig11_epi.csv", rows);
    }

    // Table VII: memory system energy.
    {
        std::vector<std::vector<std::string>> rows = {
            {"scenario", "latency_cycles", "energy_nj", "err_nj"}};
        sim::SystemOptions opts;
        opts.sweepThreads = threads;
        core::MemoryEnergyExperiment exp(opts, 64);
        for (const auto &r : exp.runAll()) {
            rows.push_back({workloads::memoryScenarioName(r.scenario),
                            std::to_string(r.latency),
                            fmtF(r.energyNj, 3), fmtF(r.errNj, 3)});
        }
        writeCsv(dir, "table7_memory_energy.csv", rows);
    }

    // Fig. 12: NoC EPF.
    {
        std::vector<std::vector<std::string>> rows = {
            {"pattern", "hops", "epf_pj", "err_pj"}};
        core::NocEnergyExperiment exp(sim::SystemOptions{}, 64);
        for (const auto &r : exp.runAll()) {
            rows.push_back({core::switchPatternName(r.pattern),
                            std::to_string(r.hops), fmtF(r.epfPj, 2),
                            fmtF(r.errPj, 2)});
        }
        writeCsv(dir, "fig12_noc_epf.csv", rows);
    }

    std::cout << "\nfull export complete.\n";
    return 0;
}
