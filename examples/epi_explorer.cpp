/**
 * @file
 * EPI explorer: measure the energy per instruction of any supported
 * instruction variant at any operand pattern — the paper's open-data
 * use case of building power models from the characterization.
 *
 * Usage:
 *   epi_explorer [variant] [min|random|max] [--samples N]
 *   epi_explorer --list
 *
 * Example:
 *   ./build/examples/epi_explorer sdivx max
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/epi_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace piton;

    std::string variant = "add";
    workloads::OperandPattern pattern = workloads::OperandPattern::Random;
    std::uint32_t samples = 64;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            std::printf("supported variants:\n");
            for (const auto &v : workloads::epiVariants())
                std::printf("  %-10s latency %2u cycles%s\n",
                            v.label.c_str(), v.latency,
                            v.hasOperands ? "" : " (no operand patterns)");
            return 0;
        }
        if (arg == "--samples" && i + 1 < argc) {
            samples = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "min") {
            pattern = workloads::OperandPattern::Minimum;
        } else if (arg == "random") {
            pattern = workloads::OperandPattern::Random;
        } else if (arg == "max") {
            pattern = workloads::OperandPattern::Maximum;
        } else {
            variant = arg;
        }
    }

    const workloads::EpiVariant &v = workloads::epiVariant(variant);
    core::EpiExperiment exp(sim::SystemOptions{}, samples);

    std::printf("measuring EPI of '%s' with %s operands "
                "(latency %u cycles, %u samples)...\n",
                v.label.c_str(), workloads::operandPatternName(pattern),
                v.latency, samples);
    const core::EpiRow row = exp.measure(v, pattern);
    std::printf("EPI = %.1f ± %.1f pJ\n", row.epiPj, row.errPj);

    // Context: the recompute-vs-load tradeoff from the paper.
    const core::EpiRow add =
        exp.measure(workloads::epiVariant("add"),
                    workloads::OperandPattern::Random);
    std::printf("for reference, add(random) = %.1f pJ -> '%s' costs "
                "%.1f adds\n",
                add.epiPj, v.label.c_str(), row.epiPj / add.epiPj);
    return 0;
}
