/**
 * @file
 * Quickstart: assemble a program, run it on the simulated Piton
 * system, and measure its power the way the paper does.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/system.hh"

int
main()
{
    using namespace piton;

    // 1. A system at the paper's default operating point (Table III):
    //    Chip #2, 1.0 V / 1.05 V / 1.8 V, 500.05 MHz.
    sim::System system;

    // 2. Assemble a small program: sum the integers 1..1000.
    const isa::Program program = isa::assemble(R"(
        set 0, %r1          ! accumulator
        set 0, %r2          ! counter
    loop:
        add %r2, 1, %r2
        add %r1, %r2, %r1
        cmp %r2, 1000
        bl loop
        set 0x10000, %r3    ! store the result to memory
        stx %r1, [%r3 + 0]
        halt
    )");

    // 3. Run it on tile 12's thread 0 and report the result.
    system.loadProgram(12, 0, &program);
    const sim::CompletionResult run = system.runToCompletion(10'000'000);
    const RegVal result = system.pitonChip().memory().read64(0x10000);
    std::printf("result: sum(1..1000) = %llu (expected 500500)\n",
                static_cast<unsigned long long>(result));
    std::printf("execution: %llu cycles = %.2f us at 500.05 MHz\n",
                static_cast<unsigned long long>(run.cycles),
                run.seconds * 1e6);
    std::printf("energy: %.2f uJ total on-chip (%.2f uJ above the idle "
                "floor)\n",
                run.onChipEnergyJ * 1e6, run.activeEnergyJ * 1e6);

    // 4. Measure steady-state power with the 128-sample protocol while
    //    all 25 cores run an infinite version of the loop.
    sim::System busy;
    const isa::Program spin = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        ba loop
    )");
    for (TileId t = 0; t < 25; ++t)
        busy.loadProgram(t, 0, &spin);
    const board::PowerMeasurement m = busy.measure();
    std::printf("\n25 active cores: %.1f±%.1f mW (VDD %.1f mW, VCS %.1f "
                "mW)\n",
                wToMw(m.onChipMeanW()), wToMw(m.onChipStddevW()),
                wToMw(m.vddW.mean()), wToMw(m.vcsW.mean()));
    std::printf("idle floor       : %.1f mW (Table V: 2015.3 mW)\n",
                wToMw(busy.idlePowerW()));
    return 0;
}
