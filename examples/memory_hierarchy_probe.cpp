/**
 * @file
 * Memory-hierarchy probe: walk an address pattern through the cache
 * hierarchy and report where each access hits, its latency, and the
 * accumulated energy — the Table VII methodology turned into a
 * diagnostic tool for cache/coherence behaviour.
 *
 * Usage:
 *   memory_hierarchy_probe [--stride BYTES] [--count N] [--tile T]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

int
main(int argc, char **argv)
{
    using namespace piton;

    Addr stride = 51200; // aliases one L1 set, stays at one home tile
    int count = 12;
    TileId tile = 0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--stride") == 0)
            stride = std::strtoull(argv[i + 1], nullptr, 0);
        else if (std::strcmp(argv[i], "--count") == 0)
            count = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--tile") == 0)
            tile = static_cast<TileId>(std::atoi(argv[i + 1]));
    }

    config::PitonParams params;
    power::EnergyModel energy;
    power::EnergyLedger ledger;
    arch::MainMemory memory;
    arch::MemorySystem mem(params, energy, ledger, memory);

    std::printf("probing from tile %u, stride %llu B, two passes over %d "
                "addresses\n\n",
                tile, static_cast<unsigned long long>(stride), count);
    std::printf("%-6s %-14s %-6s %-22s %-10s\n", "pass", "address", "home",
                "level", "latency");

    Cycle now = 0;
    for (int pass = 1; pass <= 2; ++pass) {
        for (int i = 0; i < count; ++i) {
            const Addr a = 0x100000 + static_cast<Addr>(i) * stride;
            RegVal data;
            const arch::AccessOutcome out = mem.load(tile, a, data, now);
            now += out.latency;
            std::printf("%-6d 0x%-12llx %-6u %-22s %u\n", pass,
                        static_cast<unsigned long long>(a),
                        mem.homeTile(a), arch::hitLevelName(out.level),
                        out.latency);
        }
    }

    std::printf("\naccumulated energy: %.1f nJ on-chip, %.1f nJ off-chip "
                "excursions\n",
                jToNj(ledger.total().onChipCoreAndSram()
                      - ledger.category(power::Category::OffChip)
                            .onChipCoreAndSram()),
                jToNj(ledger.category(power::Category::OffChip)
                          .onChipCoreAndSram()));
    std::printf("stats: %llu loads, %llu L1 hits, %llu local / %llu "
                "remote L2 hits, %llu misses\n",
                static_cast<unsigned long long>(mem.stats().loads),
                static_cast<unsigned long long>(mem.stats().l1Hits),
                static_cast<unsigned long long>(mem.stats().localL2Hits),
                static_cast<unsigned long long>(mem.stats().remoteL2Hits),
                static_cast<unsigned long long>(mem.stats().offChipMisses));
    return 0;
}
