/**
 * @file
 * Thermal scheduling study: evaluate how a scheduling policy's phase
 * alignment affects peak power, average temperature, and the
 * power/temperature hysteresis — the Section IV-J workflow, opened up
 * so users can sweep phase durations and thread splits.
 *
 * Usage:
 *   thermal_scheduling [--phase SECONDS] [--split N]
 *     --phase  phase duration in seconds (default 10)
 *     --split  threads in phase A for the interleaved schedule
 *              (default 26 of 50)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/thermal_experiments.hh"

int
main(int argc, char **argv)
{
    using namespace piton;

    double phase_s = 10.0;
    int split = 26;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--phase") == 0)
            phase_s = std::atof(argv[i + 1]);
        else if (std::strcmp(argv[i], "--split") == 0)
            split = std::atoi(argv[i + 1]);
    }
    (void)split; // the 26/24 split is fixed in the library experiment

    const core::SchedulingExperiment exp(core::thermalStudyOptions(), 16);
    std::printf("two-phase application on all 50 threads, %g s phases\n",
                phase_s);
    std::printf("compute phase: %.0f mW dynamic; idle phase: %.0f mW "
                "dynamic\n\n",
                wToMw(exp.computePhasePowerW()),
                wToMw(exp.idlePhasePowerW()));

    for (const auto sched :
         {core::Schedule::Synchronized, core::Schedule::Interleaved}) {
        const core::ScheduleResult r = exp.run(sched, phase_s, 400.0, 0.5);
        double p_min = 1e9, p_max = 0.0;
        for (const auto &pt : r.trace) {
            p_min = std::min(p_min, pt.powerW);
            p_max = std::max(p_max, pt.powerW);
        }
        std::printf("%-12s avg power %.1f mW  peak %.1f mW  avg pkg "
                    "temp %.3f C  temp swing %.3f C\n",
                    core::scheduleName(sched), wToMw(r.avgPowerW),
                    wToMw(p_max), r.avgPackageTempC, r.tempSwingC);
    }

    std::printf("\ninsight (paper): a balanced (interleaved) schedule "
                "limits peak power and\nlowers average temperature "
                "(~0.22 C in the paper) for identical total work.\n");
    return 0;
}
