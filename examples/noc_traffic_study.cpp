/**
 * @file
 * NoC traffic study: inject custom traffic into the mesh and measure
 * energy per flit — the workflow the paper suggests for reassessing
 * NoC power models against real-system data.
 *
 * Usage:
 *   noc_traffic_study [payload-hex] [--hops N]
 *
 * Example (a sparse telemetry pattern):
 *   ./build/examples/noc_traffic_study 0x00FF00FF00FF00FF --hops 6
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/equations.hh"
#include "core/noc_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace piton;

    RegVal payload = 0xAAAAAAAAAAAAAAAAULL;
    std::uint32_t max_hops = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--hops") == 0 && i + 1 < argc)
            max_hops = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        else
            payload = std::strtoull(argv[i], nullptr, 0);
    }

    // Measure EPF for the user's payload (alternating with zeros) at
    // each hop count, through the full injection methodology.
    sim::SystemOptions opts;
    sim::System base_sys(opts);
    std::printf("payload 0x%016llx alternating with zeros, 0..%u hops\n\n",
                static_cast<unsigned long long>(payload), max_hops);
    std::printf("%4s  %10s  %14s\n", "hops", "EPF (pJ)", "per-hop (pJ)");

    double prev = 0.0;
    for (std::uint32_t h = 0; h <= max_hops; ++h) {
        // Fresh system per point (the paper's methodology: separate
        // steady-state measurements).
        sim::System sys(opts);
        auto inject = [&](TileId dst) {
            const Cycle window = sys.options().cyclesPerSample;
            for (Cycle i = 0; i < window / core::kNocPatternCycles; ++i) {
                std::vector<RegVal> flits(6);
                for (std::size_t k = 0; k < flits.size(); ++k)
                    flits[k] = (k % 2 == 0) ? payload : 0;
                sys.pitonChip().memSystem().injectPacket(dst, flits);
            }
            return sys.windowTruePowers(window);
        };
        const TileId dst = core::hopTargetTile(h);
        double base_w = 0.0, hop_w = 0.0;
        for (int i = 0; i < 32; ++i) {
            const auto pb = inject(0);
            base_w += (pb[0] + pb[1]) / 32.0;
        }
        for (int i = 0; i < 32; ++i) {
            const auto ph = inject(dst);
            hop_w += (ph[0] + ph[1]) / 32.0;
        }
        const double epf_pj =
            jToPj(core::epfJoules(hop_w, base_w, sys.coreClockHz()));
        std::printf("%4u  %10.1f  %14.1f\n", h, epf_pj,
                    h ? (epf_pj - prev) : 0.0);
        prev = epf_pj;
    }

    std::printf("\ncompare: paper slopes are 3.58 (no switching) to "
                "16.98 pJ/hop (full switching);\nan 8-hop flit costs "
                "about one add instruction (~95 pJ).\n");
    return 0;
}
