file(REMOVE_RECURSE
  "CMakeFiles/thermal_scheduling.dir/thermal_scheduling.cpp.o"
  "CMakeFiles/thermal_scheduling.dir/thermal_scheduling.cpp.o.d"
  "thermal_scheduling"
  "thermal_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
