file(REMOVE_RECURSE
  "CMakeFiles/export_open_data.dir/export_open_data.cpp.o"
  "CMakeFiles/export_open_data.dir/export_open_data.cpp.o.d"
  "export_open_data"
  "export_open_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_open_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
