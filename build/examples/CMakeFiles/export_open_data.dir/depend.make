# Empty dependencies file for export_open_data.
# This may be replaced when dependencies are built.
