# Empty compiler generated dependencies file for noc_traffic_study.
# This may be replaced when dependencies are built.
