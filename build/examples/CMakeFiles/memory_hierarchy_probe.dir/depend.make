# Empty dependencies file for memory_hierarchy_probe.
# This may be replaced when dependencies are built.
