file(REMOVE_RECURSE
  "CMakeFiles/memory_hierarchy_probe.dir/memory_hierarchy_probe.cpp.o"
  "CMakeFiles/memory_hierarchy_probe.dir/memory_hierarchy_probe.cpp.o.d"
  "memory_hierarchy_probe"
  "memory_hierarchy_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_hierarchy_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
