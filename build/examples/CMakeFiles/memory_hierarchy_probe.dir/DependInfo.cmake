
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/memory_hierarchy_probe.cpp" "examples/CMakeFiles/memory_hierarchy_probe.dir/memory_hierarchy_probe.cpp.o" "gcc" "examples/CMakeFiles/memory_hierarchy_probe.dir/memory_hierarchy_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piton_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/piton_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/piton_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/piton_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/piton_board.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/piton_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/piton_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/piton_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/piton_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/piton_config.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/piton_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/piton_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
