file(REMOVE_RECURSE
  "CMakeFiles/epi_explorer.dir/epi_explorer.cpp.o"
  "CMakeFiles/epi_explorer.dir/epi_explorer.cpp.o.d"
  "epi_explorer"
  "epi_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
