# Empty dependencies file for epi_explorer.
# This may be replaced when dependencies are built.
