file(REMOVE_RECURSE
  "CMakeFiles/piton_power.dir/energy_model.cc.o"
  "CMakeFiles/piton_power.dir/energy_model.cc.o.d"
  "CMakeFiles/piton_power.dir/vf_model.cc.o"
  "CMakeFiles/piton_power.dir/vf_model.cc.o.d"
  "libpiton_power.a"
  "libpiton_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
