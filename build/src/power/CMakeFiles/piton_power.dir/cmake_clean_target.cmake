file(REMOVE_RECURSE
  "libpiton_power.a"
)
