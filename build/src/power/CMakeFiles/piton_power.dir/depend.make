# Empty dependencies file for piton_power.
# This may be replaced when dependencies are built.
