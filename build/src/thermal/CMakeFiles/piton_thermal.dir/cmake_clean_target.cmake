file(REMOVE_RECURSE
  "libpiton_thermal.a"
)
