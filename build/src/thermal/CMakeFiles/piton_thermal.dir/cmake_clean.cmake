file(REMOVE_RECURSE
  "CMakeFiles/piton_thermal.dir/thermal_model.cc.o"
  "CMakeFiles/piton_thermal.dir/thermal_model.cc.o.d"
  "libpiton_thermal.a"
  "libpiton_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
