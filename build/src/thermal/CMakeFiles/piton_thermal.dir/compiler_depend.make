# Empty compiler generated dependencies file for piton_thermal.
# This may be replaced when dependencies are built.
