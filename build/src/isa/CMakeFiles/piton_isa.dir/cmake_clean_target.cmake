file(REMOVE_RECURSE
  "libpiton_isa.a"
)
