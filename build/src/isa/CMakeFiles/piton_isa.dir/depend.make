# Empty dependencies file for piton_isa.
# This may be replaced when dependencies are built.
