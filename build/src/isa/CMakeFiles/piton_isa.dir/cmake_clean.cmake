file(REMOVE_RECURSE
  "CMakeFiles/piton_isa.dir/alu.cc.o"
  "CMakeFiles/piton_isa.dir/alu.cc.o.d"
  "CMakeFiles/piton_isa.dir/assembler.cc.o"
  "CMakeFiles/piton_isa.dir/assembler.cc.o.d"
  "CMakeFiles/piton_isa.dir/instruction.cc.o"
  "CMakeFiles/piton_isa.dir/instruction.cc.o.d"
  "CMakeFiles/piton_isa.dir/program.cc.o"
  "CMakeFiles/piton_isa.dir/program.cc.o.d"
  "libpiton_isa.a"
  "libpiton_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
