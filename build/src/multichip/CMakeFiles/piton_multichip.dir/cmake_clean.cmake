file(REMOVE_RECURSE
  "CMakeFiles/piton_multichip.dir/multichip.cc.o"
  "CMakeFiles/piton_multichip.dir/multichip.cc.o.d"
  "libpiton_multichip.a"
  "libpiton_multichip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_multichip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
