# Empty compiler generated dependencies file for piton_multichip.
# This may be replaced when dependencies are built.
