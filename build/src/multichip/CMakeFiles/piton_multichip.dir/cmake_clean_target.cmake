file(REMOVE_RECURSE
  "libpiton_multichip.a"
)
