# Empty dependencies file for piton_multichip.
# This may be replaced when dependencies are built.
