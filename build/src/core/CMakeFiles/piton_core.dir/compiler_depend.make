# Empty compiler generated dependencies file for piton_core.
# This may be replaced when dependencies are built.
