file(REMOVE_RECURSE
  "libpiton_core.a"
)
