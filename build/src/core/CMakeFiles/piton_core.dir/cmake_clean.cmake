file(REMOVE_RECURSE
  "CMakeFiles/piton_core.dir/app_experiments.cc.o"
  "CMakeFiles/piton_core.dir/app_experiments.cc.o.d"
  "CMakeFiles/piton_core.dir/epi_experiment.cc.o"
  "CMakeFiles/piton_core.dir/epi_experiment.cc.o.d"
  "CMakeFiles/piton_core.dir/equations.cc.o"
  "CMakeFiles/piton_core.dir/equations.cc.o.d"
  "CMakeFiles/piton_core.dir/noc_experiment.cc.o"
  "CMakeFiles/piton_core.dir/noc_experiment.cc.o.d"
  "CMakeFiles/piton_core.dir/power_cap.cc.o"
  "CMakeFiles/piton_core.dir/power_cap.cc.o.d"
  "CMakeFiles/piton_core.dir/power_model_fit.cc.o"
  "CMakeFiles/piton_core.dir/power_model_fit.cc.o.d"
  "CMakeFiles/piton_core.dir/scaling_experiments.cc.o"
  "CMakeFiles/piton_core.dir/scaling_experiments.cc.o.d"
  "CMakeFiles/piton_core.dir/thermal_experiments.cc.o"
  "CMakeFiles/piton_core.dir/thermal_experiments.cc.o.d"
  "CMakeFiles/piton_core.dir/vf_experiments.cc.o"
  "CMakeFiles/piton_core.dir/vf_experiments.cc.o.d"
  "libpiton_core.a"
  "libpiton_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
