
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_experiments.cc" "src/core/CMakeFiles/piton_core.dir/app_experiments.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/app_experiments.cc.o.d"
  "/root/repo/src/core/epi_experiment.cc" "src/core/CMakeFiles/piton_core.dir/epi_experiment.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/epi_experiment.cc.o.d"
  "/root/repo/src/core/equations.cc" "src/core/CMakeFiles/piton_core.dir/equations.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/equations.cc.o.d"
  "/root/repo/src/core/noc_experiment.cc" "src/core/CMakeFiles/piton_core.dir/noc_experiment.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/noc_experiment.cc.o.d"
  "/root/repo/src/core/power_cap.cc" "src/core/CMakeFiles/piton_core.dir/power_cap.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/power_cap.cc.o.d"
  "/root/repo/src/core/power_model_fit.cc" "src/core/CMakeFiles/piton_core.dir/power_model_fit.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/power_model_fit.cc.o.d"
  "/root/repo/src/core/scaling_experiments.cc" "src/core/CMakeFiles/piton_core.dir/scaling_experiments.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/scaling_experiments.cc.o.d"
  "/root/repo/src/core/thermal_experiments.cc" "src/core/CMakeFiles/piton_core.dir/thermal_experiments.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/thermal_experiments.cc.o.d"
  "/root/repo/src/core/vf_experiments.cc" "src/core/CMakeFiles/piton_core.dir/vf_experiments.cc.o" "gcc" "src/core/CMakeFiles/piton_core.dir/vf_experiments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/piton_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/piton_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/piton_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/piton_board.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/piton_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/piton_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/piton_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/piton_config.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/piton_power.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/piton_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/piton_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
