# Empty compiler generated dependencies file for piton_common.
# This may be replaced when dependencies are built.
