file(REMOVE_RECURSE
  "CMakeFiles/piton_common.dir/linalg.cc.o"
  "CMakeFiles/piton_common.dir/linalg.cc.o.d"
  "CMakeFiles/piton_common.dir/logging.cc.o"
  "CMakeFiles/piton_common.dir/logging.cc.o.d"
  "CMakeFiles/piton_common.dir/rng.cc.o"
  "CMakeFiles/piton_common.dir/rng.cc.o.d"
  "CMakeFiles/piton_common.dir/stats.cc.o"
  "CMakeFiles/piton_common.dir/stats.cc.o.d"
  "CMakeFiles/piton_common.dir/table.cc.o"
  "CMakeFiles/piton_common.dir/table.cc.o.d"
  "libpiton_common.a"
  "libpiton_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
