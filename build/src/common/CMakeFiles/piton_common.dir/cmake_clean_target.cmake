file(REMOVE_RECURSE
  "libpiton_common.a"
)
