file(REMOVE_RECURSE
  "CMakeFiles/piton_perfmodel.dir/machine.cc.o"
  "CMakeFiles/piton_perfmodel.dir/machine.cc.o.d"
  "CMakeFiles/piton_perfmodel.dir/spec_model.cc.o"
  "CMakeFiles/piton_perfmodel.dir/spec_model.cc.o.d"
  "libpiton_perfmodel.a"
  "libpiton_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
