file(REMOVE_RECURSE
  "libpiton_perfmodel.a"
)
