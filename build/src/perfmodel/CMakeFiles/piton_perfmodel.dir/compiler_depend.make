# Empty compiler generated dependencies file for piton_perfmodel.
# This may be replaced when dependencies are built.
