file(REMOVE_RECURSE
  "libpiton_board.a"
)
