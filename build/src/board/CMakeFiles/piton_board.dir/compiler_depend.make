# Empty compiler generated dependencies file for piton_board.
# This may be replaced when dependencies are built.
