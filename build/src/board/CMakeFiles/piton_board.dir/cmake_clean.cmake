file(REMOVE_RECURSE
  "CMakeFiles/piton_board.dir/measurement.cc.o"
  "CMakeFiles/piton_board.dir/measurement.cc.o.d"
  "CMakeFiles/piton_board.dir/test_board.cc.o"
  "CMakeFiles/piton_board.dir/test_board.cc.o.d"
  "libpiton_board.a"
  "libpiton_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
