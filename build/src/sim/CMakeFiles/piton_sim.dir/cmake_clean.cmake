file(REMOVE_RECURSE
  "CMakeFiles/piton_sim.dir/system.cc.o"
  "CMakeFiles/piton_sim.dir/system.cc.o.d"
  "libpiton_sim.a"
  "libpiton_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
