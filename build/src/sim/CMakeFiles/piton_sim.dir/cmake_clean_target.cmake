file(REMOVE_RECURSE
  "libpiton_sim.a"
)
