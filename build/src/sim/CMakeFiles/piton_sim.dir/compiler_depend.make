# Empty compiler generated dependencies file for piton_sim.
# This may be replaced when dependencies are built.
