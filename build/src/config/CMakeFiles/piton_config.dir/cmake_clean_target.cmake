file(REMOVE_RECURSE
  "libpiton_config.a"
)
