file(REMOVE_RECURSE
  "CMakeFiles/piton_config.dir/piton_params.cc.o"
  "CMakeFiles/piton_config.dir/piton_params.cc.o.d"
  "libpiton_config.a"
  "libpiton_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
