# Empty dependencies file for piton_config.
# This may be replaced when dependencies are built.
