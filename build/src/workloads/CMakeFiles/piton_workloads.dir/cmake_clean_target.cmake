file(REMOVE_RECURSE
  "libpiton_workloads.a"
)
