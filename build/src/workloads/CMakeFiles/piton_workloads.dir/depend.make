# Empty dependencies file for piton_workloads.
# This may be replaced when dependencies are built.
