file(REMOVE_RECURSE
  "CMakeFiles/piton_workloads.dir/epi_tests.cc.o"
  "CMakeFiles/piton_workloads.dir/epi_tests.cc.o.d"
  "CMakeFiles/piton_workloads.dir/memory_tests.cc.o"
  "CMakeFiles/piton_workloads.dir/memory_tests.cc.o.d"
  "CMakeFiles/piton_workloads.dir/microbenchmarks.cc.o"
  "CMakeFiles/piton_workloads.dir/microbenchmarks.cc.o.d"
  "CMakeFiles/piton_workloads.dir/spec_profiles.cc.o"
  "CMakeFiles/piton_workloads.dir/spec_profiles.cc.o.d"
  "libpiton_workloads.a"
  "libpiton_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
