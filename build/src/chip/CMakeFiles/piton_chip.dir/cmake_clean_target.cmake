file(REMOVE_RECURSE
  "libpiton_chip.a"
)
