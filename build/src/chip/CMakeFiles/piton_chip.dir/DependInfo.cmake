
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/area_model.cc" "src/chip/CMakeFiles/piton_chip.dir/area_model.cc.o" "gcc" "src/chip/CMakeFiles/piton_chip.dir/area_model.cc.o.d"
  "/root/repo/src/chip/chip_instance.cc" "src/chip/CMakeFiles/piton_chip.dir/chip_instance.cc.o" "gcc" "src/chip/CMakeFiles/piton_chip.dir/chip_instance.cc.o.d"
  "/root/repo/src/chip/fmax_solver.cc" "src/chip/CMakeFiles/piton_chip.dir/fmax_solver.cc.o" "gcc" "src/chip/CMakeFiles/piton_chip.dir/fmax_solver.cc.o.d"
  "/root/repo/src/chip/yield_model.cc" "src/chip/CMakeFiles/piton_chip.dir/yield_model.cc.o" "gcc" "src/chip/CMakeFiles/piton_chip.dir/yield_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piton_common.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/piton_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/piton_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/piton_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
