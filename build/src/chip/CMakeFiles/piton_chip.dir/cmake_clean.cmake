file(REMOVE_RECURSE
  "CMakeFiles/piton_chip.dir/area_model.cc.o"
  "CMakeFiles/piton_chip.dir/area_model.cc.o.d"
  "CMakeFiles/piton_chip.dir/chip_instance.cc.o"
  "CMakeFiles/piton_chip.dir/chip_instance.cc.o.d"
  "CMakeFiles/piton_chip.dir/fmax_solver.cc.o"
  "CMakeFiles/piton_chip.dir/fmax_solver.cc.o.d"
  "CMakeFiles/piton_chip.dir/yield_model.cc.o"
  "CMakeFiles/piton_chip.dir/yield_model.cc.o.d"
  "libpiton_chip.a"
  "libpiton_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
