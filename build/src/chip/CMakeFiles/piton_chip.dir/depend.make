# Empty dependencies file for piton_chip.
# This may be replaced when dependencies are built.
