# Empty dependencies file for piton_arch.
# This may be replaced when dependencies are built.
