file(REMOVE_RECURSE
  "libpiton_arch.a"
)
