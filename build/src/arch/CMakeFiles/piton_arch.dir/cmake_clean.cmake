file(REMOVE_RECURSE
  "CMakeFiles/piton_arch.dir/cache.cc.o"
  "CMakeFiles/piton_arch.dir/cache.cc.o.d"
  "CMakeFiles/piton_arch.dir/chipset.cc.o"
  "CMakeFiles/piton_arch.dir/chipset.cc.o.d"
  "CMakeFiles/piton_arch.dir/core.cc.o"
  "CMakeFiles/piton_arch.dir/core.cc.o.d"
  "CMakeFiles/piton_arch.dir/mem_system.cc.o"
  "CMakeFiles/piton_arch.dir/mem_system.cc.o.d"
  "CMakeFiles/piton_arch.dir/memory.cc.o"
  "CMakeFiles/piton_arch.dir/memory.cc.o.d"
  "CMakeFiles/piton_arch.dir/mitts.cc.o"
  "CMakeFiles/piton_arch.dir/mitts.cc.o.d"
  "CMakeFiles/piton_arch.dir/noc.cc.o"
  "CMakeFiles/piton_arch.dir/noc.cc.o.d"
  "CMakeFiles/piton_arch.dir/piton_chip.cc.o"
  "CMakeFiles/piton_arch.dir/piton_chip.cc.o.d"
  "libpiton_arch.a"
  "libpiton_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piton_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
