
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cache.cc" "src/arch/CMakeFiles/piton_arch.dir/cache.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/cache.cc.o.d"
  "/root/repo/src/arch/chipset.cc" "src/arch/CMakeFiles/piton_arch.dir/chipset.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/chipset.cc.o.d"
  "/root/repo/src/arch/core.cc" "src/arch/CMakeFiles/piton_arch.dir/core.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/core.cc.o.d"
  "/root/repo/src/arch/mem_system.cc" "src/arch/CMakeFiles/piton_arch.dir/mem_system.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/mem_system.cc.o.d"
  "/root/repo/src/arch/memory.cc" "src/arch/CMakeFiles/piton_arch.dir/memory.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/memory.cc.o.d"
  "/root/repo/src/arch/mitts.cc" "src/arch/CMakeFiles/piton_arch.dir/mitts.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/mitts.cc.o.d"
  "/root/repo/src/arch/noc.cc" "src/arch/CMakeFiles/piton_arch.dir/noc.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/noc.cc.o.d"
  "/root/repo/src/arch/piton_chip.cc" "src/arch/CMakeFiles/piton_arch.dir/piton_chip.cc.o" "gcc" "src/arch/CMakeFiles/piton_arch.dir/piton_chip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piton_common.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/piton_config.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/piton_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/piton_power.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/piton_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/piton_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
