# Empty dependencies file for bench_fig10_static_idle.
# This may be replaced when dependencies are built.
