file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_static_idle.dir/bench_fig10_static_idle.cc.o"
  "CMakeFiles/bench_fig10_static_idle.dir/bench_fig10_static_idle.cc.o.d"
  "bench_fig10_static_idle"
  "bench_fig10_static_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_static_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
