# Empty dependencies file for bench_fig9_vf_scaling.
# This may be replaced when dependencies are built.
