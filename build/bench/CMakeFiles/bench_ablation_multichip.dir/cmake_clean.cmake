file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multichip.dir/bench_ablation_multichip.cc.o"
  "CMakeFiles/bench_ablation_multichip.dir/bench_ablation_multichip.cc.o.d"
  "bench_ablation_multichip"
  "bench_ablation_multichip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multichip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
