# Empty dependencies file for bench_ablation_multichip.
# This may be replaced when dependencies are built.
