file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_power_scaling.dir/bench_fig13_power_scaling.cc.o"
  "CMakeFiles/bench_fig13_power_scaling.dir/bench_fig13_power_scaling.cc.o.d"
  "bench_fig13_power_scaling"
  "bench_fig13_power_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_power_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
