# Empty compiler generated dependencies file for bench_fig13_power_scaling.
# This may be replaced when dependencies are built.
