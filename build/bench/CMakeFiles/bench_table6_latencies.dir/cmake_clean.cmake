file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_latencies.dir/bench_table6_latencies.cc.o"
  "CMakeFiles/bench_table6_latencies.dir/bench_table6_latencies.cc.o.d"
  "bench_table6_latencies"
  "bench_table6_latencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
