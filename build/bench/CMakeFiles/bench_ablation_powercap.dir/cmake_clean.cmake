file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_powercap.dir/bench_ablation_powercap.cc.o"
  "CMakeFiles/bench_ablation_powercap.dir/bench_ablation_powercap.cc.o.d"
  "bench_ablation_powercap"
  "bench_ablation_powercap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_powercap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
