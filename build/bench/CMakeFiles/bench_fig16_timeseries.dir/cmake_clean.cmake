file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_timeseries.dir/bench_fig16_timeseries.cc.o"
  "CMakeFiles/bench_fig16_timeseries.dir/bench_fig16_timeseries.cc.o.d"
  "bench_fig16_timeseries"
  "bench_fig16_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
