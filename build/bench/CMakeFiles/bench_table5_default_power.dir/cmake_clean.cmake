file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_default_power.dir/bench_table5_default_power.cc.o"
  "CMakeFiles/bench_table5_default_power.dir/bench_table5_default_power.cc.o.d"
  "bench_table5_default_power"
  "bench_table5_default_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_default_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
