# Empty compiler generated dependencies file for bench_table5_default_power.
# This may be replaced when dependencies are built.
