# Empty dependencies file for bench_fig17_thermal.
# This may be replaced when dependencies are built.
