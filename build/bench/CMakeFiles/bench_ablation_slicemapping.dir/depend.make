# Empty dependencies file for bench_ablation_slicemapping.
# This may be replaced when dependencies are built.
