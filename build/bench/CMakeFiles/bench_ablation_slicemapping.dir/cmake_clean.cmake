file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slicemapping.dir/bench_ablation_slicemapping.cc.o"
  "CMakeFiles/bench_ablation_slicemapping.dir/bench_ablation_slicemapping.cc.o.d"
  "bench_ablation_slicemapping"
  "bench_ablation_slicemapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slicemapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
