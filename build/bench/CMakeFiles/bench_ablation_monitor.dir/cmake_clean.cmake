file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_monitor.dir/bench_ablation_monitor.cc.o"
  "CMakeFiles/bench_ablation_monitor.dir/bench_ablation_monitor.cc.o.d"
  "bench_ablation_monitor"
  "bench_ablation_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
