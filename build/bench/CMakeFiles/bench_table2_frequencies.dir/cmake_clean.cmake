file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_frequencies.dir/bench_table2_frequencies.cc.o"
  "CMakeFiles/bench_table2_frequencies.dir/bench_table2_frequencies.cc.o.d"
  "bench_table2_frequencies"
  "bench_table2_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
