# Empty dependencies file for bench_ablation_powermodel.
# This may be replaced when dependencies are built.
