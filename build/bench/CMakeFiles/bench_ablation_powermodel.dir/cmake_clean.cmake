file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_powermodel.dir/bench_ablation_powermodel.cc.o"
  "CMakeFiles/bench_ablation_powermodel.dir/bench_ablation_powermodel.cc.o.d"
  "bench_ablation_powermodel"
  "bench_ablation_powermodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_powermodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
