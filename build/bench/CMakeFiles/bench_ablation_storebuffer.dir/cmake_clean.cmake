file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_storebuffer.dir/bench_ablation_storebuffer.cc.o"
  "CMakeFiles/bench_ablation_storebuffer.dir/bench_ablation_storebuffer.cc.o.d"
  "bench_ablation_storebuffer"
  "bench_ablation_storebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_storebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
