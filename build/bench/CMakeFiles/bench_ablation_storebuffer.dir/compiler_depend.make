# Empty compiler generated dependencies file for bench_ablation_storebuffer.
# This may be replaced when dependencies are built.
