file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_specint.dir/bench_table9_specint.cc.o"
  "CMakeFiles/bench_table9_specint.dir/bench_table9_specint.cc.o.d"
  "bench_table9_specint"
  "bench_table9_specint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_specint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
