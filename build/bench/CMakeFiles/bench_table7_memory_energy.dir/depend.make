# Empty dependencies file for bench_table7_memory_energy.
# This may be replaced when dependencies are built.
