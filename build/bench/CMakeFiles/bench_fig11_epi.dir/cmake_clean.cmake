file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_epi.dir/bench_fig11_epi.cc.o"
  "CMakeFiles/bench_fig11_epi.dir/bench_fig11_epi.cc.o.d"
  "bench_fig11_epi"
  "bench_fig11_epi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_epi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
