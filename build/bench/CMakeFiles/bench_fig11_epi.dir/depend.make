# Empty dependencies file for bench_fig11_epi.
# This may be replaced when dependencies are built.
