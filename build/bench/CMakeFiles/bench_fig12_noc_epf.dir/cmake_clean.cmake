file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_noc_epf.dir/bench_fig12_noc_epf.cc.o"
  "CMakeFiles/bench_fig12_noc_epf.dir/bench_fig12_noc_epf.cc.o.d"
  "bench_fig12_noc_epf"
  "bench_fig12_noc_epf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_noc_epf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
