# Empty compiler generated dependencies file for bench_table8_system_specs.
# This may be replaced when dependencies are built.
