# Empty compiler generated dependencies file for piton_tests.
# This may be replaced when dependencies are built.
