
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch_basics.cc" "tests/CMakeFiles/piton_tests.dir/test_arch_basics.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_arch_basics.cc.o.d"
  "/root/repo/tests/test_board_sim.cc" "tests/CMakeFiles/piton_tests.dir/test_board_sim.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_board_sim.cc.o.d"
  "/root/repo/tests/test_chip.cc" "tests/CMakeFiles/piton_tests.dir/test_chip.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_chip.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/piton_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/piton_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/piton_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_corners.cc" "tests/CMakeFiles/piton_tests.dir/test_corners.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_corners.cc.o.d"
  "/root/repo/tests/test_experiments.cc" "tests/CMakeFiles/piton_tests.dir/test_experiments.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_experiments.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/piton_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/piton_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_mem_system.cc" "tests/CMakeFiles/piton_tests.dir/test_mem_system.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_mem_system.cc.o.d"
  "/root/repo/tests/test_multichip.cc" "tests/CMakeFiles/piton_tests.dir/test_multichip.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_multichip.cc.o.d"
  "/root/repo/tests/test_perfmodel.cc" "tests/CMakeFiles/piton_tests.dir/test_perfmodel.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_perfmodel.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/piton_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_powermodel_fit.cc" "tests/CMakeFiles/piton_tests.dir/test_powermodel_fit.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_powermodel_fit.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/piton_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_thermal.cc" "tests/CMakeFiles/piton_tests.dir/test_thermal.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_thermal.cc.o.d"
  "/root/repo/tests/test_trace_powercap.cc" "tests/CMakeFiles/piton_tests.dir/test_trace_powercap.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_trace_powercap.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/piton_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/piton_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piton_core.dir/DependInfo.cmake"
  "/root/repo/build/src/multichip/CMakeFiles/piton_multichip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/piton_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/piton_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/piton_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/piton_config.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/piton_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/piton_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/piton_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/piton_board.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/piton_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/piton_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/piton_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
