#include "isa/alu.hh"

namespace piton::isa
{

AluResult
evalAlu(const Instruction &inst, RegVal rs1, RegVal rs2, RegVal hwid)
{
    return evalAluOp(inst.op, inst.imm, rs1, rs2, hwid);
}

} // namespace piton::isa
