/**
 * @file
 * SPARC-V9-flavoured subset instruction set.
 *
 * The subset covers exactly what the paper's assembly tests and
 * microbenchmarks need: the fifteen instruction variants characterized
 * in Fig. 11 / Table VI, plus the glue (immediates, moves, compare,
 * unconditional branch, compare-and-swap, hardware-thread-id read, halt)
 * required to express the Int / HP / Hist microbenchmarks and the
 * memory-energy pointer loops.
 */

#ifndef PITON_ISA_INSTRUCTION_HH
#define PITON_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace piton::isa
{

/** Number of integer registers (%r0 is hardwired to zero). */
constexpr std::uint32_t kNumIntRegs = 32;
/** Number of double-precision FP registers. */
constexpr std::uint32_t kNumFpRegs = 32;

enum class Opcode : std::uint8_t
{
    Nop,
    // Integer ALU
    And,
    Or,
    Xor,
    Add,
    Sub,
    Sll,   ///< shift left logical
    Srl,   ///< shift right logical
    Mulx,
    Sdivx,
    // Floating point, double precision
    Faddd,
    Fmuld,
    Fdivd,
    // Floating point, single precision
    Fadds,
    Fmuls,
    Fdivs,
    // Memory (64-bit)
    Ldx,
    Stx,
    Casx, ///< compare-and-swap, the synchronisation primitive for locks
    // Control
    Cmp,  ///< subtract and set condition codes (subcc into %g0)
    Beq,
    Bne,
    Bg,
    Bl,
    Ba,   ///< branch always
    // Pseudo / housekeeping
    SetImm, ///< load a 64-bit immediate (sethi+or expansion collapsed)
    Mov,
    Rdhwid, ///< read global hardware thread id (tile*threadsPerCore + tid)
    Halt,   ///< thread finished

    NumOpcodes
};

/**
 * Instruction classes used for energy accounting and latency lookup.
 * These correspond to the x-axis groups of Fig. 11.
 */
enum class InstClass : std::uint8_t
{
    Nop,
    IntSimple,  ///< and/or/xor/add/sub/shift/cmp/mov/set/rdhwid
    IntMul,
    IntDiv,
    FpAddD,
    FpMulD,
    FpDivD,
    FpAddS,
    FpMulS,
    FpDivS,
    Load,
    Store,
    Atomic,
    Branch,
    Halt,

    NumClasses
};

/** A decoded instruction. Branch targets are instruction indices. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;   ///< destination register
    std::uint8_t rs1 = 0;  ///< first source register
    std::uint8_t rs2 = 0;  ///< second source register (if !useImm)
    bool useImm = false;   ///< rs2 replaced by immediate operand
    bool fp = false;       ///< register fields index the FP register file
    std::int64_t imm = 0;  ///< immediate / memory displacement / SetImm value
    std::uint32_t target = 0; ///< branch target (instruction index)
};

/** Map an opcode to its energy/latency class. */
InstClass classOf(Opcode op);

/** Mnemonic for diagnostics and the assembler round trip. */
const char *mnemonic(Opcode op);
const char *className(InstClass c);

/** True for beq/bne/bg/bl/ba. */
bool isBranch(Opcode op);
/** True for ldx/stx/casx. */
bool isMemory(Opcode op);

/**
 * Core-pipeline latency in cycles of each instruction class, per the
 * paper's Table VI ("Instruction latencies used in EPI calculations").
 * Load latency is the L1-hit case; Store is the store-buffer-has-space
 * case; misses add memory-system latency on top.
 */
struct LatencyTable
{
    std::uint32_t nop = 1;
    std::uint32_t intSimple = 1;
    std::uint32_t intMul = 11;
    std::uint32_t intDiv = 72;
    std::uint32_t fpAddD = 22;
    std::uint32_t fpMulD = 25;
    std::uint32_t fpDivD = 79;
    std::uint32_t fpAddS = 22;
    std::uint32_t fpMulS = 25;
    std::uint32_t fpDivS = 50;
    std::uint32_t loadL1Hit = 3;
    std::uint32_t store = 10;
    std::uint32_t atomic = 10;
    std::uint32_t branch = 3;

    std::uint32_t latencyOf(InstClass c) const;
};

} // namespace piton::isa

#endif // PITON_ISA_INSTRUCTION_HH
