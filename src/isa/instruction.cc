#include "isa/instruction.hh"

#include "common/logging.hh"

namespace piton::isa
{

InstClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return InstClass::Nop;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Cmp:
      case Opcode::SetImm:
      case Opcode::Mov:
      case Opcode::Rdhwid:
        return InstClass::IntSimple;
      case Opcode::Mulx:
        return InstClass::IntMul;
      case Opcode::Sdivx:
        return InstClass::IntDiv;
      case Opcode::Faddd:
        return InstClass::FpAddD;
      case Opcode::Fmuld:
        return InstClass::FpMulD;
      case Opcode::Fdivd:
        return InstClass::FpDivD;
      case Opcode::Fadds:
        return InstClass::FpAddS;
      case Opcode::Fmuls:
        return InstClass::FpMulS;
      case Opcode::Fdivs:
        return InstClass::FpDivS;
      case Opcode::Ldx:
        return InstClass::Load;
      case Opcode::Stx:
        return InstClass::Store;
      case Opcode::Casx:
        return InstClass::Atomic;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Bg:
      case Opcode::Bl:
      case Opcode::Ba:
        return InstClass::Branch;
      case Opcode::Halt:
        return InstClass::Halt;
      default:
        piton_panic("classOf: unknown opcode %d", static_cast<int>(op));
    }
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Mulx: return "mulx";
      case Opcode::Sdivx: return "sdivx";
      case Opcode::Faddd: return "faddd";
      case Opcode::Fmuld: return "fmuld";
      case Opcode::Fdivd: return "fdivd";
      case Opcode::Fadds: return "fadds";
      case Opcode::Fmuls: return "fmuls";
      case Opcode::Fdivs: return "fdivs";
      case Opcode::Ldx: return "ldx";
      case Opcode::Stx: return "stx";
      case Opcode::Casx: return "casx";
      case Opcode::Cmp: return "cmp";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Bg: return "bg";
      case Opcode::Bl: return "bl";
      case Opcode::Ba: return "ba";
      case Opcode::SetImm: return "set";
      case Opcode::Mov: return "mov";
      case Opcode::Rdhwid: return "rdhwid";
      case Opcode::Halt: return "halt";
      default:
        piton_panic("mnemonic: unknown opcode %d", static_cast<int>(op));
    }
}

const char *
className(InstClass c)
{
    switch (c) {
      case InstClass::Nop: return "nop";
      case InstClass::IntSimple: return "int";
      case InstClass::IntMul: return "int-mul";
      case InstClass::IntDiv: return "int-div";
      case InstClass::FpAddD: return "fp-add-d";
      case InstClass::FpMulD: return "fp-mul-d";
      case InstClass::FpDivD: return "fp-div-d";
      case InstClass::FpAddS: return "fp-add-s";
      case InstClass::FpMulS: return "fp-mul-s";
      case InstClass::FpDivS: return "fp-div-s";
      case InstClass::Load: return "load";
      case InstClass::Store: return "store";
      case InstClass::Atomic: return "atomic";
      case InstClass::Branch: return "branch";
      case InstClass::Halt: return "halt";
      default:
        piton_panic("className: unknown class %d", static_cast<int>(c));
    }
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Bg:
      case Opcode::Bl:
      case Opcode::Ba:
        return true;
      default:
        return false;
    }
}

bool
isMemory(Opcode op)
{
    return op == Opcode::Ldx || op == Opcode::Stx || op == Opcode::Casx;
}

std::uint32_t
LatencyTable::latencyOf(InstClass c) const
{
    switch (c) {
      case InstClass::Nop: return nop;
      case InstClass::IntSimple: return intSimple;
      case InstClass::IntMul: return intMul;
      case InstClass::IntDiv: return intDiv;
      case InstClass::FpAddD: return fpAddD;
      case InstClass::FpMulD: return fpMulD;
      case InstClass::FpDivD: return fpDivD;
      case InstClass::FpAddS: return fpAddS;
      case InstClass::FpMulS: return fpMulS;
      case InstClass::FpDivS: return fpDivS;
      case InstClass::Load: return loadL1Hit;
      case InstClass::Store: return store;
      case InstClass::Atomic: return atomic;
      case InstClass::Branch: return branch;
      case InstClass::Halt: return 1;
      default:
        piton_panic("latencyOf: unknown class %d", static_cast<int>(c));
    }
}

} // namespace piton::isa
