/**
 * @file
 * Program container and builder API.
 *
 * A Program is a flat vector of decoded instructions with resolved
 * branch targets, plus a base address used for instruction-cache
 * modelling.  ProgramBuilder offers the fluent interface the workload
 * generators use (the paper's "assembly test" generators: unrolled
 * instruction loops, pointer-chasing loads, store/nop interleavings).
 */

#ifndef PITON_ISA_PROGRAM_HH
#define PITON_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace piton::isa
{

/** Bytes occupied by one instruction in the modelled I-memory. */
constexpr Addr kInstBytes = 4;

/** Dispatch groups the issue engine switches on (fast-path decode). */
enum class IssueKind : std::uint8_t
{
    Alu,    ///< ALU / FP / pseudo ops (the issue engine's default case)
    Load,   ///< ldx
    Store,  ///< stx
    Cas,    ///< casx
    Branch, ///< beq/bne/bg/bl/ba
    Halt,
};

/**
 * Per-instruction record predecoded once at Program construction, so
 * the issue engine never re-derives the energy class, issue latency,
 * PC, or dispatch group on the per-instruction hot path.  Latencies
 * come from the default LatencyTable (Table VI), the same table every
 * core uses.  The record also mirrors the operand fields of the source
 * Instruction so a single 32-byte stream feeds the issue engine.
 */
struct DecodedInst
{
    std::int64_t imm = 0;                 ///< immediate / displacement
    Addr pc = 0;                          ///< pcOf(index)
    std::uint32_t target = 0;             ///< branch target (index)
    std::uint32_t latency = 1;            ///< LatencyTable::latencyOf(cls)
    InstClass cls = InstClass::Nop;       ///< classOf(op)
    IssueKind kind = IssueKind::Alu;
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    bool useImm = false;                  ///< operand-selector flags
    bool fp = false;
};
static_assert(sizeof(DecodedInst) == 32, "keep the issue stream compact");

/** Dispatch group of an opcode (predecode; see IssueKind). */
IssueKind issueKindOf(Opcode op);

/** An executable program image. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> insts, Addr base = 0x10000)
        : insts_(std::move(insts)), base_(base)
    {
        predecode();
    }

    const Instruction &at(std::uint32_t index) const { return insts_[index]; }
    /** Predecoded fast-path record for an instruction index. */
    const DecodedInst &decoded(std::uint32_t index) const
    {
        return decoded_[index];
    }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(insts_.size());
    }
    bool empty() const { return insts_.empty(); }

    /** Base address of instruction 0 (for I-cache modelling). */
    Addr baseAddr() const { return base_; }
    /** PC of an instruction index. */
    Addr pcOf(std::uint32_t index) const { return base_ + index * kInstBytes; }

    /** Code footprint in bytes (drives I-cache fit). */
    Addr footprintBytes() const { return size() * kInstBytes; }

    const std::vector<Instruction> &instructions() const { return insts_; }

  private:
    void predecode();

    std::vector<Instruction> insts_;
    std::vector<DecodedInst> decoded_;
    Addr base_ = 0x10000;
};

/**
 * Fluent builder with label-based branch resolution.  Register operands
 * are plain integer indices; %r0 reads as zero and ignores writes.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Addr base = 0x10000) : base_(base) {}

    /** Define a label at the current position. */
    ProgramBuilder &label(const std::string &name);

    ProgramBuilder &nop();
    ProgramBuilder &halt();

    // Three-register ALU forms: rd = rs1 op rs2.
    ProgramBuilder &andr(int rd, int rs1, int rs2);
    ProgramBuilder &orr(int rd, int rs1, int rs2);
    ProgramBuilder &xorr(int rd, int rs1, int rs2);
    ProgramBuilder &add(int rd, int rs1, int rs2);
    ProgramBuilder &sub(int rd, int rs1, int rs2);
    ProgramBuilder &mulx(int rd, int rs1, int rs2);
    ProgramBuilder &sdivx(int rd, int rs1, int rs2);

    // Immediate ALU forms: rd = rs1 op imm.
    ProgramBuilder &addi(int rd, int rs1, std::int64_t imm);
    ProgramBuilder &subi(int rd, int rs1, std::int64_t imm);
    ProgramBuilder &andi(int rd, int rs1, std::int64_t imm);
    ProgramBuilder &slli(int rd, int rs1, std::int64_t imm);
    ProgramBuilder &srli(int rd, int rs1, std::int64_t imm);

    // Floating point (FP register file indices).
    ProgramBuilder &faddd(int frd, int frs1, int frs2);
    ProgramBuilder &fmuld(int frd, int frs1, int frs2);
    ProgramBuilder &fdivd(int frd, int frs1, int frs2);
    ProgramBuilder &fadds(int frd, int frs1, int frs2);
    ProgramBuilder &fmuls(int frd, int frs1, int frs2);
    ProgramBuilder &fdivs(int frd, int frs1, int frs2);

    // Memory: address is rs1 + displacement.
    ProgramBuilder &ldx(int rd, int rs1, std::int64_t disp = 0);
    ProgramBuilder &stx(int rs_data, int rs1_addr, std::int64_t disp = 0);
    /** casx [rs1], rs2(expected), rd(swap/result). */
    ProgramBuilder &casx(int rd, int rs1, int rs2);

    // Control.
    ProgramBuilder &cmp(int rs1, int rs2);
    ProgramBuilder &cmpi(int rs1, std::int64_t imm);
    ProgramBuilder &beq(const std::string &target);
    ProgramBuilder &bne(const std::string &target);
    ProgramBuilder &bg(const std::string &target);
    ProgramBuilder &bl(const std::string &target);
    ProgramBuilder &ba(const std::string &target);

    // Pseudo ops.
    ProgramBuilder &set(int rd, std::uint64_t value);
    /** Load an IEEE-754 double bit pattern into an FP register. */
    ProgramBuilder &setfd(int frd, double value);
    ProgramBuilder &mov(int rd, int rs);
    ProgramBuilder &rdhwid(int rd);

    /** Current instruction count (useful when sizing unrolled loops). */
    std::uint32_t position() const
    {
        return static_cast<std::uint32_t>(insts_.size());
    }

    /** Resolve all labels and produce the program. Throws on undefined
     *  labels via piton_fatal. */
    Program build();

  private:
    ProgramBuilder &emit(Instruction inst);
    ProgramBuilder &branch(Opcode op, const std::string &target);

    Addr base_;
    std::vector<Instruction> insts_;
    std::unordered_map<std::string, std::uint32_t> labels_;
    /** (instruction index, label) pairs awaiting resolution. */
    std::vector<std::pair<std::uint32_t, std::string>> fixups_;
};

} // namespace piton::isa

#endif // PITON_ISA_PROGRAM_HH
