#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

namespace piton::isa
{

namespace
{

struct Token
{
    std::string text;
};

/** Split a statement into comma-separated operand tokens. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int bracket_depth = 0;
    for (char ch : s) {
        if (ch == '[')
            ++bracket_depth;
        if (ch == ']')
            --bracket_depth;
        if (ch == ',' && bracket_depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    for (auto &t : out) {
        while (!t.empty() && std::isspace(static_cast<unsigned char>(t.front())))
            t.erase(t.begin());
        while (!t.empty() && std::isspace(static_cast<unsigned char>(t.back())))
            t.pop_back();
    }
    return out;
}

struct OperandParser
{
    int line;

    [[noreturn]] void
    err(const std::string &msg) const
    {
        throw AsmError(line, msg);
    }

    bool
    isIntReg(const std::string &t) const
    {
        return t.size() >= 2 && t[0] == '%'
               && (t[1] == 'r' || t[1] == 'g');
    }

    bool
    isFpReg(const std::string &t) const
    {
        return t.size() >= 2 && t[0] == '%' && t[1] == 'f';
    }

    int
    reg(const std::string &t) const
    {
        if (!isIntReg(t) && !isFpReg(t))
            err("expected register, got '" + t + "'");
        char *end = nullptr;
        const long v = std::strtol(t.c_str() + 2, &end, 10);
        if (end == t.c_str() + 2 || *end != '\0' || v < 0
            || v >= static_cast<long>(kNumIntRegs)) {
            err("bad register '" + t + "'");
        }
        return static_cast<int>(v);
    }

    std::int64_t
    imm(const std::string &t) const
    {
        char *end = nullptr;
        errno = 0;
        // strtoull handles the full 64-bit unsigned range (e.g.
        // 0xAAAA... patterns) and negative decimals via wraparound.
        const bool negative = !t.empty() && t[0] == '-';
        std::int64_t v;
        if (negative) {
            v = std::strtoll(t.c_str(), &end, 0);
        } else {
            v = static_cast<std::int64_t>(std::strtoull(t.c_str(), &end, 0));
        }
        if (end == t.c_str() || *end != '\0')
            err("bad immediate '" + t + "'");
        return v;
    }

    /** Parse "[%rN]" or "[%rN + disp]" or "[%rN - disp]". */
    std::pair<int, std::int64_t>
    memOperand(const std::string &t) const
    {
        if (t.size() < 2 || t.front() != '[' || t.back() != ']')
            err("expected memory operand [..], got '" + t + "'");
        std::string inner = t.substr(1, t.size() - 2);
        // Find +/- separating base and displacement (skip leading sign).
        std::size_t pos = std::string::npos;
        for (std::size_t i = 1; i < inner.size(); ++i) {
            if (inner[i] == '+' || inner[i] == '-') {
                pos = i;
                break;
            }
        }
        std::string base = inner;
        std::int64_t disp = 0;
        if (pos != std::string::npos) {
            base = inner.substr(0, pos);
            const bool negative = inner[pos] == '-';
            std::string dstr = inner.substr(pos + 1);
            while (!dstr.empty()
                   && std::isspace(static_cast<unsigned char>(dstr.front())))
                dstr.erase(dstr.begin());
            disp = imm(dstr);
            if (negative)
                disp = -disp;
        }
        while (!base.empty()
               && std::isspace(static_cast<unsigned char>(base.back())))
            base.pop_back();
        return {reg(base), disp};
    }
};

} // namespace

Program
assemble(const std::string &source, Addr base)
{
    ProgramBuilder b(base);
    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    // Track labels here so undefined/duplicate labels surface as
    // AsmError with a line number (ProgramBuilder treats them as
    // programmatic misuse and terminates).
    std::unordered_map<std::string, int> defined;   // name -> line
    std::unordered_map<std::string, int> referenced; // name -> first line
    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments.
        for (const char c : {'!', '#', ';'}) {
            const auto pos = raw.find(c);
            if (pos != std::string::npos)
                raw.erase(pos);
        }
        // Trim.
        std::string s = raw;
        while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
            s.erase(s.begin());
        while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
            s.pop_back();
        if (s.empty())
            continue;

        // Label?
        if (s.back() == ':') {
            std::string name = s.substr(0, s.size() - 1);
            if (name.empty())
                throw AsmError(line_no, "empty label");
            if (defined.count(name))
                throw AsmError(line_no, "duplicate label '" + name + "'");
            defined.emplace(name, line_no);
            b.label(name);
            continue;
        }

        // Mnemonic and operand string.
        std::size_t sp = s.find_first_of(" \t");
        std::string mn = (sp == std::string::npos) ? s : s.substr(0, sp);
        std::string rest = (sp == std::string::npos) ? "" : s.substr(sp + 1);
        for (auto &ch : mn)
            ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        auto ops = splitOperands(rest);
        OperandParser p{line_no};

        auto expect = [&](std::size_t n) {
            if (ops.size() != n) {
                throw AsmError(line_no, mn + " expects "
                                            + std::to_string(n)
                                            + " operands, got "
                                            + std::to_string(ops.size()));
            }
        };

        auto alu3 = [&](auto regForm, auto immForm) {
            expect(3);
            if (p.isIntReg(ops[1])) {
                (b.*regForm)(p.reg(ops[2]), p.reg(ops[0]), p.reg(ops[1]));
            } else {
                (b.*immForm)(p.reg(ops[2]), p.reg(ops[0]), p.imm(ops[1]));
            }
        };

        auto fp3 = [&](auto form) {
            expect(3);
            (b.*form)(p.reg(ops[2]), p.reg(ops[0]), p.reg(ops[1]));
        };

        if (mn == "nop") {
            expect(0);
            b.nop();
        } else if (mn == "halt") {
            expect(0);
            b.halt();
        } else if (mn == "add") {
            alu3(static_cast<ProgramBuilder &(ProgramBuilder::*)(int, int, int)>(
                     &ProgramBuilder::add),
                 &ProgramBuilder::addi);
        } else if (mn == "sub") {
            alu3(&ProgramBuilder::sub, &ProgramBuilder::subi);
        } else if (mn == "and") {
            alu3(&ProgramBuilder::andr, &ProgramBuilder::andi);
        } else if (mn == "sll" || mn == "srl") {
            expect(3);
            if (p.isIntReg(ops[1]))
                throw AsmError(line_no,
                               mn + " supports immediate shift amounts only");
            if (mn == "sll")
                b.slli(p.reg(ops[2]), p.reg(ops[0]), p.imm(ops[1]));
            else
                b.srli(p.reg(ops[2]), p.reg(ops[0]), p.imm(ops[1]));
        } else if (mn == "or") {
            expect(3);
            b.orr(p.reg(ops[2]), p.reg(ops[0]), p.reg(ops[1]));
        } else if (mn == "xor") {
            expect(3);
            b.xorr(p.reg(ops[2]), p.reg(ops[0]), p.reg(ops[1]));
        } else if (mn == "mulx") {
            expect(3);
            b.mulx(p.reg(ops[2]), p.reg(ops[0]), p.reg(ops[1]));
        } else if (mn == "sdivx") {
            expect(3);
            b.sdivx(p.reg(ops[2]), p.reg(ops[0]), p.reg(ops[1]));
        } else if (mn == "faddd") {
            fp3(&ProgramBuilder::faddd);
        } else if (mn == "fmuld") {
            fp3(&ProgramBuilder::fmuld);
        } else if (mn == "fdivd") {
            fp3(&ProgramBuilder::fdivd);
        } else if (mn == "fadds") {
            fp3(&ProgramBuilder::fadds);
        } else if (mn == "fmuls") {
            fp3(&ProgramBuilder::fmuls);
        } else if (mn == "fdivs") {
            fp3(&ProgramBuilder::fdivs);
        } else if (mn == "ldx") {
            expect(2);
            auto [breg, disp] = p.memOperand(ops[0]);
            b.ldx(p.reg(ops[1]), breg, disp);
        } else if (mn == "stx") {
            expect(2);
            auto [breg, disp] = p.memOperand(ops[1]);
            b.stx(p.reg(ops[0]), breg, disp);
        } else if (mn == "casx") {
            expect(3);
            auto [breg, disp] = p.memOperand(ops[0]);
            if (disp != 0)
                throw AsmError(line_no, "casx does not take a displacement");
            b.casx(p.reg(ops[2]), breg, p.reg(ops[1]));
        } else if (mn == "cmp") {
            expect(2);
            if (p.isIntReg(ops[1]))
                b.cmp(p.reg(ops[0]), p.reg(ops[1]));
            else
                b.cmpi(p.reg(ops[0]), p.imm(ops[1]));
        } else if (mn == "beq" || mn == "bne" || mn == "bg" || mn == "bl"
                   || mn == "ba") {
            expect(1);
            referenced.try_emplace(ops[0], line_no);
            if (mn == "beq")
                b.beq(ops[0]);
            else if (mn == "bne")
                b.bne(ops[0]);
            else if (mn == "bg")
                b.bg(ops[0]);
            else if (mn == "bl")
                b.bl(ops[0]);
            else
                b.ba(ops[0]);
        } else if (mn == "set") {
            expect(2);
            b.set(p.reg(ops[1]), static_cast<std::uint64_t>(p.imm(ops[0])));
        } else if (mn == "mov") {
            expect(2);
            b.mov(p.reg(ops[1]), p.reg(ops[0]));
        } else if (mn == "rdhwid") {
            expect(1);
            b.rdhwid(p.reg(ops[0]));
        } else {
            throw AsmError(line_no, "unknown mnemonic '" + mn + "'");
        }
    }
    for (const auto &[name, line] : referenced) {
        if (!defined.count(name))
            throw AsmError(line, "undefined label '" + name + "'");
    }
    return b.build();
}

} // namespace piton::isa
