#include "isa/program.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace piton::isa
{

namespace
{

std::uint8_t
checkReg(int r)
{
    piton_assert(r >= 0 && r < static_cast<int>(kNumIntRegs),
                 "register index %d out of range", r);
    return static_cast<std::uint8_t>(r);
}

} // namespace

IssueKind
issueKindOf(Opcode op)
{
    switch (op) {
      case Opcode::Ldx: return IssueKind::Load;
      case Opcode::Stx: return IssueKind::Store;
      case Opcode::Casx: return IssueKind::Cas;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Bg:
      case Opcode::Bl:
      case Opcode::Ba: return IssueKind::Branch;
      case Opcode::Halt: return IssueKind::Halt;
      default: return IssueKind::Alu;
    }
}

void
Program::predecode()
{
    const LatencyTable lat;
    decoded_.resize(insts_.size());
    for (std::uint32_t i = 0; i < size(); ++i) {
        const Instruction &inst = insts_[i];
        DecodedInst &d = decoded_[i];
        d.pc = pcOf(i);
        d.cls = classOf(inst.op);
        d.latency = lat.latencyOf(d.cls);
        d.kind = issueKindOf(inst.op);
        d.op = inst.op;
        d.imm = inst.imm;
        d.target = inst.target;
        d.rd = inst.rd;
        d.rs1 = inst.rs1;
        d.rs2 = inst.rs2;
        d.useImm = inst.useImm;
        d.fp = inst.fp;
    }
}

ProgramBuilder &
ProgramBuilder::emit(Instruction inst)
{
    insts_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    const auto [it, inserted] =
        labels_.emplace(name, static_cast<std::uint32_t>(insts_.size()));
    if (!inserted)
        piton_fatal("duplicate label '%s'", name.c_str());
    (void)it;
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit(Instruction{});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return emit(i);
}

#define PITON_ALU3(method, opcode)                                           \
    ProgramBuilder &ProgramBuilder::method(int rd, int rs1, int rs2)         \
    {                                                                         \
        Instruction i;                                                        \
        i.op = Opcode::opcode;                                                \
        i.rd = checkReg(rd);                                                  \
        i.rs1 = checkReg(rs1);                                                \
        i.rs2 = checkReg(rs2);                                                \
        return emit(i);                                                       \
    }

PITON_ALU3(andr, And)
PITON_ALU3(orr, Or)
PITON_ALU3(xorr, Xor)
PITON_ALU3(add, Add)
PITON_ALU3(sub, Sub)
PITON_ALU3(mulx, Mulx)
PITON_ALU3(sdivx, Sdivx)
#undef PITON_ALU3

#define PITON_ALUI(method, opcode)                                           \
    ProgramBuilder &ProgramBuilder::method(int rd, int rs1,                   \
                                           std::int64_t imm)                  \
    {                                                                         \
        Instruction i;                                                        \
        i.op = Opcode::opcode;                                                \
        i.rd = checkReg(rd);                                                  \
        i.rs1 = checkReg(rs1);                                                \
        i.useImm = true;                                                      \
        i.imm = imm;                                                          \
        return emit(i);                                                       \
    }

PITON_ALUI(addi, Add)
PITON_ALUI(subi, Sub)
PITON_ALUI(andi, And)
PITON_ALUI(slli, Sll)
PITON_ALUI(srli, Srl)
#undef PITON_ALUI

#define PITON_FP3(method, opcode)                                            \
    ProgramBuilder &ProgramBuilder::method(int frd, int frs1, int frs2)       \
    {                                                                         \
        Instruction i;                                                        \
        i.op = Opcode::opcode;                                                \
        i.fp = true;                                                          \
        i.rd = checkReg(frd);                                                 \
        i.rs1 = checkReg(frs1);                                               \
        i.rs2 = checkReg(frs2);                                               \
        return emit(i);                                                       \
    }

PITON_FP3(faddd, Faddd)
PITON_FP3(fmuld, Fmuld)
PITON_FP3(fdivd, Fdivd)
PITON_FP3(fadds, Fadds)
PITON_FP3(fmuls, Fmuls)
PITON_FP3(fdivs, Fdivs)
#undef PITON_FP3

ProgramBuilder &
ProgramBuilder::ldx(int rd, int rs1, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::Ldx;
    i.rd = checkReg(rd);
    i.rs1 = checkReg(rs1);
    i.useImm = true;
    i.imm = disp;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::stx(int rs_data, int rs1_addr, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::Stx;
    i.rd = checkReg(rs_data); // data register travels in rd, SPARC-style
    i.rs1 = checkReg(rs1_addr);
    i.useImm = true;
    i.imm = disp;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::casx(int rd, int rs1, int rs2)
{
    Instruction i;
    i.op = Opcode::Casx;
    i.rd = checkReg(rd);
    i.rs1 = checkReg(rs1);
    i.rs2 = checkReg(rs2);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::cmp(int rs1, int rs2)
{
    Instruction i;
    i.op = Opcode::Cmp;
    i.rs1 = checkReg(rs1);
    i.rs2 = checkReg(rs2);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::cmpi(int rs1, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::Cmp;
    i.rs1 = checkReg(rs1);
    i.useImm = true;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::branch(Opcode op, const std::string &target)
{
    Instruction i;
    i.op = op;
    fixups_.emplace_back(static_cast<std::uint32_t>(insts_.size()), target);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::beq(const std::string &t)
{
    return branch(Opcode::Beq, t);
}
ProgramBuilder &
ProgramBuilder::bne(const std::string &t)
{
    return branch(Opcode::Bne, t);
}
ProgramBuilder &
ProgramBuilder::bg(const std::string &t)
{
    return branch(Opcode::Bg, t);
}
ProgramBuilder &
ProgramBuilder::bl(const std::string &t)
{
    return branch(Opcode::Bl, t);
}
ProgramBuilder &
ProgramBuilder::ba(const std::string &t)
{
    return branch(Opcode::Ba, t);
}

ProgramBuilder &
ProgramBuilder::set(int rd, std::uint64_t value)
{
    Instruction i;
    i.op = Opcode::SetImm;
    i.rd = checkReg(rd);
    i.useImm = true;
    i.imm = static_cast<std::int64_t>(value);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::setfd(int frd, double value)
{
    Instruction i;
    i.op = Opcode::SetImm;
    i.fp = true;
    i.rd = checkReg(frd);
    i.useImm = true;
    i.imm = static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value));
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::mov(int rd, int rs)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = checkReg(rd);
    i.rs1 = checkReg(rs);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::rdhwid(int rd)
{
    Instruction i;
    i.op = Opcode::Rdhwid;
    i.rd = checkReg(rd);
    return emit(i);
}

Program
ProgramBuilder::build()
{
    for (const auto &[index, name] : fixups_) {
        const auto it = labels_.find(name);
        if (it == labels_.end())
            piton_fatal("undefined label '%s'", name.c_str());
        insts_[index].target = it->second;
    }
    fixups_.clear();
    return Program(insts_, base_);
}

} // namespace piton::isa
