/**
 * @file
 * Small SPARC-flavoured text assembler.
 *
 * The real experimental system loads assembly tests over the serial
 * port; this assembler is the equivalent entry point for textual test
 * programs.  Syntax (one instruction per line, '!' '#' or ';' comments):
 *
 *   loop:
 *       set 0xdeadbeef, %r1
 *       add %r1, %r2, %r3        ! rd is last, SPARC-style
 *       add %r1, 8, %r3          ! immediate second operand
 *       ldx [%r1 + 16], %r4
 *       stx %r4, [%r1 + 24]
 *       casx [%r1], %r2, %r3
 *       cmp %r1, %r2
 *       beq loop
 *       rdhwid %r5
 *       halt
 *
 * Integer registers are %r0..%r31 (%g0 is an alias for %r0); FP
 * registers are %f0..%f31.
 */

#ifndef PITON_ISA_ASSEMBLER_HH
#define PITON_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace piton::isa
{

/** Raised on any syntax or semantic error, with a line number. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string &what)
        : std::runtime_error("line " + std::to_string(line) + ": " + what),
          line_(line)
    {}

    int line() const { return line_; }

  private:
    int line_;
};

/** Assemble source text into a Program. Throws AsmError on failure. */
Program assemble(const std::string &source, Addr base = 0x10000);

} // namespace piton::isa

#endif // PITON_ISA_ASSEMBLER_HH
