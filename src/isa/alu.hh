/**
 * @file
 * Functional semantics of the non-memory instructions.
 *
 * Kept separate from the timing core so that (a) tests can validate
 * semantics in isolation and (b) the power model can be fed the exact
 * source operand values, which the paper shows have a first-order effect
 * on EPI (Fig. 11's min/random/max operand series).
 */

#ifndef PITON_ISA_ALU_HH
#define PITON_ISA_ALU_HH

#include "common/types.hh"
#include "isa/instruction.hh"

namespace piton::isa
{

/** Integer condition codes (the subset branches consume). */
struct CondCodes
{
    bool zero = false;
    bool negative = false;
};

/** Outcome of executing a non-memory, non-branch instruction. */
struct AluResult
{
    RegVal value = 0;     ///< result to write to rd (if writesRd)
    bool writesRd = false;
    bool setsCc = false;
    CondCodes cc;
};

/**
 * Evaluate an ALU/FP/pseudo instruction.
 *
 * @param inst  The instruction (must not be a memory or branch op).
 * @param rs1   First source operand value (integer or FP bit pattern).
 * @param rs2   Second source operand value or sign-extended immediate.
 * @param hwid  Global hardware thread id (for Rdhwid).
 */
AluResult evalAlu(const Instruction &inst, RegVal rs1, RegVal rs2,
                  RegVal hwid = 0);

/** Whether a branch opcode is taken under the given condition codes. */
bool branchTaken(Opcode op, CondCodes cc);

} // namespace piton::isa

#endif // PITON_ISA_ALU_HH
