/**
 * @file
 * Functional semantics of the non-memory instructions.
 *
 * Kept separate from the timing core so that (a) tests can validate
 * semantics in isolation and (b) the power model can be fed the exact
 * source operand values, which the paper shows have a first-order effect
 * on EPI (Fig. 11's min/random/max operand series).
 *
 * evalAluOp / branchTaken are defined inline: they sit inside the issue
 * engine's per-cycle loop, where an out-of-line call forces operand
 * spills around every instruction evaluated.
 */

#ifndef PITON_ISA_ALU_HH
#define PITON_ISA_ALU_HH

#include <bit>
#include <cstdint>
#include <limits>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace piton::isa
{

/** Integer condition codes (the subset branches consume). */
struct CondCodes
{
    bool zero = false;
    bool negative = false;
};

/** Outcome of executing a non-memory, non-branch instruction. */
struct AluResult
{
    RegVal value = 0;     ///< result to write to rd (if writesRd)
    bool writesRd = false;
    bool setsCc = false;
    CondCodes cc;
};

namespace detail
{

inline RegVal
fpBinD(Opcode op, RegVal a_bits, RegVal b_bits)
{
    const double a = std::bit_cast<double>(a_bits);
    const double b = std::bit_cast<double>(b_bits);
    double r = 0.0;
    switch (op) {
      case Opcode::Faddd: r = a + b; break;
      case Opcode::Fmuld: r = a * b; break;
      case Opcode::Fdivd: r = a / b; break;
      default:
        piton_panic("fpBinD: bad opcode");
    }
    return std::bit_cast<RegVal>(r);
}

inline RegVal
fpBinS(Opcode op, RegVal a_bits, RegVal b_bits)
{
    // Single-precision values live in the low 32 bits of the register.
    const float a = std::bit_cast<float>(static_cast<std::uint32_t>(a_bits));
    const float b = std::bit_cast<float>(static_cast<std::uint32_t>(b_bits));
    float r = 0.0f;
    switch (op) {
      case Opcode::Fadds: r = a + b; break;
      case Opcode::Fmuls: r = a * b; break;
      case Opcode::Fdivs: r = a / b; break;
      default:
        piton_panic("fpBinS: bad opcode");
    }
    return static_cast<RegVal>(std::bit_cast<std::uint32_t>(r));
}

inline std::int64_t
signedDiv(std::int64_t a, std::int64_t b)
{
    // SPARC traps on divide-by-zero; the simulator defines the result as
    // zero so stress loops with arbitrary operands remain runnable.
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return a; // wraps, matching two's-complement hardware
    return a / b;
}

} // namespace detail

/**
 * Evaluate an ALU/FP/pseudo instruction.
 *
 * @param inst  The instruction (must not be a memory or branch op).
 * @param rs1   First source operand value (integer or FP bit pattern).
 * @param rs2   Second source operand value or sign-extended immediate.
 * @param hwid  Global hardware thread id (for Rdhwid).
 */
AluResult evalAlu(const Instruction &inst, RegVal rs1, RegVal rs2,
                  RegVal hwid = 0);

/** Operand-resolved form for predecoded issue (the hot path): the
 *  opcode and immediate come from the DecodedInst record, so the
 *  issue engine never touches the Instruction stream.  Forced inline:
 *  the inliner sees a big switch, but every caller is a per-cycle
 *  issue loop where the call's operand spills dominate the dispatch. */
#if defined(__GNUC__)
[[gnu::always_inline]]
#endif
inline AluResult
evalAluOp(Opcode op, std::int64_t imm, RegVal rs1, RegVal rs2, RegVal hwid)
{
    AluResult out;
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return out;
      case Opcode::And:
        out.value = rs1 & rs2;
        out.writesRd = true;
        return out;
      case Opcode::Or:
        out.value = rs1 | rs2;
        out.writesRd = true;
        return out;
      case Opcode::Xor:
        out.value = rs1 ^ rs2;
        out.writesRd = true;
        return out;
      case Opcode::Add:
        out.value = rs1 + rs2;
        out.writesRd = true;
        return out;
      case Opcode::Sub:
        out.value = rs1 - rs2;
        out.writesRd = true;
        return out;
      case Opcode::Sll:
        out.value = rs1 << (rs2 & 63);
        out.writesRd = true;
        return out;
      case Opcode::Srl:
        out.value = rs1 >> (rs2 & 63);
        out.writesRd = true;
        return out;
      case Opcode::Mulx:
        out.value = rs1 * rs2;
        out.writesRd = true;
        return out;
      case Opcode::Sdivx:
        out.value = static_cast<RegVal>(
            detail::signedDiv(static_cast<std::int64_t>(rs1),
                              static_cast<std::int64_t>(rs2)));
        out.writesRd = true;
        return out;
      case Opcode::Faddd:
      case Opcode::Fmuld:
      case Opcode::Fdivd:
        out.value = detail::fpBinD(op, rs1, rs2);
        out.writesRd = true;
        return out;
      case Opcode::Fadds:
      case Opcode::Fmuls:
      case Opcode::Fdivs:
        out.value = detail::fpBinS(op, rs1, rs2);
        out.writesRd = true;
        return out;
      case Opcode::Cmp: {
        const RegVal diff = rs1 - rs2;
        out.setsCc = true;
        out.cc.zero = diff == 0;
        out.cc.negative = static_cast<std::int64_t>(diff) < 0;
        return out;
      }
      case Opcode::SetImm:
        out.value = static_cast<RegVal>(imm);
        out.writesRd = true;
        return out;
      case Opcode::Mov:
        out.value = rs1;
        out.writesRd = true;
        return out;
      case Opcode::Rdhwid:
        out.value = hwid;
        out.writesRd = true;
        return out;
      default:
        piton_panic("evalAlu: opcode %s is not an ALU op",
                    mnemonic(op));
    }
}

/** Whether a branch opcode is taken under the given condition codes. */
inline bool
branchTaken(Opcode op, CondCodes cc)
{
    switch (op) {
      case Opcode::Beq:
        return cc.zero;
      case Opcode::Bne:
        return !cc.zero;
      case Opcode::Bg:
        return !cc.zero && !cc.negative;
      case Opcode::Bl:
        return cc.negative;
      case Opcode::Ba:
        return true;
      default:
        piton_panic("branchTaken: opcode %s is not a branch",
                    mnemonic(op));
    }
}

} // namespace piton::isa

#endif // PITON_ISA_ALU_HH
