#include "common/logging.hh"

#include <cstdarg>
#include <exception>
#include <stdexcept>

namespace piton
{

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), static_cast<size_t>(len) + 1, fmt,
                       args_copy);
    }
    va_end(args_copy);
    return out;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing instead of abort() lets tests assert on panics; the
    // exception type is deliberately distinct from std::runtime_error
    // users might catch.
    throw std::logic_error(msg + " (" + file + ":" + std::to_string(line)
                           + ")");
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace piton
