#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <exception>
#include <stdexcept>

namespace piton
{

namespace
{

std::atomic<int> gLogLevel{static_cast<int>(LogLevel::Info)};

/**
 * Emit one complete record with a single stdio call.  fwrite on a
 * FILE* is locked (flockfile) for the whole call, so two threads
 * emitting concurrently produce two intact lines in some order, never
 * an interleaving.  The record must already end in '\n'.
 */
void
emitRecord(std::FILE *stream, const std::string &record)
{
    std::fwrite(record.data(), 1, record.size(), stream);
    std::fflush(stream);
}

std::string
makeRecord(const char *tag, const std::string &msg)
{
    std::string record;
    record.reserve(msg.size() + 16);
    record += tag;
    record += msg;
    record += '\n';
    return record;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLogLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        gLogLevel.load(std::memory_order_relaxed));
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level)
           <= gLogLevel.load(std::memory_order_relaxed);
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "silent")
        out = LogLevel::Silent;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), static_cast<size_t>(len) + 1, fmt,
                       args_copy);
    }
    va_end(args_copy);
    return out;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitRecord(stderr, makeRecord("fatal: ",
                                  msg + " (" + file + ":"
                                      + std::to_string(line) + ")"));
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitRecord(stderr, makeRecord("panic: ",
                                  msg + " (" + file + ":"
                                      + std::to_string(line) + ")"));
    // Throwing instead of abort() lets tests assert on panics; the
    // exception type is deliberately distinct from std::runtime_error
    // users might catch.
    throw std::logic_error(msg + " (" + file + ":" + std::to_string(line)
                           + ")");
}

void
warnImpl(const std::string &msg)
{
    emitRecord(stderr, makeRecord("warn: ", msg));
}

void
informImpl(const std::string &msg)
{
    emitRecord(stdout, makeRecord("info: ", msg));
}

void
debugImpl(const std::string &msg)
{
    emitRecord(stderr, makeRecord("debug: ", msg));
}

} // namespace piton
