#include "common/linalg.hh"

#include <cmath>

#include "common/logging.hh"

namespace piton
{

std::vector<double>
solveLinearSystem(std::vector<double> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    piton_assert(a.size() == n * n, "matrix/vector size mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col]))
                pivot = r;
        }
        if (std::abs(a[pivot * n + col]) < 1e-12)
            return {}; // singular
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a[col * n + c], a[pivot * n + c]);
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r * n + col] / a[col * n + col];
            for (std::size_t c = col; c < n; ++c)
                a[r * n + c] -= f * a[col * n + c];
            b[r] -= f * b[col];
        }
    }

    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            sum -= a[i * n + c] * x[c];
        x[i] = sum / a[i * n + i];
    }
    return x;
}

std::vector<double>
leastSquares(const std::vector<double> &a, std::size_t rows,
             std::size_t cols, const std::vector<double> &b)
{
    piton_assert(a.size() == rows * cols && b.size() == rows,
                 "least-squares size mismatch");
    piton_assert(rows >= cols, "underdetermined system");

    // Normal equations: (A^T A) x = A^T b.
    std::vector<double> ata(cols * cols, 0.0);
    std::vector<double> atb(cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t i = 0; i < cols; ++i) {
            atb[i] += a[r * cols + i] * b[r];
            for (std::size_t j = 0; j < cols; ++j)
                ata[i * cols + j] += a[r * cols + i] * a[r * cols + j];
        }
    }
    return solveLinearSystem(std::move(ata), std::move(atb));
}

} // namespace piton
