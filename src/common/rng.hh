/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256++).
 *
 * Every stochastic element of the library (measurement noise, process
 * variation, defect placement, workload randomness) draws from an
 * explicitly seeded Rng so that all experiments are reproducible
 * bit-for-bit across runs.
 */

#ifndef PITON_COMMON_RNG_HH
#define PITON_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace piton
{

/**
 * xoshiro256++ generator. Small, fast, and high quality; satisfies the
 * UniformRandomBitGenerator requirements so it can also feed <random>
 * distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    std::uint64_t next();
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Standard normal via Box-Muller (cached second variate). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fork a decorrelated child stream (for per-component noise). */
    Rng fork();

    /**
     * Complete generator state, exposed for checkpointing: the xoshiro
     * state words plus the Box-Muller second-variate cache.  restore()
     * of a snapshot() makes the subsequent draw sequence bit-identical
     * to the original stream's continuation.
     */
    struct Snapshot
    {
        std::array<std::uint64_t, 4> s{};
        bool haveCached = false;
        double cached = 0.0;
    };
    Snapshot
    snapshot() const
    {
        return Snapshot{s_, haveCached_, cached_};
    }
    void
    restore(const Snapshot &snap)
    {
        s_ = snap.s;
        haveCached_ = snap.haveCached;
        cached_ = snap.cached;
    }

  private:
    std::array<std::uint64_t, 4> s_;
    bool haveCached_ = false;
    double cached_ = 0.0;
};

} // namespace piton

#endif // PITON_COMMON_RNG_HH
