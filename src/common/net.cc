#include "common/net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace piton::net
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in
loopbackAddr(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

} // namespace

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("fcntl(O_NONBLOCK)");
}

Socket
listenTcp(std::uint16_t port, int backlog)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        throwErrno("socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = loopbackAddr(port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0)
        throwErrno("bind 127.0.0.1:" + std::to_string(port));
    if (::listen(sock.fd(), backlog) < 0)
        throwErrno("listen");
    setNonBlocking(sock.fd());
    return sock;
}

std::uint16_t
boundPort(const Socket &sock)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        throwErrno("getsockname");
    return ntohs(addr.sin_port);
}

Socket
connectTcp(std::uint16_t port, int timeout_ms)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        throwErrno("socket");
    setNonBlocking(sock.fd());
    const sockaddr_in addr = loopbackAddr(port);
    int rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS)
        throwErrno("connect 127.0.0.1:" + std::to_string(port));
    if (rc < 0) {
        pollfd pfd{sock.fd(), POLLOUT, 0};
        rc = ::poll(&pfd, 1, timeout_ms);
        if (rc == 0)
            throw NetError("connect timeout to 127.0.0.1:"
                           + std::to_string(port));
        if (rc < 0)
            throwErrno("poll(connect)");
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0)
            throwErrno("getsockopt(SO_ERROR)");
        if (err != 0) {
            errno = err;
            throwErrno("connect 127.0.0.1:" + std::to_string(port));
        }
    }
    // Clients are synchronous: back to blocking mode.
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK);
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

Socket
acceptConnection(const Socket &listener)
{
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR
            || errno == ECONNABORTED)
            return Socket{};
        throwErrno("accept");
    }
    Socket sock(fd);
    setNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

void
sendAll(const Socket &sock, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::send(sock.fd(), p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("send");
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

bool
recvExact(const Socket &sock, void *data, std::size_t len)
{
    auto *p = static_cast<std::uint8_t *>(data);
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(sock.fd(), p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("recv");
        }
        if (n == 0) {
            if (got == 0)
                return false; // clean close at a message boundary
            throw NetError("peer closed mid-message");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno != EINTR)
        throwErrno("poll");
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

Socket
ConnectionPool::acquire(std::uint16_t port, int timeout_ms)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = idle_.find(port);
        if (it != idle_.end() && !it->second.empty()) {
            Socket sock = std::move(it->second.back());
            it->second.pop_back();
            return sock;
        }
    }
    return connectTcp(port, timeout_ms);
}

void
ConnectionPool::release(std::uint16_t port, Socket sock)
{
    if (!sock.valid())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    auto &bucket = idle_[port];
    if (bucket.size() >= maxIdle_)
        return; // sock closes on scope exit
    bucket.push_back(std::move(sock));
}

void
ConnectionPool::invalidate(std::uint16_t port)
{
    std::vector<Socket> doomed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = idle_.find(port);
        if (it == idle_.end())
            return;
        doomed = std::move(it->second);
        idle_.erase(it);
    }
    // Sockets close here, outside the lock.
}

std::size_t
ConnectionPool::idleCount(std::uint16_t port) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = idle_.find(port);
    return it == idle_.end() ? 0 : it->second.size();
}

Wakeup::Wakeup()
{
    int fds[2];
    if (::pipe(fds) < 0)
        throwErrno("pipe");
    readFd_ = Socket(fds[0]);
    writeFd_ = Socket(fds[1]);
    setNonBlocking(fds[0]);
    setNonBlocking(fds[1]);
}

Wakeup::~Wakeup() = default;

void
Wakeup::notify()
{
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] const ssize_t n =
        ::write(writeFd_.fd(), &byte, 1);
}

void
Wakeup::drain()
{
    char buf[64];
    while (::read(readFd_.fd(), buf, sizeof(buf)) > 0) {
    }
}

} // namespace piton::net
