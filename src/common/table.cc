#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace piton
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    piton_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    piton_assert(cells.size() == headers_.size(),
                 "row has %zu cells, table has %zu columns", cells.size(),
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string &cell = cells[i];
        const bool needs_quote =
            cell.find_first_of(",\"\n") != std::string::npos;
        if (needs_quote) {
            os_ << '"';
            for (char ch : cell) {
                if (ch == '"')
                    os_ << '"';
                os_ << ch;
            }
            os_ << '"';
        } else {
            os_ << cell;
        }
        if (i + 1 < cells.size())
            os_ << ',';
    }
    os_ << '\n';
}

std::string
fmtF(double value, int decimals)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << value;
    return ss.str();
}

std::string
fmtPm(double mean, double err, int decimals)
{
    return fmtF(mean, decimals) + "±" + fmtF(err, decimals);
}

} // namespace piton
