/**
 * @file
 * 128-bit content hashing for the result cache (FNV-1a-128).
 *
 * The service layer keys its content-addressed caches by a hash of the
 * canonical request encoding.  FNV-1a at 128 bits is not cryptographic
 * — a malicious client could construct collisions — but the service
 * only ever runs trusted local experiment requests, and at 128 bits
 * accidental collisions across any realistic request population are
 * negligible (~2^-64 at billions of entries).  What matters here is
 * that the hash is deterministic across runs, platforms, and build
 * types: it is computed from explicitly serialized little-endian bytes,
 * never from in-memory struct images.
 */

#ifndef PITON_COMMON_HASH_HH
#define PITON_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace piton
{

/** A 128-bit digest, comparable and printable (32 hex chars). */
struct Hash128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool
    operator==(const Hash128 &a, const Hash128 &b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }
    friend bool
    operator!=(const Hash128 &a, const Hash128 &b)
    {
        return !(a == b);
    }
    friend bool
    operator<(const Hash128 &a, const Hash128 &b)
    {
        return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
    }

    std::string hex() const;
};

/** Streaming FNV-1a-128 hasher: update() in any chunking produces the
 *  same digest as one update over the concatenation. */
class Hasher
{
  public:
    Hasher();

    Hasher &update(const void *data, std::size_t len);
    Hasher &update(const std::vector<std::uint8_t> &bytes);
    Hasher &update(const std::string &s);
    /** Little-endian fixed-width update (domain separation between
     *  adjacent variable-length fields is the caller's concern; the
     *  service hashes length-prefixed encodings, which are
     *  self-delimiting). */
    Hasher &updateU32(std::uint32_t v);
    Hasher &updateU64(std::uint64_t v);

    Hash128 digest() const;

  private:
    unsigned __int128 state_;
};

/** One-shot convenience. */
Hash128 hash128(const void *data, std::size_t len);
Hash128 hash128(const std::vector<std::uint8_t> &bytes);

/** Functor for unordered_map<Hash128, ...>. */
struct Hash128Hasher
{
    std::size_t
    operator()(const Hash128 &h) const
    {
        // The digest is already uniformly mixed; fold the halves.
        return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ULL));
    }
};

} // namespace piton

#endif // PITON_COMMON_HASH_HH
