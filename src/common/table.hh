/**
 * @file
 * Plain-text table and CSV emitters.
 *
 * Every bench binary prints the rows/series of one paper table or figure
 * through TextTable (human-readable, aligned) and can mirror the same
 * data to CSV (the paper open-sources all collected data; CsvWriter is
 * our equivalent of that release format).
 */

#ifndef PITON_COMMON_TABLE_HH
#define PITON_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace piton
{

/** Aligned fixed-width text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with column alignment and a separator under the header. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** RFC-4180-ish CSV writer (quotes cells containing commas/quotes). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    void writeRow(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;
};

/** Format a double with a fixed number of decimals. */
std::string fmtF(double value, int decimals = 2);

/** Format "mean±err" the way the paper reports measurements. */
std::string fmtPm(double mean, double err, int decimals = 1);

} // namespace piton

#endif // PITON_COMMON_TABLE_HH
