/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 *
 * Physical quantities are carried as plain doubles with the unit encoded
 * in the variable / field name suffix, following the conventions:
 *   _v (volts), _a (amps), _w (watts), _mw (milliwatts), _j (joules),
 *   _nj (nanojoules), _pj (picojoules), _mhz (megahertz), _hz (hertz),
 *   _c (degrees Celsius), _s (seconds), _mm2 (square millimetres).
 */

#ifndef PITON_COMMON_TYPES_HH
#define PITON_COMMON_TYPES_HH

#include <cstdint>

namespace piton
{

/** Simulated clock cycle count (core clock domain unless noted). */
using Cycle = std::uint64_t;

/** Physical memory address. */
using Addr = std::uint64_t;

/** 64-bit architectural register value. */
using RegVal = std::uint64_t;

/** Tile index in the 5x5 mesh, row-major: tile = y * meshWidth + x. */
using TileId = std::uint32_t;

/** Hardware thread index within a core. */
using ThreadId = std::uint32_t;

/** Unit conversion helpers. */
constexpr double mwToW(double mw) { return mw * 1e-3; }
constexpr double wToMw(double w) { return w * 1e3; }
constexpr double pjToJ(double pj) { return pj * 1e-12; }
constexpr double jToPj(double j) { return j * 1e12; }
constexpr double njToJ(double nj) { return nj * 1e-9; }
constexpr double jToNj(double j) { return j * 1e9; }
constexpr double mhzToHz(double mhz) { return mhz * 1e6; }
constexpr double hzToMhz(double hz) { return hz * 1e-6; }

} // namespace piton

#endif // PITON_COMMON_TYPES_HH
