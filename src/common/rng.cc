#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace piton
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    piton_assert(n > 0, "Rng::below requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n; // == 2^64 mod n
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (haveCached_) {
        haveCached_ = false;
        return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    cached_ = mag * std::sin(2.0 * M_PI * u2);
    haveCached_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace piton
