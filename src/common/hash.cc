#include "common/hash.hh"

namespace piton
{

namespace
{

// FNV-1a 128-bit parameters (Fowler/Noll/Vo reference values).
constexpr unsigned __int128
u128(std::uint64_t hi, std::uint64_t lo)
{
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
}

constexpr unsigned __int128 kOffsetBasis =
    u128(0x6c62272e07bb0142ULL, 0x62b821756295c58dULL);
constexpr unsigned __int128 kPrime = u128(0x0000000001000000ULL,
                                          0x000000000000013bULL);

} // namespace

Hasher::Hasher() : state_(kOffsetBasis) {}

Hasher &
Hasher::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        state_ ^= p[i];
        state_ *= kPrime;
    }
    return *this;
}

Hasher &
Hasher::update(const std::vector<std::uint8_t> &bytes)
{
    return update(bytes.data(), bytes.size());
}

Hasher &
Hasher::update(const std::string &s)
{
    return update(s.data(), s.size());
}

Hasher &
Hasher::updateU32(std::uint32_t v)
{
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return update(b, sizeof(b));
}

Hasher &
Hasher::updateU64(std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return update(b, sizeof(b));
}

Hash128
Hasher::digest() const
{
    return Hash128{static_cast<std::uint64_t>(state_ >> 64),
                   static_cast<std::uint64_t>(state_)};
}

Hash128
hash128(const void *data, std::size_t len)
{
    return Hasher().update(data, len).digest();
}

Hash128
hash128(const std::vector<std::uint8_t> &bytes)
{
    return hash128(bytes.data(), bytes.size());
}

std::string
Hash128::hex() const
{
    static const char *digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t half = i < 8 ? hi : lo;
        const int shift = 8 * (7 - (i % 8));
        const std::uint8_t byte =
            static_cast<std::uint8_t>(half >> shift);
        out[2 * i] = digits[byte >> 4];
        out[2 * i + 1] = digits[byte & 0xf];
    }
    return out;
}

} // namespace piton
