#include "common/parallel.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace piton
{

std::uint64_t
deriveTaskSeed(std::uint64_t base, std::uint64_t index)
{
    // splitmix64 finalizer over the combined pair; the odd multiplier
    // on `index` separates (base, index) from (base + 1, index - k)
    // collisions for neighbouring sweeps.
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

BoundedTaskQueue::BoundedTaskQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
}

bool
BoundedTaskQueue::push(std::function<void()> task)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock,
                  [this] { return closed_ || tasks_.size() < capacity_; });
    if (closed_)
        return false;
    tasks_.push_back(std::move(task));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
}

bool
BoundedTaskQueue::pop(std::function<void()> &task)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
    if (tasks_.empty())
        return false; // closed and drained
    task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    notFull_.notify_one();
    return true;
}

void
BoundedTaskQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
}

std::size_t
BoundedTaskQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size();
}

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : queue_(queue_capacity)
{
    const unsigned n = resolveThreadCount(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    queue_.close();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::function<void()> task;
    while (queue_.pop(task)) {
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(doneMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(doneMutex_);
            --pending_;
        }
        doneCv_.notify_all();
        task = nullptr; // release captures before blocking in pop()
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        ++pending_;
    }
    if (!queue_.push(std::move(task))) {
        std::lock_guard<std::mutex> lock(doneMutex_);
        --pending_;
        piton_panic("submit() on a closed ThreadPool");
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(doneMutex_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

WorkerGang::WorkerGang(unsigned shards)
{
    piton_assert(shards >= 1, "gang needs at least one shard");
    workers_.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

WorkerGang::~WorkerGang()
{
    stop_.store(true, std::memory_order_release);
    {
        // Lock pairs the flag with the sleepers bookkeeping so a worker
        // can't check stop_, decide to sleep, and miss this notify.
        std::lock_guard<std::mutex> lock(mutex_);
        cv_.notify_all();
    }
    for (auto &w : workers_)
        w.join();
}

void
WorkerGang::run(const std::function<void(unsigned)> &fn)
{
    if (workers_.empty()) {
        fn(0);
        return;
    }
    fn_ = &fn;
    pending_.store(static_cast<unsigned>(workers_.size()),
                   std::memory_order_relaxed);
    // The release bump publishes fn_ and pending_ to workers that
    // acquire the new epoch value.
    epoch_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sleepers_ > 0)
            cv_.notify_all();
    }
    fn(0);
    // Join barrier: each worker's release decrement pairs with this
    // acquire load, making every shard's writes visible here.
    for (std::uint32_t spins = 0;
         pending_.load(std::memory_order_acquire) != 0; ++spins) {
        if (spins >= 64)
            std::this_thread::yield();
    }
}

void
WorkerGang::workerLoop(unsigned shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t e = epoch_.load(std::memory_order_acquire);
        if (e == seen && !stop_.load(std::memory_order_acquire)) {
            // Spin (with yields, to stay fair on few-CPU hosts) before
            // parking: back-to-back rounds never touch the mutex.
            for (int i = 0; i < 256 && e == seen; ++i) {
                std::this_thread::yield();
                e = epoch_.load(std::memory_order_acquire);
                if (stop_.load(std::memory_order_acquire))
                    break;
            }
            if (e == seen && !stop_.load(std::memory_order_acquire)) {
                std::unique_lock<std::mutex> lock(mutex_);
                ++sleepers_;
                cv_.wait(lock, [&] {
                    return epoch_.load(std::memory_order_acquire) != seen
                           || stop_.load(std::memory_order_acquire);
                });
                --sleepers_;
                e = epoch_.load(std::memory_order_acquire);
            }
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        if (e != seen) {
            seen = e;
            (*fn_)(shard);
            pending_.fetch_sub(1, std::memory_order_release);
        }
    }
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(
            resolveThreadCount(threads), n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(workers, /*queue_capacity=*/workers * 2);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace piton
