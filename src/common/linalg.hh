/**
 * @file
 * Tiny dense linear algebra: ordinary least squares via normal
 * equations with partial-pivot Gaussian elimination.  Used by the
 * power-model fitting framework (the paper's primary open-data use
 * case: "enables researchers to build accurate power models").
 */

#ifndef PITON_COMMON_LINALG_HH
#define PITON_COMMON_LINALG_HH

#include <vector>

namespace piton
{

/**
 * Solve the square system A x = b in place (partial pivoting).
 * @param a row-major n*n matrix (destroyed)
 * @param b right-hand side (destroyed)
 * @return the solution vector, or empty if A is (numerically) singular.
 */
std::vector<double> solveLinearSystem(std::vector<double> a,
                                      std::vector<double> b);

/**
 * Ordinary least squares: find x minimizing ||A x - b||^2 where A is
 * rows x cols (row-major), rows >= cols.  Returns empty on a singular
 * normal matrix.
 */
std::vector<double> leastSquares(const std::vector<double> &a,
                                 std::size_t rows, std::size_t cols,
                                 const std::vector<double> &b);

} // namespace piton

#endif // PITON_COMMON_LINALG_HH
