/**
 * @file
 * Statistics helpers used throughout the characterization framework.
 *
 * The paper reports every measurement as "average over 128 samples ±
 * standard deviation of the samples from the average" and summarises
 * sweep results with least-squares trendlines (e.g. the mW/core and
 * pJ/hop slopes).  RunningStats and LinearFit implement exactly those
 * two reductions.
 */

#ifndef PITON_COMMON_STATS_HH
#define PITON_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace piton
{

/**
 * Single-pass mean / variance accumulator (Welford's algorithm).
 * stddev() matches the paper's convention: population standard deviation
 * of the samples from the average.
 */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const;
    /** Population standard deviation (what the paper's ± denotes). */
    double stddev() const;
    /** Sample standard deviation (n-1 denominator). */
    double sampleStddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Result of an ordinary least-squares line fit y = slope * x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/**
 * Ordinary least squares over paired samples. Requires at least two
 * distinct x values.
 */
class LinearFit
{
  public:
    void add(double x, double y);
    std::size_t count() const { return xs_.size(); }
    LineFit fit() const;

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

/** Mean of a vector; 0 for an empty vector. */
double meanOf(const std::vector<double> &v);

/** Population standard deviation of a vector; 0 for size < 1. */
double stddevOf(const std::vector<double> &v);

} // namespace piton

#endif // PITON_COMMON_STATS_HH
