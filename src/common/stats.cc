#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace piton
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
RunningStats::stddev() const
{
    if (n_ < 1)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_));
}

double
RunningStats::sampleStddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

void
LinearFit::add(double x, double y)
{
    xs_.push_back(x);
    ys_.push_back(y);
}

LineFit
LinearFit::fit() const
{
    piton_assert(xs_.size() >= 2, "LinearFit needs at least two points");
    const auto n = static_cast<double>(xs_.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        sx += xs_[i];
        sy += ys_[i];
        sxx += xs_[i] * xs_[i];
        sxy += xs_[i] * ys_[i];
        syy += ys_[i] * ys_[i];
    }
    const double denom = n * sxx - sx * sx;
    piton_assert(std::abs(denom) > 1e-300,
                 "LinearFit requires at least two distinct x values");
    LineFit out;
    out.slope = (n * sxy - sx * sy) / denom;
    out.intercept = (sy - out.slope * sx) / n;
    const double ss_tot = syy - sy * sy / n;
    if (ss_tot <= 1e-300) {
        out.r2 = 1.0; // all y identical: the fit is exact by construction
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < xs_.size(); ++i) {
            const double resid = ys_[i] - (out.slope * xs_[i] + out.intercept);
            ss_res += resid * resid;
        }
        out.r2 = 1.0 - ss_res / ss_tot;
    }
    return out;
}

double
meanOf(const std::vector<double> &v)
{
    RunningStats s;
    for (double x : v)
        s.add(x);
    return s.mean();
}

double
stddevOf(const std::vector<double> &v)
{
    RunningStats s;
    for (double x : v)
        s.add(x);
    return s.stddev();
}

} // namespace piton
