/**
 * @file
 * Sweep-level parallelism substrate.
 *
 * Every headline result of the paper is a sweep — chips x voltages x
 * frequencies x workloads — and each operating point is an independent
 * simulation.  The experiment drivers fan those points out over a small
 * thread pool: each task constructs its own sim::System seeded by
 * deriveTaskSeed(baseSeed, taskIndex) and writes its result into a
 * pre-sized slot, so the output is bit-identical regardless of the
 * thread count (tests/test_parallel.cc asserts this).
 */

#ifndef PITON_COMMON_PARALLEL_HH
#define PITON_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace piton
{

/**
 * Decorrelated per-task seed for task `index` of a sweep seeded with
 * `base` (splitmix64 finalization over the pair).  Tasks at different
 * indices get independent noise/variation streams; the same
 * (base, index) pair always yields the same seed, which is what makes
 * parallel sweeps reproducible.
 */
std::uint64_t deriveTaskSeed(std::uint64_t base, std::uint64_t index);

/** Map a requested thread count to an actual one: 0 means "all
 *  hardware threads"; anything else is clamped to at least 1. */
unsigned resolveThreadCount(unsigned requested);

/**
 * Bounded MPMC queue of closures.  push() blocks while the queue is at
 * capacity (backpressure: a sweep with thousands of points never
 * materializes them all as queued closures); pop() blocks while it is
 * empty.  close() wakes everyone; pop() then drains the remaining
 * tasks and returns false once the queue is closed and empty.
 */
class BoundedTaskQueue
{
  public:
    explicit BoundedTaskQueue(std::size_t capacity);

    /** Returns false (and drops the task) if the queue was closed. */
    bool push(std::function<void()> task);
    /** Returns false when the queue is closed and fully drained. */
    bool pop(std::function<void()> &task);
    void close();

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<std::function<void()>> tasks_;
    bool closed_ = false;
};

/**
 * Fixed-size worker pool over a BoundedTaskQueue.  submit() enqueues a
 * task (blocking on backpressure); wait() blocks until every submitted
 * task has finished and rethrows the first exception any task raised.
 * The destructor closes the queue and joins the workers.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned threads = 0,
                        std::size_t queue_capacity = 128);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    void submit(std::function<void()> task);
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    BoundedTaskQueue queue_;
    std::vector<std::thread> workers_;

    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0;
    std::exception_ptr firstError_;
};

/**
 * Persistent fork-join gang for fine-grained rounds (the chip's sharded
 * run-ahead engine dispatches one round every few hundred simulated
 * cycles, so per-round cost must stay in the microsecond range —
 * ThreadPool's mutex/cv queue handoff per task is two orders of
 * magnitude too slow for that).
 *
 * run(fn) invokes fn(shard) for every shard in [0, shards) exactly
 * once: the calling thread executes shard 0 itself while shards-1
 * resident workers execute the rest, and run() returns only after all
 * shards finish (a full barrier, so fn's writes are visible to the
 * caller).  Dispatch is an atomic epoch bump; workers spin briefly on
 * the epoch before parking on a condition variable, which keeps
 * back-to-back rounds queue-free while an idle gang costs nothing.
 *
 * fn must not throw (the engine's shard bodies only touch
 * preallocated state; a panic aborts anyway).  run() is not itself
 * thread-safe — one orchestrator per gang.
 */
class WorkerGang
{
  public:
    explicit WorkerGang(unsigned shards);
    ~WorkerGang();

    WorkerGang(const WorkerGang &) = delete;
    WorkerGang &operator=(const WorkerGang &) = delete;

    unsigned shards() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    void run(const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned shard);

    /** Round function for the current epoch; written before the epoch
     *  bump (release) and read after observing it (acquire). */
    const std::function<void(unsigned)> *fn_ = nullptr;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> pending_{0};
    std::atomic<bool> stop_{false};
    std::mutex mutex_;
    std::condition_variable cv_;
    unsigned sleepers_ = 0; ///< guarded by mutex_
    std::vector<std::thread> workers_;
};

/**
 * Run fn(0), fn(1), ..., fn(n-1) across `threads` workers (resolved by
 * resolveThreadCount).  Iterations must be independent; each should
 * write only to its own pre-sized output slot.  With threads <= 1 the
 * loop runs inline on the calling thread.  The first exception thrown
 * by any iteration is rethrown here after all workers stop.
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace piton

#endif // PITON_COMMON_PARALLEL_HH
