/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 */

#ifndef PITON_COMMON_LOGGING_HH
#define PITON_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace piton
{

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace piton

#define piton_fatal(...) \
    ::piton::fatalImpl(__FILE__, __LINE__, ::piton::csprintf(__VA_ARGS__))
#define piton_panic(...) \
    ::piton::panicImpl(__FILE__, __LINE__, ::piton::csprintf(__VA_ARGS__))
#define piton_warn(...) ::piton::warnImpl(::piton::csprintf(__VA_ARGS__))
#define piton_inform(...) ::piton::informImpl(::piton::csprintf(__VA_ARGS__))

/** Internal invariant check that survives NDEBUG builds. */
#define piton_assert(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::piton::panicImpl(__FILE__, __LINE__,                            \
                               std::string("assertion failed: " #cond " — ") \
                                   + ::piton::csprintf(__VA_ARGS__));         \
        }                                                                     \
    } while (0)

#endif // PITON_COMMON_LOGGING_HH
