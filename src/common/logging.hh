/**
 * @file
 * Minimal gem5-style status/error reporting, safe under concurrent
 * threads.
 *
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 * debug()  - high-volume diagnostics (off unless the level allows it).
 *
 * Concurrency contract (the experiment server logs from pool workers):
 * each record is fully formatted first and then emitted with a single
 * stdio call, so records from different threads never interleave
 * mid-line.  The level filter is one relaxed atomic load per call and
 * is read exactly once per record.
 */

#ifndef PITON_COMMON_LOGGING_HH
#define PITON_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace piton
{

/** Global emission threshold: a record is emitted when its level is <=
 *  the current threshold.  Fatal/panic always emit (they terminate). */
enum class LogLevel : int
{
    Silent = 0, ///< nothing but fatal/panic
    Warn = 1,   ///< warn()
    Info = 2,   ///< warn() + inform()     (default)
    Debug = 3,  ///< everything
};

void setLogLevel(LogLevel level);
LogLevel logLevel();
/** One relaxed load; use to skip argument formatting entirely. */
bool logEnabled(LogLevel level);

/** Parse "silent"/"warn"/"info"/"debug" (case-sensitive); returns
 *  false and leaves `out` untouched on anything else. */
bool parseLogLevel(const std::string &name, LogLevel &out);

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace piton

#define piton_fatal(...) \
    ::piton::fatalImpl(__FILE__, __LINE__, ::piton::csprintf(__VA_ARGS__))
#define piton_panic(...) \
    ::piton::panicImpl(__FILE__, __LINE__, ::piton::csprintf(__VA_ARGS__))
#define piton_warn(...)                                       \
    do {                                                      \
        if (::piton::logEnabled(::piton::LogLevel::Warn))     \
            ::piton::warnImpl(::piton::csprintf(__VA_ARGS__)); \
    } while (0)
#define piton_inform(...)                                       \
    do {                                                        \
        if (::piton::logEnabled(::piton::LogLevel::Info))       \
            ::piton::informImpl(::piton::csprintf(__VA_ARGS__)); \
    } while (0)
#define piton_debug(...)                                        \
    do {                                                        \
        if (::piton::logEnabled(::piton::LogLevel::Debug))      \
            ::piton::debugImpl(::piton::csprintf(__VA_ARGS__));  \
    } while (0)

/** Internal invariant check that survives NDEBUG builds. */
#define piton_assert(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::piton::panicImpl(__FILE__, __LINE__,                            \
                               std::string("assertion failed: " #cond " — ") \
                                   + ::piton::csprintf(__VA_ARGS__));         \
        }                                                                     \
    } while (0)

#endif // PITON_COMMON_LOGGING_HH
