/**
 * @file
 * Minimal TCP/poll utilities for the experiment service (loopback
 * only).  The service binds 127.0.0.1 exclusively: it is a local
 * experiment server, not an internet-facing daemon, so there is no
 * TLS, no auth, and no reason to accept remote connections.
 *
 * Everything is nonblocking-friendly: the server's poll loop uses
 * nonblocking sockets plus a self-pipe Wakeup so worker threads can
 * interrupt a poll() sleep when a response becomes ready.
 */

#ifndef PITON_COMMON_NET_HH
#define PITON_COMMON_NET_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace piton::net
{

/** Thrown on socket-layer failures (connect refused, bind in use...). */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &what) : std::runtime_error(what)
    {}
};

/** RAII file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Release ownership without closing. */
    int release();
    void close();

  private:
    int fd_ = -1;
};

/** Listening socket on 127.0.0.1:`port` (port 0 = ephemeral).
 *  Nonblocking, SO_REUSEADDR. */
Socket listenTcp(std::uint16_t port, int backlog = 64);

/** The local port a bound socket ended up on (resolves port 0). */
std::uint16_t boundPort(const Socket &sock);

/** Blocking connect to 127.0.0.1:`port`; the returned socket is in
 *  blocking mode (clients are synchronous). */
Socket connectTcp(std::uint16_t port, int timeout_ms = 5000);

/** Accept one pending connection; invalid Socket if none pending. */
Socket acceptConnection(const Socket &listener);

/** Set O_NONBLOCK. */
void setNonBlocking(int fd);

/**
 * Blocking-socket helpers for the synchronous client: send the whole
 * buffer / read exactly `len` bytes.  recvExact returns false on a
 * clean peer close at a message boundary (0 bytes read); any partial
 * read or error throws.
 */
void sendAll(const Socket &sock, const void *data, std::size_t len);
bool recvExact(const Socket &sock, void *data, std::size_t len);

/** poll() a single fd for readability; true if readable before the
 *  timeout. */
bool waitReadable(int fd, int timeout_ms);

/**
 * Thread-safe pool of idle client connections, keyed by loopback port.
 * acquire() hands out an idle socket for the endpoint (or dials a new
 * one); release() returns a socket that is known-clean — at a protocol
 * message boundary with nothing buffered — for reuse.  Sockets in a
 * dubious state (errors, unread bytes) must be dropped, not released;
 * invalidate() flushes every idle socket for an endpoint after a
 * failure, since its siblings likely share the dead peer.
 *
 * The pool never caps concurrent connections — only how many *idle*
 * sockets it retains per endpoint (the rest close on release).
 */
class ConnectionPool
{
  public:
    explicit ConnectionPool(std::size_t max_idle_per_endpoint = 4)
        : maxIdle_(max_idle_per_endpoint)
    {}

    /** Reuse an idle connection to 127.0.0.1:`port` or dial a new one. */
    Socket acquire(std::uint16_t port, int timeout_ms = 5000);
    /** Return a clean connection for reuse (closed if over budget). */
    void release(std::uint16_t port, Socket sock);
    /** Drop every idle connection for the endpoint. */
    void invalidate(std::uint16_t port);
    /** Idle sockets currently retained for the endpoint. */
    std::size_t idleCount(std::uint16_t port) const;

  private:
    std::size_t maxIdle_;
    mutable std::mutex mu_;
    std::unordered_map<std::uint16_t, std::vector<Socket>> idle_;
};

/**
 * Self-pipe wakeup for poll loops: any thread may notify(); the poll
 * thread includes fd() in its read set and calls drain() when it fires.
 */
class Wakeup
{
  public:
    Wakeup();
    ~Wakeup();
    Wakeup(const Wakeup &) = delete;
    Wakeup &operator=(const Wakeup &) = delete;

    int fd() const { return readFd_.fd(); }
    void notify();
    void drain();

  private:
    Socket readFd_;
    Socket writeFd_;
};

} // namespace piton::net

#endif // PITON_COMMON_NET_HH
