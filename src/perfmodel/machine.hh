/**
 * @file
 * Machine-level parameters for the benchmark study (Table VIII).
 *
 * The paper compares the Piton experimental system against a Sun Fire
 * T2000 server with an UltraSPARC T1 — the same core and L1 caches as
 * Piton (with four threads per core instead of two) but a completely
 * different uncore: twice the clock, 3 MB of L2 at 20-24 ns, on-chip
 * DRAM controllers with a 64-bit DDR2 interface at 108 ns average
 * access latency, versus Piton's FPGA chipset path at 848 ns over a
 * 32-bit DDR3 interface.
 */

#ifndef PITON_PERFMODEL_MACHINE_HH
#define PITON_PERFMODEL_MACHINE_HH

#include <cstdint>
#include <string>

namespace piton::perfmodel
{

struct MachineParams
{
    std::string name;
    std::string operatingSystem = "Debian Sid Linux";
    std::string kernelVersion;
    std::string memoryDeviceType;
    double ratedMemoryClockMhz;
    double actualMemoryClockMhz;
    std::string ratedTimingsCycles;
    std::string ratedTimingsNs;
    std::string actualTimingsCycles;
    std::string actualTimingsNs;
    std::uint32_t memoryDataBits;
    std::string memorySize;
    double memoryLatencyNs; ///< average access latency
    std::string persistentStorage;
    std::string processor;
    double processorFreqMhz;
    std::uint32_t cores;
    std::uint32_t threadsPerCore;
    std::string l2CacheSize;
    double l2SizeMb;
    std::string l2LatencyNsText;
    double l2HitLatencyNs; ///< representative L2 hit latency

    /** Base CPI of the in-order single-issue core on this system. */
    double cpiBase;

    double freqHz() const { return processorFreqMhz * 1e6; }
    double memLatencyCycles() const
    {
        return memoryLatencyNs * 1e-9 * freqHz();
    }
    double l2HitCycles() const
    {
        return l2HitLatencyNs * 1e-9 * freqHz();
    }
};

/** The Sun Fire T2000 column of Table VIII. */
MachineParams sunFireT2000();

/** The Piton system column of Table VIII. */
MachineParams pitonSystem();

} // namespace piton::perfmodel

#endif // PITON_PERFMODEL_MACHINE_HH
