#include "perfmodel/spec_model.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace piton::perfmodel
{

SpecModel::SpecModel(MachineParams t1, MachineParams piton,
                     power::EnergyModel energy, double idle_on_chip_w)
    : t1_(std::move(t1)), piton_(std::move(piton)),
      energy_(std::move(energy)), idleOnChipW_(idle_on_chip_w)
{
}

double
SpecModel::cpiOf(const workloads::SpecBenchmark &bench,
                 const MachineParams &machine, bool is_piton) const
{
    const double l2_mpki = is_piton ? bench.l2MpkiPiton : bench.l2MpkiT1;
    return machine.cpiBase
           + bench.l1MpkiToL2 * machine.l2HitCycles() / 1000.0
           + l2_mpki * machine.memLatencyCycles() / 1000.0;
}

double
SpecModel::perMissEnergyJ() const
{
    // One core stalling ~424 cycles plus the cache/NoC/bridge path.
    // Unlike the Table VII stress test (25 cores missing in lockstep),
    // a single application miss does not drag the whole chip into the
    // excursion regime.
    const auto &p = energy_.params();
    const double stall_pj = 424.0 * p.stallCyclePj;
    const double path_pj = p.l15AccessPj + p.l2AccessPj + p.dirAccessPj
                           + 12.0 * p.chipBridgeFlitPj + 12000.0;
    return pjToJ(stall_pj + path_pj);
}

std::array<double, 3>
SpecModel::pitonRailPowers(const workloads::SpecBenchmark &bench,
                           double activity) const
{
    const double cpi = cpiOf(bench, piton_, /*is_piton=*/true);
    const double inst_rate = piton_.freqHz() / cpi * activity;

    // Average EPI of the mix at the profile's operand activity.
    using C = isa::InstClass;
    const auto act =
        static_cast<std::uint32_t>(bench.operandActivity);
    const double int_frac = 1.0 - bench.loadFrac - bench.storeFrac
                            - bench.branchFrac;
    const double epi_j =
        int_frac
            * energy_.instructionEnergy(C::IntSimple, act)
                  .onChipCoreAndSram()
        + bench.loadFrac
              * energy_.instructionEnergy(C::Load, act).onChipCoreAndSram()
        + bench.storeFrac
              * energy_.instructionEnergy(C::Store, act)
                    .onChipCoreAndSram()
        + bench.branchFrac
              * energy_.instructionEnergy(C::Branch, 0).onChipCoreAndSram();

    const double l1_miss_j =
        (energy_.l15AccessEnergy() + energy_.l2AccessEnergy())
            .onChipCoreAndSram();

    const double active_w =
        inst_rate
        * (epi_j + bench.l1MpkiToL2 / 1000.0 * l1_miss_j
           + bench.l2MpkiPiton / 1000.0 * perMissEnergyJ());

    // On-chip split per Fig. 16's rail breakdown: the clock tree and
    // core leakage dominate VDD; the SRAM arrays sit on VCS.
    const double vdd_w = idleOnChipW_ * 0.86 + active_w * 0.75;
    const double vcs_w = idleOnChipW_ * 0.14 + active_w * 0.25;

    // VIO: standing gateway-interface power, per-miss off-chip beats,
    // and device I/O (SD card / serial / network controllers behind
    // the 1.8 V rail).  The device term is calibrated so hmmer and
    // libquantum land in their measured 2.3-2.4 W band while quiet
    // benchmarks stay near 2.1 W (Table IX / Fig. 16).
    const double miss_rate = inst_rate * bench.l2MpkiPiton / 1000.0;
    const double io_excess = bench.ioActivity - 1.0;
    const double vio_w =
        energy_.params().vioIdleW
        + miss_rate * 24.0 * pjToJ(energy_.params().vioBeatPj)
        + io_excess * io_excess * 0.016;

    return {vdd_w, vcs_w, vio_w};
}

SpecResult
SpecModel::evaluate(const workloads::SpecBenchmark &bench) const
{
    SpecResult r;
    r.name = bench.name;
    r.t1Minutes = bench.t2000Minutes;
    r.cpiT1 = cpiOf(bench, t1_, /*is_piton=*/false);
    r.cpiPiton = cpiOf(bench, piton_, /*is_piton=*/true);

    // Instruction count from the measured T2000 time.
    const double t1_seconds = bench.t2000Minutes * 60.0;
    const double insts = t1_seconds * t1_.freqHz() / r.cpiT1;
    r.instCountBillions = insts / 1e9;

    const double piton_seconds = insts * r.cpiPiton / piton_.freqHz();
    r.pitonMinutes = piton_seconds / 60.0;
    r.slowdown = piton_seconds / t1_seconds;

    const auto rails = pitonRailPowers(bench);
    r.pitonAvgPowerW = rails[0] + rails[1] + rails[2];
    r.pitonEnergyKj = r.pitonAvgPowerW * piton_seconds / 1000.0;
    return r;
}

std::vector<SpecResult>
SpecModel::evaluateAll() const
{
    std::vector<SpecResult> out;
    for (const auto &b : workloads::specint2006Profiles())
        out.push_back(evaluate(b));
    return out;
}

} // namespace piton::perfmodel
