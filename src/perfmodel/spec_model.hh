/**
 * @file
 * Analytic CPI / power / energy model for the SPECint study (Table IX)
 * and the gcc-166 power time series (Fig. 16).
 *
 * CPI on each machine composes the in-order core's base CPI with the
 * L2-hit and memory-access stall terms:
 *
 *   CPI = cpiBase + MPKI_L1->L2 * L2_hit_cycles / 1000
 *                 + MPKI_L2     * mem_cycles    / 1000
 *
 * Instruction count is derived from the measured T2000 time (the
 * paper's ground truth); Piton's execution time follows from its CPI
 * and clock.  Piton's average power composes idle power with the
 * active-core EPI stream, memory-system event energy, per-miss stall
 * energy, and VIO activity.
 */

#ifndef PITON_PERFMODEL_SPEC_MODEL_HH
#define PITON_PERFMODEL_SPEC_MODEL_HH

#include <vector>

#include "perfmodel/machine.hh"
#include "power/energy_model.hh"
#include "workloads/spec_profiles.hh"

namespace piton::perfmodel
{

struct SpecResult
{
    std::string name;
    double t1Minutes = 0.0;     ///< UltraSPARC T1 execution time
    double pitonMinutes = 0.0;  ///< modelled Piton execution time
    double slowdown = 0.0;
    double pitonAvgPowerW = 0.0; ///< VDD + VCS + VIO
    double pitonEnergyKj = 0.0;
    double instCountBillions = 0.0;
    double cpiT1 = 0.0;
    double cpiPiton = 0.0;
};

class SpecModel
{
  public:
    SpecModel(MachineParams t1, MachineParams piton,
              power::EnergyModel energy, double idle_on_chip_w = 2.0153);

    /** Evaluate one benchmark profile. */
    SpecResult evaluate(const workloads::SpecBenchmark &bench) const;

    /** Evaluate the full Table IX suite. */
    std::vector<SpecResult> evaluateAll() const;

    /** CPI of a profile on a machine (exposed for tests). */
    double cpiOf(const workloads::SpecBenchmark &bench,
                 const MachineParams &machine, bool is_piton) const;

    /**
     * Piton rail powers (W) while running a profile at a relative
     * activity level (1.0 = the benchmark's average; Fig. 16's phase
     * modulation scales this). Returns {VDD, VCS, VIO}.
     */
    std::array<double, 3>
    pitonRailPowers(const workloads::SpecBenchmark &bench,
                    double activity = 1.0) const;

  private:
    MachineParams t1_;
    MachineParams piton_;
    power::EnergyModel energy_;
    double idleOnChipW_;

    /** Stall + path energy of one off-chip miss in an application
     *  context (J); see EXPERIMENTS.md for why this is far below the
     *  Table VII stress-test figure. */
    double perMissEnergyJ() const;
};

} // namespace piton::perfmodel

#endif // PITON_PERFMODEL_SPEC_MODEL_HH
