#include "perfmodel/machine.hh"

namespace piton::perfmodel
{

MachineParams
sunFireT2000()
{
    MachineParams m;
    m.name = "Sun Fire T2000";
    m.kernelVersion = "4.8";
    m.memoryDeviceType = "DDR2-533";
    m.ratedMemoryClockMhz = 266.67;
    m.actualMemoryClockMhz = 266.67;
    m.ratedTimingsCycles = "4-4-4";
    m.ratedTimingsNs = "15-15-15";
    m.actualTimingsCycles = "4-4-4";
    m.actualTimingsNs = "15-15-15";
    m.memoryDataBits = 64; // + 8 bits ECC
    m.memorySize = "16GB";
    m.memoryLatencyNs = 108.0;
    m.persistentStorage = "HDD";
    m.processor = "UltraSPARC T1";
    m.processorFreqMhz = 1000.0;
    m.cores = 8;
    m.threadsPerCore = 4;
    m.l2CacheSize = "3MB";
    m.l2SizeMb = 3.0;
    m.l2LatencyNsText = "20-24ns";
    m.l2HitLatencyNs = 22.0;
    m.cpiBase = 1.25;
    return m;
}

MachineParams
pitonSystem()
{
    MachineParams m;
    m.name = "Piton System";
    m.kernelVersion = "4.9";
    m.memoryDeviceType = "DDR3-1866";
    m.ratedMemoryClockMhz = 933.0;
    m.actualMemoryClockMhz = 800.0; // Xilinx controller limitation
    m.ratedTimingsCycles = "13-13-13";
    m.ratedTimingsNs = "13.91-13.91-13.91";
    m.actualTimingsCycles = "12-12-12";
    m.actualTimingsNs = "15-15-15";
    m.memoryDataBits = 32;
    m.memorySize = "1GB";
    m.memoryLatencyNs = 848.0;
    m.persistentStorage = "SD Card";
    m.processor = "Piton";
    m.processorFreqMhz = 500.05;
    m.cores = 25;
    m.threadsPerCore = 2;
    m.l2CacheSize = "1.6MB aggregate";
    m.l2SizeMb = 1.6;
    m.l2LatencyNsText = "68-108ns";
    m.l2HitLatencyNs = 88.0;
    m.cpiBase = 1.30;
    return m;
}

} // namespace piton::perfmodel
