/**
 * @file
 * Consistent-hash ring for the experiment fleet (DESIGN.md §15).
 *
 * Each worker owns `vnodes` points on a u64 ring; a request key is
 * routed to the first worker point at or after the key's own point
 * (wrapping).  Virtual nodes keep ownership shares near-uniform, and
 * consistent hashing gives the rebalance property the fleet relies
 * on: adding or removing one worker only moves the keys adjacent to
 * that worker's points — every other key keeps its owner, so warm
 * caches stay warm across membership changes.
 *
 * Everything here is deterministic: points are FNV-1a-128 digests of
 * ("fleet-ring", worker id, replica index), folded to u64, with a
 * deterministic linear probe on the (astronomically unlikely) point
 * collision.  Two coordinators with the same member set always agree
 * on every key's owner — that agreement is what makes failover safe
 * to reason about.
 */

#ifndef PITON_FLEET_RING_HH
#define PITON_FLEET_RING_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hh"

namespace piton::fleet
{

class HashRing
{
  public:
    explicit HashRing(unsigned vnodes_per_worker = 64)
        : vnodes_(vnodes_per_worker == 0 ? 1 : vnodes_per_worker)
    {}

    /** Idempotent; inserting an existing id is a no-op. */
    void addWorker(const std::string &id);
    /** Idempotent; unknown ids are a no-op. */
    void removeWorker(const std::string &id);

    bool hasWorker(const std::string &id) const
    {
        return ids_.count(id) != 0;
    }
    std::size_t workerCount() const { return ids_.size(); }
    /** Member ids in sorted order. */
    std::vector<std::string> workers() const
    {
        return {ids_.begin(), ids_.end()};
    }

    /** The worker owning `key`.  Throws std::runtime_error when the
     *  ring is empty. */
    const std::string &ownerOf(const Hash128 &key) const;

    /** Up to `n` distinct workers in ring order starting at the
     *  owner — the failover candidate sequence for `key`. */
    std::vector<std::string> replicasFor(const Hash128 &key,
                                         std::size_t n) const;

    unsigned vnodesPerWorker() const { return vnodes_; }

  private:
    std::uint64_t pointFor(const std::string &id,
                           unsigned replica) const;

    unsigned vnodes_;
    std::map<std::uint64_t, std::string> ring_;
    std::set<std::string> ids_;
};

} // namespace piton::fleet

#endif // PITON_FLEET_RING_HH
