#include "fleet/load.hh"

namespace piton::fleet
{

service::ExperimentRequest
loadPoint(std::size_t index)
{
    using service::Kind;
    service::ExperimentRequest req;
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.warmupCycles = 4000;
    req.samples = 4;
    // Distinct operating points so points don't collapse onto one
    // cache key; an 11x8 grid before the pattern repeats.
    req.vddV = 0.90 + 0.01 * static_cast<double>(index % 11);
    req.coreClockMhz =
        400.0 + 25.0 * static_cast<double>((index / 11) % 8);
    if (index % 4 == 3) {
        req.kind = Kind::Sweep;
        // Both tails share one prefix image: the second point of each
        // sweep is the warm-start (prefix-cache) path, and routing by
        // prefixKey keeps the image and its consumers co-located.
        req.tails = {{1.0, 2}, {0.0, 2}};
    } else {
        req.kind = Kind::MeasurePower;
    }
    return req;
}

} // namespace piton::fleet
