#include "fleet/coordinator.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "telemetry/recorder.hh"
#include "telemetry/schema.hh"

namespace piton::fleet
{

using service::ClientResult;
using service::ExperimentRequest;
using service::SchedulerMetrics;
using service::ServiceError;
using service::TcpClient;
using service::VersionMismatchError;
using service::WorkerStats;

FleetCoordinator::FleetCoordinator(FleetConfig cfg)
    : cfg_(std::move(cfg)), pool_(cfg_.maxIdlePerWorker),
      ring_(cfg_.vnodes)
{
    if (cfg_.workerPorts.empty())
        throw ServiceError("fleet: no worker ports configured");
    for (const std::uint16_t port : cfg_.workerPorts) {
        Worker w;
        w.port = port;
        // Handshake for the worker's identity.  An unreachable worker
        // joins the ring under the server's default naming so the
        // membership (and thus every key's owner) does not depend on
        // which members happened to be up at construction time.
        try {
            TcpClient client(net::connectTcp(port, cfg_.connectTimeoutMs));
            const service::HelloReply h =
                client.hello(cfg_.healthTimeoutMs, cfg_.clientName);
            w.id = h.workerId;
            w.up = true;
            if (client.reusable())
                pool_.release(port, client.releaseSocket());
        } catch (const VersionMismatchError &) {
            throw; // mis-deployed worker: refuse to start
        } catch (const std::exception &) {
            w.id = "worker-" + std::to_string(port);
            w.up = false;
        }
        for (const Worker &other : workers_)
            if (other.id == w.id)
                throw ServiceError("fleet: duplicate worker id '" + w.id
                                   + "'");
        ring_.addWorker(w.id);
        workers_.push_back(std::move(w));
    }
    counters_.workersTotal = workers_.size();

    if (cfg_.healthIntervalMs > 0)
        healthThread_ = std::thread([this] { healthLoop(); });
}

FleetCoordinator::~FleetCoordinator()
{
    {
        std::lock_guard<std::mutex> lock(healthMu_);
        stopping_ = true;
    }
    healthCv_.notify_all();
    if (healthThread_.joinable())
        healthThread_.join();
}

void
FleetCoordinator::healthLoop()
{
    std::unique_lock<std::mutex> lock(healthMu_);
    while (!stopping_) {
        healthCv_.wait_for(
            lock, std::chrono::milliseconds(cfg_.healthIntervalMs),
            [this] { return stopping_; });
        if (stopping_)
            return;
        lock.unlock();
        checkHealthOnce();
        lock.lock();
    }
}

Hash128
FleetCoordinator::routingKey(const ExperimentRequest &req)
{
    ExperimentRequest canon = req;
    try {
        canon.canonicalize();
    } catch (const std::exception &) {
        // Malformed requests still need *a* deterministic owner (the
        // worker will produce the Status::Error body).
        return Hash128{};
    }
    // Sweeps route by their warm-start prefix so tails sharing a
    // prefix image all land where the image lives; everything else
    // routes by its exact cache key.
    return canon.kind == service::Kind::Sweep ? canon.prefixKey()
                                              : canon.cacheKey();
}

std::vector<std::size_t>
FleetCoordinator::candidateOrder(const Hash128 &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::vector<std::string> replicas =
        ring_.replicasFor(key, workers_.size());
    std::vector<std::size_t> healthy, down;
    for (const std::string &id : replicas) {
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i].id != id)
                continue;
            (workers_[i].up ? healthy : down).push_back(i);
            break;
        }
    }
    healthy.insert(healthy.end(), down.begin(), down.end());
    return healthy;
}

ClientResult
FleetCoordinator::runOnWorker(std::size_t widx,
                              const ExperimentRequest &req)
{
    std::uint16_t port;
    {
        std::lock_guard<std::mutex> lock(mu_);
        port = workers_[widx].port;
    }
    TcpClient client(pool_.acquire(port, cfg_.connectTimeoutMs));
    ClientResult result = client.run(req);
    if (client.reusable())
        pool_.release(port, client.releaseSocket());
    return result;
}

ClientResult
FleetCoordinator::run(const ExperimentRequest &req)
{
    const Hash128 key = routingKey(req);
    const std::vector<std::size_t> candidates = candidateOrder(key);
    if (candidates.empty())
        throw ServiceError("fleet: no workers on the ring");

    ClientResult shed_result;
    bool have_shed = false;
    std::size_t attempt = 0;
    for (const std::size_t widx : candidates) {
        ++attempt;
        try {
            ClientResult result = runOnWorker(widx, req);
            if (result.status == service::Status::Shed) {
                // Shedding means "alive but not taking this" — either
                // admission backpressure or a mid-shutdown drain.  Try
                // the next replica; only if every replica sheds does
                // the backpressure surface to the caller.
                std::lock_guard<std::mutex> lock(mu_);
                piton_warn("fleet: worker %s shed the request; "
                           "rerouting",
                           workers_[widx].id.c_str());
                markDown(widx);
                ++workers_[widx].failures;
                ++counters_.retries;
                shed_result = std::move(result);
                have_shed = true;
                continue;
            }
            std::lock_guard<std::mutex> lock(mu_);
            markUp(widx);
            ++workers_[widx].requests;
            ++counters_.requests;
            if (result.servedFromCache)
                ++counters_.cacheHits;
            if (attempt > 1)
                ++counters_.failovers;
            return result;
        } catch (const VersionMismatchError &) {
            // Deploy skew, not a transient fault: failing over would
            // hide an operational error behind a healthy-looking run.
            throw;
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(mu_);
            piton_warn("fleet: worker %s failed (%s); rerouting",
                       workers_[widx].id.c_str(), e.what());
            markDown(widx);
            ++workers_[widx].failures;
            ++counters_.retries;
            pool_.invalidate(workers_[widx].port);
        }
    }
    if (have_shed) {
        // Fleet-wide backpressure behaves like single-node shedding.
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.requests;
        return shed_result;
    }
    throw ServiceError("fleet: request failed on all "
                       + std::to_string(candidates.size())
                       + " ring replicas");
}

SchedulerMetrics
FleetCoordinator::stats()
{
    std::vector<std::uint16_t> ports;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const Worker &w : workers_)
            if (w.up)
                ports.push_back(w.port);
    }
    SchedulerMetrics sum;
    for (const std::uint16_t port : ports) {
        try {
            TcpClient client(pool_.acquire(port, cfg_.connectTimeoutMs));
            const SchedulerMetrics m = client.workerStats().metrics;
            if (client.reusable())
                pool_.release(port, client.releaseSocket());
            sum.submitted += m.submitted;
            sum.completed += m.completed;
            sum.shed += m.shed;
            sum.errors += m.errors;
            sum.cancelled += m.cancelled;
            sum.deadlineExpired += m.deadlineExpired;
            sum.cacheHits += m.cacheHits;
            sum.queueDepth += m.queueDepth;
        } catch (const std::exception &) {
            pool_.invalidate(port);
        }
    }
    sum.hitRate = sum.completed == 0
                      ? 0.0
                      : static_cast<double>(sum.cacheHits)
                            / static_cast<double>(sum.completed);
    return sum;
}

std::size_t
FleetCoordinator::checkHealthOnce()
{
    std::vector<std::pair<std::size_t, std::uint16_t>> targets;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < workers_.size(); ++i)
            targets.emplace_back(i, workers_[i].port);
    }
    std::size_t up = 0;
    for (const auto &[widx, port] : targets) {
        bool ok = false;
        try {
            TcpClient client(pool_.acquire(port, cfg_.connectTimeoutMs));
            client.ping(cfg_.healthTimeoutMs);
            if (client.reusable())
                pool_.release(port, client.releaseSocket());
            ok = true;
        } catch (const std::exception &) {
            pool_.invalidate(port);
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (ok) {
            markUp(widx);
            ++up;
        } else {
            markDown(widx);
        }
    }
    return up;
}

void
FleetCoordinator::detachWorker(std::uint16_t port)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = workers_.begin(); it != workers_.end(); ++it) {
        if (it->port != port)
            continue;
        ring_.removeWorker(it->id);
        workers_.erase(it);
        counters_.workersTotal = workers_.size();
        break;
    }
    pool_.invalidate(port);
}

void
FleetCoordinator::markUp(std::size_t widx)
{
    workers_[widx].up = true;
}

void
FleetCoordinator::markDown(std::size_t widx)
{
    workers_[widx].up = false;
}

FleetMetrics
FleetCoordinator::metrics() const
{
    std::lock_guard<std::mutex> lock(mu_);
    FleetMetrics m = counters_;
    m.workersTotal = workers_.size();
    m.workersUp = 0;
    for (const Worker &w : workers_)
        m.workersUp += w.up ? 1 : 0;
    m.hitRate = m.requests == 0 ? 0.0
                                : static_cast<double>(m.cacheHits)
                                      / static_cast<double>(m.requests);
    return m;
}

std::vector<WorkerSnapshot>
FleetCoordinator::workerSnapshots() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<WorkerSnapshot> out;
    for (const Worker &w : workers_) {
        WorkerSnapshot s;
        s.id = w.id;
        s.port = w.port;
        s.up = w.up;
        s.requests = w.requests;
        s.failures = w.failures;
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<WorkerDetail>
FleetCoordinator::workerDetails()
{
    std::vector<WorkerDetail> out;
    for (WorkerSnapshot &snap : workerSnapshots()) {
        WorkerDetail d;
        d.snapshot = std::move(snap);
        if (d.snapshot.up) {
            try {
                TcpClient client(pool_.acquire(d.snapshot.port,
                                               cfg_.connectTimeoutMs));
                d.stats = client.workerStats();
                d.statsOk = true;
                if (client.reusable())
                    pool_.release(d.snapshot.port,
                                  client.releaseSocket());
            } catch (const std::exception &) {
                pool_.invalidate(d.snapshot.port);
            }
        }
        out.push_back(std::move(d));
    }
    return out;
}

std::string
FleetCoordinator::ownerOf(const ExperimentRequest &req) const
{
    const Hash128 key = routingKey(req);
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.ownerOf(key);
}

void
FleetCoordinator::exportTelemetry(telemetry::TelemetryRecorder &rec)
{
    namespace schema = telemetry::schema;
    const FleetMetrics m = metrics();
    double seq;
    {
        std::lock_guard<std::mutex> lock(mu_);
        seq = static_cast<double>(exportSeq_++);
    }
    using telemetry::Downsample;
    using telemetry::Unit;
    const auto gauge = [&](const std::string &name, double value) {
        const std::size_t idx =
            rec.defineSeries(name, Unit::Count, Downsample::Mean);
        rec.record(idx, seq, 1.0, value);
    };
    gauge(schema::kFleetRequests, static_cast<double>(m.requests));
    gauge(schema::kFleetRetries, static_cast<double>(m.retries));
    gauge(schema::kFleetFailovers, static_cast<double>(m.failovers));
    gauge(schema::kFleetWorkersUp, static_cast<double>(m.workersUp));
    gauge(schema::kFleetHitRate, m.hitRate);

    // Per-worker gauges come from live StatsReply exchanges; a worker
    // that cannot answer simply contributes no sample this round.
    std::vector<std::pair<std::string, std::uint16_t>> targets;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const Worker &w : workers_)
            if (w.up)
                targets.emplace_back(w.id, w.port);
    }
    for (const auto &[id, port] : targets) {
        try {
            TcpClient client(pool_.acquire(port, cfg_.connectTimeoutMs));
            const WorkerStats s = client.workerStats();
            if (client.reusable())
                pool_.release(port, client.releaseSocket());
            const std::string prefix =
                std::string(schema::kFleetWorkerPrefix) + id;
            gauge(prefix + ".queue_depth",
                  static_cast<double>(s.metrics.queueDepth));
            gauge(prefix + ".hit_rate", s.metrics.hitRate);
            gauge(prefix + ".result_cache_hits",
                  static_cast<double>(s.metrics.resultCache.hits));
            gauge(prefix + ".result_cache_misses",
                  static_cast<double>(s.metrics.resultCache.misses));
        } catch (const std::exception &) {
            pool_.invalidate(port);
        }
    }
}

} // namespace piton::fleet
