/**
 * @file
 * Deterministic request-set generator shared by the fleet bench, the
 * fleetctl sweep command, the fleet test suite, and the fleet-smoke
 * CI job.  loadPoint(i) is a pure function of the index, so every
 * consumer — any worker count, any failure schedule, the single-node
 * reference — drives the exact same request population, which is what
 * makes their byte-identity comparisons meaningful.
 */

#ifndef PITON_FLEET_LOAD_HH
#define PITON_FLEET_LOAD_HH

#include <cstddef>

#include "service/request.hh"

namespace piton::fleet
{

/**
 * The i-th point of the fleet saturation load: smoke-sized
 * characterization requests over a grid of operating points, with
 * every 4th point a warm-startable Sweep (two tails off a shared
 * prefix) so the cache-aware routing path is exercised alongside
 * exact-key routing.
 */
service::ExperimentRequest loadPoint(std::size_t index);

} // namespace piton::fleet

#endif // PITON_FLEET_LOAD_HH
