#include "fleet/ring.hh"

#include <stdexcept>

namespace piton::fleet
{

namespace
{

/** splitmix64 finalizer: FNV-1a avalanches weakly on short inputs, so
 *  vnode points for consecutive replica indices come out correlated
 *  and ownership shares can skew badly (one of four workers owning
 *  half the keyspace).  Post-mixing the folded digest restores a
 *  near-uniform spread. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

std::uint64_t
HashRing::pointFor(const std::string &id, unsigned replica) const
{
    Hasher h;
    h.update("fleet-ring");
    h.update(id);
    h.updateU32(replica);
    const Hash128 d = h.digest();
    return mix64(d.hi ^ d.lo);
}

void
HashRing::addWorker(const std::string &id)
{
    if (id.empty())
        throw std::runtime_error("HashRing: empty worker id");
    if (!ids_.insert(id).second)
        return;
    for (unsigned r = 0; r < vnodes_; ++r) {
        std::uint64_t point = pointFor(id, r);
        // Deterministic probe on point collision (wrapping is fine).
        while (ring_.count(point) != 0)
            ++point;
        ring_.emplace(point, id);
    }
}

void
HashRing::removeWorker(const std::string &id)
{
    if (ids_.erase(id) == 0)
        return;
    for (auto it = ring_.begin(); it != ring_.end();) {
        if (it->second == id)
            it = ring_.erase(it);
        else
            ++it;
    }
}

const std::string &
HashRing::ownerOf(const Hash128 &key) const
{
    if (ring_.empty())
        throw std::runtime_error("HashRing: no workers");
    const std::uint64_t point = mix64(key.hi ^ key.lo);
    auto it = ring_.upper_bound(point);
    if (it == ring_.end())
        it = ring_.begin(); // wrap past the highest point
    return it->second;
}

std::vector<std::string>
HashRing::replicasFor(const Hash128 &key, std::size_t n) const
{
    std::vector<std::string> out;
    if (ring_.empty() || n == 0)
        return out;
    n = std::min(n, ids_.size());
    const std::uint64_t point = mix64(key.hi ^ key.lo);
    auto it = ring_.upper_bound(point);
    // Walk at most one full revolution collecting distinct owners.
    for (std::size_t steps = 0; steps < ring_.size() && out.size() < n;
         ++steps, ++it) {
        if (it == ring_.end())
            it = ring_.begin();
        bool seen = false;
        for (const std::string &id : out)
            seen = seen || id == it->second;
        if (!seen)
            out.push_back(it->second);
    }
    return out;
}

} // namespace piton::fleet
