/**
 * @file
 * Fleet coordinator: shards experiment requests across N piton-served
 * workers (DESIGN.md §15).
 *
 * Routing is cache-aware: the routing key is the request's
 * prefixKey() for sweeps (so every sweep point sharing a warm-start
 * prefix image lands on the worker that owns — and has simulated —
 * that prefix) and cacheKey() otherwise (exact-hit affinity).  The
 * key is hashed onto a consistent-hash ring (ring.hh), and the ring's
 * replica sequence doubles as the failover order: when the owner
 * fails mid-request, the coordinator retries the *same* request on
 * the next replica.
 *
 * The determinism contract inherited from the service layer is what
 * makes failover safe: any worker computes byte-identical response
 * bodies for a canonical request, so re-routing — under any failure
 * schedule, at any worker count — cannot change a single response
 * byte relative to a single-node run.  tests/test_fleet.cc and the
 * fleet-smoke CI job gate exactly that.
 *
 * A version mismatch (VersionMismatchError) is deliberately NOT
 * failed over: it means a mis-deployed binary, not a transient fault,
 * and retrying elsewhere would mask the operational error.
 *
 * Connections are pooled per worker (net::ConnectionPool): a socket
 * that finishes an exchange cleanly goes back for reuse; any error
 * invalidates the worker's whole idle set, since its siblings share
 * the likely-dead peer.
 */

#ifndef PITON_FLEET_COORDINATOR_HH
#define PITON_FLEET_COORDINATOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.hh"
#include "fleet/ring.hh"
#include "service/client.hh"

namespace piton::telemetry
{
class TelemetryRecorder;
}

namespace piton::fleet
{

struct FleetConfig
{
    /** Loopback ports of the worker daemons. */
    std::vector<std::uint16_t> workerPorts;
    /** Virtual nodes per worker on the ring. */
    unsigned vnodes = 64;
    /** Dial timeout for new worker connections. */
    int connectTimeoutMs = 2000;
    /** Reply deadline for health-check pings. */
    int healthTimeoutMs = 1000;
    /** Background health-check period; 0 = no background thread
     *  (tests drive checkHealthOnce() explicitly instead). */
    int healthIntervalMs = 0;
    /** Idle connections retained per worker. */
    std::size_t maxIdlePerWorker = 4;
    /** Name announced in the Hello handshake. */
    std::string clientName = "piton-fleet";
};

/** Coordinator-level counters (fleet.* telemetry). */
struct FleetMetrics
{
    std::uint64_t requests = 0;  ///< run() calls completed
    std::uint64_t retries = 0;   ///< failed worker attempts
    std::uint64_t failovers = 0; ///< requests served by a non-owner
    std::uint64_t cacheHits = 0; ///< responses served from worker caches
    std::size_t workersUp = 0;
    std::size_t workersTotal = 0;
    double hitRate = 0.0; ///< cacheHits / requests (0 when idle)
};

/** Point-in-time view of one fleet member. */
struct WorkerSnapshot
{
    std::string id;
    std::uint16_t port = 0;
    bool up = false;
    std::uint64_t requests = 0; ///< served by this worker
    std::uint64_t failures = 0; ///< attempts that errored here
};

/** WorkerSnapshot plus the worker's own live StatsReply (scheduler
 *  metrics including result-cache hit/miss counters).  statsOk is
 *  false — and stats default-constructed — when the worker could not
 *  answer the stats exchange. */
struct WorkerDetail
{
    WorkerSnapshot snapshot;
    bool statsOk = false;
    service::WorkerStats stats;
};

/**
 * Client-compatible front end over the worker fleet: run() routes,
 * retries, and fails over; stats() aggregates worker metrics.
 * Thread-safe — benches drive it from many threads concurrently.
 */
class FleetCoordinator : public service::Client
{
  public:
    explicit FleetCoordinator(FleetConfig cfg);
    ~FleetCoordinator() override;

    FleetCoordinator(const FleetCoordinator &) = delete;
    FleetCoordinator &operator=(const FleetCoordinator &) = delete;

    /** Route + execute with failover.  Throws ServiceError when every
     *  ring replica has failed, VersionMismatchError on version skew
     *  (never failed over). */
    service::ClientResult run(const service::ExperimentRequest &req)
        override;

    /** Summed scheduler metrics across reachable workers. */
    service::SchedulerMetrics stats() override;

    /** One synchronous health sweep (ping with deadline per worker);
     *  returns the number of workers up.  The background thread —
     *  when healthIntervalMs > 0 — calls exactly this. */
    std::size_t checkHealthOnce();

    /** Remove a worker from the ring (e.g. decommissioned). */
    void detachWorker(std::uint16_t port);

    FleetMetrics metrics() const;
    std::vector<WorkerSnapshot> workerSnapshots() const;

    /** workerSnapshots() enriched with each live worker's StatsReply
     *  (one exchange per up worker; down workers report statsOk
     *  false).  The fleetctl `stats` command renders the per-worker
     *  result-cache hit/miss counters from this. */
    std::vector<WorkerDetail> workerDetails();

    /** The worker id that owns `req`'s routing key right now. */
    std::string ownerOf(const service::ExperimentRequest &req) const;

    /** Append fleet.* gauges (and per-worker queue depth / hit rate
     *  fetched from live workers) to `rec`. */
    void exportTelemetry(telemetry::TelemetryRecorder &rec);

  private:
    struct Worker
    {
        std::string id;
        std::uint16_t port = 0;
        bool up = false;
        std::uint64_t requests = 0;
        std::uint64_t failures = 0;
    };

    /** Routing key: prefixKey for sweeps, cacheKey otherwise. */
    static Hash128 routingKey(const service::ExperimentRequest &req);
    /** Failover order: healthy candidates in ring order, then the
     *  unhealthy ones (last-resort — health info may be stale). */
    std::vector<std::size_t> candidateOrder(const Hash128 &key) const;
    service::ClientResult runOnWorker(std::size_t widx,
                                      const service::ExperimentRequest &req);
    void markUp(std::size_t widx);
    void markDown(std::size_t widx);
    void healthLoop();

    FleetConfig cfg_;
    net::ConnectionPool pool_;

    mutable std::mutex mu_;
    HashRing ring_;
    std::vector<Worker> workers_;
    FleetMetrics counters_;
    std::uint64_t exportSeq_ = 0;

    std::thread healthThread_;
    std::mutex healthMu_;
    std::condition_variable healthCv_;
    bool stopping_ = false;
};

} // namespace piton::fleet

#endif // PITON_FLEET_COORDINATOR_HH
