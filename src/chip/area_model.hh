/**
 * @file
 * Place-and-route area database (Fig. 8).
 *
 * The paper publishes, as its "most detailed area breakdown of an open
 * source manycore", the standard-cell + SRAM-macro areas of every major
 * block at three levels of hierarchy: chip (35.97552 mm^2), tile
 * (1.17459 mm^2), and core (0.55205 mm^2).  This module encodes that
 * database and offers lookups, absolute-area conversion, and
 * consistency checks (percentages at each level sum to ~100%).
 */

#ifndef PITON_CHIP_AREA_MODEL_HH
#define PITON_CHIP_AREA_MODEL_HH

#include <string>
#include <vector>

namespace piton::chip
{

struct AreaBlock
{
    std::string name;
    double percent; ///< of the level's floorplanned area
};

struct AreaLevel
{
    std::string name;
    double totalMm2;
    std::vector<AreaBlock> blocks;

    /** Sum of all block percentages (should be ~100). */
    double percentSum() const;
    /** Absolute area of one named block; fatal if unknown. */
    double blockAreaMm2(const std::string &block) const;
    /** Percentage of one named block; fatal if unknown. */
    double blockPercent(const std::string &block) const;
    bool hasBlock(const std::string &block) const;
};

class AreaModel
{
  public:
    AreaModel();

    const AreaLevel &chip() const { return chip_; }
    const AreaLevel &tile() const { return tile_; }
    const AreaLevel &core() const { return core_; }

    /**
     * Combined fraction of tile area taken by the three NoC routers —
     * the context the paper gives for its "NoC energy is small" claim.
     */
    double nocRouterTileFraction() const;

  private:
    AreaLevel chip_;
    AreaLevel tile_;
    AreaLevel core_;
};

} // namespace piton::chip

#endif // PITON_CHIP_AREA_MODEL_HH
