/**
 * @file
 * Per-die process variation.
 *
 * The paper characterizes several physical chips: Chip #1 (fast but
 * leaky — thermally limited at high voltage in Fig. 9), Chip #2 (the
 * default for most studies, Table V), Chip #3 (microbenchmark studies,
 * Section IV-H), and an unnamed fourth chip for the thermal analysis
 * (Section IV-J).  A ChipInstance carries the variation knobs that
 * separate those dies: a speed factor (multiplies fmax), a leakage
 * factor, a dynamic-energy factor, and small per-tile factors that
 * produce the inter-tile power variation the EPI methodology averages
 * out by running on all 25 cores.
 */

#ifndef PITON_CHIP_CHIP_INSTANCE_HH
#define PITON_CHIP_CHIP_INSTANCE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace piton::chip
{

struct ChipInstance
{
    int id = 2;
    std::string name = "Chip #2";

    /** Multiplies VfModel::rawFmaxMhz. */
    double speedFactor = 1.0;
    /** Multiplies leakage power. */
    double leakFactor = 1.0;
    /** Multiplies dynamic (switching) energy chip-wide. */
    double dynFactor = 1.0;

    /** Per-tile dynamic-energy variation (25 entries, mean ~1.0). */
    std::vector<double> tileDynFactor;

    double
    tileFactor(std::uint32_t tile) const
    {
        return tile < tileDynFactor.size() ? tileDynFactor[tile] : 1.0;
    }
};

/**
 * Named chips calibrated against the paper:
 *  - Chip #1: fastest at low voltage, highest leakage (runs hot).
 *  - Chip #2: nominal; static 389.3 mW / idle 2015.3 mW (Table V).
 *  - Chip #3: static 364.8 mW / idle 1906.2 mW (Section IV-H).
 *  - Chip #4: the thermal-study die (Section IV-J).
 */
ChipInstance makeChip(int id, std::uint64_t variation_seed = 1234);

} // namespace piton::chip

#endif // PITON_CHIP_CHIP_INSTANCE_HH
