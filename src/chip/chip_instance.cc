#include "chip/chip_instance.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace piton::chip
{

ChipInstance
makeChip(int id, std::uint64_t variation_seed)
{
    ChipInstance c;
    c.id = id;
    c.name = "Chip #" + std::to_string(id);
    switch (id) {
      case 1:
        // Fast corner: highest fmax at low V, ~32% extra leakage, runs
        // into the cooling limit above 1.0 V (Fig. 9).
        c.speedFactor = 1.045;
        c.leakFactor = 1.32;
        c.dynFactor = 1.06;
        break;
      case 2:
        // Nominal die; all EnergyParams defaults are calibrated to it.
        c.speedFactor = 1.0;
        c.leakFactor = 1.0;
        c.dynFactor = 1.0;
        break;
      case 3:
        // Slightly slow/cold: static 364.8 mW vs 389.3 mW and idle
        // 1906.2 mW vs 2015.3 mW imply ~0.94 leakage and ~0.95 dynamic.
        c.speedFactor = 0.985;
        c.leakFactor = 0.937;
        c.dynFactor = 0.948;
        break;
      case 4:
        // The thermal-study chip (Section IV-J).
        c.speedFactor = 0.99;
        c.leakFactor = 1.0;
        c.dynFactor = 1.01;
        break;
      default:
        piton_fatal("unknown chip id %d (calibrated chips are 1..4)", id);
    }
    Rng rng(variation_seed + static_cast<std::uint64_t>(id) * 0x9e37ULL);
    c.tileDynFactor.resize(25);
    for (auto &f : c.tileDynFactor)
        f = rng.gaussian(1.0, 0.02);
    return c;
}

} // namespace piton::chip
