#include "chip/yield_model.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace piton::chip
{

const char *
dieStatusName(DieStatus s)
{
    switch (s) {
      case DieStatus::Good: return "Good";
      case DieStatus::UnstableDeterministic: return "Unstable*";
      case DieStatus::BadVcsShort: return "Bad";
      case DieStatus::BadVddShort: return "Bad";
      case DieStatus::UnstableNondeterministic: return "Unstable*";
      default:
        piton_panic("bad DieStatus");
    }
}

const char *
dieStatusSymptom(DieStatus s)
{
    switch (s) {
      case DieStatus::Good:
        return "Stable operation";
      case DieStatus::UnstableDeterministic:
        return "Consistently fails deterministically";
      case DieStatus::BadVcsShort:
        return "High VCS current draw";
      case DieStatus::BadVddShort:
        return "High VDD current draw";
      case DieStatus::UnstableNondeterministic:
        return "Consistently fails nondeterministically";
      default:
        piton_panic("bad DieStatus");
    }
}

const char *
dieStatusCause(DieStatus s)
{
    switch (s) {
      case DieStatus::Good: return "N/A";
      case DieStatus::UnstableDeterministic: return "Bad SRAM cells";
      case DieStatus::BadVcsShort: return "Short";
      case DieStatus::BadVddShort: return "Short";
      case DieStatus::UnstableNondeterministic: return "Unstable SRAM cells";
      default:
        piton_panic("bad DieStatus");
    }
}

bool
possiblyRepairable(DieStatus s)
{
    return s == DieStatus::UnstableDeterministic
           || s == DieStatus::UnstableNondeterministic;
}

YieldModel::YieldModel(YieldParams params) : params_(params)
{
    piton_assert(params_.sramBits > 0, "sramBits must be positive");
}

DieStatus
YieldModel::classifyDie(Rng &rng) const
{
    // Shorts show up first at power-on as abnormal current draw and
    // prevent any functional testing.
    const double p_vcs_short = 1.0 - std::exp(-params_.vcsShortMean);
    if (rng.chance(p_vcs_short))
        return DieStatus::BadVcsShort;
    const double p_vdd_short = 1.0 - std::exp(-params_.vddShortMean);
    if (rng.chance(p_vdd_short))
        return DieStatus::BadVddShort;

    // Functional testing: hard SRAM defects cause deterministic
    // failures; marginal cells cause nondeterministic ones.
    const double lambda_hard =
        static_cast<double>(params_.sramBits) * params_.sramDefectPerBit;
    if (rng.chance(1.0 - std::exp(-lambda_hard)))
        return DieStatus::UnstableDeterministic;
    const double lambda_soft =
        static_cast<double>(params_.sramBits) * params_.sramUnstablePerBit;
    if (rng.chance(1.0 - std::exp(-lambda_soft)))
        return DieStatus::UnstableNondeterministic;
    return DieStatus::Good;
}

TestingStats
YieldModel::testDies(std::uint32_t n, std::uint64_t seed) const
{
    Rng rng(seed);
    TestingStats out;
    for (std::uint32_t i = 0; i < n; ++i)
        ++out.counts[static_cast<std::size_t>(classifyDie(rng))];
    return out;
}

std::uint32_t
YieldModel::poisson(Rng &rng, double mean)
{
    const double limit = std::exp(-mean);
    std::uint32_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > limit);
    return k - 1;
}

bool
YieldModel::defectsRepairable(Rng &rng, std::uint32_t defects,
                              const RepairConfig &repair)
{
    if (defects == 0)
        return true;
    // Throw each defect into a random array; any array over its spare
    // budget makes the die unrepairable.
    std::vector<std::uint32_t> per_array(repair.arraysPerDie, 0);
    for (std::uint32_t d = 0; d < defects; ++d) {
        const auto a =
            static_cast<std::size_t>(rng.below(repair.arraysPerDie));
        if (++per_array[a] > repair.sparesPerArray)
            return false;
    }
    return true;
}

DieStatus
YieldModel::classifyDieWithRepair(Rng &rng,
                                  const RepairConfig &repair) const
{
    // Shorts are not repairable: same screening as before.
    if (rng.chance(1.0 - std::exp(-params_.vcsShortMean)))
        return DieStatus::BadVcsShort;
    if (rng.chance(1.0 - std::exp(-params_.vddShortMean)))
        return DieStatus::BadVddShort;

    const double lambda_hard =
        static_cast<double>(params_.sramBits) * params_.sramDefectPerBit;
    const std::uint32_t hard = poisson(rng, lambda_hard);
    if (hard > 0 && !defectsRepairable(rng, hard, repair))
        return DieStatus::UnstableDeterministic;

    const double lambda_soft =
        static_cast<double>(params_.sramBits) * params_.sramUnstablePerBit;
    const std::uint32_t soft = poisson(rng, lambda_soft);
    if (soft > 0 && !defectsRepairable(rng, soft, repair))
        return DieStatus::UnstableNondeterministic;

    return DieStatus::Good;
}

TestingStats
YieldModel::testDiesWithRepair(std::uint32_t n, std::uint64_t seed,
                               const RepairConfig &repair) const
{
    Rng rng(seed);
    TestingStats out;
    for (std::uint32_t i = 0; i < n; ++i)
        ++out.counts[static_cast<std::size_t>(
            classifyDieWithRepair(rng, repair))];
    return out;
}

double
YieldModel::goodYield(std::uint32_t samples, std::uint64_t seed,
                      const RepairConfig *repair) const
{
    const TestingStats s = repair
                               ? testDiesWithRepair(samples, seed, *repair)
                               : testDies(samples, seed);
    return s.percent(DieStatus::Good) / 100.0;
}

double
YieldModel::probabilityOf(DieStatus s) const
{
    const double p_vcs = 1.0 - std::exp(-params_.vcsShortMean);
    const double p_vdd =
        (1.0 - p_vcs) * (1.0 - std::exp(-params_.vddShortMean));
    const double survive_shorts = 1.0 - p_vcs - p_vdd;
    const double p_hard =
        1.0
        - std::exp(-static_cast<double>(params_.sramBits)
                   * params_.sramDefectPerBit);
    const double p_soft =
        1.0
        - std::exp(-static_cast<double>(params_.sramBits)
                   * params_.sramUnstablePerBit);
    switch (s) {
      case DieStatus::BadVcsShort:
        return p_vcs;
      case DieStatus::BadVddShort:
        return p_vdd;
      case DieStatus::UnstableDeterministic:
        return survive_shorts * p_hard;
      case DieStatus::UnstableNondeterministic:
        return survive_shorts * (1.0 - p_hard) * p_soft;
      case DieStatus::Good:
        return survive_shorts * (1.0 - p_hard) * (1.0 - p_soft);
      default:
        piton_panic("bad DieStatus");
    }
}

} // namespace piton::chip
