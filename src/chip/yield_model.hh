/**
 * @file
 * Die-testing / yield model (Table IV).
 *
 * The paper tests 32 randomly selected packaged dies from a two-wafer
 * multi-project run and classifies them by symptom: stable operation,
 * deterministic failures (bad SRAM cells), high VCS or VDD current draw
 * (shorts), and nondeterministic failures (unstable SRAM cells).
 *
 * We model the defect mechanisms directly: Poisson-distributed SRAM
 * cell defects over the die's ~20 Mbit of SRAM, and per-die short
 * probabilities on the two supply networks.  Shorts are detected first
 * during bring-up (current draw), masking any SRAM symptoms.
 */

#ifndef PITON_CHIP_YIELD_MODEL_HH
#define PITON_CHIP_YIELD_MODEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace piton::chip
{

/** The five symptom classes of Table IV. */
enum class DieStatus : std::size_t
{
    Good,                   ///< stable operation
    UnstableDeterministic,  ///< consistently fails deterministically
    BadVcsShort,            ///< high VCS current draw
    BadVddShort,            ///< high VDD current draw
    UnstableNondeterministic, ///< fails nondeterministically

    NumStatuses
};

const char *dieStatusName(DieStatus s);
const char *dieStatusSymptom(DieStatus s);
const char *dieStatusCause(DieStatus s);

/** True for the two classes the paper marks fixable with SRAM repair. */
bool possiblyRepairable(DieStatus s);

struct YieldParams
{
    /** SRAM bits per die (L1I+L1D+L1.5+L2 across 25 tiles ~ 20 Mbit). */
    std::uint64_t sramBits = 20'132'659;
    /** Hard (deterministic) defect probability per SRAM bit. */
    double sramDefectPerBit = 1.50e-8;
    /** Marginal (nondeterministic) defect probability per SRAM bit. */
    double sramUnstablePerBit = 1.60e-9;
    /** Expected VCS-network shorts per die (Poisson mean). */
    double vcsShortMean = 0.1335;
    /** Expected VDD-network shorts per die (Poisson mean). */
    double vddShortMean = 0.0325;
};

struct TestingStats
{
    std::array<std::uint32_t, static_cast<std::size_t>(
                                  DieStatus::NumStatuses)>
        counts{};
    std::uint32_t
    total() const
    {
        std::uint32_t t = 0;
        for (auto c : counts)
            t += c;
        return t;
    }
    std::uint32_t
    of(DieStatus s) const
    {
        return counts[static_cast<std::size_t>(s)];
    }
    double
    percent(DieStatus s) const
    {
        return total() ? 100.0 * of(s) / total() : 0.0;
    }
};

/**
 * SRAM repair configuration.  Piton can remap rows and columns in its
 * SRAMs to repair bad cells (the paper notes the repair flow was still
 * in development — Table IV's footnote marks the classes it would
 * recover).  A die is repairable when no single SRAM array holds more
 * defects than its spare resources can remap.
 */
struct RepairConfig
{
    /** Spare row/column resources per SRAM array. */
    std::uint32_t sparesPerArray = 2;
    /** SRAM arrays per die (L1I/L1D/L1.5/L2 data+tag across 25 tiles). */
    std::uint32_t arraysPerDie = 125;
};

class YieldModel
{
  public:
    explicit YieldModel(YieldParams params = YieldParams{});

    const YieldParams &params() const { return params_; }

    /** Bring-up classification of a single die. */
    DieStatus classifyDie(Rng &rng) const;

    /** Test a batch of dies (the paper's n = 32). */
    TestingStats testDies(std::uint32_t n, std::uint64_t seed) const;

    /** Closed-form probability of each classification. */
    double probabilityOf(DieStatus s) const;

    /**
     * Classification after running the SRAM repair flow: dies whose
     * (deterministic or marginal) SRAM defects all fit within the
     * per-array spares are reclassified as Good.
     */
    DieStatus classifyDieWithRepair(Rng &rng,
                                    const RepairConfig &repair) const;

    TestingStats testDiesWithRepair(std::uint32_t n, std::uint64_t seed,
                                    const RepairConfig &repair) const;

    /** Monte-Carlo good-die yield with and without repair. */
    double goodYield(std::uint32_t samples, std::uint64_t seed,
                     const RepairConfig *repair = nullptr) const;

  private:
    /** Poisson sample (Knuth's method; our means are < 1). */
    static std::uint32_t poisson(Rng &rng, double mean);

    /** True if `defects` thrown into arraysPerDie arrays never exceed
     *  sparesPerArray in any one array. */
    static bool defectsRepairable(Rng &rng, std::uint32_t defects,
                                  const RepairConfig &repair);

    YieldParams params_;
};

} // namespace piton::chip

#endif // PITON_CHIP_YIELD_MODEL_HH
