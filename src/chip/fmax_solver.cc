#include "chip/fmax_solver.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace piton::chip
{

FmaxSolver::FmaxSolver(power::VfModel vf, power::EnergyModel energy,
                       thermal::ThermalParams thermal,
                       FmaxSolverParams params)
    : vf_(vf), energy_(energy), thermalParams_(thermal), params_(params)
{
}

double
FmaxSolver::bootPowerW(const ChipInstance &chip_inst, double freq_mhz,
                       double vdd_v, double vcs_v,
                       double *die_temp_c) const
{
    energy_.setOperatingPoint(vdd_v, vcs_v);
    const thermal::ThermalModel tm(thermalParams_);

    // Dynamic power is temperature-independent; only leakage couples to
    // the thermal network, so fixed-point iterate P <-> T.
    const double dyn_w = energy_.idleCycleEnergy().onChipCoreAndSram()
                         * params_.tiles * mhzToHz(freq_mhz)
                         * chip_inst.dynFactor * params_.bootActivityFactor;
    double temp = thermalParams_.ambientC;
    double power = dyn_w;
    constexpr int kMaxIters = 200;
    for (int i = 0; i < kMaxIters; ++i) {
        const double leak_w =
            energy_.leakagePowerW(temp, chip_inst.leakFactor)
                .onChipCoreAndSram();
        power = dyn_w + leak_w;
        const double new_temp = tm.steadyState(power).dieC;
        if (std::abs(new_temp - temp) < 1e-4) {
            temp = new_temp;
            if (die_temp_c)
                *die_temp_c = temp;
            return power;
        }
        // Damped update for stability near runaway.
        temp = 0.5 * temp + 0.5 * new_temp;
        if (temp > 400.0)
            break; // thermal runaway: no stable operating point
    }
    if (die_temp_c)
        *die_temp_c = 1e6; // diverged
    return power;
}

FmaxResult
FmaxSolver::solve(const ChipInstance &chip_inst, double vdd_v,
                  double vcs_v) const
{
    FmaxResult out;
    out.rawMhz = vf_.rawFmaxMhz(vdd_v, chip_inst.speedFactor);

    auto feasible = [&](double f_mhz, double *temp, double *power) {
        double t = 0.0;
        const double p = bootPowerW(chip_inst, f_mhz, vdd_v, vcs_v, &t);
        if (temp)
            *temp = t;
        if (power)
            *power = p;
        return t <= params_.maxDieTempC;
    };

    double temp = 0.0, power = 0.0;
    double f = out.rawMhz;
    if (!feasible(f, &temp, &power)) {
        out.thermallyLimited = true;
        // Bisect on frequency for the cooling-limited point.  Zero
        // frequency may itself be infeasible (leakage alone overheats);
        // report zero in that (unphysical for our calibration) case.
        double lo = 0.0, hi = f;
        if (!feasible(lo, nullptr, nullptr)) {
            out.fmaxMhz = 0.0;
            out.dieTempC = temp;
            out.powerW = power;
            return out;
        }
        for (int i = 0; i < 60; ++i) {
            const double mid = 0.5 * (lo + hi);
            if (feasible(mid, &temp, &power))
                lo = mid;
            else
                hi = mid;
        }
        f = lo;
        feasible(f, &temp, &power);
    }

    out.fmaxMhz = vf_.quantizeMhz(f);
    out.nextStepMhz = vf_.nextStepMhz(f);
    // Report the operating conditions at the quantized point.
    feasible(out.fmaxMhz, &out.dieTempC, &out.powerW);
    return out;
}

} // namespace piton::chip
