/**
 * @file
 * Thermally-aware maximum-frequency solver (Fig. 9).
 *
 * Fig. 9 reports, per chip and VDD point, the maximum core frequency at
 * which Debian Linux boots.  Two limits interact:
 *
 *  1. the device limit, fmax(V) from the alpha-power delay model
 *     scaled by the chip's speed factor; and
 *  2. the cooling limit: at the boot workload's power the steady-state
 *     die temperature must stay below the maximum junction temperature
 *     given the (cavity-up, epoxy-encapsulated, socketed) package.
 *
 * Chip #1's higher leakage makes it fastest at low voltage but pushes
 * it into limit (2) above ~1.0 V, with a severe frequency drop at
 * 1.2 V — the solver reproduces that crossover.
 */

#ifndef PITON_CHIP_FMAX_SOLVER_HH
#define PITON_CHIP_FMAX_SOLVER_HH

#include "chip/chip_instance.hh"
#include "power/energy_model.hh"
#include "power/vf_model.hh"
#include "thermal/thermal_model.hh"

namespace piton::chip
{

struct FmaxSolverParams
{
    /** Junction temperature above which operation becomes unstable. */
    double maxDieTempC = 100.0;
    /** Boot-workload power relative to idle (Linux boot is light). */
    double bootActivityFactor = 1.10;
    /** Tiles clocked during boot. */
    std::uint32_t tiles = 25;
};

struct FmaxResult
{
    double rawMhz = 0.0;        ///< device-limited frequency
    double fmaxMhz = 0.0;       ///< reported (quantized, thermally limited)
    double nextStepMhz = 0.0;   ///< next grid point (failed test, error bar)
    bool thermallyLimited = false;
    double dieTempC = 0.0;      ///< steady-state die temp at fmaxMhz
    double powerW = 0.0;        ///< chip power at fmaxMhz
};

class FmaxSolver
{
  public:
    FmaxSolver(power::VfModel vf, power::EnergyModel energy,
               thermal::ThermalParams thermal,
               FmaxSolverParams params = FmaxSolverParams{});

    /**
     * Solve for the maximum boot frequency of a chip at a VDD/VCS pair.
     * The paper always sets VCS = VDD + 0.05 V; callers may pass any
     * pair.
     */
    FmaxResult solve(const ChipInstance &chip_inst, double vdd_v,
                     double vcs_v) const;

    /**
     * Chip power (W, VDD+VCS) at a frequency/voltage point including the
     * leakage-temperature fixed point.  Returns the power and, through
     * the out-parameter, the converged die temperature.  If the thermal
     * loop diverges (runaway), temperature is reported above any
     * realistic junction limit.
     */
    double bootPowerW(const ChipInstance &chip_inst, double freq_mhz,
                      double vdd_v, double vcs_v, double *die_temp_c) const;

  private:
    power::VfModel vf_;
    mutable power::EnergyModel energy_;
    thermal::ThermalParams thermalParams_;
    FmaxSolverParams params_;
};

} // namespace piton::chip

#endif // PITON_CHIP_FMAX_SOLVER_HH
