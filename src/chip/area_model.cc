#include "chip/area_model.hh"

#include "common/logging.hh"

namespace piton::chip
{

double
AreaLevel::percentSum() const
{
    double s = 0.0;
    for (const auto &b : blocks)
        s += b.percent;
    return s;
}

bool
AreaLevel::hasBlock(const std::string &block) const
{
    for (const auto &b : blocks)
        if (b.name == block)
            return true;
    return false;
}

double
AreaLevel::blockPercent(const std::string &block) const
{
    for (const auto &b : blocks)
        if (b.name == block)
            return b.percent;
    piton_fatal("unknown area block '%s' at level '%s'", block.c_str(),
                name.c_str());
}

double
AreaLevel::blockAreaMm2(const std::string &block) const
{
    return totalMm2 * blockPercent(block) / 100.0;
}

AreaModel::AreaModel()
{
    // All numbers transcribed from the paper's Fig. 8.
    chip_.name = "chip";
    chip_.totalMm2 = 35.97552;
    chip_.blocks = {
        {"Tile0", 3.27},
        {"Tile 1-24", 78.37},
        {"Chip Bridge", 0.12},
        {"Clock Circuitry", 0.26},
        {"I/O Cells", 3.75},
        {"ORAM", 2.73},
        {"Timing Opt Buffers", 0.07},
        {"Filler", 9.32},
        {"Unutilized", 2.12},
    };

    tile_.name = "tile";
    tile_.totalMm2 = 1.17459;
    tile_.blocks = {
        {"Core", 47.00},
        {"L2 Cache", 22.16},
        {"L1.5 Cache", 7.62},
        {"NoC1 Router", 0.98},
        {"NoC2 Router", 0.95},
        {"NoC3 Router", 0.95},
        {"FPU", 2.64},
        {"MITTS", 0.17},
        {"JTAG", 0.10},
        {"Config Regs", 0.05},
        {"Clock Tree", 0.01},
        {"Timing Opt Buffers", 0.34},
        {"Filler", 16.32},
        {"Unutilized", 0.73},
    };

    core_.name = "core";
    core_.totalMm2 = 0.55205;
    core_.blocks = {
        {"Fetch", 17.52},
        {"Load/Store", 22.33},
        {"Execute", 2.38},
        {"Integer RF", 16.81},
        {"Trap Logic", 6.42},
        {"Multiply", 1.53},
        {"FP Front-End", 1.85},
        {"Config Regs", 0.11},
        {"CCX Buffers", 0.06},
        {"Clock Tree", 0.13},
        {"Timing Opt Buffers", 3.83},
        {"Filler", 26.13},
        {"Unutilized", 0.90},
    };
}

double
AreaModel::nocRouterTileFraction() const
{
    return (tile_.blockPercent("NoC1 Router")
            + tile_.blockPercent("NoC2 Router")
            + tile_.blockPercent("NoC3 Router"))
           / 100.0;
}

} // namespace piton::chip
