/**
 * @file
 * Evaluation oracles: how a searcher obtains the objective inputs for
 * a batch of candidates (DESIGN.md §16).
 *
 * Three backends sit behind one interface:
 *
 *  - InProcessOracle: runs each request through the service executor
 *    directly (no scheduler, no sockets), with its own content-
 *    addressed memo so revisited candidates cost a hash lookup.
 *    Batches evaluate in parallel; results are deterministic at any
 *    thread count because each request's result is bit-determined by
 *    its canonical bytes alone.
 *
 *  - ClientOracle: evaluates through any service::Client — a
 *    LocalClient over a scheduler, a TcpClient against piton-served
 *    (batches pipeline on the one connection), or any other transport.
 *    Cache hits are the server's (servedFromCache).
 *
 *  - FleetOracle: fans a batch across a FleetCoordinator with bounded
 *    in-flight parallelism; consistent-hash routing gives every
 *    candidate cache affinity to one worker.
 *
 * The byte-identity contract of the service layer means every backend
 * returns the same Evaluation values for the same request — the
 * bench's --verify mode gates exactly that.
 */

#ifndef PITON_SEARCH_ORACLE_HH
#define PITON_SEARCH_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"
#include "fleet/coordinator.hh"
#include "service/client.hh"
#include "service/request.hh"

namespace piton::search
{

/** What the objective sees of one candidate's run. */
struct Evaluation
{
    /** Response status was Ok (invalid evaluations score infeasible). */
    bool valid = false;
    /** The workload ran to completion within the cycle budget. */
    bool completed = false;
    std::uint64_t insts = 0;
    double seconds = 0.0;
    double energyJ = 0.0;
    /** Energy per instruction (J/inst; 0 when insts == 0). */
    double epi = 0.0;
    /** energyJ / seconds (0 when seconds == 0). */
    double avgPowerW = 0.0;
    /** Served from a cache (memo or service result cache). */
    bool cacheHit = false;
};

/** Decode a client result into an Evaluation. */
Evaluation evaluationFromBody(const std::vector<std::uint8_t> &body,
                              bool cache_hit);

/** Cumulative counters across evaluate() calls. */
struct OracleStats
{
    std::uint64_t calls = 0;
    std::uint64_t cacheHits = 0;
};

class Oracle
{
  public:
    virtual ~Oracle() = default;

    /** Evaluate a batch; result i corresponds to reqs[i].  Requests
     *  need not be canonicalized (the oracle canonicalizes). */
    virtual std::vector<Evaluation>
    evaluate(const std::vector<service::ExperimentRequest> &reqs) = 0;

    const OracleStats &stats() const { return stats_; }

  protected:
    OracleStats stats_;
};

/** Executor-direct oracle with a local result memo. */
class InProcessOracle : public Oracle
{
  public:
    /** `threads` bounds batch parallelism (resolveThreadCount rules;
     *  1 = inline).  Results are thread-count-invariant. */
    explicit InProcessOracle(unsigned threads = 1) : threads_(threads) {}

    std::vector<Evaluation>
    evaluate(const std::vector<service::ExperimentRequest> &reqs) override;

  private:
    unsigned threads_;
    /** cacheKey → encoded Ok response body.  Failures are not
     *  memoized (mirrors the service cache's Ok-only policy). */
    std::unordered_map<Hash128, std::vector<std::uint8_t>, Hash128Hasher>
        memo_;
};

/** Oracle over any service::Client.  A TcpClient batch pipelines
 *  submit()/waitFor() on the single connection. */
class ClientOracle : public Oracle
{
  public:
    explicit ClientOracle(service::Client &client) : client_(client) {}

    std::vector<Evaluation>
    evaluate(const std::vector<service::ExperimentRequest> &reqs) override;

  private:
    service::Client &client_;
};

/** Oracle over a worker fleet: bounded concurrent run() calls. */
class FleetOracle : public Oracle
{
  public:
    explicit FleetOracle(fleet::FleetCoordinator &fleet,
                         unsigned inflight = 4)
        : fleet_(fleet), inflight_(inflight == 0 ? 1 : inflight)
    {
    }

    std::vector<Evaluation>
    evaluate(const std::vector<service::ExperimentRequest> &reqs) override;

  private:
    fleet::FleetCoordinator &fleet_;
    unsigned inflight_;
};

} // namespace piton::search

#endif // PITON_SEARCH_ORACLE_HH
