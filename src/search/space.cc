#include "search/space.hh"

#include <algorithm>
#include <cmath>

#include "chip/chip_instance.hh"
#include "common/logging.hh"
#include "power/vf_model.hh"
#include "service/wire.hh"

namespace piton::search
{

namespace
{

/** Duty denominator of a chip clock — must agree with the service's
 *  canonicalization (request.cc) and sim::System::initStaticDuty, so
 *  a candidate's freqStep lands on exactly the duty numerator the
 *  simulation runs. */
std::uint32_t
dutySteps(double clock_mhz)
{
    const double step = power::VfParams{}.freqStepMhz;
    return static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(clock_mhz / step)));
}

/** Lowest-numbered tiles not in `used`, appended until `c.placement`
 *  has `cores` entries (the deterministic repair shared by
 *  canonicalize and crossover offspring). */
void
fillPlacement(Candidate &c, std::uint32_t cores, std::uint32_t tile_count)
{
    std::uint32_t used = 0;
    for (const std::uint8_t t : c.placement)
        used |= 1u << t;
    for (std::uint32_t t = 0; t < tile_count && c.placement.size() < cores;
         ++t) {
        if ((used >> t) & 1u)
            continue;
        c.placement.push_back(static_cast<std::uint8_t>(t));
        used |= 1u << t;
    }
}

} // namespace

SearchSpace
defaultSpace(std::uint32_t cores, int chip_id)
{
    SearchSpace space;
    space.cores = std::min<std::uint32_t>(std::max(cores, 1u), 25);
    space.tileCount = 25;
    const chip::ChipInstance inst = chip::makeChip(chip_id);
    const power::VfModel vf;
    // 50 mV rungs over the paper's stable operating band (Fig. 9).
    for (int mv = 750; mv <= 1050; mv += 50) {
        VfRung rung;
        rung.vddV = mv / 1000.0;
        rung.freqMhz =
            vf.quantizeMhz(vf.rawFmaxMhz(rung.vddV, inst.speedFactor));
        rung.dutySteps = dutySteps(rung.freqMhz);
        space.rungs.push_back(rung);
    }
    return space;
}

void
canonicalizeCandidate(const SearchSpace &space, Candidate &c)
{
    piton_assert(!space.rungs.empty(), "search space has no V-f rungs");
    piton_assert(space.cores >= 1 && space.cores <= space.tileCount,
                 "search space cores out of range");
    if (c.rung >= space.rungs.size())
        c.rung = static_cast<std::uint8_t>(space.rungs.size() - 1);

    // Keep the first occurrence of each in-range tile, drop the rest,
    // then fill up to `cores` with the lowest unused tiles.
    std::uint32_t used = 0;
    std::vector<std::uint8_t> kept;
    for (const std::uint8_t t : c.placement) {
        if (t >= space.tileCount || ((used >> t) & 1u))
            continue;
        if (kept.size() == space.cores)
            break;
        kept.push_back(t);
        used |= 1u << t;
    }
    c.placement = std::move(kept);
    fillPlacement(c, space.cores, space.tileCount);

    const std::uint32_t den = space.rungs[c.rung].dutySteps;
    const auto full =
        static_cast<std::uint16_t>(std::min<std::uint32_t>(den, 0xFFFF));
    c.freqStep.resize(space.cores, full);
    for (std::uint16_t &s : c.freqStep)
        s = std::min(std::max<std::uint16_t>(s, 1), full);
}

std::vector<std::uint8_t>
candidateBytes(const Candidate &c)
{
    service::WireWriter w;
    w.u8(c.rung);
    w.u16(static_cast<std::uint16_t>(c.placement.size()));
    for (const std::uint8_t t : c.placement)
        w.u8(t);
    w.u16(static_cast<std::uint16_t>(c.freqStep.size()));
    for (const std::uint16_t s : c.freqStep)
        w.u16(s);
    return w.take();
}

Hash128
candidateKey(const Candidate &c)
{
    Hasher h;
    h.update("piton-search-candidate");
    h.update(candidateBytes(c));
    return h.digest();
}

bool
operator==(const Candidate &a, const Candidate &b)
{
    return a.rung == b.rung && a.placement == b.placement
           && a.freqStep == b.freqStep;
}

double
exhaustiveSize(const SearchSpace &space)
{
    // Placements are ordered (position = core role): P(tileCount, cores).
    double placements = 1.0;
    for (std::uint32_t i = 0; i < space.cores; ++i)
        placements *= static_cast<double>(space.tileCount - i);
    double total = 0.0;
    for (const VfRung &r : space.rungs)
        total += placements
                 * std::pow(static_cast<double>(r.dutySteps),
                            static_cast<double>(space.cores));
    return total;
}

Candidate
randomCandidate(const SearchSpace &space, Rng &rng)
{
    Candidate c;
    c.rung = static_cast<std::uint8_t>(rng.below(space.rungs.size()));
    // Fisher-Yates prefix: a uniform ordered placement of `cores`
    // distinct tiles.
    std::vector<std::uint8_t> tiles(space.tileCount);
    for (std::uint32_t t = 0; t < space.tileCount; ++t)
        tiles[t] = static_cast<std::uint8_t>(t);
    for (std::uint32_t i = 0; i < space.cores; ++i)
        std::swap(tiles[i], tiles[i + rng.below(space.tileCount - i)]);
    c.placement.assign(tiles.begin(), tiles.begin() + space.cores);
    const std::uint32_t den = space.rungs[c.rung].dutySteps;
    c.freqStep.resize(space.cores);
    for (std::uint16_t &s : c.freqStep)
        s = static_cast<std::uint16_t>(1 + rng.below(den));
    canonicalizeCandidate(space, c);
    return c;
}

Candidate
defaultCandidate(const SearchSpace &space, std::uint8_t rung)
{
    Candidate c;
    c.rung = rung;
    for (std::uint32_t i = 0; i < space.cores; ++i)
        c.placement.push_back(static_cast<std::uint8_t>(i));
    // canonicalize fills freqStep with the rung's full-duty value.
    canonicalizeCandidate(space, c);
    return c;
}

std::vector<Candidate>
seedCandidates(const SearchSpace &space, std::uint32_t n)
{
    const auto rung_count =
        static_cast<std::uint32_t>(space.rungs.size());
    const std::uint32_t k = std::min(n, rung_count);
    std::vector<Candidate> out;
    out.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
        const std::uint32_t r =
            k <= 1 ? (rung_count - 1) / 2
                   : static_cast<std::uint32_t>(
                         static_cast<std::uint64_t>(i) * (rung_count - 1)
                         / (k - 1));
        out.push_back(defaultCandidate(space, static_cast<std::uint8_t>(r)));
    }
    return out;
}

void
mutateCandidate(const SearchSpace &space, Candidate &c, Rng &rng)
{
    canonicalizeCandidate(space, c);
    const bool can_swap = space.cores >= 2;
    const bool can_migrate = space.cores < space.tileCount;
    for (;;) {
        switch (rng.below(4)) {
        case 0: { // swap
            if (!can_swap)
                continue;
            const std::uint64_t i = rng.below(space.cores);
            std::uint64_t j = rng.below(space.cores - 1);
            if (j >= i)
                ++j;
            std::swap(c.placement[i], c.placement[j]);
            break;
        }
        case 1: { // migrate
            if (!can_migrate)
                continue;
            std::uint32_t used = 0;
            for (const std::uint8_t t : c.placement)
                used |= 1u << t;
            std::vector<std::uint8_t> free;
            for (std::uint32_t t = 0; t < space.tileCount; ++t)
                if (!((used >> t) & 1u))
                    free.push_back(static_cast<std::uint8_t>(t));
            const std::uint64_t i = rng.below(space.cores);
            c.placement[i] = free[rng.below(free.size())];
            break;
        }
        case 2: { // freq-nudge
            const std::uint32_t den = space.rungs[c.rung].dutySteps;
            const std::uint64_t i = rng.below(space.cores);
            const auto delta = static_cast<std::uint32_t>(
                1 + rng.below(std::max<std::uint32_t>(1, den / 8)));
            std::int64_t s = c.freqStep[i];
            s += rng.chance(0.5) ? static_cast<std::int64_t>(delta)
                                 : -static_cast<std::int64_t>(delta);
            c.freqStep[i] = static_cast<std::uint16_t>(std::min<std::int64_t>(
                std::max<std::int64_t>(s, 1), den));
            break;
        }
        default: { // rung-nudge
            if (space.rungs.size() < 2)
                continue;
            const bool up = rng.chance(0.5);
            if (up && c.rung + 1u < space.rungs.size())
                ++c.rung;
            else if (!up && c.rung > 0)
                --c.rung;
            else
                continue;
            break;
        }
        }
        break;
    }
    canonicalizeCandidate(space, c);
}

service::ExperimentRequest
toRequest(const SearchSpace &space, const Candidate &c,
          const service::ExperimentRequest &base)
{
    Candidate canon = c;
    canonicalizeCandidate(space, canon);
    const VfRung &rung = space.rungs[canon.rung];
    service::ExperimentRequest req = base;
    req.kind = service::Kind::PlacedRun;
    req.vddV = rung.vddV;
    req.coreClockMhz = rung.freqMhz;
    req.placement.assign(canon.placement.begin(), canon.placement.end());
    req.tileFreqSteps = canon.freqStep;
    req.workload.cores = space.cores;
    req.canonicalize();
    return req;
}

} // namespace piton::search
