#include "search/objective.hh"

#include <stdexcept>

namespace piton::search
{

const char *
goalName(Goal g)
{
    switch (g) {
    case Goal::MinEpi:
        return "min-epi";
    case Goal::MinEnergyCapped:
        return "min-energy-capped";
    case Goal::MaxThroughputDeadline:
        return "max-throughput";
    }
    return "?";
}

Goal
goalFromName(const std::string &name)
{
    if (name == "min-epi")
        return Goal::MinEpi;
    if (name == "min-energy-capped")
        return Goal::MinEnergyCapped;
    if (name == "max-throughput")
        return Goal::MaxThroughputDeadline;
    throw std::invalid_argument("unknown goal '" + name + "'");
}

double
scoreEvaluation(const Objective &obj, const Evaluation &ev)
{
    if (!ev.valid || !ev.completed)
        return kInvalidScore;
    switch (obj.goal) {
    case Goal::MinEpi:
        return ev.epi;
    case Goal::MinEnergyCapped:
        if (obj.powerCapW > 0.0 && ev.avgPowerW > obj.powerCapW)
            return kInfeasibleBase + (ev.avgPowerW - obj.powerCapW);
        return ev.energyJ;
    case Goal::MaxThroughputDeadline: {
        if (obj.deadlineS > 0.0 && ev.seconds > obj.deadlineS)
            return kInfeasibleBase + (ev.seconds - obj.deadlineS);
        const double throughput =
            ev.seconds > 0.0 ? static_cast<double>(ev.insts) / ev.seconds
                             : 0.0;
        return -throughput;
    }
    }
    return kInvalidScore;
}

} // namespace piton::search
