#include "search/searcher.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/logging.hh"
#include "telemetry/recorder.hh"

namespace piton::search
{

namespace
{

/** Shared per-search machinery: explore-request construction, batch
 *  evaluation with best-so-far/trajectory/telemetry bookkeeping, and
 *  the full-fidelity finish. */
class SearchRun
{
  public:
    SearchRun(const SearchTask &task, Oracle &oracle,
              const SearcherOptions &opts, const char *engine)
        : task_(task), oracle_(oracle), opts_(opts),
          startStats_(oracle.stats())
    {
        result_.engine = engine;
        if (opts_.recorder != nullptr) {
            seriesBest_ = opts_.recorder->defineSeries(
                "search.best_score", telemetry::Unit::Count,
                telemetry::Downsample::Mean);
            seriesCalls_ = opts_.recorder->defineSeries(
                "search.oracle_calls", telemetry::Unit::Count,
                telemetry::Downsample::Mean);
            seriesHitRatio_ = opts_.recorder->defineSeries(
                "search.cache_hit_ratio", telemetry::Unit::Count,
                telemetry::Downsample::Mean);
        }
    }

    std::uint32_t
    remaining() const
    {
        return used_ >= opts_.budget ? 0 : opts_.budget - used_;
    }

    /** Evaluate a batch at explore fidelity; returns the scores
     *  (index-aligned with `batch`) and updates best/trajectory. */
    std::vector<double>
    evaluateBatch(const std::vector<Candidate> &batch)
    {
        std::vector<service::ExperimentRequest> reqs;
        reqs.reserve(batch.size());
        for (const Candidate &c : batch)
            reqs.push_back(exploreRequest(c));
        const std::vector<Evaluation> evals = oracle_.evaluate(reqs);
        used_ += static_cast<std::uint32_t>(batch.size());
        std::vector<double> scores(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            scores[i] = scoreEvaluation(task_.objective, evals[i]);
            if (scores[i] < result_.bestScore) {
                result_.bestScore = scores[i];
                result_.best = batch[i];
                result_.bestEval = evals[i];
            }
        }
        result_.trajectory.push_back({used_, result_.bestScore});
        recordTelemetry();
        return scores;
    }

    /** Close out: oracle deltas, then one full-fidelity re-eval of the
     *  best candidate (through the same oracle, after the deltas, so
     *  the trajectory stays an explore-budget trace). */
    SearchResult
    finish()
    {
        const OracleStats &s = oracle_.stats();
        result_.oracleCalls = s.calls - startStats_.calls;
        result_.cacheHits = s.cacheHits - startStats_.cacheHits;
        result_.cacheHitRatio =
            result_.oracleCalls > 0
                ? static_cast<double>(result_.cacheHits)
                      / static_cast<double>(result_.oracleCalls)
                : 0.0;
        if (result_.bestScore < kInvalidScore) {
            const service::ExperimentRequest full =
                toRequest(task_.space, result_.best, task_.base);
            result_.finalEval = oracle_.evaluate({full})[0];
            result_.finalScore =
                scoreEvaluation(task_.objective, result_.finalEval);
        }
        return std::move(result_);
    }

    const SearchResult &result() const { return result_; }

  private:
    service::ExperimentRequest
    exploreRequest(const Candidate &c) const
    {
        service::ExperimentRequest req =
            toRequest(task_.space, c, task_.base);
        if (task_.exploreIterations > 0)
            req.workload.iterations = task_.exploreIterations;
        if (task_.exploreSampledSlices > 0)
            req.sampledSlices = task_.exploreSampledSlices;
        return req;
    }

    void
    recordTelemetry()
    {
        if (opts_.recorder == nullptr)
            return;
        const OracleStats &s = oracle_.stats();
        const auto calls =
            static_cast<double>(s.calls - startStats_.calls);
        const auto hits =
            static_cast<double>(s.cacheHits - startStats_.cacheHits);
        const double t = calls;
        opts_.recorder->record(seriesBest_, t, 1.0, result_.bestScore);
        opts_.recorder->record(seriesCalls_, t, 1.0, calls);
        opts_.recorder->record(seriesHitRatio_, t, 1.0,
                               calls > 0.0 ? hits / calls : 0.0);
    }

    const SearchTask &task_;
    Oracle &oracle_;
    const SearcherOptions &opts_;
    OracleStats startStats_;
    SearchResult result_;
    std::uint32_t used_ = 0;
    std::size_t seriesBest_ = 0;
    std::size_t seriesCalls_ = 0;
    std::size_t seriesHitRatio_ = 0;
};

/** Candidates already spent oracle budget this search; propose-until-
 *  unseen keeps the explore budget buying fresh points instead of
 *  cache replays (cross-engine revisits on a shared oracle still hit
 *  the cache — this only dedups within one search). */
class SeenSet
{
  public:
    /** Returns true the first time a candidate is added. */
    bool
    add(const Candidate &c)
    {
        return seen_.insert(candidateKey(c)).second;
    }

    /** Mutate `c` until it leaves the seen set (bounded attempts; the
     *  last attempt is kept even if seen, so progress never stalls). */
    void
    mutateUnseen(const SearchSpace &space, Candidate &c, Rng &rng)
    {
        for (int attempt = 0; attempt < 8; ++attempt) {
            mutateCandidate(space, c, rng);
            if (seen_.count(candidateKey(c)) == 0)
                return;
        }
    }

  private:
    std::unordered_set<Hash128, Hash128Hasher> seen_;
};

class RandomSearcher : public Searcher
{
  public:
    const char *name() const override { return "random"; }

    SearchResult
    search(const SearchTask &task, Oracle &oracle,
           const SearcherOptions &opts) override
    {
        SearchRun run(task, oracle, opts, name());
        Rng rng(opts.seed);
        while (run.remaining() > 0) {
            const std::uint32_t n =
                std::min(std::max(opts.batch, 1u), run.remaining());
            std::vector<Candidate> batch;
            batch.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i)
                batch.push_back(randomCandidate(task.space, rng));
            run.evaluateBatch(batch);
        }
        return run.finish();
    }
};

class SaSearcher : public Searcher
{
  public:
    const char *name() const override { return "sa"; }

    SearchResult
    search(const SearchTask &task, Oracle &oracle,
           const SearcherOptions &opts) override
    {
        SearchRun run(task, oracle, opts, name());
        Rng rng(opts.seed);
        // Warm-start from the chip's default operating points (one per
        // rung, spread across the ladder), padded with uniform draws:
        // the chain anneals from the best informed start instead of
        // re-deriving full-duty identity placement move by move.
        SeenSet seen;
        const std::uint32_t warm =
            std::min(std::max(opts.batch, 1u), run.remaining());
        std::vector<Candidate> init = seedCandidates(task.space, warm);
        while (init.size() < warm)
            init.push_back(randomCandidate(task.space, rng));
        for (const Candidate &c : init)
            seen.add(c);
        const std::vector<double> init_scores = run.evaluateBatch(init);
        std::size_t start = 0;
        for (std::size_t i = 1; i < init.size(); ++i)
            if (init_scores[i] < init_scores[start])
                start = i;
        Candidate current = init[start];
        double current_score = init_scores[start];
        double temp = std::max(opts.saT0, 1e-9);
        const double alpha =
            std::min(std::max(opts.saAlpha, 0.01), 0.9999);
        while (run.remaining() > 0) {
            const std::uint32_t n =
                std::min(std::max(opts.batch, 1u), run.remaining());
            std::vector<Candidate> proposals;
            proposals.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                Candidate c = current;
                seen.mutateUnseen(task.space, c, rng);
                seen.add(c);
                proposals.push_back(std::move(c));
            }
            const std::vector<double> scores =
                run.evaluateBatch(proposals);
            // Steepest-of-batch step: Metropolis-test only the batch
            // minimum (relative delta, so acceptance is unitless
            // across objectives whose scales differ by decades).  A
            // rejected step leaves the chain in place for the next,
            // cooler batch.
            std::size_t bi = 0;
            for (std::size_t i = 1; i < scores.size(); ++i)
                if (scores[i] < scores[bi])
                    bi = i;
            const double delta =
                (scores[bi] - current_score)
                / std::max(std::abs(current_score), 1e-30);
            if (delta <= 0.0 || rng.chance(std::exp(-delta / temp))) {
                current = proposals[bi];
                current_score = scores[bi];
            }
            temp *= alpha;
        }
        return run.finish();
    }
};

class GaSearcher : public Searcher
{
  public:
    const char *name() const override { return "ga"; }

    SearchResult
    search(const SearchTask &task, Oracle &oracle,
           const SearcherOptions &opts) override
    {
        SearchRun run(task, oracle, opts, name());
        Rng rng(opts.seed);
        const std::uint32_t pop_size = std::max(opts.population, 2u);
        const std::uint32_t tour =
            std::min(std::max(opts.tournament, 1u), pop_size);

        SeenSet seen;
        const std::uint32_t init = std::min(pop_size, run.remaining());
        if (init == 0)
            return run.finish();
        // Half the founding population is informed (default operating
        // points across the rung ladder), half uniform — crossover can
        // then combine a good operating point with a good placement.
        std::vector<Candidate> pop =
            seedCandidates(task.space, (init + 1) / 2);
        pop.reserve(init);
        while (pop.size() < init)
            pop.push_back(randomCandidate(task.space, rng));
        for (const Candidate &c : pop)
            seen.add(c);
        std::vector<double> scores = run.evaluateBatch(pop);

        while (run.remaining() > 0) {
            // Single elite: the population's current best survives
            // unchanged (ties break to the lowest index).
            const std::size_t elite =
                std::min_element(scores.begin(), scores.end())
                - scores.begin();
            const std::uint32_t children = std::min<std::uint32_t>(
                pop_size - 1, run.remaining());
            std::vector<Candidate> offspring;
            offspring.reserve(children);
            for (std::uint32_t k = 0; k < children; ++k) {
                const Candidate &a = pop[tournamentPick(scores, tour, rng)];
                const Candidate &b = pop[tournamentPick(scores, tour, rng)];
                Candidate child = crossover(task.space, a, b, rng);
                if (!seen.add(child))
                    seen.mutateUnseen(task.space, child, rng);
                seen.add(child);
                offspring.push_back(std::move(child));
            }
            const std::vector<double> child_scores =
                run.evaluateBatch(offspring);
            std::vector<Candidate> next;
            std::vector<double> next_scores;
            next.reserve(offspring.size() + 1);
            next.push_back(pop[elite]);
            next_scores.push_back(scores[elite]);
            for (std::size_t i = 0; i < offspring.size(); ++i) {
                next.push_back(std::move(offspring[i]));
                next_scores.push_back(child_scores[i]);
            }
            pop = std::move(next);
            scores = std::move(next_scores);
        }
        return run.finish();
    }

  private:
    static std::size_t
    tournamentPick(const std::vector<double> &scores, std::uint32_t tour,
                   Rng &rng)
    {
        std::size_t best = rng.below(scores.size());
        for (std::uint32_t i = 1; i < tour; ++i) {
            const std::size_t c = rng.below(scores.size());
            if (scores[c] < scores[best])
                best = c;
        }
        return best;
    }

    /** Uniform crossover.  The placement inherits per position from a
     *  random parent when that parent's tile is still unused (falling
     *  back to the other parent, then to the deterministic lowest-
     *  unused-tile repair in canonicalizeCandidate); rung and freqStep
     *  inherit positionwise. */
    static Candidate
    crossover(const SearchSpace &space, const Candidate &a,
              const Candidate &b, Rng &rng)
    {
        Candidate child;
        child.rung = rng.chance(0.5) ? a.rung : b.rung;
        std::uint32_t used = 0;
        for (std::uint32_t i = 0; i < space.cores; ++i) {
            const Candidate &first = rng.chance(0.5) ? a : b;
            const Candidate &second = &first == &a ? b : a;
            const std::uint8_t t1 = first.placement[i];
            const std::uint8_t t2 = second.placement[i];
            if (!((used >> t1) & 1u)) {
                child.placement.push_back(t1);
                used |= 1u << t1;
            } else if (!((used >> t2) & 1u)) {
                child.placement.push_back(t2);
                used |= 1u << t2;
            }
            // else: hole; canonicalize fills lowest-unused.
            child.freqStep.push_back(rng.chance(0.5) ? a.freqStep[i]
                                                     : b.freqStep[i]);
        }
        canonicalizeCandidate(space, child);
        return child;
    }
};

} // namespace

std::unique_ptr<Searcher>
makeSearcher(const std::string &engine)
{
    if (engine == "random")
        return std::make_unique<RandomSearcher>();
    if (engine == "sa")
        return std::make_unique<SaSearcher>();
    if (engine == "ga")
        return std::make_unique<GaSearcher>();
    throw std::invalid_argument("unknown search engine '" + engine
                                + "' (random|sa|ga)");
}

std::vector<std::string>
searcherNames()
{
    return {"random", "sa", "ga"};
}

std::string
trajectoryCsv(const SearchResult &r)
{
    std::string out = "oracle_calls,best_score\n";
    char line[64];
    for (const TrajectoryPoint &p : r.trajectory) {
        std::snprintf(line, sizeof line, "%llu,%.17g\n",
                      static_cast<unsigned long long>(p.oracleCalls),
                      p.bestScore);
        out += line;
    }
    return out;
}

} // namespace piton::search
