#include "search/oracle.hh"

#include <utility>

#include "common/parallel.hh"
#include "service/executor.hh"
#include "service/response.hh"

namespace piton::search
{

Evaluation
evaluationFromBody(const std::vector<std::uint8_t> &body, bool cache_hit)
{
    Evaluation ev;
    ev.cacheHit = cache_hit;
    service::ExperimentResponse resp;
    try {
        resp = service::ExperimentResponse::decodeBody(body);
    } catch (const std::exception &) {
        return ev;
    }
    if (resp.status != service::Status::Ok)
        return ev;
    if (resp.kind != service::Kind::PlacedRun
        && resp.kind != service::Kind::EnergyRun)
        return ev;
    const service::EnergyResult &e = resp.energy;
    ev.valid = true;
    ev.completed = e.completed != 0;
    ev.insts = e.insts;
    ev.seconds = e.seconds;
    ev.energyJ = e.onChipEnergyJ;
    ev.epi = e.insts > 0 ? e.onChipEnergyJ / static_cast<double>(e.insts)
                         : 0.0;
    ev.avgPowerW = e.seconds > 0.0 ? e.onChipEnergyJ / e.seconds : 0.0;
    return ev;
}

std::vector<Evaluation>
InProcessOracle::evaluate(const std::vector<service::ExperimentRequest> &reqs)
{
    stats_.calls += reqs.size();

    // Canonicalize and key every request, then collect the distinct
    // misses in first-appearance order — that order, not any thread
    // schedule, decides what runs and what dedups, so the batch is
    // deterministic at every thread count.
    struct Slot
    {
        service::ExperimentRequest canon;
        Hash128 key;
        bool hit = false;
    };
    std::vector<Slot> slots(reqs.size());
    std::vector<std::size_t> misses; ///< slot index of each unique miss
    std::unordered_map<Hash128, std::size_t, Hash128Hasher> pending;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        slots[i].canon = reqs[i];
        slots[i].canon.canonicalize();
        slots[i].key = slots[i].canon.cacheKey();
        if (memo_.count(slots[i].key) != 0
            || pending.count(slots[i].key) != 0) {
            slots[i].hit = true;
        } else {
            pending.emplace(slots[i].key, misses.size());
            misses.push_back(i);
        }
    }

    std::vector<std::vector<std::uint8_t>> bodies(misses.size());
    parallelFor(misses.size(), threads_, [&](std::size_t m) {
        const Slot &s = slots[misses[m]];
        bodies[m] = service::runExperiment(s.canon, service::RunControl{},
                                           nullptr, 0)
                        .encodeBody();
    });
    for (std::size_t m = 0; m < misses.size(); ++m) {
        const Slot &s = slots[misses[m]];
        const service::ExperimentResponse resp =
            service::ExperimentResponse::decodeBody(bodies[m]);
        if (resp.status == service::Status::Ok)
            memo_.emplace(s.key, bodies[m]);
    }

    std::vector<Evaluation> out(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const auto it = memo_.find(slots[i].key);
        if (it != memo_.end()) {
            out[i] = evaluationFromBody(it->second, slots[i].hit);
        } else {
            // Failed run: decode its (unmemoized) body for this slot.
            const std::size_t m = pending.at(slots[i].key);
            out[i] = evaluationFromBody(bodies[m], false);
        }
        if (slots[i].hit)
            ++stats_.cacheHits;
    }
    return out;
}

std::vector<Evaluation>
ClientOracle::evaluate(const std::vector<service::ExperimentRequest> &reqs)
{
    stats_.calls += reqs.size();
    std::vector<Evaluation> out(reqs.size());
    if (auto *tcp = dynamic_cast<service::TcpClient *>(&client_)) {
        // Pipeline the whole batch on the one connection.
        std::vector<std::uint64_t> ids(reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i)
            ids[i] = tcp->submit(reqs[i]);
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            const service::ClientResult r = tcp->waitFor(ids[i]);
            out[i] = evaluationFromBody(r.body, r.servedFromCache);
            if (r.servedFromCache)
                ++stats_.cacheHits;
        }
        return out;
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const service::ClientResult r = client_.run(reqs[i]);
        out[i] = evaluationFromBody(r.body, r.servedFromCache);
        if (r.servedFromCache)
            ++stats_.cacheHits;
    }
    return out;
}

std::vector<Evaluation>
FleetOracle::evaluate(const std::vector<service::ExperimentRequest> &reqs)
{
    stats_.calls += reqs.size();
    std::vector<service::ClientResult> results(reqs.size());
    parallelFor(reqs.size(), inflight_, [&](std::size_t i) {
        results[i] = fleet_.run(reqs[i]);
    });
    std::vector<Evaluation> out(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        out[i] = evaluationFromBody(results[i].body,
                                    results[i].servedFromCache);
        if (results[i].servedFromCache)
            ++stats_.cacheHits;
    }
    return out;
}

} // namespace piton::search
