/**
 * @file
 * Search objectives: reduce an Evaluation to one comparable scalar
 * (lower is better).
 *
 * Infeasibility is encoded by score band, not by rejection: any
 * invalid or incomplete run scores kInvalidScore; a feasible-goal
 * violation (power cap, deadline) scores kInfeasibleBase plus the
 * violation magnitude, so the search can still descend toward the
 * feasible region; every feasible score is finite and far below both
 * bands.  Scores are pure functions of the Evaluation, so they are as
 * bit-deterministic as the service results they come from.
 */

#ifndef PITON_SEARCH_OBJECTIVE_HH
#define PITON_SEARCH_OBJECTIVE_HH

#include <string>

#include "search/oracle.hh"

namespace piton::search
{

enum class Goal : std::uint8_t
{
    /** Minimize energy per instruction (the paper's EPI metric). */
    MinEpi = 0,
    /** Minimize total energy subject to avg power <= powerCapW. */
    MinEnergyCapped = 1,
    /** Maximize throughput (insts/s) subject to seconds <= deadlineS. */
    MaxThroughputDeadline = 2,
};

const char *goalName(Goal g);
/** Inverse of goalName; throws std::invalid_argument on unknown. */
Goal goalFromName(const std::string &name);

struct Objective
{
    Goal goal = Goal::MinEpi;
    double powerCapW = 0.0; ///< MinEnergyCapped (<= 0 = uncapped)
    double deadlineS = 0.0; ///< MaxThroughputDeadline (<= 0 = none)
};

/** Failed or non-completing runs. */
inline constexpr double kInvalidScore = 1e30;
/** Completed runs violating the goal's constraint score this plus the
 *  violation, so constraint descent still has a gradient. */
inline constexpr double kInfeasibleBase = 1e15;

/** Lower is better; see file comment for the banding. */
double scoreEvaluation(const Objective &obj, const Evaluation &ev);

} // namespace piton::search

#endif // PITON_SEARCH_OBJECTIVE_HH
