/**
 * @file
 * Seeded metaheuristic searchers over the placement/DVFS space
 * (DESIGN.md §16).
 *
 * Three engines behind one interface:
 *
 *  - "random": uniform sampling (the baseline the bench compares
 *    against at equal oracle-call budget),
 *  - "sa": batched simulated annealing — warm-started from the chip's
 *    default operating points (seedCandidates), swap / migrate /
 *    freq-nudge / rung-nudge moves deduplicated against already-spent
 *    candidates, steepest-of-batch relative-delta Metropolis steps,
 *    geometric cooling,
 *  - "ga": generational genetic algorithm — half-informed founding
 *    population, tournament selection, uniform crossover with
 *    deterministic placement repair, mutation, single-elite survival.
 *
 * Every stochastic decision draws from one Rng seeded by
 * SearcherOptions::seed, and every objective input is a bit-
 * deterministic service result, so a search replays bit-identically:
 * same seed → same candidate sequence, same best, same trajectory —
 * across runs, oracle backends, and oracle thread counts
 * (bench_search --verify gates this).
 *
 * Exploration runs at the task's explore fidelity (fewer workload
 * iterations and/or the sampled-run opt-in); the returned best is then
 * re-evaluated once at full fidelity (finalEval/finalScore).  Explore
 * requests canonicalize onto service cache keys, so revisited
 * candidates — common once the search converges — are cache hits, not
 * simulations.
 */

#ifndef PITON_SEARCH_SEARCHER_HH
#define PITON_SEARCH_SEARCHER_HH

#include <memory>
#include <string>
#include <vector>

#include "search/objective.hh"
#include "search/oracle.hh"
#include "search/space.hh"

namespace piton::telemetry
{
class TelemetryRecorder;
}

namespace piton::search
{

/** What to optimize, over what, at which evaluation fidelity. */
struct SearchTask
{
    SearchSpace space;
    Objective objective;
    /** Everything a candidate does not encode: workload (bench,
     *  iterations, threads/core, elements), seed, chip, cycle budget.
     *  Kind/operating point/placement are overwritten per candidate. */
    service::ExperimentRequest base;
    /** Exploration fidelity: workload iterations during the search
     *  (0 = base.workload.iterations — full fidelity throughout). */
    std::uint64_t exploreIterations = 0;
    /** > 0 explores through sampled runs with this many slices
     *  (request.hh sampledSlices; the final re-eval is always exact). */
    std::uint32_t exploreSampledSlices = 0;
};

/** Best-so-far after each evaluated batch. */
struct TrajectoryPoint
{
    std::uint64_t oracleCalls = 0; ///< cumulative explore evaluations
    double bestScore = 0.0;
};

struct SearchResult
{
    std::string engine;
    Candidate best;
    /** Explore-fidelity evaluation/score the search optimized. */
    Evaluation bestEval;
    double bestScore = kInvalidScore;
    /** Full-fidelity re-evaluation of `best` (== bestEval/bestScore
    *   when the task explores at full fidelity). */
    Evaluation finalEval;
    double finalScore = kInvalidScore;
    std::vector<TrajectoryPoint> trajectory;
    /** This search's own oracle traffic (deltas, not the oracle's
     *  cumulative counters; excludes the final re-evaluation). */
    std::uint64_t oracleCalls = 0;
    std::uint64_t cacheHits = 0;
    double cacheHitRatio = 0.0;
};

struct SearcherOptions
{
    std::uint64_t seed = 1;
    /** Explore-evaluation budget (oracle calls; the final full-
     *  fidelity re-eval is extra). */
    std::uint32_t budget = 64;
    /** Evaluations per oracle batch (pipelining/fan-out unit). */
    std::uint32_t batch = 8;
    /** GA population (clamped to >= 2). */
    std::uint32_t population = 8;
    /** GA tournament size (clamped to [1, population]). */
    std::uint32_t tournament = 3;
    /** SA initial temperature (relative-delta units). */
    double saT0 = 0.2;
    /** SA geometric cooling factor per batch. */
    double saAlpha = 0.85;
    /** Optional search.* telemetry sink (best_score / oracle_calls /
     *  cache_hit_ratio, time axis = oracle calls). */
    telemetry::TelemetryRecorder *recorder = nullptr;
};

class Searcher
{
  public:
    virtual ~Searcher() = default;
    virtual const char *name() const = 0;
    virtual SearchResult search(const SearchTask &task, Oracle &oracle,
                                const SearcherOptions &opts) = 0;
};

/** "random", "sa", or "ga"; throws std::invalid_argument otherwise. */
std::unique_ptr<Searcher> makeSearcher(const std::string &engine);
std::vector<std::string> searcherNames();

/** "oracle_calls,best_score\n..." export of the trajectory. */
std::string trajectoryCsv(const SearchResult &r);

} // namespace piton::search

#endif // PITON_SEARCH_SEARCHER_HH
