/**
 * @file
 * The placement/DVFS search space (DESIGN.md §16).
 *
 * A Candidate is one configuration the searcher can ask the experiment
 * service to evaluate: a chip operating point (one rung of the V-f
 * ladder), a thread→tile placement, and a per-placed-tile PLL step.
 * The encoding deliberately mirrors Kind::PlacedRun — toRequest() is a
 * field-for-field mapping onto a canonicalized service request, so two
 * candidates that canonicalize identically share one cache key and a
 * revisit is served from the result cache instead of re-simulated.
 *
 * Everything here is deterministic: candidates serialize to canonical
 * little-endian bytes (candidateBytes), hash stably (candidateKey),
 * and all random constructions/moves draw from an explicit Rng, so a
 * search at a fixed seed replays bit-identically.
 */

#ifndef PITON_SEARCH_SPACE_HH
#define PITON_SEARCH_SPACE_HH

#include <cstdint>
#include <vector>

#include "common/hash.hh"
#include "common/rng.hh"
#include "service/request.hh"

namespace piton::search
{

/** One chip operating point: a VDD rung and the largest PLL-grid
 *  frequency the chip sustains there (VfModel, quantized).  dutySteps
 *  is the Bresenham duty denominator at that clock — the number of
 *  per-tile frequency settings available below full speed. */
struct VfRung
{
    double vddV = 1.0;
    double freqMhz = 500.05;
    std::uint32_t dutySteps = 280;
};

/** The space a search runs over: how many worker threads to place,
 *  onto how many tiles, across which chip operating points. */
struct SearchSpace
{
    std::uint32_t cores = 4;     ///< placement length (workload cores)
    std::uint32_t tileCount = 25;
    std::vector<VfRung> rungs;   ///< ascending VDD; never empty
};

/** One point of the space.  `placement[i]` is the tile core i of the
 *  workload mapping runs on (distinct, < tileCount); `freqStep[i]` is
 *  that position's duty numerator in [1, rung.dutySteps]. */
struct Candidate
{
    std::uint8_t rung = 0;
    std::vector<std::uint8_t> placement;
    std::vector<std::uint16_t> freqStep;
};

/** Build the default space for `cores` worker threads on `chip_id`:
 *  one rung per 50 mV from 0.75 V to 1.05 V, frequency from the chip's
 *  calibrated V-f curve (process-variation speed factor included). */
SearchSpace defaultSpace(std::uint32_t cores, int chip_id);

/** Clamp `c` into `space` in place: rung into range, placement/freqStep
 *  resized to `cores` (missing placement slots filled with the lowest
 *  unused tiles), steps clamped to the rung's duty denominator.  The
 *  result is the canonical representative of `c`'s equivalence class —
 *  toRequest() of equal canonical candidates yields equal cache keys. */
void canonicalizeCandidate(const SearchSpace &space, Candidate &c);

/** Canonical little-endian encoding (self-delimiting; the equality
 *  and hashing unit).  Requires a canonicalized candidate. */
std::vector<std::uint8_t> candidateBytes(const Candidate &c);

/** Stable 128-bit digest of candidateBytes (memo/dedup key). */
Hash128 candidateKey(const Candidate &c);

bool operator==(const Candidate &a, const Candidate &b);

/** Number of distinct canonical candidates, as a double (the spaces
 *  are far beyond 2^64: 25P4 placements alone is ~3e5, times per-rung
 *  duty settings^cores). */
double exhaustiveSize(const SearchSpace &space);

/** Uniform random canonical candidate. */
Candidate randomCandidate(const SearchSpace &space, Rng &rng);

/** The chip's default configuration at one rung: identity placement
 *  (tiles 0..cores-1) at full duty — the operating points the paper
 *  characterizes directly, and where a practitioner starts a search. */
Candidate defaultCandidate(const SearchSpace &space, std::uint8_t rung);

/** Up to `n` informed starting points: default candidates at rungs
 *  spread evenly across the ladder (all rungs when n allows; fewer
 *  requested → evenly spaced, always including both ends).  Returns
 *  min(n, rungs) candidates — callers pad with randomCandidate. */
std::vector<Candidate> seedCandidates(const SearchSpace &space,
                                      std::uint32_t n);

/** One local move, chosen uniformly among:
 *   - swap:       exchange the tiles of two placement positions,
 *   - migrate:    move one position to an unused tile,
 *   - freq-nudge: step one position's duty numerator up or down,
 *   - rung-nudge: step the chip operating point one rung up or down.
 *  The result is canonical.  Single-core spaces never pick swap; a
 *  full placement (cores == tileCount) never picks migrate. */
void mutateCandidate(const SearchSpace &space, Candidate &c, Rng &rng);

/** Map a candidate onto a canonicalized PlacedRun request.  `base`
 *  supplies everything the candidate does not encode (workload, seed,
 *  chip, cycle budget, sampling opt-in); kind, operating point,
 *  placement and tileFreqSteps are overwritten from the candidate. */
service::ExperimentRequest toRequest(const SearchSpace &space,
                                     const Candidate &c,
                                     const service::ExperimentRequest &base);

} // namespace piton::search

#endif // PITON_SEARCH_SPACE_HH
