/**
 * @file
 * Typed telemetry time series over a fixed-capacity ring buffer.
 *
 * Each series stores (t, dt, value) sample points produced once per
 * monitor window (the modelled 17 Hz cadence, see sim::SystemOptions::
 * cyclesPerSample).  When a run outlives the ring capacity the series
 * downsamples itself in place: adjacent pairs merge (dt-weighted mean
 * for gauges, sum for per-window deltas), the effective stride doubles,
 * and subsequent pushes accumulate `stride` raw windows into one stored
 * point.  Integrals (sum of value*dt for gauges, sum of value for
 * deltas) are preserved by construction, so downsampled series stay
 * consistent with the energy ledger up to floating-point rounding.
 */

#ifndef PITON_TELEMETRY_SERIES_HH
#define PITON_TELEMETRY_SERIES_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace piton::telemetry
{

/** Physical unit of a series' sample values. */
enum class Unit : std::uint8_t
{
    Watts,
    Joules,
    Celsius,
    Count,
    Hertz,
    Seconds,
    Volts,
    Amps,
};

const char *unitName(Unit u);

/** How adjacent samples merge when the ring downsamples. */
enum class Downsample : std::uint8_t
{
    Mean, ///< dt-weighted mean: gauges (power, temperature, rates)
    Sum,  ///< plain sum: per-window deltas (energy, event counts)
};

const char *downsampleName(Downsample d);

/** One stored point: window start time, window length, value. */
struct SamplePoint
{
    double tS = 0.0;
    double dtS = 0.0;
    double value = 0.0;
};

class SeriesRing
{
  public:
    /** `capacity` must be even and >= 2 (pairwise compaction). */
    SeriesRing(std::string name, Unit unit, Downsample downsample,
               std::size_t capacity);

    /** Copy an existing ring under a new name (recorder merging). */
    SeriesRing(const SeriesRing &src, std::string new_name);

    const std::string &name() const { return name_; }
    Unit unit() const { return unit_; }
    Downsample downsample() const { return downsample_; }
    std::size_t capacity() const { return capacity_; }

    /** Raw windows merged into one stored point (power of two). */
    std::uint32_t stride() const { return stride_; }
    /** Raw samples ever pushed. */
    std::uint64_t pushes() const { return pushes_; }

    /** Append one raw sample; rejects non-finite values and dt <= 0. */
    void push(double t_s, double dt_s, double value);

    /** Committed points (excludes a partially-filled pending point). */
    std::size_t size() const { return points_.size(); }
    const SamplePoint &at(std::size_t i) const { return points_[i]; }

    /** Committed points plus the pending partial point, if any.  This
     *  is the exportable view: it covers every pushed sample. */
    std::vector<SamplePoint> snapshot() const;

    /**
     * Checkpoint hook for the mutable ring state (the identity fields —
     * name, unit, downsample policy, capacity — are matched by the
     * recorder before this is called).  Restores the stored points,
     * the downsample stride, and the partially-accumulated pending
     * point, so a resumed run's exports are byte-identical.
     */
    template <typename Ar>
    void
    serializeState(Ar &ar)
    {
        ar.io(stride_);
        Ar::check(stride_ >= 1 && (stride_ & (stride_ - 1)) == 0,
                  "series stride not a power of two");
        ar.io(pushes_);
        std::uint64_t n = ar.ioSize(points_.size(), 24);
        Ar::check(n <= capacity_, "series point count exceeds capacity");
        if (ar.loading())
            points_.resize(static_cast<std::size_t>(n));
        for (auto &p : points_) {
            ar.io(p.tS);
            ar.io(p.dtS);
            ar.io(p.value);
        }
        ar.io(pendingCount_);
        Ar::check(pendingCount_ < stride_, "series pending overflow");
        ar.io(pendingT_);
        ar.io(pendingDt_);
        ar.io(pendingWeighted_);
    }

  private:
    /** Merge adjacent pairs in place; doubles the stride. */
    void compact();
    SamplePoint mergedPending() const;

    std::string name_;
    Unit unit_;
    Downsample downsample_;
    std::size_t capacity_;
    std::uint32_t stride_ = 1;
    std::uint64_t pushes_ = 0;
    std::vector<SamplePoint> points_;

    // Accumulator for the in-progress stored point (stride_ > 1).
    std::uint32_t pendingCount_ = 0;
    double pendingT_ = 0.0;
    double pendingDt_ = 0.0;
    double pendingWeighted_ = 0.0; ///< sum(v*dt) for Mean, sum(v) for Sum
};

} // namespace piton::telemetry

#endif // PITON_TELEMETRY_SERIES_HH
