#include "telemetry/aggregate.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace piton::telemetry
{

Aggregate
aggregatePoints(const std::vector<SamplePoint> &pts)
{
    Aggregate a;
    a.count = pts.size();
    if (pts.empty())
        return a;

    RunningStats rs;
    std::vector<double> values;
    values.reserve(pts.size());
    for (const auto &p : pts) {
        rs.add(p.value);
        values.push_back(p.value);
    }
    a.min = rs.min();
    a.max = rs.max();
    a.mean = rs.mean();
    a.stddev = rs.stddev();
    std::sort(values.begin(), values.end());
    a.p50 = percentileOf(values, 50.0);
    a.p95 = percentileOf(values, 95.0);
    a.p99 = percentileOf(values, 99.0);
    return a;
}

double
percentileOf(std::vector<double> values, double q)
{
    piton_assert(q >= 0.0 && q <= 100.0, "percentile %.1f out of range", q);
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    // Nearest rank: ceil(q/100 * n), 1-based.
    const auto n = static_cast<double>(values.size());
    const auto rank =
        static_cast<std::size_t>(std::ceil(q / 100.0 * n));
    return values[rank == 0 ? 0 : rank - 1];
}

double
integratePoints(const std::vector<SamplePoint> &pts)
{
    double j = 0.0;
    for (const auto &p : pts)
        j += p.value * p.dtS;
    return j;
}

double
sumPoints(const std::vector<SamplePoint> &pts)
{
    double s = 0.0;
    for (const auto &p : pts)
        s += p.value;
    return s;
}

std::vector<double>
windowedRates(const std::vector<SamplePoint> &pts)
{
    std::vector<double> out;
    out.reserve(pts.size());
    for (const auto &p : pts)
        out.push_back(p.value / p.dtS);
    return out;
}

EnergySplit
decomposeStaticDynamic(const std::vector<SamplePoint> &onchip,
                       const std::vector<SamplePoint> &leak)
{
    EnergySplit s;
    s.totalJ = integratePoints(onchip);
    s.staticJ = integratePoints(leak);
    s.dynamicJ = s.totalJ - s.staticJ;
    return s;
}

} // namespace piton::telemetry
