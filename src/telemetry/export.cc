#include "telemetry/export.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace piton::telemetry
{

namespace
{

/** Shortest decimal that round-trips the double exactly. */
std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

double
parseDouble(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    piton_assert(end != s.c_str() && *end == '\0',
                 "bad numeric field '%s' in telemetry file", s.c_str());
    return v;
}

/** Series names must stay plain so the long format needs no quoting. */
void
checkName(const std::string &name)
{
    piton_assert(name.find_first_of(",\"\n") == std::string::npos,
                 "series name '%s' contains CSV metacharacters",
                 name.c_str());
}

std::vector<std::string>
splitCsvLine(const std::string &line, std::size_t expect)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            break;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
    piton_assert(out.size() == expect,
                 "telemetry CSV row has %zu fields, expected %zu",
                 out.size(), expect);
    return out;
}

ParsedSeries &
seriesSlot(std::vector<ParsedSeries> &all, const std::string &name)
{
    for (auto &s : all)
        if (s.name == name)
            return s;
    all.emplace_back();
    all.back().name = name;
    return all.back();
}

/** Extract the value of `"key":` in a JSON object we wrote ourselves.
 *  Returns the raw token (string values without their quotes). */
std::string
jsonField(const std::string &line, const std::string &key)
{
    const std::string pat = "\"" + key + "\":";
    const std::size_t at = line.find(pat);
    piton_assert(at != std::string::npos,
                 "telemetry JSONL line missing key '%s'", key.c_str());
    std::size_t start = at + pat.size();
    std::size_t end;
    if (line[start] == '"') {
        ++start;
        end = line.find('"', start);
    } else {
        end = line.find_first_of(",}", start);
    }
    piton_assert(end != std::string::npos, "unterminated JSONL field");
    return line.substr(start, end - start);
}

} // namespace

void
writeCsv(std::ostream &os, const TelemetryRecorder &rec)
{
    os << "series,unit,downsample,stride,t_s,dt_s,value\n";
    for (const SeriesRing &s : rec.allSeries()) {
        checkName(s.name());
        const std::string head = s.name() + ','
                                 + unitName(s.unit()) + ','
                                 + downsampleName(s.downsample()) + ','
                                 + std::to_string(s.stride()) + ',';
        for (const SamplePoint &p : s.snapshot())
            os << head << fmtExact(p.tS) << ',' << fmtExact(p.dtS) << ','
               << fmtExact(p.value) << '\n';
    }
}

void
writeJsonl(std::ostream &os, const TelemetryRecorder &rec)
{
    os << "{\"type\":\"meta\",\"cycles_per_sample\":"
       << rec.cyclesPerSample() << ",\"series\":[";
    bool first = true;
    for (const SeriesRing &s : rec.allSeries()) {
        checkName(s.name());
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << s.name() << "\",\"unit\":\""
           << unitName(s.unit()) << "\",\"downsample\":\""
           << downsampleName(s.downsample()) << "\",\"stride\":"
           << s.stride() << '}';
    }
    os << "]}\n";
    for (const SeriesRing &s : rec.allSeries()) {
        for (const SamplePoint &p : s.snapshot())
            os << "{\"s\":\"" << s.name() << "\",\"t\":" << fmtExact(p.tS)
               << ",\"dt\":" << fmtExact(p.dtS)
               << ",\"v\":" << fmtExact(p.value) << "}\n";
    }
}

std::vector<ParsedSeries>
readCsv(std::istream &is)
{
    std::vector<ParsedSeries> out;
    std::string line;
    piton_assert(static_cast<bool>(std::getline(is, line))
                     && line == "series,unit,downsample,stride,t_s,dt_s,value",
                 "not a telemetry CSV file");
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const auto f = splitCsvLine(line, 7);
        ParsedSeries &s = seriesSlot(out, f[0]);
        if (s.points.empty()) {
            s.unit = f[1];
            s.downsample = f[2];
            s.stride = static_cast<std::uint32_t>(
                std::strtoul(f[3].c_str(), nullptr, 10));
        }
        SamplePoint p;
        p.tS = parseDouble(f[4]);
        p.dtS = parseDouble(f[5]);
        p.value = parseDouble(f[6]);
        s.points.push_back(p);
    }
    return out;
}

std::vector<ParsedSeries>
readJsonl(std::istream &is)
{
    std::vector<ParsedSeries> out;
    std::string line;
    piton_assert(static_cast<bool>(std::getline(is, line))
                     && line.find("\"type\":\"meta\"") != std::string::npos,
                 "not a telemetry JSONL file");
    // Meta: one {"name":...} entry per series, in definition order.
    std::size_t at = 0;
    while ((at = line.find("{\"name\":", at)) != std::string::npos) {
        const std::size_t end = line.find('}', at);
        const std::string obj = line.substr(at, end - at + 1);
        ParsedSeries s;
        s.name = jsonField(obj, "name");
        s.unit = jsonField(obj, "unit");
        s.downsample = jsonField(obj, "downsample");
        s.stride = static_cast<std::uint32_t>(
            std::strtoul(jsonField(obj, "stride").c_str(), nullptr, 10));
        out.push_back(std::move(s));
        at = end;
    }
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        ParsedSeries &s = seriesSlot(out, jsonField(line, "s"));
        SamplePoint p;
        p.tS = parseDouble(jsonField(line, "t"));
        p.dtS = parseDouble(jsonField(line, "dt"));
        p.value = parseDouble(jsonField(line, "v"));
        s.points.push_back(p);
    }
    return out;
}

void
exportTelemetry(const std::filesystem::path &dir, const std::string &stem,
                const TelemetryRecorder &rec)
{
    std::filesystem::create_directories(dir);
    {
        std::ofstream csv(dir / (stem + ".csv"));
        piton_assert(csv.good(), "cannot open %s for writing",
                     (dir / (stem + ".csv")).string().c_str());
        writeCsv(csv, rec);
    }
    {
        std::ofstream jsonl(dir / (stem + ".jsonl"));
        piton_assert(jsonl.good(), "cannot open %s for writing",
                     (dir / (stem + ".jsonl")).string().c_str());
        writeJsonl(jsonl, rec);
    }
}

} // namespace piton::telemetry
