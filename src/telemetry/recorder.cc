#include "telemetry/recorder.hh"

#include "checkpoint/archive.hh"
#include "common/logging.hh"

namespace piton::telemetry
{

TelemetryRecorder::TelemetryRecorder(RecorderConfig cfg) : cfg_(cfg)
{
    piton_assert(cfg_.capacity >= 2 && cfg_.capacity % 2 == 0,
                 "recorder capacity %zu must be even and >= 2",
                 cfg_.capacity);
}

std::size_t
TelemetryRecorder::defineSeries(const std::string &name, Unit unit,
                                Downsample downsample)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        const SeriesRing &s = series_[it->second];
        piton_assert(s.unit() == unit && s.downsample() == downsample,
                     "series '%s' redefined with a different schema",
                     name.c_str());
        return it->second;
    }
    series_.emplace_back(name, unit, downsample, cfg_.capacity);
    index_.emplace(name, series_.size() - 1);
    return series_.size() - 1;
}

const SeriesRing *
TelemetryRecorder::find(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &series_[it->second];
}

void
TelemetryRecorder::record(std::size_t idx, double t_s, double dt_s,
                          double value)
{
    piton_assert(idx < series_.size(), "series index %zu out of range",
                 idx);
    series_[idx].push(t_s, dt_s, value);
}

const SeriesRing &
TelemetryRecorder::lookup(const std::string &name) const
{
    const SeriesRing *s = find(name);
    piton_assert(s != nullptr, "no telemetry series named '%s'",
                 name.c_str());
    return *s;
}

Aggregate
TelemetryRecorder::aggregate(const std::string &name) const
{
    return aggregatePoints(lookup(name).snapshot());
}

double
TelemetryRecorder::integrate(const std::string &name) const
{
    return integratePoints(lookup(name).snapshot());
}

double
TelemetryRecorder::sum(const std::string &name) const
{
    return sumPoints(lookup(name).snapshot());
}

void
TelemetryRecorder::merge(const TelemetryRecorder &other,
                         const std::string &prefix)
{
    for (const SeriesRing &s : other.allSeries()) {
        const std::string name = prefix + s.name();
        piton_assert(index_.find(name) == index_.end(),
                     "merge collision on series '%s'", name.c_str());
        series_.emplace_back(s, name);
        index_.emplace(name, series_.size() - 1);
    }
    if (cyclesPerSample_ == 0)
        cyclesPerSample_ = other.cyclesPerSample_;
}

void
TelemetryRecorder::serialize(ckpt::Archive &ar)
{
    ar.ioExpect(static_cast<std::uint64_t>(cfg_.capacity),
                "recorder capacity");
    std::uint64_t cps = cyclesPerSample_;
    ar.io(cps);
    cyclesPerSample_ = cps;

    const std::uint64_t n = ar.ioSize(series_.size(), 8);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        Unit unit = Unit::Watts;
        Downsample ds = Downsample::Mean;
        if (ar.saving()) {
            const SeriesRing &s = series_[static_cast<std::size_t>(i)];
            name = s.name();
            unit = s.unit();
            ds = s.downsample();
        }
        ar.io(name);
        ar.ioEnum(unit, static_cast<Unit>(8));       // one past Amps
        ar.ioEnum(ds, static_cast<Downsample>(2));   // one past Sum
        if (ar.loading()) {
            if (i < series_.size()) {
                const SeriesRing &s =
                    series_[static_cast<std::size_t>(i)];
                ckpt::Archive::check(s.name() == name
                                         && s.unit() == unit
                                         && s.downsample() == ds,
                                     "telemetry schema mismatch");
            } else {
                defineSeries(name, unit, ds);
            }
        }
        series_[static_cast<std::size_t>(i)].serializeState(ar);
    }
    ckpt::Archive::check(!ar.loading() || series_.size() == n,
                         "recorder defines series the checkpoint lacks");
}

} // namespace piton::telemetry
