#include "telemetry/recorder.hh"

#include "common/logging.hh"

namespace piton::telemetry
{

TelemetryRecorder::TelemetryRecorder(RecorderConfig cfg) : cfg_(cfg)
{
    piton_assert(cfg_.capacity >= 2 && cfg_.capacity % 2 == 0,
                 "recorder capacity %zu must be even and >= 2",
                 cfg_.capacity);
}

std::size_t
TelemetryRecorder::defineSeries(const std::string &name, Unit unit,
                                Downsample downsample)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        const SeriesRing &s = series_[it->second];
        piton_assert(s.unit() == unit && s.downsample() == downsample,
                     "series '%s' redefined with a different schema",
                     name.c_str());
        return it->second;
    }
    series_.emplace_back(name, unit, downsample, cfg_.capacity);
    index_.emplace(name, series_.size() - 1);
    return series_.size() - 1;
}

const SeriesRing *
TelemetryRecorder::find(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &series_[it->second];
}

void
TelemetryRecorder::record(std::size_t idx, double t_s, double dt_s,
                          double value)
{
    piton_assert(idx < series_.size(), "series index %zu out of range",
                 idx);
    series_[idx].push(t_s, dt_s, value);
}

const SeriesRing &
TelemetryRecorder::lookup(const std::string &name) const
{
    const SeriesRing *s = find(name);
    piton_assert(s != nullptr, "no telemetry series named '%s'",
                 name.c_str());
    return *s;
}

Aggregate
TelemetryRecorder::aggregate(const std::string &name) const
{
    return aggregatePoints(lookup(name).snapshot());
}

double
TelemetryRecorder::integrate(const std::string &name) const
{
    return integratePoints(lookup(name).snapshot());
}

double
TelemetryRecorder::sum(const std::string &name) const
{
    return sumPoints(lookup(name).snapshot());
}

void
TelemetryRecorder::merge(const TelemetryRecorder &other,
                         const std::string &prefix)
{
    for (const SeriesRing &s : other.allSeries()) {
        const std::string name = prefix + s.name();
        piton_assert(index_.find(name) == index_.end(),
                     "merge collision on series '%s'", name.c_str());
        series_.emplace_back(s, name);
        index_.emplace(name, series_.size() - 1);
    }
    if (cyclesPerSample_ == 0)
        cyclesPerSample_ = other.cyclesPerSample_;
}

} // namespace piton::telemetry
