/**
 * @file
 * TelemetryRecorder: the sampling sink a running sim::System (or any
 * other producer — the monitor chain, the experiment drivers) records
 * typed time series into, plus the in-memory query API the experiment
 * drivers consume directly.
 *
 * Determinism contract (shared with common/parallel.hh): a recorder is
 * single-threaded state.  Parallel sweeps give every task its own
 * recorder seeded/configured identically, then merge the per-task
 * recorders in task-index order after the join; the merged store is
 * therefore bit-identical at any thread count.
 */

#ifndef PITON_TELEMETRY_RECORDER_HH
#define PITON_TELEMETRY_RECORDER_HH

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "telemetry/aggregate.hh"
#include "telemetry/series.hh"

namespace piton::ckpt
{
class Archive;
}

namespace piton::telemetry
{

struct RecorderConfig
{
    /** Per-series ring capacity (even, >= 2).  A run longer than this
     *  many sample windows downsamples pairwise (see SeriesRing). */
    std::size_t capacity = 4096;

    /** Record the 25 per-tile core-energy series (tileNN.core_j).
     *  Off by default: sweeps that only need chip-level series skip
     *  the extra memory and recording work. */
    bool perTile = false;
};

class TelemetryRecorder
{
  public:
    explicit TelemetryRecorder(RecorderConfig cfg = {});

    const RecorderConfig &config() const { return cfg_; }

    /** Sample cadence in simulated cycles (exported as metadata; set
     *  by the producer, e.g. System::attachTelemetry). */
    Cycle cyclesPerSample() const { return cyclesPerSample_; }
    void setCyclesPerSample(Cycle c) { cyclesPerSample_ = c; }

    /**
     * Define (or look up) a series; returns its stable index.  Calling
     * again with the same name returns the existing index and asserts
     * the unit/downsample policy match — one schema per name.
     */
    std::size_t defineSeries(const std::string &name, Unit unit,
                             Downsample downsample);

    std::size_t seriesCount() const { return series_.size(); }
    const SeriesRing &series(std::size_t idx) const { return series_[idx]; }
    /** All series in definition order (deterministic iteration). */
    const std::vector<SeriesRing> &allSeries() const { return series_; }

    /** nullptr when no series has that name. */
    const SeriesRing *find(const std::string &name) const;

    /** Record one sample into series `idx` (from defineSeries). */
    void record(std::size_t idx, double t_s, double dt_s, double value);

    // ---- query API ---------------------------------------------------

    /** Summary statistics of a series' snapshot (asserts it exists). */
    Aggregate aggregate(const std::string &name) const;
    /** sum(value * dt): integrate a power series to joules. */
    double integrate(const std::string &name) const;
    /** sum(value): total of a delta/count series. */
    double sum(const std::string &name) const;

    /**
     * Absorb every series of `other` under `prefix` (e.g. "task3/").
     * Ring state (stride, pending partial) is copied verbatim, so a
     * merged store round-trips through the exporters identically to
     * the per-task recorders.  Asserts on name collisions.
     */
    void merge(const TelemetryRecorder &other,
               const std::string &prefix = "");

    /**
     * Checkpoint hook.  The schema (series names, units, downsample
     * policies, in definition order) is part of the payload: series
     * already defined on this recorder must match the saved schema
     * exactly, series beyond them are defined from the checkpoint, and
     * a recorder that defined *more* series than the checkpoint fails
     * the restore.  Ring contents then restore per series, making
     * subsequent exports byte-identical to an uninterrupted run.
     */
    void serialize(ckpt::Archive &ar);

  private:
    const SeriesRing &lookup(const std::string &name) const;

    RecorderConfig cfg_;
    Cycle cyclesPerSample_ = 0;
    std::vector<SeriesRing> series_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace piton::telemetry

#endif // PITON_TELEMETRY_RECORDER_HH
