/**
 * @file
 * Telemetry exporters: CSV and JSON-lines writers in the same
 * long/tidy format (one record per stored sample point), compatible
 * with the open-data release style of examples/export_open_data, plus
 * the matching parsers used to validate round-trips.
 *
 * Values are printed with %.17g so a parsed-back series is bit
 * identical to the recorded one (tests/test_telemetry.cc asserts it).
 */

#ifndef PITON_TELEMETRY_EXPORT_HH
#define PITON_TELEMETRY_EXPORT_HH

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/recorder.hh"

namespace piton::telemetry
{

/** Columns: series,unit,downsample,stride,t_s,dt_s,value. */
void writeCsv(std::ostream &os, const TelemetryRecorder &rec);

/** One meta line, then one JSON object per stored sample point. */
void writeJsonl(std::ostream &os, const TelemetryRecorder &rec);

/** A series as parsed back from an export. */
struct ParsedSeries
{
    std::string name;
    std::string unit;
    std::string downsample;
    std::uint32_t stride = 1;
    std::vector<SamplePoint> points;
};

/** Parse our own CSV/JSONL output (not a general-purpose parser). */
std::vector<ParsedSeries> readCsv(std::istream &is);
std::vector<ParsedSeries> readJsonl(std::istream &is);

/** Write <dir>/<stem>.csv and <dir>/<stem>.jsonl (creates dir). */
void exportTelemetry(const std::filesystem::path &dir,
                     const std::string &stem,
                     const TelemetryRecorder &rec);

} // namespace piton::telemetry

#endif // PITON_TELEMETRY_EXPORT_HH
