/**
 * @file
 * Aggregation layer over telemetry series: summary statistics
 * (min/max/mean/stddev/percentiles), time integrals, windowed rates,
 * and the static-vs-dynamic power decomposition the paper reports for
 * every rail measurement.
 *
 * The mean/stddev reduction replays RunningStats' Welford update in the
 * same sample order, so an aggregate over a measured telemetry series
 * is bit-identical to the PowerMeasurement statistics computed from the
 * same monitor samples (this is what lets the power-cap study switch to
 * the telemetry path without perturbing its results).
 */

#ifndef PITON_TELEMETRY_AGGREGATE_HH
#define PITON_TELEMETRY_AGGREGATE_HH

#include <cstddef>
#include <vector>

#include "telemetry/series.hh"

namespace piton::telemetry
{

struct Aggregate
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /** Population standard deviation (the paper's ± convention). */
    double stddev = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Summary statistics over the points' values (sample order). */
Aggregate aggregatePoints(const std::vector<SamplePoint> &pts);

/** Nearest-rank percentile of the values; q in [0, 100]. */
double percentileOf(std::vector<double> values, double q);

/** Time integral sum(value * dt) — watts in, joules out. */
double integratePoints(const std::vector<SamplePoint> &pts);

/** Plain sum of the values (delta/count series). */
double sumPoints(const std::vector<SamplePoint> &pts);

/** Per-point windowed rate value/dt (count deltas in, Hz out). */
std::vector<double> windowedRates(const std::vector<SamplePoint> &pts);

/** Static (leakage) vs dynamic energy split of an on-chip power series
 *  against its leakage series, both integrated over the same windows. */
struct EnergySplit
{
    double staticJ = 0.0;  ///< integral of the leakage series
    double dynamicJ = 0.0; ///< total minus static
    double totalJ = 0.0;   ///< integral of the on-chip power series
};

EnergySplit decomposeStaticDynamic(const std::vector<SamplePoint> &onchip,
                                   const std::vector<SamplePoint> &leak);

} // namespace piton::telemetry

#endif // PITON_TELEMETRY_AGGREGATE_HH
