#include "telemetry/series.hh"

#include <cmath>

#include "common/logging.hh"

namespace piton::telemetry
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::Watts: return "W";
      case Unit::Joules: return "J";
      case Unit::Celsius: return "C";
      case Unit::Count: return "count";
      case Unit::Hertz: return "Hz";
      case Unit::Seconds: return "s";
      case Unit::Volts: return "V";
      case Unit::Amps: return "A";
      default:
        piton_panic("bad Unit");
    }
}

const char *
downsampleName(Downsample d)
{
    switch (d) {
      case Downsample::Mean: return "mean";
      case Downsample::Sum: return "sum";
      default:
        piton_panic("bad Downsample");
    }
}

SeriesRing::SeriesRing(std::string name, Unit unit, Downsample downsample,
                       std::size_t capacity)
    : name_(std::move(name)), unit_(unit), downsample_(downsample),
      capacity_(capacity)
{
    piton_assert(capacity_ >= 2 && capacity_ % 2 == 0,
                 "series '%s': ring capacity %zu must be even and >= 2",
                 name_.c_str(), capacity_);
    points_.reserve(capacity_);
}

SeriesRing::SeriesRing(const SeriesRing &src, std::string new_name)
    : SeriesRing(src)
{
    name_ = std::move(new_name);
}

namespace
{

/** Merge two stored points under the series' downsample policy. */
SamplePoint
mergePair(const SamplePoint &a, const SamplePoint &b, Downsample ds)
{
    SamplePoint out;
    out.tS = a.tS; // merged point covers [a.t, b.t + b.dt)
    out.dtS = a.dtS + b.dtS;
    if (ds == Downsample::Mean)
        out.value = (a.value * a.dtS + b.value * b.dtS) / out.dtS;
    else
        out.value = a.value + b.value;
    return out;
}

} // namespace

void
SeriesRing::push(double t_s, double dt_s, double value)
{
    piton_assert(std::isfinite(value),
                 "series '%s': non-finite sample", name_.c_str());
    piton_assert(dt_s > 0.0 && std::isfinite(dt_s) && std::isfinite(t_s),
                 "series '%s': bad sample window", name_.c_str());

    ++pushes_;
    if (pendingCount_ == 0) {
        pendingT_ = t_s;
        pendingDt_ = 0.0;
        pendingWeighted_ = 0.0;
    }
    ++pendingCount_;
    pendingDt_ += dt_s;
    pendingWeighted_ +=
        downsample_ == Downsample::Mean ? value * dt_s : value;

    if (pendingCount_ < stride_)
        return;
    points_.push_back(mergedPending());
    pendingCount_ = 0;
    if (points_.size() == capacity_)
        compact();
}

SamplePoint
SeriesRing::mergedPending() const
{
    SamplePoint p;
    p.tS = pendingT_;
    p.dtS = pendingDt_;
    p.value = downsample_ == Downsample::Mean
                  ? pendingWeighted_ / pendingDt_
                  : pendingWeighted_;
    return p;
}

void
SeriesRing::compact()
{
    // Pairwise merge: the committed count is even (== capacity) and the
    // pending accumulator is empty, so the halved series covers exactly
    // the same time span at twice the stride.
    piton_assert(pendingCount_ == 0, "compact with a pending point");
    const std::size_t half = points_.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        points_[i] =
            mergePair(points_[2 * i], points_[2 * i + 1], downsample_);
    points_.resize(half);
    stride_ *= 2;
}

std::vector<SamplePoint>
SeriesRing::snapshot() const
{
    std::vector<SamplePoint> out = points_;
    if (pendingCount_ > 0)
        out.push_back(mergedPending());
    return out;
}

} // namespace piton::telemetry
