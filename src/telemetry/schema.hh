/**
 * @file
 * Canonical series names of the System telemetry schema.
 *
 * One schema serves both the *true* rail powers (composed from the
 * event-energy ledger, clock tree, and leakage, before the monitor
 * chain) and the *measured* powers (after the board's quantization,
 * noise, and averaging) — mirroring how the paper distinguishes what
 * the chip draws from what the 17 Hz monitors report.  Units and
 * sample-window semantics are documented in DESIGN.md §8.
 */

#ifndef PITON_TELEMETRY_SCHEMA_HH
#define PITON_TELEMETRY_SCHEMA_HH

namespace piton::telemetry::schema
{

// True per-rail power over each sample window (gauges, W).
inline constexpr const char *kPowerVddW = "power.vdd_w";
inline constexpr const char *kPowerVcsW = "power.vcs_w";
inline constexpr const char *kPowerVioW = "power.vio_w";
inline constexpr const char *kPowerOnChipW = "power.onchip_w";

// Static/dynamic decomposition of the on-chip (VDD+VCS) power (W).
inline constexpr const char *kPowerDynamicW = "power.dynamic_w";
inline constexpr const char *kPowerClockW = "power.clock_w";
inline constexpr const char *kPowerLeakW = "power.leak_w";

/** Per-rail gauges named from power::railName(): "power.rail.<rail>_w"
 *  (true power), "..._v" (supply setpoint — follows governor
 *  actuation), "..._a" (current, W/V — what the board's sense
 *  resistors actually see). */
inline constexpr const char *kPowerRailPrefix = "power.rail.";

// Monitor-chain outputs (same windows, after quantization + noise).
inline constexpr const char *kMeasuredVddW = "measured.vdd_w";
inline constexpr const char *kMeasuredVcsW = "measured.vcs_w";
inline constexpr const char *kMeasuredVioW = "measured.vio_w";
inline constexpr const char *kMeasuredOnChipW = "measured.onchip_w";

// Event-energy ledger deltas per window (J, VDD+VCS).
inline constexpr const char *kEnergyActiveJ = "energy.active_j";
/** Per-category ledger deltas: "energy.<category>_j" with the
 *  power::categoryName() spelling (e.g. "energy.exec_j"). */
inline constexpr const char *kEnergyCategoryPrefix = "energy.";

// NoC counters (deltas per window) and flit rate (gauge).
inline constexpr const char *kNocFlits = "noc.flits";
inline constexpr const char *kNocFlitHops = "noc.flit_hops";
inline constexpr const char *kNocToggledBits = "noc.toggled_bits";
inline constexpr const char *kNocFlitsPerS = "noc.flits_per_s";

// Thermal-model readout at the end of each window (gauges, C).
inline constexpr const char *kThermalDieC = "thermal.die_c";
inline constexpr const char *kThermalPackageC = "thermal.package_c";

// Chip activity.
inline constexpr const char *kChipInsts = "chip.insts";
inline constexpr const char *kChipActiveThreads = "chip.active_threads";

/** Per-tile core-local energy delta series: "tileNN.core_j" (25x,
 *  only when RecorderConfig::perTile is set). */
inline constexpr const char *kTilePrefix = "tile";
inline constexpr const char *kTileCoreSuffix = ".core_j";

/** Checkpoint-restore boundary marker (value 1.0 at the resume time;
 *  recorded only when System::restore is asked to mark the boundary —
 *  marking is opt-in because it breaks byte-identity with an
 *  uninterrupted run's export by design). */
inline constexpr const char *kEventRestore = "event.restore";

// Power-cap governor trace (recorded by core::PowerCapExperiment).
inline constexpr const char *kGovernorCores = "governor.active_cores";
inline constexpr const char *kGovernorMeasuredW = "governor.measured_w";

/** Closed-loop DVFS governor trace (sim::System, one sample per
 *  control epoch; DESIGN.md §13).  freq/vdd are the operating point
 *  commanded *after* the epoch's control decision; power_w is the
 *  epoch's measured mean the decision was based on. */
inline constexpr const char *kGovernorFreqMhz = "governor.freq_mhz";
inline constexpr const char *kGovernorVddV = "governor.vdd_v";
inline constexpr const char *kGovernorPowerW = "governor.power_w";
inline constexpr const char *kGovernorCapW = "governor.cap_w";
inline constexpr const char *kGovernorGatedTiles = "governor.gated_tiles";
inline constexpr const char *kGovernorEpochs = "governor.epochs";

/** Fig. 17 fan-sweep results (core::ThermalSweepExperiment): the time
 *  axis is the fan step index (dt = 1), not seconds. */
inline constexpr const char *kSweepPowerW = "sweep.power_w";
inline constexpr const char *kSweepPackageC = "sweep.package_c";
inline constexpr const char *kSweepFan = "sweep.fan_effectiveness";

/** Interval-profiler trace (sampling::IntervalProfiler, one sample per
 *  closed interval; DESIGN.md §14).  The time axis is the sample
 *  clock at interval close; interval_insns/cycles/energy_j are the
 *  interval's own totals, intervals is a running count marker. */
inline constexpr const char *kSamplingIntervalInsns =
    "sampling.interval_insns";
inline constexpr const char *kSamplingIntervalCycles =
    "sampling.interval_cycles";
inline constexpr const char *kSamplingIntervalEnergyJ =
    "sampling.interval_energy_j";
inline constexpr const char *kSamplingIntervals = "sampling.intervals";

/** Experiment-service metrics (service::ExperimentScheduler): the time
 *  axis is the export sequence number (dt = 1), gauges sampled at
 *  export time.  Exported by ExperimentScheduler::exportTelemetry and
 *  surfaced over the wire by the StatsQuery frame. */
inline constexpr const char *kServiceQueueDepth = "service.queue_depth";
inline constexpr const char *kServiceHitRate = "service.hit_rate";
inline constexpr const char *kServiceLatencyP50Ms = "service.latency_p50_ms";
inline constexpr const char *kServiceLatencyP99Ms = "service.latency_p99_ms";
inline constexpr const char *kServiceShed = "service.shed_total";

/** Fleet-coordinator metrics (fleet::FleetCoordinator): the time axis
 *  is the export sequence number (dt = 1).  Totals are running
 *  counters; workers_up / hit_rate are gauges.  Per-worker gauges are
 *  named "fleet.worker.<id>.queue_depth" / ".hit_rate" /
 *  ".result_cache_hits" / ".result_cache_misses" from the worker's
 *  StatsReply. */
inline constexpr const char *kFleetRequests = "fleet.requests_total";
inline constexpr const char *kFleetRetries = "fleet.retries_total";
inline constexpr const char *kFleetFailovers = "fleet.failovers_total";
inline constexpr const char *kFleetWorkersUp = "fleet.workers_up";
inline constexpr const char *kFleetHitRate = "fleet.hit_rate";
inline constexpr const char *kFleetWorkerPrefix = "fleet.worker.";

} // namespace piton::telemetry::schema

#endif // PITON_TELEMETRY_SCHEMA_HH
