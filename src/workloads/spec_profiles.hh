/**
 * @file
 * SPECint 2006 surrogate workload profiles (Section IV-I, Table IX).
 *
 * The paper boots Debian Linux on the Piton system and on a Sun Fire
 * T2000 (UltraSPARC T1) and runs ten SPECint 2006 benchmarks (thirteen
 * benchmark/input pairs).  We cannot run SPEC binaries inside a C++
 * instruction-level model at full scale, so each pair is represented
 * by a *surrogate profile*: an instruction mix, L1/L2 miss densities
 * per machine (the T2000 has 3 MB of L2 vs Piton's 1.6 MB, so Piton's
 * L2 MPKI is higher), an I/O activity factor (hmmer and libquantum
 * show high VIO activity in the paper), and the measured T2000
 * execution time, from which the analytic model (src/perfmodel)
 * derives instruction counts and Piton's execution time, power, and
 * energy.  Profiles are calibrated against published SPEC CPU2006
 * characterizations ([47] in the paper); the calibration is documented
 * in EXPERIMENTS.md.
 */

#ifndef PITON_WORKLOADS_SPEC_PROFILES_HH
#define PITON_WORKLOADS_SPEC_PROFILES_HH

#include <string>
#include <vector>

namespace piton::workloads
{

struct SpecBenchmark
{
    std::string name;          ///< benchmark/input, e.g. "gcc-166"
    double t2000Minutes;       ///< measured UltraSPARC T1 time (Table IX)

    // Instruction mix (fractions of dynamic instructions).
    double loadFrac;
    double storeFrac;
    double branchFrac;
    // The remainder is integer ALU work.

    /** L1D misses that hit some L2, per kilo-instruction (both
     *  machines use the same core + L1s). */
    double l1MpkiToL2;
    /** L2 misses per kilo-instruction on the T2000 (3 MB L2). */
    double l2MpkiT1;
    /** L2 misses per kilo-instruction on Piton (1.6 MB aggregate). */
    double l2MpkiPiton;
    /** Relative VIO (I/O rail) activity; ~1 is quiet, >4 is the
     *  hmmer/libquantum "high I/O activity" regime. */
    double ioActivity;

    /** Average operand switching activity (0..128) for EPI lookup. */
    double operandActivity;
};

/** The thirteen benchmark/input pairs of Table IX. */
const std::vector<SpecBenchmark> &specint2006Profiles();

/** Look up a profile by name; fatal on unknown names. */
const SpecBenchmark &specProfile(const std::string &name);

} // namespace piton::workloads

#endif // PITON_WORKLOADS_SPEC_PROFILES_HH
