#include "workloads/epi_tests.hh"

#include <bit>

#include "common/logging.hh"
#include "isa/program.hh"

namespace piton::workloads
{

namespace
{

constexpr std::uint32_t kUnroll = 20;
constexpr Addr kEpiRegionBase = 0x0100'0000;
constexpr Addr kEpiRegionStride = 0x4000; ///< 16 KB per tile

} // namespace

const char *
operandPatternName(OperandPattern p)
{
    switch (p) {
      case OperandPattern::Minimum: return "min";
      case OperandPattern::Random: return "random";
      case OperandPattern::Maximum: return "max";
      default:
        piton_panic("bad OperandPattern");
    }
}

RegVal
patternValue(OperandPattern p, int which)
{
    switch (p) {
      case OperandPattern::Minimum:
        return 0;
      case OperandPattern::Random:
        // Fixed values with ~half the bits set (deterministic tests).
        return which == 0 ? 0x5DEECE66D1CE4E5BULL : 0xA3B1956C27D94F0EULL;
      case OperandPattern::Maximum:
        return ~RegVal{0};
      default:
        piton_panic("bad OperandPattern");
    }
}

const std::vector<EpiVariant> &
epiVariants()
{
    using C = isa::InstClass;
    static const std::vector<EpiVariant> variants = {
        {"nop", C::Nop, 1, false, 0},
        {"and", C::IntSimple, 1, true, 0},
        {"add", C::IntSimple, 1, true, 0},
        {"mulx", C::IntMul, 11, true, 0},
        {"sdivx", C::IntDiv, 72, true, 0},
        {"faddd", C::FpAddD, 22, true, 0},
        {"fmuld", C::FpMulD, 25, true, 0},
        {"fdivd", C::FpDivD, 79, true, 0},
        {"fadds", C::FpAddS, 22, true, 0},
        {"fmuls", C::FpMulS, 25, true, 0},
        {"fdivs", C::FpDivS, 50, true, 0},
        {"ldx", C::Load, 3, true, 0},
        {"stx (F)", C::Store, 10, true, 0},
        {"stx (NF)", C::Store, 10, true, 9},
        {"beq (T)", C::Branch, 3, false, 0},
        {"bne (NT)", C::Branch, 3, false, 0},
    };
    return variants;
}

const EpiVariant &
epiVariant(const std::string &label)
{
    for (const auto &v : epiVariants())
        if (v.label == label)
            return v;
    piton_fatal("unknown EPI variant '%s'", label.c_str());
}

Addr
epiDataBase(TileId tile)
{
    return kEpiRegionBase + static_cast<Addr>(tile) * kEpiRegionStride;
}

void
initEpiMemory(arch::MainMemory &memory, OperandPattern pattern, TileId tile)
{
    const Addr base = epiDataBase(tile);
    const RegVal value = patternValue(pattern, 0);
    for (Addr off = 0; off < 0x400; off += 8)
        memory.write64(base + off, value);
}

isa::Program
makeEpiProgram(const EpiVariant &variant, OperandPattern pattern,
               TileId tile)
{
    isa::ProgramBuilder b;
    const RegVal v1 = patternValue(pattern, 0);
    const RegVal v2 = patternValue(pattern, 1);
    const Addr base = epiDataBase(tile);

    if (variant.label == "nop") {
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i)
            b.nop();
        b.ba("loop");
    } else if (variant.label == "and" || variant.label == "add"
               || variant.label == "mulx" || variant.label == "sdivx") {
        b.set(1, v1).set(2, v2);
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i) {
            if (variant.label == "and")
                b.andr(3, 1, 2);
            else if (variant.label == "add")
                b.add(3, 1, 2);
            else if (variant.label == "mulx")
                b.mulx(3, 1, 2);
            else
                b.sdivx(3, 1, 2);
        }
        b.ba("loop");
    } else if (variant.cls == isa::InstClass::FpAddD
               || variant.cls == isa::InstClass::FpMulD
               || variant.cls == isa::InstClass::FpDivD
               || variant.cls == isa::InstClass::FpAddS
               || variant.cls == isa::InstClass::FpMulS
               || variant.cls == isa::InstClass::FpDivS) {
        b.setfd(1, std::bit_cast<double>(v1));
        b.setfd(2, std::bit_cast<double>(v2));
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i) {
            if (variant.label == "faddd")
                b.faddd(3, 1, 2);
            else if (variant.label == "fmuld")
                b.fmuld(3, 1, 2);
            else if (variant.label == "fdivd")
                b.fdivd(3, 1, 2);
            else if (variant.label == "fadds")
                b.fadds(3, 1, 2);
            else if (variant.label == "fmuls")
                b.fmuls(3, 1, 2);
            else
                b.fdivs(3, 1, 2);
        }
        b.ba("loop");
    } else if (variant.label == "ldx") {
        // 20 distinct words in the tile's region: all L1 hits after the
        // first pass, no off-chip activity in steady state.
        b.set(1, base);
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i)
            b.ldx(3, 1, static_cast<std::int64_t>(i) * 8);
        b.ba("loop");
    } else if (variant.label == "stx (F)" || variant.label == "stx (NF)") {
        // Stores hit the (write-back) L1.5; each tile uses its own L2
        // lines so coherence is never invoked.
        b.set(1, base + 0x200);
        b.set(2, v1);
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i) {
            b.stx(2, 1, static_cast<std::int64_t>(i % 4) * 8);
            for (std::uint32_t n = 0; n < variant.padNops; ++n)
                b.nop();
        }
        b.ba("loop");
    } else if (variant.label == "beq (T)") {
        b.set(1, 0);
        b.cmpi(1, 0); // zero flag set: beq always taken
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i) {
            const std::string next = "t" + std::to_string(i);
            b.beq(next);
            b.label(next);
        }
        b.ba("loop");
    } else if (variant.label == "bne (NT)") {
        b.set(1, 0);
        b.cmpi(1, 0); // zero flag set: bne never taken
        b.label("loop");
        for (std::uint32_t i = 0; i < kUnroll; ++i)
            b.bne("never");
        b.ba("loop");
        b.label("never");
        b.halt();
    } else {
        piton_fatal("no generator for EPI variant '%s'",
                    variant.label.c_str());
    }
    return b.build();
}

} // namespace piton::workloads
