/**
 * @file
 * Assembly-test generators for the memory-system energy study
 * (Section IV-F, Table VII).
 *
 * Each test is an unrolled infinite loop (factor 20) of ldx
 * instructions whose consecutive addresses alias the same L1 (or L2)
 * cache set, forcing the desired hit/miss scenario:
 *
 *  - L1 hit:          consecutive words, resident after warm-up;
 *  - local L2 hit:    20 lines aliasing one L1 set, homed locally;
 *  - remote L2 hit:   same, homed at a tile 4 or 8 hops away (which L2
 *                     slice is selected by careful address choice given
 *                     the software-configurable line->slice mapping);
 *  - L2 miss:         20 lines aliasing one L2 set (4-way) so every
 *                     access leaves the chip.
 */

#ifndef PITON_WORKLOADS_MEMORY_TESTS_HH
#define PITON_WORKLOADS_MEMORY_TESTS_HH

#include <string>
#include <vector>

#include "arch/memory.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace piton::workloads
{

enum class MemoryScenario
{
    L1Hit,
    LocalL2Hit,
    RemoteL2Hit4,
    RemoteL2Hit8,
    L2Miss,
};

const char *memoryScenarioName(MemoryScenario s);

/** Table VII's latency column (verified in simulation / profiled via
 *  performance counters for the miss case). */
std::uint32_t memoryScenarioLatency(MemoryScenario s);

struct MemoryTestPlan
{
    MemoryScenario scenario;
    TileId requester;
    TileId home;                 ///< L2 slice the addresses map to
    std::vector<Addr> addresses; ///< the 20 load targets
};

/**
 * Plan a scenario for a requesting tile.  For the remote scenarios the
 * requester must be tile 0 (the home is placed 4 hops straight east /
 * 8 hops diagonally, matching Table VII's hop counts).
 */
MemoryTestPlan makeMemoryTestPlan(MemoryScenario scenario,
                                  TileId requester);

/** The unrolled ldx loop over the plan's addresses. */
isa::Program makeMemoryTestProgram(const MemoryTestPlan &plan);

/** Fill the target addresses with random data (the paper's memory-
 *  energy results are based on random data). */
void initMemoryTestData(arch::MainMemory &memory,
                        const MemoryTestPlan &plan, Rng &rng);

} // namespace piton::workloads

#endif // PITON_WORKLOADS_MEMORY_TESTS_HH
