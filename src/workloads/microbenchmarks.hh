/**
 * @file
 * The paper's microbenchmarks (Section IV-H) and thermal test app
 * (Section IV-J):
 *
 *  - Int:  a tight loop of integer instructions maximizing switching
 *          activity;
 *  - HP:   two distinct thread types — an integer loop, and a mixed
 *          loop of loads/stores/integer ops at a 5:1 compute:memory
 *          ratio; the highest-power application observed on Piton;
 *  - Hist: a parallel shared-memory histogram: each thread computes a
 *          histogram over its slice of a shared array and updates the
 *          shared buckets under a CAS lock (total work constant as
 *          thread count scales);
 *  - TwoPhase: alternating compute-heavy and idle (nop) phases for the
 *          scheduling/thermal study (synchronized vs interleaved).
 *
 * Power variants run as infinite loops (steady-state measurement);
 * energy variants take an iteration count and halt (execution-time +
 * energy measurement, Fig. 14).
 */

#ifndef PITON_WORKLOADS_MICROBENCHMARKS_HH
#define PITON_WORKLOADS_MICROBENCHMARKS_HH

#include <cstdint>
#include <vector>

#include "arch/memory.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "sim/system.hh"

namespace piton::workloads
{

/** Data-region bases (per-thread offsets derived from hwid). */
constexpr Addr kMixedDataBase = 0x0300'0000;
constexpr Addr kHistArrayBase = 0x0400'0000;
constexpr Addr kHistBucketsBase = 0x0500'0000;
/** The shared merge lock (on its own L2 line). */
constexpr Addr kHistLocksBase = 0x0500'4000;
/** Per-thread private histograms (one 4 KB region per hwid). */
constexpr Addr kHistPrivateBase = 0x0600'0000;
constexpr std::uint32_t kHistBuckets = 8;

/** Int: tight integer loop; iterations == 0 means infinite. */
isa::Program makeIntLoop(std::uint64_t iterations);

/**
 * HP's mixed thread: unrolled integer ops with one load and one store
 * per ten compute instructions (5:1 compute to memory).  The thread's
 * private data region is passed in register 1 at load time.
 */
isa::Program makeMixedLoop(std::uint64_t iterations);

/**
 * Hist: shared-memory histogram over [r2, r3) of the shared array
 * (element indices); each shared-bucket update happens under that
 * bucket's CAS lock.  Registers at load time: r1 = array base,
 * r2 = start index, r3 = end index, r4 = bucket base, r5 = lock base.
 * outer_iterations == 0 wraps the work in an infinite loop.
 */
isa::Program makeHistProgram(std::uint64_t outer_iterations);

/** Two-phase test app: compute phase then idle (nop) phase, repeated
 *  forever. r15 != 0 starts in the idle phase (interleaved schedule). */
isa::Program makeTwoPhaseProgram(std::uint64_t compute_iters,
                                 std::uint64_t idle_iters);

/**
 * Phased energy workload for sampled-simulation studies: every outer
 * rep runs an integer-heavy phase, a load/store phase (private region
 * in r1, L1-resident), and a near-idle nop phase — three distinct BBV
 * signatures with distinct power — then halts after `reps` reps
 * (~9.2k instructions per thread per rep).
 */
isa::Program makePhasedEnergyProgram(std::uint64_t reps);

/** Thread-to-core mapping for the microbenchmark studies.  Phased runs
 *  makePhasedEnergyProgram on every thread (finite only: it always
 *  halts after `iterations` reps) — the heterogeneous-phase workload
 *  the sampling and search subsystems optimize over. */
enum class Microbench
{
    Int,
    HP,
    Hist,
    Phased,
};

const char *microbenchName(Microbench m);

/**
 * Load a microbenchmark onto `cores` cores with `threads_per_core`
 * in {1, 2} threads each, using the paper's thread mappings (HP
 * alternates its two thread types across cores for 1 T/C and runs one
 * of each per core for 2 T/C).  Hist divides `total_elements` of work
 * across all threads (constant total work); Int and HP scale total
 * work with thread count.  `iterations` == 0 gives the infinite power
 * variant.  Returns the programs that must stay alive while running.
 */
std::vector<isa::Program>
loadMicrobench(sim::System &system, Microbench bench, std::uint32_t cores,
               std::uint32_t threads_per_core, std::uint64_t iterations,
               std::uint64_t total_elements = 4096);

/**
 * Same mappings, but onto an explicit tile list (placement-aware; the
 * DVFS scenario engine feeds it Governor::placeTiles output).  Thread
 * roles and work slices follow the *position* in the list, so
 * `loadMicrobenchOnTiles(sys, b, {0..n-1}, ...)` is exactly
 * `loadMicrobench(sys, b, n, ...)`.  Tiles must be distinct.
 */
std::vector<isa::Program>
loadMicrobenchOnTiles(sim::System &system, Microbench bench,
                      const std::vector<TileId> &tiles,
                      std::uint32_t threads_per_core,
                      std::uint64_t iterations,
                      std::uint64_t total_elements = 4096);

/** Seed Hist's shared input array with random values. */
void initHistData(arch::MainMemory &memory, std::uint64_t elements,
                  Rng &rng);

} // namespace piton::workloads

#endif // PITON_WORKLOADS_MICROBENCHMARKS_HH
