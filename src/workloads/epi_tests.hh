/**
 * @file
 * Assembly-test generators for the EPI study (Section IV-E, Fig. 11).
 *
 * Each test is the paper's construction: the target instruction in an
 * infinite loop unrolled by a factor of 20, verified to fit in the L1
 * caches, with no extraneous memory activity.  Source operands are
 * preloaded with minimum (all-zero), random, or maximum (all-one)
 * values.  The stx variant comes in two flavours: back-to-back stores
 * that fill the eight-entry store buffer and roll back (stx(F)), and
 * stores padded with nine nops so the buffer always has space
 * (stx(NF)).  Branch variants cover a taken beq and a not-taken bne.
 */

#ifndef PITON_WORKLOADS_EPI_TESTS_HH
#define PITON_WORKLOADS_EPI_TESTS_HH

#include <string>
#include <vector>

#include "arch/memory.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace piton::workloads
{

enum class OperandPattern
{
    Minimum, ///< all-zero operands
    Random,  ///< ~half the bits set
    Maximum, ///< all-one operands
};

const char *operandPatternName(OperandPattern p);

/** One x-axis entry of Fig. 11. */
struct EpiVariant
{
    std::string label;       ///< e.g. "stx (NF)", "beq (T)"
    isa::InstClass cls;
    std::uint32_t latency;   ///< Table VI latency used in the EPI formula
    bool hasOperands;        ///< operand patterns apply
    /** nop correction: nops inserted per target instruction whose
     *  energy must be subtracted (9 for stx(NF), else 0). */
    std::uint32_t padNops;
};

/** All Fig. 11 variants, in the paper's plotting order. */
const std::vector<EpiVariant> &epiVariants();

/** Look a variant up by label; fatal on unknown labels. */
const EpiVariant &epiVariant(const std::string &label);

/** Per-tile data region for ldx/stx tests (distinct L2 lines per tile,
 *  avoiding any cache-coherence interaction). */
Addr epiDataBase(TileId tile);

/**
 * Build the unrolled infinite-loop test for one variant.  Memory-
 * touching variants address the tile's private region.
 */
isa::Program makeEpiProgram(const EpiVariant &variant,
                            OperandPattern pattern, TileId tile);

/** Seed the data region with values matching the operand pattern. */
void initEpiMemory(arch::MainMemory &memory, OperandPattern pattern,
                   TileId tile);

/** Operand values for a pattern (second value for two-source ops). */
RegVal patternValue(OperandPattern p, int which);

} // namespace piton::workloads

#endif // PITON_WORKLOADS_EPI_TESTS_HH
