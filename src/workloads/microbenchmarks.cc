#include "workloads/microbenchmarks.hh"

#include "common/logging.hh"

namespace piton::workloads
{

namespace
{

/** Emit the loop-control epilogue: infinite (ba) or counted (bl). */
void
emitLoopTail(isa::ProgramBuilder &b, std::uint64_t iterations,
             int counter_reg)
{
    if (iterations == 0) {
        b.ba("loop");
    } else {
        b.addi(counter_reg, counter_reg, 1);
        b.cmpi(counter_reg, static_cast<std::int64_t>(iterations));
        b.bl("loop");
        b.halt();
    }
}

} // namespace

const char *
microbenchName(Microbench m)
{
    switch (m) {
      case Microbench::Int: return "Int";
      case Microbench::HP: return "HP";
      case Microbench::Hist: return "Hist";
      case Microbench::Phased: return "Phased";
      default:
        piton_panic("bad Microbench");
    }
}

isa::Program
makeIntLoop(std::uint64_t iterations)
{
    isa::ProgramBuilder b;
    // Alternating bit patterns maximize datapath switching.
    b.set(1, 0xAAAAAAAAAAAAAAAAULL);
    b.set(2, 0x5555555555555555ULL);
    b.set(30, 0);
    b.label("loop");
    for (int rep = 0; rep < 2; ++rep) {
        b.xorr(3, 1, 2);
        b.add(4, 3, 2);
        b.xorr(5, 4, 1);
        b.andr(6, 5, 2);
        b.orr(7, 6, 1);
        b.xorr(8, 7, 2);
        b.add(9, 8, 1);
        b.xorr(10, 9, 2);
    }
    emitLoopTail(b, iterations, 30);
    return b.build();
}

isa::Program
makeMixedLoop(std::uint64_t iterations)
{
    isa::ProgramBuilder b;
    // r1 = per-thread private data base (init register).
    b.set(2, 0xA5A5A5A5A5A5A5A5ULL);
    b.set(3, 0x3C3C3C3C3C3C3C3CULL);
    b.set(30, 0);
    b.label("loop");
    // Twenty integer instructions ...
    for (int rep = 0; rep < 2; ++rep) {
        b.xorr(4, 2, 3);
        b.add(5, 4, 3);
        b.xorr(6, 5, 2);
        b.andr(7, 6, 3);
        b.orr(8, 7, 2);
        b.xorr(9, 8, 3);
        b.add(10, 9, 2);
        b.xorr(11, 10, 3);
        b.andr(12, 11, 2);
        b.xorr(13, 12, 3);
    }
    // ... and four memory operations (5:1 compute to memory); all hit
    // the private L1/L1.5 in steady state.
    b.ldx(14, 1, 0);
    b.stx(13, 1, 16);
    b.ldx(16, 1, 32);
    b.stx(12, 1, 48);
    emitLoopTail(b, iterations, 30);
    return b.build();
}

isa::Program
makeHistProgram(std::uint64_t outer_iterations)
{
    isa::ProgramBuilder b;
    // Init registers: r1 = array base, r2 = start idx, r3 = end idx,
    // r4 = shared bucket base, r5 = lock address, r6 = private bucket
    // base.  Each thread histograms its portion into its private
    // buckets (cache-resident), then merges them into the shared
    // buckets under the lock — so shrinking per-thread portions raise
    // the contended fraction, as in Section IV-H1.
    b.set(14, 0);
    b.set(30, 0);
    b.label("loop");
    // Zero the private buckets.
    b.set(10, 0);
    b.label("zero");
    b.slli(11, 10, 3);
    b.add(11, 11, 6);
    b.stx(14, 11, 0);
    b.addi(10, 10, 1);
    b.cmpi(10, kHistBuckets);
    b.bl("zero");
    // ---- compute phase over [start, end) ----
    b.mov(10, 2);
    b.label("elem");
    b.slli(11, 10, 3);
    b.add(11, 11, 1);
    b.ldx(12, 11, 0); // value = array[cur]
    // "compute": mix the value before bucketing
    b.xorr(20, 12, 2);
    b.add(21, 20, 12);
    b.srli(22, 12, 7);
    b.xorr(21, 21, 22);
    b.add(23, 21, 20);
    b.xorr(24, 23, 12);
    b.srli(25, 23, 3);
    b.add(24, 24, 25);
    b.xorr(20, 24, 21);
    b.add(22, 20, 23);
    b.andi(13, 12, kHistBuckets - 1);
    b.slli(13, 13, 3);
    b.add(13, 13, 6); // &private[bucket]
    b.ldx(16, 13, 0);
    b.addi(16, 16, 1);
    b.stx(16, 13, 0);
    b.addi(10, 10, 1);
    b.cmp(10, 3);
    b.bl("elem");
    // ---- merge phase under the shared lock ----
    b.label("acquire");
    b.set(15, 1);
    b.casx(15, 5, 14);
    b.cmpi(15, 0);
    b.bne("acquire");
    b.set(10, 0);
    b.label("merge");
    b.slli(11, 10, 3);
    b.add(12, 11, 6);
    b.ldx(16, 12, 0); // private count
    b.add(17, 11, 4);
    b.ldx(18, 17, 0); // shared count
    b.add(18, 18, 16);
    b.stx(18, 17, 0);
    b.addi(10, 10, 1);
    b.cmpi(10, kHistBuckets);
    b.bl("merge");
    b.stx(14, 5, 0); // release
    emitLoopTail(b, outer_iterations, 30);
    return b.build();
}

isa::Program
makeTwoPhaseProgram(std::uint64_t compute_iters, std::uint64_t idle_iters)
{
    isa::ProgramBuilder b;
    b.set(1, 0xAAAAAAAAAAAAAAAAULL);
    b.set(2, 0x5555555555555555ULL);
    // r15 != 0 starts in the idle phase (interleaved scheduling).
    b.cmpi(15, 0);
    b.bne("idle_entry");
    b.label("loop");
    // --- compute phase ---
    b.set(20, 0);
    b.label("compute");
    b.xorr(3, 1, 2);
    b.add(4, 3, 2);
    b.xorr(5, 4, 1);
    b.addi(20, 20, 1);
    b.cmpi(20, static_cast<std::int64_t>(compute_iters));
    b.bl("compute");
    // --- idle phase ---
    b.label("idle_entry");
    b.set(20, 0);
    b.label("idle");
    b.nop();
    b.nop();
    b.nop();
    b.addi(20, 20, 1);
    b.cmpi(20, static_cast<std::int64_t>(idle_iters));
    b.bl("idle");
    b.ba("loop");
    return b.build();
}

isa::Program
makePhasedEnergyProgram(std::uint64_t reps)
{
    isa::ProgramBuilder b;
    b.set(2, 0xAAAAAAAAAAAAAAAAULL);
    b.set(3, 0x5555555555555555ULL);
    b.set(30, 0);
    b.label("loop");
    // Integer phase: high switching activity.
    b.set(20, 0);
    b.label("intp");
    b.xorr(4, 2, 3);
    b.add(5, 4, 3);
    b.xorr(6, 5, 2);
    b.andr(7, 6, 3);
    b.orr(8, 7, 2);
    b.xorr(9, 8, 3);
    b.add(10, 9, 2);
    b.xorr(11, 10, 3);
    b.addi(20, 20, 1);
    b.cmpi(20, 400);
    b.bl("intp");
    // Memory phase: private-region loads/stores (L1-resident).
    b.set(20, 0);
    b.label("memp");
    b.ldx(12, 1, 0);
    b.stx(11, 1, 16);
    b.ldx(13, 1, 32);
    b.stx(9, 1, 48);
    b.addi(20, 20, 1);
    b.cmpi(20, 300);
    b.bl("memp");
    // Near-idle phase: nops only.
    b.set(20, 0);
    b.label("idle");
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.addi(20, 20, 1);
    b.cmpi(20, 300);
    b.bl("idle");
    emitLoopTail(b, reps, 30);
    return b.build();
}

void
initHistData(arch::MainMemory &memory, std::uint64_t elements, Rng &rng)
{
    for (std::uint64_t i = 0; i < elements; ++i)
        memory.write64(kHistArrayBase + i * 8, rng.next());
    for (std::uint32_t bkt = 0; bkt < kHistBuckets; ++bkt)
        memory.write64(kHistBucketsBase + bkt * 8, 0);
    for (std::uint32_t bkt = 0; bkt < kHistBuckets; ++bkt)
        memory.write64(kHistLocksBase + bkt * 64, 0);
}

std::vector<isa::Program>
loadMicrobench(sim::System &system, Microbench bench, std::uint32_t cores,
               std::uint32_t threads_per_core, std::uint64_t iterations,
               std::uint64_t total_elements)
{
    piton_assert(cores >= 1 && cores <= 25, "core count %u out of range",
                 cores);
    std::vector<TileId> tiles;
    tiles.reserve(cores);
    for (TileId t = 0; t < cores; ++t)
        tiles.push_back(t);
    return loadMicrobenchOnTiles(system, bench, tiles, threads_per_core,
                                 iterations, total_elements);
}

std::vector<isa::Program>
loadMicrobenchOnTiles(sim::System &system, Microbench bench,
                      const std::vector<TileId> &tiles,
                      std::uint32_t threads_per_core,
                      std::uint64_t iterations,
                      std::uint64_t total_elements)
{
    const auto cores = static_cast<std::uint32_t>(tiles.size());
    piton_assert(cores >= 1 && cores <= 25, "core count %u out of range",
                 cores);
    piton_assert(threads_per_core == 1 || threads_per_core == 2,
                 "threads/core must be 1 or 2");
    std::vector<isa::Program> programs;
    // Cores hold raw pointers into this vector: reserve up front so
    // push_back never reallocates (moving the vector out is safe — the
    // heap buffer, and thus the element addresses, transfer with it).
    programs.reserve(2);

    switch (bench) {
      case Microbench::Int: {
        programs.push_back(makeIntLoop(iterations));
        for (std::uint32_t c = 0; c < cores; ++c)
            for (std::uint32_t t = 0; t < threads_per_core; ++t)
                system.loadProgram(tiles[c], t, &programs[0]);
        break;
      }
      case Microbench::HP: {
        programs.push_back(makeIntLoop(iterations));
        programs.push_back(makeMixedLoop(iterations));
        std::uint32_t hwid = 0;
        for (std::uint32_t c = 0; c < cores; ++c) {
            for (std::uint32_t t = 0; t < threads_per_core; ++t, ++hwid) {
                // 2 T/C: one thread of each type per core.
                // 1 T/C: the two types alternate across cores.
                const bool mixed = (threads_per_core == 2) ? (t == 1)
                                                           : (c % 2 == 1);
                if (mixed) {
                    const Addr base = kMixedDataBase
                                      + static_cast<Addr>(hwid) * 0x1000;
                    system.pitonChip().memory().write64(base, 0x1234);
                    system.loadProgram(
                        tiles[c], t, &programs[1],
                        {{1, static_cast<RegVal>(base)}});
                } else {
                    system.loadProgram(tiles[c], t, &programs[0]);
                }
            }
        }
        break;
      }
      case Microbench::Hist: {
        programs.push_back(makeHistProgram(iterations));
        Rng rng(0x415);
        initHistData(system.pitonChip().memory(), total_elements, rng);
        const std::uint32_t threads = cores * threads_per_core;
        const std::uint64_t per_thread =
            std::max<std::uint64_t>(1, total_elements / threads);
        std::uint32_t idx = 0;
        for (std::uint32_t c = 0; c < cores; ++c) {
            for (std::uint32_t t = 0; t < threads_per_core; ++t, ++idx) {
                const std::uint64_t start = idx * per_thread;
                const std::uint64_t end =
                    (idx + 1 == threads) ? total_elements
                                         : start + per_thread;
                system.loadProgram(
                    tiles[c], t, &programs[0],
                    {{1, kHistArrayBase},
                     {2, start},
                     {3, end},
                     {4, kHistBucketsBase},
                     {5, kHistLocksBase},
                     {6, kHistPrivateBase
                             + static_cast<Addr>(idx) * 0x1000}});
            }
        }
        break;
      }
      case Microbench::Phased: {
        piton_assert(iterations >= 1,
                     "Phased is energy-only (it always halts); "
                     "iterations must be >= 1");
        programs.push_back(makePhasedEnergyProgram(iterations));
        std::uint32_t hwid = 0;
        for (std::uint32_t c = 0; c < cores; ++c)
            for (std::uint32_t t = 0; t < threads_per_core; ++t, ++hwid)
                system.loadProgram(
                    tiles[c], t, &programs[0],
                    {{1, kMixedDataBase
                             + static_cast<Addr>(hwid) * 0x1000}});
        break;
      }
      default:
        piton_panic("bad Microbench");
    }
    return programs;
}

} // namespace piton::workloads
