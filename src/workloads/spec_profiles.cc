#include "workloads/spec_profiles.hh"

#include "common/logging.hh"

namespace piton::workloads
{

const std::vector<SpecBenchmark> &
specint2006Profiles()
{
    // Columns: name, T2000 minutes (Table IX), loadFrac, storeFrac,
    // branchFrac, L1->L2 MPKI, L2 MPKI on T1 (3 MB), L2 MPKI on Piton
    // (1.6 MB), ioActivity, operand activity.
    static const std::vector<SpecBenchmark> profiles = {
        {"bzip2-chicken", 11.74, 0.26, 0.09, 0.15, 9.0, 1.5, 5.4, 1.2, 58},
        {"bzip2-source", 23.62, 0.27, 0.10, 0.15, 10.0, 2.0, 7.0, 1.3, 58},
        {"gcc-166", 5.72, 0.25, 0.13, 0.20, 12.0, 2.5, 10.0, 1.5, 50},
        {"gcc-200", 9.21, 0.26, 0.13, 0.20, 12.0, 3.0, 12.5, 1.5, 50},
        {"gobmk-13x13", 16.67, 0.28, 0.14, 0.19, 10.0, 1.0, 4.6, 1.2, 52},
        {"h264ref-foreman-baseline", 22.76, 0.35, 0.12, 0.08, 4.0, 0.2,
         1.5, 1.4, 64},
        {"hmmer-nph3", 48.38, 0.41, 0.16, 0.08, 6.0, 0.3, 2.0, 5.5, 66},
        {"libquantum", 201.61, 0.25, 0.06, 0.25, 20.0, 5.0, 10.5, 4.5, 46},
        {"omnetpp", 72.94, 0.34, 0.18, 0.21, 25.0, 6.0, 23.0, 1.2, 48},
        {"perlbench-checkspam", 11.57, 0.33, 0.18, 0.21, 14.0, 3.0, 13.3,
         1.4, 52},
        {"perlbench-diffmail", 23.13, 0.33, 0.18, 0.21, 14.0, 3.0, 13.2,
         1.4, 52},
        {"sjeng", 122.07, 0.27, 0.11, 0.19, 8.0, 1.0, 4.5, 1.1, 54},
        {"xalancbmk", 102.99, 0.32, 0.09, 0.24, 15.0, 3.0, 11.3, 1.3, 50},
    };
    return profiles;
}

const SpecBenchmark &
specProfile(const std::string &name)
{
    for (const auto &b : specint2006Profiles())
        if (b.name == name)
            return b;
    piton_fatal("unknown SPEC profile '%s'", name.c_str());
}

} // namespace piton::workloads
