#include "workloads/memory_tests.hh"

#include "common/logging.hh"

namespace piton::workloads
{

namespace
{

constexpr std::uint32_t kUnroll = 20;

/** Stride aliasing one L1D/L1.5 set while preserving the home tile
 *  (multiple of lcm(2048, 64*25) = 51200) and spreading L2 sets. */
constexpr Addr kL1AliasStride = 51200;

/** Stride aliasing one L2 set at the same home (multiple of
 *  256 sets * 64 B * 25 tiles = 409600). */
constexpr Addr kL2AliasStride = 409600;

} // namespace

const char *
memoryScenarioName(MemoryScenario s)
{
    switch (s) {
      case MemoryScenario::L1Hit: return "L1 Hit";
      case MemoryScenario::LocalL2Hit: return "L1 Miss, Local L2 Hit";
      case MemoryScenario::RemoteL2Hit4:
        return "L1 Miss, Remote L2 Hit (4 hops)";
      case MemoryScenario::RemoteL2Hit8:
        return "L1 Miss, Remote L2 Hit (8 hops)";
      case MemoryScenario::L2Miss: return "L1 Miss, Local L2 Miss";
      default:
        piton_panic("bad MemoryScenario");
    }
}

std::uint32_t
memoryScenarioLatency(MemoryScenario s)
{
    switch (s) {
      case MemoryScenario::L1Hit: return 3;
      case MemoryScenario::LocalL2Hit: return 34;
      case MemoryScenario::RemoteL2Hit4: return 42;
      case MemoryScenario::RemoteL2Hit8: return 52;
      case MemoryScenario::L2Miss: return 424;
      default:
        piton_panic("bad MemoryScenario");
    }
}

MemoryTestPlan
makeMemoryTestPlan(MemoryScenario scenario, TileId requester)
{
    MemoryTestPlan plan;
    plan.scenario = scenario;
    plan.requester = requester;
    plan.home = requester;
    plan.addresses.reserve(kUnroll);

    switch (scenario) {
      case MemoryScenario::L1Hit: {
        const Addr base =
            0x0200'0000 + static_cast<Addr>(requester) * 0x4000;
        for (std::uint32_t k = 0; k < kUnroll; ++k)
            plan.addresses.push_back(base + k * 8);
        plan.home = static_cast<TileId>((plan.addresses[0] >> 6) % 25);
        break;
      }
      case MemoryScenario::LocalL2Hit: {
        const Addr base = static_cast<Addr>(requester) * 64;
        for (std::uint32_t k = 0; k < kUnroll; ++k)
            plan.addresses.push_back(base + k * kL1AliasStride);
        break;
      }
      case MemoryScenario::RemoteL2Hit4:
      case MemoryScenario::RemoteL2Hit8: {
        piton_assert(requester == 0,
                     "remote scenarios are planned from tile 0");
        // 4 hops: tile 4 (straight east, no turn).  8 hops: tile 24
        // (the opposite corner, one turn) — the 5x5 mesh maximum.
        plan.home = (scenario == MemoryScenario::RemoteL2Hit4) ? 4 : 24;
        const Addr base = static_cast<Addr>(plan.home) * 64;
        for (std::uint32_t k = 0; k < kUnroll; ++k)
            plan.addresses.push_back(base + k * kL1AliasStride);
        break;
      }
      case MemoryScenario::L2Miss: {
        const Addr base = static_cast<Addr>(requester) * 64;
        for (std::uint32_t k = 0; k < kUnroll; ++k)
            plan.addresses.push_back(base + k * kL2AliasStride);
        break;
      }
      default:
        piton_panic("bad MemoryScenario");
    }
    return plan;
}

isa::Program
makeMemoryTestProgram(const MemoryTestPlan &plan)
{
    isa::ProgramBuilder b;
    // Preload the 20 target addresses into r8..r27 so the measured
    // loop contains nothing but the ldx instructions and the loop
    // branch (matching the paper's "no extraneous activity" check).
    piton_assert(plan.addresses.size() <= 20, "too many load targets");
    int reg = 8;
    for (const Addr a : plan.addresses)
        b.set(reg++, a);
    b.label("loop");
    reg = 8;
    for (std::size_t i = 0; i < plan.addresses.size(); ++i)
        b.ldx(2, reg++, 0);
    b.ba("loop");
    return b.build();
}

void
initMemoryTestData(arch::MainMemory &memory, const MemoryTestPlan &plan,
                   Rng &rng)
{
    for (const Addr a : plan.addresses) {
        const Addr line = a & ~Addr{63};
        for (Addr off = 0; off < 64; off += 8)
            memory.write64(line + off, rng.next());
    }
}

} // namespace piton::workloads
