/**
 * @file
 * Checkpointing of isa::Program references.
 *
 * Threads hold raw `const isa::Program *` pointers (and Execution
 * Drafting compares them by identity), so a checkpoint must capture
 * both the program images and the pointer topology.  ProgramTable
 * assigns dense ids to every distinct Program encountered in a
 * deterministic scan order, serializes each image exactly once, and on
 * restore materializes owned copies whose pointer identity mirrors the
 * saved topology (two threads that shared a Program share the restored
 * copy; distinct-but-equal Programs stay distinct).
 *
 * Execution Drafting's per-thread (program, pc) draft history may hold
 * a pointer to a program that is no longer loaded on any thread.  Such
 * a pointer can never compare equal to any loaded thread's program
 * again (threads only load registered programs), and it is never
 * dereferenced — so it maps to the null id, preserving the observable
 * "never matches" behaviour without touching possibly-dangling memory.
 */

#ifndef PITON_CHECKPOINT_PROGRAM_TABLE_HH
#define PITON_CHECKPOINT_PROGRAM_TABLE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "checkpoint/archive.hh"
#include "isa/program.hh"

namespace piton::ckpt
{

class ProgramTable
{
  public:
    static constexpr std::uint32_t kNullId = ~std::uint32_t{0};

    /** Saving: register a referenced program (idempotent; call in a
     *  deterministic order — tile-major, thread-minor). */
    void
    add(const isa::Program *p)
    {
        if (p == nullptr || ids_.count(p))
            return;
        ids_.emplace(p, static_cast<std::uint32_t>(programs_.size()));
        programs_.push_back(p);
    }

    /** Saving: id of a pointer; kNullId for null or unregistered
     *  (stale draft-history) pointers. */
    std::uint32_t
    idOf(const isa::Program *p) const
    {
        if (p == nullptr)
            return kNullId;
        const auto it = ids_.find(p);
        return it == ids_.end() ? kNullId : it->second;
    }

    /** Loading: pointer for an id (nullptr for kNullId). */
    const isa::Program *
    ptrOf(std::uint32_t id) const
    {
        if (id == kNullId)
            return nullptr;
        Archive::check(id < programs_.size(),
                       "program id out of range");
        return programs_[id];
    }

    /** Serialize a pointer field through the table. */
    void
    ioRef(Archive &ar, const isa::Program *&p) const
    {
        std::uint32_t id = ar.saving() ? idOf(p) : 0;
        ar.io(id);
        if (ar.loading())
            p = ptrOf(id);
    }

    /**
     * Serialize the registered program images.  Loading fills `owner`
     * with the reconstructed programs (the caller keeps them alive for
     * as long as the restored threads run) and repopulates the id ->
     * pointer mapping.  Every instruction field is range-validated, so
     * a CRC-valid but hand-crafted image cannot produce out-of-bounds
     * register or branch-target indices.
     */
    void
    serialize(Archive &ar,
              std::vector<std::unique_ptr<isa::Program>> &owner)
    {
        std::uint64_t n = ar.ioSize(programs_.size(), 8);
        if (ar.loading()) {
            owner.clear();
            programs_.clear();
            ids_.clear();
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t base = 0;
            std::vector<isa::Instruction> insts;
            if (ar.saving()) {
                base = programs_[i]->baseAddr();
                insts = programs_[i]->instructions();
            }
            ar.io(base);
            std::uint64_t ni = ar.ioSize(insts.size(), 16);
            Archive::check(ni > 0, "empty program image");
            if (ar.loading())
                insts.resize(static_cast<std::size_t>(ni));
            for (auto &inst : insts) {
                ar.ioEnum(inst.op, isa::Opcode::NumOpcodes);
                ar.io(inst.rd);
                ar.io(inst.rs1);
                ar.io(inst.rs2);
                ar.io(inst.useImm);
                ar.io(inst.fp);
                ar.io(inst.imm);
                ar.io(inst.target);
                Archive::check(inst.rd < isa::kNumIntRegs
                                   && inst.rs1 < isa::kNumIntRegs
                                   && inst.rs2 < isa::kNumIntRegs,
                               "program register index out of range");
                Archive::check(!isa::isBranch(inst.op)
                                   || inst.target < ni,
                               "branch target out of range");
            }
            if (ar.loading()) {
                owner.push_back(std::make_unique<isa::Program>(
                    std::move(insts), base));
                programs_.push_back(owner.back().get());
            }
        }
    }

  private:
    std::unordered_map<const isa::Program *, std::uint32_t> ids_;
    std::vector<const isa::Program *> programs_;
};

} // namespace piton::ckpt

#endif // PITON_CHECKPOINT_PROGRAM_TABLE_HH
