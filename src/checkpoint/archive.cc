#include "checkpoint/archive.hh"

#include <array>
#include <cstdio>

namespace piton::ckpt
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

/** Little-endian scalar append/extract.  The simulator only targets
 *  little-endian hosts, but going through explicit byte shifts keeps
 *  the on-disk format well-defined either way. */
template <typename T>
void
putScalar(std::vector<std::uint8_t> &out, T v)
{
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

template <typename T>
T
getScalar(const std::uint8_t *p)
{
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

Archive
Archive::forSave()
{
    return Archive(Mode::Save);
}

Archive
Archive::forLoad(std::vector<std::uint8_t> bytes)
{
    Archive ar(Mode::Load);
    ar.bytes_ = std::move(bytes);
    const auto &b = ar.bytes_;

    check(b.size() >= sizeof(kMagic) + 2 * sizeof(std::uint32_t),
          "checkpoint truncated: missing header");
    check(std::memcmp(b.data(), kMagic, sizeof(kMagic)) == 0,
          "not a checkpoint file (bad magic)");
    std::size_t pos = sizeof(kMagic);
    const std::uint32_t version = getScalar<std::uint32_t>(&b[pos]);
    pos += sizeof(std::uint32_t);
    if (version != kFormatVersion)
        throw CheckpointError(
            "checkpoint format version " + std::to_string(version)
            + " does not match this build's version "
            + std::to_string(kFormatVersion));
    const std::uint32_t nsections = getScalar<std::uint32_t>(&b[pos]);
    pos += sizeof(std::uint32_t);

    for (std::uint32_t s = 0; s < nsections; ++s) {
        check(pos + sizeof(std::uint32_t) <= b.size(),
              "checkpoint truncated: section name length");
        const std::uint32_t name_len = getScalar<std::uint32_t>(&b[pos]);
        pos += sizeof(std::uint32_t);
        check(name_len <= 256 && pos + name_len <= b.size(),
              "checkpoint truncated: section name");
        SectionEntry e;
        e.name.assign(reinterpret_cast<const char *>(&b[pos]), name_len);
        pos += name_len;
        check(pos + sizeof(std::uint64_t) + sizeof(std::uint32_t)
                  <= b.size(),
              "checkpoint truncated: section header");
        const std::uint64_t payload_len = getScalar<std::uint64_t>(&b[pos]);
        pos += sizeof(std::uint64_t);
        const std::uint32_t want_crc = getScalar<std::uint32_t>(&b[pos]);
        pos += sizeof(std::uint32_t);
        check(payload_len <= b.size() - pos,
              "checkpoint truncated: section payload");
        e.offset = pos;
        e.length = static_cast<std::size_t>(payload_len);
        pos += e.length;
        if (crc32(&b[e.offset], e.length) != want_crc)
            throw CheckpointError("checkpoint corrupt: CRC mismatch in "
                                  "section '" + e.name + "'");
        ar.dir_.push_back(std::move(e));
    }
    check(pos == b.size(), "checkpoint corrupt: trailing bytes");
    return ar;
}

void
Archive::beginSection(const std::string &name)
{
    check(!inSection_, "beginSection: sections must not nest");
    inSection_ = true;
    curName_ = name;
    if (saving()) {
        check(!finished_, "beginSection after finish()");
        cur_.clear();
        return;
    }
    for (const auto &e : dir_) {
        if (e.name == name) {
            readPos_ = e.offset;
            readEnd_ = e.offset + e.length;
            return;
        }
    }
    throw CheckpointError("checkpoint missing section '" + name + "'");
}

void
Archive::endSection()
{
    check(inSection_, "endSection without beginSection");
    inSection_ = false;
    if (saving()) {
        putScalar(bytes_, static_cast<std::uint32_t>(curName_.size()));
        bytes_.insert(bytes_.end(), curName_.begin(), curName_.end());
        putScalar(bytes_, static_cast<std::uint64_t>(cur_.size()));
        putScalar(bytes_, crc32(cur_.data(), cur_.size()));
        bytes_.insert(bytes_.end(), cur_.begin(), cur_.end());
        ++sectionCount_;
        cur_.clear();
        return;
    }
    if (readPos_ != readEnd_)
        throw CheckpointError("checkpoint corrupt: section '" + curName_
                              + "' has unread trailing bytes");
}

bool
Archive::hasSection(const std::string &name) const
{
    for (const auto &e : dir_)
        if (e.name == name)
            return true;
    return false;
}

std::vector<std::uint8_t>
Archive::finish()
{
    check(saving(), "finish() on a loading archive");
    check(!inSection_, "finish() inside an open section");
    check(!finished_, "finish() called twice");
    finished_ = true;
    std::vector<std::uint8_t> out;
    out.reserve(bytes_.size() + 16);
    out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
    putScalar(out, kFormatVersion);
    putScalar(out, sectionCount_);
    out.insert(out.end(), bytes_.begin(), bytes_.end());
    return out;
}

void
Archive::put(const void *p, std::size_t n)
{
    check(inSection_, "field I/O outside a section");
    const auto *b = static_cast<const std::uint8_t *>(p);
    cur_.insert(cur_.end(), b, b + n);
}

void
Archive::get(void *p, std::size_t n)
{
    check(inSection_, "field I/O outside a section");
    if (readEnd_ - readPos_ < n)
        throw CheckpointError("checkpoint corrupt: section '" + curName_
                              + "' too short");
    std::memcpy(p, &bytes_[readPos_], n);
    readPos_ += n;
}

void
Archive::io(bool &v)
{
    std::uint8_t raw = v ? 1 : 0;
    io(raw);
    check(raw <= 1, "bool field out of range");
    v = raw != 0;
}

void
Archive::io(std::uint8_t &v)
{
    if (saving())
        put(&v, 1);
    else
        get(&v, 1);
}

void
Archive::io(std::uint16_t &v)
{
    std::uint8_t buf[sizeof(v)];
    if (saving()) {
        for (std::size_t i = 0; i < sizeof(v); ++i)
            buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
        put(buf, sizeof(v));
    } else {
        get(buf, sizeof(v));
        v = getScalar<std::uint16_t>(buf);
    }
}

void
Archive::io(std::uint32_t &v)
{
    std::uint8_t buf[sizeof(v)];
    if (saving()) {
        for (std::size_t i = 0; i < sizeof(v); ++i)
            buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
        put(buf, sizeof(v));
    } else {
        get(buf, sizeof(v));
        v = getScalar<std::uint32_t>(buf);
    }
}

void
Archive::io(std::uint64_t &v)
{
    std::uint8_t buf[sizeof(v)];
    if (saving()) {
        for (std::size_t i = 0; i < sizeof(v); ++i)
            buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
        put(buf, sizeof(v));
    } else {
        get(buf, sizeof(v));
        v = getScalar<std::uint64_t>(buf);
    }
}

void
Archive::io(std::int64_t &v)
{
    auto raw = static_cast<std::uint64_t>(v);
    io(raw);
    v = static_cast<std::int64_t>(raw);
}

void
Archive::io(double &v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    io(bits);
    std::memcpy(&v, &bits, sizeof(bits));
}

void
Archive::io(std::string &v)
{
    std::uint64_t n = ioSize(v.size());
    if (loading())
        v.resize(static_cast<std::size_t>(n));
    if (saving())
        put(v.data(), v.size());
    else if (n > 0)
        get(v.data(), v.size());
}

std::uint64_t
Archive::ioSize(std::uint64_t n, std::uint64_t min_elem_bytes)
{
    io(n);
    if (loading()) {
        const std::uint64_t remaining = readEnd_ - readPos_;
        if (min_elem_bytes == 0)
            min_elem_bytes = 1;
        if (n > remaining / min_elem_bytes)
            throw CheckpointError(
                "checkpoint corrupt: container size exceeds section '"
                + curName_ + "'");
    }
    return n;
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw CheckpointError("cannot open checkpoint file for writing: "
                              + path);
    const std::size_t n =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool wrote = n == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed)
        throw CheckpointError("short write to checkpoint file: " + path);
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw CheckpointError("cannot open checkpoint file: " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[65536];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw CheckpointError("read error on checkpoint file: " + path);
    return bytes;
}

} // namespace piton::ckpt
