/**
 * @file
 * Versioned, sectioned binary serialization for simulation checkpoints
 * (DESIGN.md §10).
 *
 * A checkpoint file is a fixed header (magic + format version) followed
 * by named sections, each carrying its payload length and a CRC32 of
 * the payload.  Sections are independent: readers locate them by name,
 * so optional state (e.g. telemetry) can be present or absent and
 * future versions can append sections without breaking older layouts
 * of the same version.
 *
 * The same `Archive` object drives both directions: every stateful
 * class implements one `serialize(ckpt::Archive &)` hook whose body is
 * a sequence of `ar.io(field)` calls, and the mode (Save/Load) decides
 * whether each call writes the field out or reads it back.  Symmetry of
 * the byte layout is therefore guaranteed by construction.
 *
 * Encoding rules (all enforced here, not in the hooks):
 *  - scalars are fixed-width little-endian; no struct is ever dumped
 *    raw (padding bytes would make the CRC nondeterministic);
 *  - doubles are stored as their raw IEEE-754 bit pattern, so restore
 *    is bit-exact (the simulator's determinism contract compares FP
 *    accumulator sums as raw bits);
 *  - enums go through ioEnum with an explicit exclusive bound, so a
 *    handcrafted file cannot smuggle an out-of-range discriminant into
 *    a switch or array index;
 *  - container sizes are sanity-checked against the bytes remaining in
 *    the section before any allocation.
 *
 * Every failure — bad magic, version mismatch, CRC mismatch,
 * truncation, missing section, trailing bytes, range violation — throws
 * CheckpointError with a descriptive message; restore never exhibits
 * undefined behaviour on malformed input.
 */

#ifndef PITON_CHECKPOINT_ARCHIVE_HH
#define PITON_CHECKPOINT_ARCHIVE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace piton::ckpt
{

/** Thrown on any malformed, truncated, or mismatched checkpoint. */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** 8-byte file magic. */
inline constexpr char kMagic[8] = {'P', 'I', 'T', 'O', 'N', 'C', 'K', 'P'};

/** Format version; bump on any layout change (no cross-version
 *  compatibility: a checkpoint is a resume artifact, not an exchange
 *  format — see DESIGN.md §10 for the policy).
 *  v2: per-tile energies moved out of chip.cores into the SoA
 *  chip.tile_energy section.
 *  v3: optional sys.governor section (DVFS control-loop state) and the
 *  Volts/Amps telemetry units.
 *  v4: chip.bbv section (per-tile BBV histograms) and the optional
 *  sys.sampling section (interval-profiler state).
 *  v5: static per-tile duty gating — tileFreqMhz joins the sys.meta
 *  fingerprint and the sys.duty section carries the Bresenham
 *  accumulators of ungoverned placed runs. */
inline constexpr std::uint32_t kFormatVersion = 5;

/** CRC32 (IEEE 802.3, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

class Archive
{
  public:
    enum class Mode : std::uint8_t
    {
        Save,
        Load,
    };

    /** A saving archive, accumulating sections in memory. */
    static Archive forSave();
    /** A loading archive over a complete checkpoint image; validates
     *  magic, version, and the section directory immediately. */
    static Archive forLoad(std::vector<std::uint8_t> bytes);

    bool saving() const { return mode_ == Mode::Save; }
    bool loading() const { return mode_ == Mode::Load; }

    /**
     * Open a section.  Saving: starts buffering a new section (sections
     * must not nest).  Loading: locates the section by name, verifies
     * its CRC, and positions the read cursor at its start.
     */
    void beginSection(const std::string &name);

    /** Close the current section.  Loading additionally requires the
     *  payload to be fully consumed: leftover bytes mean the writer and
     *  reader disagree about the layout. */
    void endSection();

    /** Whether a section exists (loading only; optional state). */
    bool hasSection(const std::string &name) const;

    /** Finalize a saving archive into the complete checkpoint image. */
    std::vector<std::uint8_t> finish();

    // ---- symmetric field I/O ----------------------------------------

    void io(bool &v);
    void io(std::uint8_t &v);
    void io(std::uint16_t &v);
    void io(std::uint32_t &v);
    void io(std::uint64_t &v);
    void io(std::int64_t &v);
    /** Raw IEEE-754 bit pattern (bit-exact round trip, incl. NaNs). */
    void io(double &v);
    void io(std::string &v);

    /** Enum through its underlying integer with an exclusive bound. */
    template <typename E>
    void
    ioEnum(E &v, E bound)
    {
        using U = std::underlying_type_t<E>;
        std::uint64_t raw = static_cast<std::uint64_t>(static_cast<U>(v));
        io(raw);
        check(raw < static_cast<std::uint64_t>(static_cast<U>(bound)),
              "enum value out of range");
        v = static_cast<E>(static_cast<U>(raw));
    }

    /**
     * Container size: saving writes `n`; loading reads it and verifies
     * that `n * min_elem_bytes` still fits in the unread remainder of
     * the section (a cheap guard against allocation bombs from a file
     * whose CRC happens to validate).
     */
    std::uint64_t ioSize(std::uint64_t n, std::uint64_t min_elem_bytes = 1);

    /**
     * Loading: verify a value matches what the checkpoint was saved
     * with (configuration fingerprints).  Saving: writes the value.
     */
    template <typename T>
    void
    ioExpect(T expected, const char *what)
    {
        T got = expected;
        io(got);
        if (loading() && !(got == expected))
            throw CheckpointError(std::string("checkpoint mismatch: ")
                                  + what);
    }

    /** Throw CheckpointError(msg) unless cond holds. */
    static void
    check(bool cond, const char *msg)
    {
        if (!cond)
            throw CheckpointError(msg);
    }

  private:
    explicit Archive(Mode mode) : mode_(mode) {}

    void put(const void *p, std::size_t n);
    void get(void *p, std::size_t n);

    struct SectionEntry
    {
        std::string name;
        std::size_t offset = 0; ///< payload start within bytes_
        std::size_t length = 0;
    };

    Mode mode_;
    /** Save: finished section stream.  Load: the full image. */
    std::vector<std::uint8_t> bytes_;
    /** Save: payload of the in-progress section. */
    std::vector<std::uint8_t> cur_;
    std::string curName_;
    bool inSection_ = false;
    bool finished_ = false;
    std::uint32_t sectionCount_ = 0;
    /** Load: directory parsed up front, and the read cursor. */
    std::vector<SectionEntry> dir_;
    std::size_t readPos_ = 0;
    std::size_t readEnd_ = 0;
};

/** Write a complete checkpoint image to a file (throws on I/O error). */
void writeFile(const std::string &path,
               const std::vector<std::uint8_t> &bytes);

/** Read a whole file (throws CheckpointError on I/O error). */
std::vector<std::uint8_t> readFile(const std::string &path);

} // namespace piton::ckpt

#endif // PITON_CHECKPOINT_ARCHIVE_HH
