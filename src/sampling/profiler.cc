#include "sampling/profiler.hh"

#include <utility>

#include "checkpoint/archive.hh"
#include "common/logging.hh"
#include "telemetry/schema.hh"

namespace piton::sampling
{

namespace
{

/** Flatten the chip's per-tile BBV histograms, tile-major. */
std::vector<std::uint64_t>
flattenBbv(arch::PitonChip &chip)
{
    const std::uint32_t buckets = chip.bbvBuckets();
    const std::uint32_t tiles = chip.params().tileCount;
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(buckets) * tiles);
    for (TileId t = 0; t < tiles; ++t) {
        const auto &v = chip.coreBbv(t);
        out.insert(out.end(), v.begin(), v.end());
    }
    return out;
}

} // namespace

IntervalProfiler::IntervalProfiler(sim::System &sys, ProfilerOptions opts)
    : sys_(sys), opts_(opts)
{
    piton_assert(opts_.intervalInsns > 0, "empty profiling interval");
    piton_assert(sys_.pitonChip().bbvBuckets() != 0,
                 "interval profiling needs SystemOptions::bbvBuckets");
    piton_assert(sys_.dvfsGovernor() == nullptr,
                 "interval profiling of governed runs is unsupported");
    piton_assert(sys_.checkpointClient() == nullptr,
                 "another checkpoint client is attached");
    sys_.attachCheckpointClient(this);
    sys_.setWindowHook(
        [this](const sim::WindowObs &obs) { return onWindow(obs); });
    snapshotStart();
    if (opts_.captureImages)
        pendingImage_ = captureImage();
}

IntervalProfiler::~IntervalProfiler()
{
    sys_.setWindowHook({});
    if (sys_.checkpointClient() == this)
        sys_.attachCheckpointClient(nullptr);
}

sim::CompletionResult
IntervalProfiler::run(Cycle max_cycles)
{
    const sim::CompletionResult res = sys_.runToCompletion(max_cycles);
    if (res.completed)
        finish(); // idempotent: the hook already saw obs.done
    return res;
}

void
IntervalProfiler::finish()
{
    if (finished_)
        return;
    closeInterval(true);
    finished_ = true;
}

bool
IntervalProfiler::onWindow(const sim::WindowObs &obs)
{
    if (finished_)
        return true;
    curSeconds_ += obs.windowS;
    curIdleJ_ += obs.idleEnergyJ;
    ++curWindows_;
    const std::uint64_t cur = sys_.pitonChip().totalInsts();
    if (cur - curStartInsns_ >= opts_.intervalInsns)
        closeInterval(false);
    if (obs.done)
        finish();
    return true; // the profiler observes; it never stops the run
}

void
IntervalProfiler::closeInterval(bool partial)
{
    arch::PitonChip &chip = sys_.pitonChip();
    const std::uint64_t insns_now = chip.totalInsts();
    if (partial && curWindows_ == 0 && insns_now == curStartInsns_)
        return; // nothing accumulated since the last close

    IntervalRecord rec;
    rec.startInsns = curStartInsns_;
    rec.startCycle = curStartCycle_;
    rec.insns = insns_now - curStartInsns_;
    rec.cycles = chip.now() - curStartCycle_;
    rec.seconds = curSeconds_;
    rec.activeJ =
        (chip.ledger().total() - startLedger_).onChipCoreAndSram();
    rec.idleJ = curIdleJ_;
    rec.windows = curWindows_;
    rec.partial = partial;

    std::vector<std::uint64_t> bbv_now = flattenBbv(chip);
    rec.bbv.resize(bbv_now.size());
    for (std::size_t i = 0; i < bbv_now.size(); ++i)
        rec.bbv[i] = bbv_now[i] - prevBbv_[i];
    prevBbv_ = std::move(bbv_now);

    rec.image = std::move(pendingImage_);
    pendingImage_.clear();

    if (opts_.telemetry)
        recordTelemetry(rec);
    intervals_.push_back(std::move(rec));

    // The current state is the next interval's start.
    curStartInsns_ = insns_now;
    curStartCycle_ = chip.now();
    curSeconds_ = 0.0;
    curIdleJ_ = 0.0;
    curWindows_ = 0;
    startLedger_ = chip.ledger().total();
    if (!partial && opts_.captureImages)
        pendingImage_ = captureImage();
}

void
IntervalProfiler::snapshotStart()
{
    arch::PitonChip &chip = sys_.pitonChip();
    curStartInsns_ = chip.totalInsts();
    curStartCycle_ = chip.now();
    curSeconds_ = 0.0;
    curIdleJ_ = 0.0;
    curWindows_ = 0;
    startLedger_ = chip.ledger().total();
    prevBbv_ = flattenBbv(chip);
}

std::vector<std::uint8_t>
IntervalProfiler::captureImage()
{
    // Detach for the capture: the image must describe the system alone,
    // not the profiler (whose records hold earlier images — nesting
    // them would grow each image quadratically in the interval count).
    sys_.attachCheckpointClient(nullptr);
    std::vector<std::uint8_t> img = sys_.saveBytes();
    sys_.attachCheckpointClient(this);
    return img;
}

void
IntervalProfiler::recordTelemetry(const IntervalRecord &rec)
{
    telemetry::TelemetryRecorder *telem = sys_.telemetry();
    if (telem == nullptr)
        return;
    namespace ts = telemetry::schema;
    using telemetry::Downsample;
    using telemetry::Unit;
    if (!tids_.ready) {
        // Lazy and idempotent (defineSeries dedups by name), as the
        // governor's epoch series do.
        tids_.insns = telem->defineSeries(ts::kSamplingIntervalInsns,
                                          Unit::Count, Downsample::Sum);
        tids_.cycles = telem->defineSeries(ts::kSamplingIntervalCycles,
                                           Unit::Count, Downsample::Sum);
        tids_.energyJ = telem->defineSeries(ts::kSamplingIntervalEnergyJ,
                                            Unit::Joules, Downsample::Sum);
        tids_.count = telem->defineSeries(ts::kSamplingIntervals,
                                          Unit::Count, Downsample::Sum);
        tids_.ready = true;
    }
    const double t = sys_.sampleClockS();
    const double dt = rec.seconds;
    telem->record(tids_.insns, t, dt, static_cast<double>(rec.insns));
    telem->record(tids_.cycles, t, dt, static_cast<double>(rec.cycles));
    telem->record(tids_.energyJ, t, dt, rec.energyJ());
    telem->record(tids_.count, t, dt, 1.0);
}

std::uint64_t
IntervalProfiler::totalInsns() const
{
    std::uint64_t n = 0;
    for (const auto &r : intervals_)
        n += r.insns;
    return n;
}

double
IntervalProfiler::totalEnergyJ() const
{
    double j = 0.0;
    for (const auto &r : intervals_)
        j += r.energyJ();
    return j;
}

double
IntervalProfiler::totalSeconds() const
{
    double s = 0.0;
    for (const auto &r : intervals_)
        s += r.seconds;
    return s;
}

void
IntervalProfiler::serializeClient(ckpt::Archive &ar)
{
    // Profiling-parameter fingerprints: a resumed profile must cut
    // intervals by the same rule or the records would diverge.
    ar.ioExpect(opts_.intervalInsns, "sampling interval insns");
    ar.ioExpect(opts_.captureImages, "sampling capture images");

    ar.io(finished_);
    ar.io(curStartInsns_);
    ar.io(curStartCycle_);
    ar.io(curSeconds_);
    ar.io(curIdleJ_);
    ar.io(curWindows_);
    startLedger_.serialize(ar);

    std::uint64_t nb = ar.ioSize(prevBbv_.size(), 8);
    if (ar.loading())
        prevBbv_.resize(static_cast<std::size_t>(nb));
    for (auto &v : prevBbv_)
        ar.io(v);

    std::uint64_t ni = ar.ioSize(pendingImage_.size(), 1);
    if (ar.loading())
        pendingImage_.resize(static_cast<std::size_t>(ni));
    for (auto &b : pendingImage_)
        ar.io(b);

    std::uint64_t nr = ar.ioSize(intervals_.size(), 1);
    if (ar.loading())
        intervals_.resize(static_cast<std::size_t>(nr));
    for (auto &rec : intervals_) {
        ar.io(rec.startInsns);
        ar.io(rec.startCycle);
        ar.io(rec.insns);
        ar.io(rec.cycles);
        ar.io(rec.seconds);
        ar.io(rec.activeJ);
        ar.io(rec.idleJ);
        ar.io(rec.windows);
        ar.io(rec.partial);
        std::uint64_t nv = ar.ioSize(rec.bbv.size(), 8);
        if (ar.loading())
            rec.bbv.resize(static_cast<std::size_t>(nv));
        for (auto &v : rec.bbv)
            ar.io(v);
        std::uint64_t nm = ar.ioSize(rec.image.size(), 1);
        if (ar.loading())
            rec.image.resize(static_cast<std::size_t>(nm));
        for (auto &b : rec.image)
            ar.io(b);
    }
    if (ar.loading())
        tids_.ready = false; // re-resolve against whatever is attached
}

void
IntervalProfiler::rebaseline(sim::System &sys)
{
    piton_assert(&sys == &sys_, "rebaseline against a foreign system");
    // The restored image carried no profiler state: restart profiling
    // from the restored counters, like the telemetry re-baseline.
    intervals_.clear();
    finished_ = false;
    tids_.ready = false;
    snapshotStart();
    pendingImage_.clear();
    if (opts_.captureImages)
        pendingImage_ = captureImage();
}

} // namespace piton::sampling
