#include "sampling/cluster.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace piton::sampling
{

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = a[i] - b[i];
        d += x * x;
    }
    return d;
}

/** Nearest center of `p` (ties to the lowest center index). */
std::uint32_t
nearestCenter(const std::vector<double> &p,
              const std::vector<std::vector<double>> &centers)
{
    std::uint32_t best = 0;
    double best_d = sqDist(p, centers[0]);
    for (std::uint32_t c = 1; c < centers.size(); ++c) {
        const double d = sqDist(p, centers[c]);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

} // namespace

std::vector<double>
normalizeBbv(const std::vector<std::uint64_t> &bbv)
{
    std::uint64_t total = 0;
    for (const std::uint64_t v : bbv)
        total += v;
    std::vector<double> out(bbv.size(), 0.0);
    if (total == 0)
        return out;
    const double inv = 1.0 / static_cast<double>(total);
    for (std::size_t i = 0; i < bbv.size(); ++i)
        out[i] = static_cast<double>(bbv[i]) * inv;
    return out;
}

ClusterResult
kmeansCluster(const std::vector<std::vector<double>> &points,
              const std::vector<double> &weights,
              const ClusterOptions &opts)
{
    ClusterResult res;
    const std::size_t n = points.size();
    if (n == 0)
        return res;
    piton_assert(weights.size() == n, "weights/points size mismatch");
    const std::size_t dims = points[0].size();
    for (const auto &p : points)
        piton_assert(p.size() == dims, "inconsistent feature dims");

    const std::uint32_t k = static_cast<std::uint32_t>(std::min<std::size_t>(
        std::max<std::uint32_t>(opts.maxClusters, 1), n));

    // Seeded farthest-point init.  The seed only picks the first
    // center; everything after is a pure function of the points.
    std::vector<std::vector<double>> centers;
    centers.reserve(k);
    centers.push_back(points[deriveTaskSeed(opts.seed, 0) % n]);
    std::vector<double> min_d(n);
    for (std::size_t i = 0; i < n; ++i)
        min_d[i] = sqDist(points[i], centers[0]);
    while (centers.size() < k) {
        std::size_t far = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (min_d[i] > min_d[far]) // strict: ties to lowest index
                far = i;
        centers.push_back(points[far]);
        for (std::size_t i = 0; i < n; ++i)
            min_d[i] = std::min(min_d[i], sqDist(points[i], centers.back()));
    }

    // Lloyd iterations, serial in point-index order.
    std::vector<std::uint32_t> assign(n, 0);
    std::vector<double> cw(k, 0.0);
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims));
    std::uint32_t iter = 0;
    for (; iter < opts.maxIters; ++iter) {
        bool changed = iter == 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = nearestCenter(points[i], centers);
            if (c != assign[i]) {
                assign[i] = c;
                changed = true;
            }
        }
        if (!changed)
            break;

        for (std::uint32_t c = 0; c < k; ++c) {
            cw[c] = 0.0;
            std::fill(sums[c].begin(), sums[c].end(), 0.0);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = assign[i];
            const double w = weights[i];
            cw[c] += w;
            for (std::size_t d = 0; d < dims; ++d)
                sums[c][d] += w * points[i][d];
        }
        for (std::uint32_t c = 0; c < k; ++c) {
            if (cw[c] > 0.0) {
                for (std::size_t d = 0; d < dims; ++d)
                    centers[c][d] = sums[c][d] / cw[c];
                continue;
            }
            // Empty (or zero-weight) cluster: re-seed to the globally
            // worst-fit point (largest distance to its own centroid,
            // ties to the lowest index).
            std::size_t far = 0;
            double far_d = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double d = sqDist(points[i], centers[assign[i]]);
                if (d > far_d) {
                    far_d = d;
                    far = i;
                }
            }
            centers[c] = points[far];
        }
    }

    res.clusters = k;
    res.assignment = std::move(assign);
    res.iterations = iter;
    res.representative.assign(k, 0);
    res.weightSum.assign(k, 0.0);
    std::vector<double> best_d(k, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = res.assignment[i];
        res.weightSum[c] += weights[i];
        const double d = sqDist(points[i], centers[c]);
        if (d < best_d[c]) { // strict: ties to lowest index
            best_d[c] = d;
            res.representative[c] = static_cast<std::uint32_t>(i);
        }
    }
    double total_w = 0.0;
    for (const double w : res.weightSum)
        total_w += w;
    res.weight.assign(k, 0.0);
    if (total_w > 0.0)
        for (std::uint32_t c = 0; c < k; ++c)
            res.weight[c] = res.weightSum[c] / total_w;
    return res;
}

} // namespace piton::sampling
