/**
 * @file
 * Deterministic k-means phase clustering over interval BBV features
 * (DESIGN.md §14).
 *
 * SimPoint-style: each profiling interval's BBV is L1-normalized into
 * an instruction-frequency vector, intervals are clustered by squared
 * Euclidean distance, and each cluster elects the interval closest to
 * its centroid as the representative slice, weighted by the cluster's
 * share of the retired instructions.
 *
 * Every step is serial with a fixed iteration order and explicit tie
 * breaks (lowest index wins), and the inputs are integer BBV counts —
 * so the clustering, the representatives, and the weights are
 * bit-identical for a given profile regardless of engine, thread
 * count, or host parallelism.
 */

#ifndef PITON_SAMPLING_CLUSTER_HH
#define PITON_SAMPLING_CLUSTER_HH

#include <cstdint>
#include <vector>

namespace piton::sampling
{

struct ClusterOptions
{
    /** Cluster count k (clamped to the point count; >= 1). */
    std::uint32_t maxClusters = 8;
    /** Lloyd-iteration cap (convergence usually takes far fewer). */
    std::uint32_t maxIters = 64;
    /** Seed for the farthest-point initialization (common/parallel.hh
     *  deriveTaskSeed stream). */
    std::uint64_t seed = 0x51CE;
};

struct ClusterResult
{
    std::uint32_t clusters = 0;
    /** Per point: its cluster id. */
    std::vector<std::uint32_t> assignment;
    /** Per cluster: the representative point (argmin distance to the
     *  final centroid; ties to the lowest index). */
    std::vector<std::uint32_t> representative;
    /** Per cluster: its share of the total point weight (sums to 1). */
    std::vector<double> weight;
    /** Per cluster: total point weight (e.g. instructions). */
    std::vector<double> weightSum;
    std::uint32_t iterations = 0;
};

/** L1-normalize a BBV count vector into a frequency feature (all-zero
 *  input stays all-zero). */
std::vector<double> normalizeBbv(const std::vector<std::uint64_t> &bbv);

/**
 * Weighted k-means over `points` (all the same dimensionality).
 * `weights` (same length; e.g. per-interval instruction counts) drive
 * the centroid means and the cluster weights.  Initialization is
 * seeded farthest-point: the first center is seed-derived, each later
 * center is the point farthest from its nearest chosen center.
 * Empty clusters re-seed to the globally worst-fit point.
 */
ClusterResult kmeansCluster(const std::vector<std::vector<double>> &points,
                            const std::vector<double> &weights,
                            const ClusterOptions &opts);

} // namespace piton::sampling

#endif // PITON_SAMPLING_CLUSTER_HH
