#include "sampling/sampled_run.hh"

#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/warm_start.hh"

namespace piton::sampling
{

std::vector<std::size_t>
clusterableIntervals(const std::vector<IntervalRecord> &intervals)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < intervals.size(); ++i)
        if (!intervals[i].partial && intervals[i].insns > 0)
            idx.push_back(i);
    return idx;
}

ClusterResult
selectSlices(const std::vector<IntervalRecord> &intervals,
             const SampledOptions &opts)
{
    const std::vector<std::size_t> idx = clusterableIntervals(intervals);
    std::vector<std::vector<double>> feats;
    std::vector<double> weights;
    feats.reserve(idx.size());
    weights.reserve(idx.size());
    for (const std::size_t i : idx) {
        feats.push_back(normalizeBbv(intervals[i].bbv));
        weights.push_back(static_cast<double>(intervals[i].insns));
    }
    ClusterOptions copts;
    copts.maxClusters = opts.maxSlices;
    copts.maxIters = opts.maxIters;
    copts.seed = opts.seed;
    return kmeansCluster(feats, weights, copts);
}

SampledEstimate
runSampled(const std::vector<IntervalRecord> &intervals,
           const sim::SystemOptions &opts, const SampledOptions &sopts)
{
    SampledEstimate est;
    const std::vector<std::size_t> idx = clusterableIntervals(intervals);
    est.clusteredIntervals = static_cast<std::uint32_t>(idx.size());

    // Exact terms from the profile: total instructions, and the
    // energy/time of the intervals excluded from clustering.
    double exact_j = 0.0;
    double exact_s = 0.0;
    {
        std::size_t next = 0;
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            est.totalInsns += intervals[i].insns;
            if (next < idx.size() && idx[next] == i) {
                ++next;
                continue;
            }
            exact_j += intervals[i].energyJ();
            exact_s += intervals[i].seconds;
        }
    }
    est.exactJ = exact_j;

    if (idx.empty()) {
        // Nothing clusterable (e.g. the run fit in one tail interval):
        // the "estimate" is the exact residue, with no sampling error.
        est.energyJ = exact_j;
        est.seconds = exact_s;
        est.powerW = exact_s > 0.0 ? exact_j / exact_s : 0.0;
        est.epi = est.totalInsns != 0
                      ? exact_j / static_cast<double>(est.totalInsns)
                      : 0.0;
        return est;
    }

    est.clustering = selectSlices(intervals, sopts);
    const ClusterResult &cl = est.clustering;

    // Replay the representatives.  Each slot is written by exactly one
    // task and the stitch below walks clusters in fixed order, so
    // sopts.threads cannot affect the result.
    std::vector<SliceResult> slices(cl.clusters);
    std::vector<std::uint32_t> active;
    for (std::uint32_t c = 0; c < cl.clusters; ++c)
        if (cl.weightSum[c] > 0.0)
            active.push_back(c);
    parallelFor(active.size(), sopts.threads, [&](std::size_t a) {
        const std::uint32_t c = active[a];
        const std::size_t which = idx[cl.representative[c]];
        const IntervalRecord &rec = intervals[which];
        piton_assert(!rec.image.empty(),
                     "representative interval %zu has no checkpoint image "
                     "(profile captured without captureImages?)",
                     which);
        const std::unique_ptr<sim::System> sys =
            sim::SweepWarmStart::fromImage(opts, rec.image).fork();
        const sim::CompletionResult res = sys->runToCompletion(rec.cycles);
        SliceResult s;
        s.interval = static_cast<std::uint32_t>(which);
        s.cluster = c;
        s.insns = res.insts - rec.startInsns;
        s.cycles = res.cycles;
        s.seconds = res.seconds;
        s.energyJ = res.onChipEnergyJ;
        s.clusterInsns = cl.weightSum[c];
        slices[c] = s;
    });

    // Within-cluster instruction-weighted variance of the profile's
    // energy-per-instruction ratios (two fixed-order passes).
    std::vector<double> mean_r(cl.clusters, 0.0);
    for (std::size_t p = 0; p < idx.size(); ++p)
        mean_r[cl.assignment[p]] += intervals[idx[p]].energyJ();
    for (std::uint32_t c = 0; c < cl.clusters; ++c)
        if (cl.weightSum[c] > 0.0)
            mean_r[c] /= cl.weightSum[c];
    std::vector<double> var_r(cl.clusters, 0.0);
    for (std::size_t p = 0; p < idx.size(); ++p) {
        const IntervalRecord &rec = intervals[idx[p]];
        const std::uint32_t c = cl.assignment[p];
        const double r =
            rec.energyJ() / static_cast<double>(rec.insns);
        const double d = r - mean_r[c];
        var_r[c] += static_cast<double>(rec.insns) * d * d;
    }

    // Stitch: ratio estimator per cluster plus the exact residue.
    double energy = exact_j;
    double seconds = exact_s;
    double var_e = 0.0;
    for (const std::uint32_t c : active) {
        const SliceResult &s = slices[c];
        piton_assert(s.insns != 0, "replayed slice retired nothing");
        const double inv_i = 1.0 / static_cast<double>(s.insns);
        energy += cl.weightSum[c] * (s.energyJ * inv_i);
        seconds += cl.weightSum[c] * (s.seconds * inv_i);
        var_e += cl.weightSum[c] * var_r[c]; // = W_c^2 * (var_r/W_c)
        est.simulatedInsns += s.insns;
        est.simulatedCycles += s.cycles;
        est.slices.push_back(s);
    }

    est.energyJ = energy;
    est.energyCi95J = 1.96 * std::sqrt(var_e);
    est.seconds = seconds;
    est.powerW = seconds > 0.0 ? energy / seconds : 0.0;
    if (est.totalInsns != 0) {
        const double inv_n = 1.0 / static_cast<double>(est.totalInsns);
        est.epi = energy * inv_n;
        est.epiCi95 = est.energyCi95J * inv_n;
        est.simulatedFrac =
            static_cast<double>(est.simulatedInsns) * inv_n;
    }
    return est;
}

} // namespace piton::sampling
