/**
 * @file
 * Interval profiler for sampled simulation (DESIGN.md §14).
 *
 * Slices a workload's executed instruction stream into fixed-size
 * intervals at run-window granularity and records, per interval: the
 * per-tile basic-block-vector (BBV) deltas that characterize what code
 * ran, the interval's exact instruction/cycle/energy totals, and a
 * checkpoint image of the system state at the interval's start (the
 * fast-forward point a sampled run forks from).
 *
 * Determinism contract: interval boundaries are decided by retired
 * instruction counts at window boundaries, and BBV counts are
 * commutative integers bumped at retire — both identical under the
 * fast/legacy engines and at any engineThreads, so the profile (and
 * everything derived from it: clustering, slice selection, stitched
 * estimates) is bit-identical across engine configurations and across
 * checkpoint save/resume of the profiling run itself.
 */

#ifndef PITON_SAMPLING_PROFILER_HH
#define PITON_SAMPLING_PROFILER_HH

#include <cstdint>
#include <vector>

#include "sim/system.hh"

namespace piton::sampling
{

struct ProfilerOptions
{
    /** Interval size in retired instructions.  An interval closes at
     *  the first run-window boundary where it has retired at least
     *  this many instructions, so actual interval sizes overshoot by
     *  up to one window's worth. */
    std::uint64_t intervalInsns = 200'000;

    /** Capture a checkpoint image at each interval start (required for
     *  sampled replay; off for profile-only analyses). */
    bool captureImages = true;

    /** Record the sampling.* series into the System's attached
     *  telemetry recorder at each interval close. */
    bool telemetry = true;
};

/** One closed profiling interval. */
struct IntervalRecord
{
    std::uint64_t startInsns = 0; ///< chip totalInsts at interval start
    Cycle startCycle = 0;         ///< chip cycle at interval start
    std::uint64_t insns = 0;      ///< instructions retired in-interval
    Cycle cycles = 0;             ///< cycles elapsed in-interval
    double seconds = 0.0;         ///< wall-clock seconds in-interval
    double activeJ = 0.0;         ///< on-chip event-energy delta (J)
    double idleJ = 0.0;           ///< clock-tree + leakage energy (J)
    std::uint32_t windows = 0;    ///< run windows in the interval
    bool partial = false;         ///< the tail (closed by finish())
    /** Flattened per-tile BBV deltas, tile-major: tiles x buckets. */
    std::vector<std::uint64_t> bbv;
    /** System checkpoint at interval start (empty without
     *  captureImages); restoring it and running `cycles` cycles
     *  bitwise-reproduces this interval. */
    std::vector<std::uint8_t> image;

    /** On-chip (VDD+VCS) energy of the interval. */
    double energyJ() const { return activeJ + idleJ; }
};

/**
 * Attaches to a System as its window hook + checkpoint client and
 * accumulates IntervalRecords while the system runs.  The system must
 * have BBV profiling enabled (SystemOptions::bbvBuckets != 0) and no
 * governor attached.  Detaches itself on destruction.
 *
 * Checkpointing a profiling run mid-flight stores the profiler's full
 * state (closed records, in-progress accumulators, pending image) in
 * the optional sys.sampling section; construct a fresh System +
 * profiler and restore to continue bit-identically.  Restoring an
 * image without the section restarts profiling at the restored state.
 */
class IntervalProfiler : public sim::CheckpointClient
{
  public:
    IntervalProfiler(sim::System &sys, ProfilerOptions opts);
    ~IntervalProfiler() override;
    IntervalProfiler(const IntervalProfiler &) = delete;
    IntervalProfiler &operator=(const IntervalProfiler &) = delete;

    /** Run the workload under profiling (System::runToCompletion); a
     *  completed run closes the tail interval via finish(). */
    sim::CompletionResult run(Cycle max_cycles);

    /** Close the in-progress tail interval (flagged partial).  Called
     *  automatically when run() completes; idempotent. */
    void finish();

    const std::vector<IntervalRecord> &intervals() const
    {
        return intervals_;
    }
    const ProfilerOptions &profilerOptions() const { return opts_; }
    /** BBV feature dimensionality: tiles x buckets. */
    std::size_t bbvDims() const { return prevBbv_.size(); }

    /** Sum over all closed intervals. */
    std::uint64_t totalInsns() const;
    double totalEnergyJ() const;
    double totalSeconds() const;

    // ---- CheckpointClient --------------------------------------------
    const char *checkpointSection() const override
    {
        return "sys.sampling";
    }
    void serializeClient(ckpt::Archive &ar) override;
    void rebaseline(sim::System &sys) override;

  private:
    bool onWindow(const sim::WindowObs &obs);
    void closeInterval(bool partial);
    /** Re-aim the in-progress interval at the system's current state. */
    void snapshotStart();
    /** Checkpoint the system with this client detached (a profiler
     *  image inside a profiler record would nest quadratically). */
    std::vector<std::uint8_t> captureImage();
    void recordTelemetry(const IntervalRecord &rec);

    sim::System &sys_;
    ProfilerOptions opts_;
    std::vector<IntervalRecord> intervals_;

    // In-progress interval accumulators (checkpointed).
    std::uint64_t curStartInsns_ = 0;
    Cycle curStartCycle_ = 0;
    double curSeconds_ = 0.0;
    double curIdleJ_ = 0.0;
    std::uint32_t curWindows_ = 0;
    power::RailEnergy startLedger_;
    /** Flattened BBV snapshot at the current interval's start. */
    std::vector<std::uint64_t> prevBbv_;
    /** Image captured at the current interval's start. */
    std::vector<std::uint8_t> pendingImage_;
    bool finished_ = false;

    /** sampling.* series ids, resolved lazily at the first close. */
    struct Tids
    {
        bool ready = false;
        std::size_t insns, cycles, energyJ, count;
    } tids_{};
};

} // namespace piton::sampling

#endif // PITON_SAMPLING_PROFILER_HH
