/**
 * @file
 * Sampled-run mode: stitch a whole-run energy/power/EPI estimate from
 * re-simulated representative slices (DESIGN.md §14).
 *
 * Pipeline: profile a workload once (IntervalProfiler), cluster the
 * interval BBVs (kmeansCluster), then fork the system state at each
 * representative interval's start from its checkpoint image
 * (SweepWarmStart), simulate only that slice, and combine the slice
 * measurements into whole-run estimates with confidence intervals
 * derived from the intra-cluster spread.
 *
 * Estimator: per cluster c with instruction mass W_c and representative
 * energy-per-instruction ratio r_c = E_rep / I_rep, the stitched energy
 * is  E ~ sum_c W_c * r_c  (+ the exact energy of intervals excluded
 * from clustering: the partial tail and zero-instruction intervals).
 * The error bar treats the representative as a draw from its cluster:
 * Var(E) = sum_c W_c^2 * Var_c(r), with Var_c the instruction-weighted
 * within-cluster variance of the per-interval ratios from the profile;
 * the reported CI is 1.96 * sqrt(Var(E)).  Time stitches identically
 * over seconds-per-instruction, and EPI = E / totalInsns with
 * totalInsns exact from the profile.
 *
 * Determinism: slice replays restore full system state and re-run the
 * exact window sequence the profile saw, so each slice's energy is
 * bit-identical to the profiled interval under any engine/thread
 * combination; clustering and stitching are serial fixed-order
 * arithmetic.  Slice forks may run on worker threads (results land in
 * per-slice slots; the stitch order is fixed), so `threads` is a pure
 * speed knob like engineThreads.
 */

#ifndef PITON_SAMPLING_SAMPLED_RUN_HH
#define PITON_SAMPLING_SAMPLED_RUN_HH

#include <cstdint>
#include <vector>

#include "sampling/cluster.hh"
#include "sampling/profiler.hh"
#include "sim/system.hh"

namespace piton::sampling
{

struct SampledOptions
{
    /** Representative slices to simulate (k for the clusterer). */
    std::uint32_t maxSlices = 8;
    std::uint32_t maxIters = 64;
    std::uint64_t seed = 0x51CE;
    /** Worker threads for the slice replays (0 = all hardware
     *  threads); bit-identical at any value. */
    unsigned threads = 1;
};

/** One re-simulated representative slice. */
struct SliceResult
{
    std::uint32_t interval = 0;  ///< profile interval index
    std::uint32_t cluster = 0;
    std::uint64_t insns = 0;     ///< retired in the replayed slice
    Cycle cycles = 0;
    double seconds = 0.0;
    double energyJ = 0.0;        ///< on-chip active + idle J (replayed)
    double clusterInsns = 0.0;   ///< instruction mass it stands for
};

/** Whole-run estimate stitched from the slices. */
struct SampledEstimate
{
    double energyJ = 0.0;   ///< stitched on-chip energy
    double energyCi95J = 0.0;
    double seconds = 0.0;   ///< stitched execution time
    double powerW = 0.0;    ///< energyJ / seconds
    double epi = 0.0;       ///< energyJ / totalInsns
    double epiCi95 = 0.0;
    std::uint64_t totalInsns = 0;     ///< exact, from the profile
    std::uint64_t simulatedInsns = 0; ///< re-simulated in slices
    Cycle simulatedCycles = 0;
    double simulatedFrac = 0.0; ///< simulatedInsns / totalInsns
    /** Exact energy of intervals excluded from clustering (partial
     *  tail + zero-instruction intervals), taken from the profile. */
    double exactJ = 0.0;
    std::uint32_t clusteredIntervals = 0;
    std::vector<SliceResult> slices;
    ClusterResult clustering;
};

/**
 * Indices of the intervals eligible for clustering: full (non-tail)
 * intervals that retired at least one instruction.  The excluded
 * intervals enter the estimate as exact profile-energy terms instead
 * of being replayed.  Clustering results index into this list.
 */
std::vector<std::size_t>
clusterableIntervals(const std::vector<IntervalRecord> &intervals);

/**
 * Cluster the profile and pick the representative slices without
 * simulating anything (the deterministic "slice selection" half;
 * equivalence tests compare this across engines).  Indices in the
 * result refer to clusterableIntervals() positions.
 */
ClusterResult selectSlices(const std::vector<IntervalRecord> &intervals,
                           const SampledOptions &opts);

/**
 * Full sampled run: select slices, fork each representative from its
 * interval-start image (`opts` must match the options the profile ran
 * under — the restore fingerprints enforce it), simulate the slices,
 * and stitch the estimate.  The profile must have been captured with
 * ProfilerOptions::captureImages.
 */
SampledEstimate runSampled(const std::vector<IntervalRecord> &intervals,
                           const sim::SystemOptions &opts,
                           const SampledOptions &sopts);

} // namespace piton::sampling

#endif // PITON_SAMPLING_SAMPLED_RUN_HH
