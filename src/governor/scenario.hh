/**
 * @file
 * Power-management scenario engine (DESIGN.md §13).
 *
 * A scenario is a small kv-file (src/config/kv_file.hh) describing a
 * governed experiment: which policy with which tuning, which workload
 * mix on how many tiles, and a sequence of phases — each a fixed span
 * of chip cycles that may retune the watt budget (cap schedules) and/or
 * swap the workload (phase changes).  The runner drives a sim::System
 * through the phases and reports per-phase energy/EPI/thermal numbers,
 * so the same file reproduces the Fig. 16/17-style studies under any
 * governor.
 *
 * Schema (keys are lowercased; '#'/';' start comments):
 *
 *   name            = fig16_cap     # optional label
 *   workload        = hp            # int | hp | hist
 *   tiles           = 25            # active tiles, placed by the policy
 *   threads_per_core = 2            # 1 | 2
 *   iterations      = 0             # 0 = infinite (phase-bounded)
 *   hist_elements   = 4096          # Hist total work
 *   cycles          = 250000        # default phase length (chip cycles)
 *
 *   governor        = pidcap        # none|ondemand|pidcap|theas
 *   epoch_windows   = 4             # + the governor.* tuning keys
 *   cap_w           = 2.5           # (see governorParamsFromKv)
 *
 *   phases          = 2
 *   phase0.cycles   = 250000        # overrides `cycles`
 *   phase0.cap_w    = 3.0           # optional cap-schedule point
 *   phase1.workload = int           # optional workload swap
 *
 * Unknown keys are an error (config::KvError), so typos never silently
 * change an experiment.
 */

#ifndef PITON_GOVERNOR_SCENARIO_HH
#define PITON_GOVERNOR_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "governor/governor.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

namespace piton::governor
{

/** One phase of a scenario (a fixed span of chip cycles). */
struct ScenarioPhase
{
    /** Phase length in chip cycles (> 0). */
    std::uint64_t cycles = 0;
    /** New watt budget at phase entry; <= 0 keeps the current cap. */
    double capW = 0.0;
    /** Workload swap at phase entry; empty keeps the running one. */
    std::string workload;
};

/** A parsed scenario file (see the schema above). */
struct Scenario
{
    std::string name = "scenario";
    GovernorParams gov;
    std::string workload = "int";
    std::uint32_t tiles = 25;
    std::uint32_t threadsPerCore = 1;
    std::uint64_t iterations = 0;
    std::uint64_t histElements = 4096;
    std::vector<ScenarioPhase> phases;

    /** Parse + validate; throws config::KvError on any problem
     *  (including unknown keys). */
    static Scenario fromKv(const config::KvFile &kv);
    static Scenario fromFile(const std::string &path);
    static Scenario fromText(const std::string &text,
                             const std::string &source = "<string>");
};

/** "int" | "hp" | "hist" -> Microbench; throws config::KvError. */
workloads::Microbench microbenchFromName(const std::string &name);

/** Per-phase slice of a scenario run. */
struct PhaseResult
{
    sim::CompletionResult run;
    /** Instructions retired within the phase (run.insts is a running
     *  total over the whole system lifetime). */
    std::uint64_t insts = 0;
    double avgPowerW = 0.0;
    /** On-chip energy per instruction (J; 0 when no insts retired). */
    double epi = 0.0;
    /** Die temperature at phase end (C). */
    double dieTempC = 0.0;
    /** Sample clock at phase end (s). */
    double endTimeS = 0.0;
};

struct ScenarioResult
{
    std::string name;
    std::string policy;
    std::vector<PhaseResult> phases;
    // Whole-run aggregates (sums / energy-weighted means of phases).
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    double seconds = 0.0;
    double energyJ = 0.0;
    double avgPowerW = 0.0;
    double epi = 0.0;
    double finalDieTempC = 0.0;
};

/**
 * Drive `system` through the scenario: build the governor, attach it,
 * place + load the workload (Governor::placeTiles), run every phase,
 * then detach.  The system must be freshly constructed (nothing loaded)
 * and may have a telemetry recorder attached — the run then emits the
 * full window schema plus the governor.* epoch series.  Deterministic:
 * same system options + scenario => bit-identical results at any
 * engine-thread count.
 */
ScenarioResult runScenario(sim::System &system, const Scenario &sc);

} // namespace piton::governor

#endif // PITON_GOVERNOR_SCENARIO_HH
