#include "governor/governor.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "checkpoint/archive.hh"
#include "common/logging.hh"
#include "config/kv_file.hh"

namespace piton::governor
{

void
Governor::init(const Platform &plat)
{
    piton_assert(plat.piton != nullptr, "governor platform without params");
    piton_assert(params_.epochWindows >= 1, "epochWindows must be >= 1");
    plat_ = plat;
    vf_ = power::VfModel(plat.vf);
    onInit();
}

void
Governor::serialize(ckpt::Archive &)
{
}

std::vector<TileId>
Governor::placeTiles(std::uint32_t count) const
{
    piton_assert(plat_.piton != nullptr, "placeTiles before init");
    const std::uint32_t n =
        std::min<std::uint32_t>(count, plat_.piton->tileCount);
    std::vector<TileId> tiles;
    tiles.reserve(n);
    for (TileId t = 0; t < n; ++t)
        tiles.push_back(t);
    return tiles;
}

double
Governor::fmaxMhz(double vdd_v) const
{
    return vf_.quantizeMhz(vf_.rawFmaxMhz(vdd_v, plat_.speedFactor));
}

double
Governor::clampFreqMhz(double f_mhz) const
{
    const double hi = fmaxMhz(params_.maxVddV);
    const double f = std::min(std::max(f_mhz, params_.minFreqMhz), hi);
    return std::max(vf_.quantizeMhz(f), vf_.params().freqStepMhz);
}

double
Governor::vddForFreq(double f_mhz) const
{
    const double lo0 = vf_.params().minVddV;
    const double hi0 = std::max(params_.maxVddV, lo0);
    if (vf_.rawFmaxMhz(hi0, plat_.speedFactor) < f_mhz)
        return hi0;
    if (vf_.rawFmaxMhz(lo0, plat_.speedFactor) >= f_mhz)
        return lo0;
    // Fixed-iteration bisection: fmax(V) is monotone, and the constant
    // step count makes the result a pure function of (f, bounds) —
    // identical on every replay.
    double lo = lo0;
    double hi = hi0;
    for (int i = 0; i < 64; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (vf_.rawFmaxMhz(mid, plat_.speedFactor) >= f_mhz)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

namespace
{

/** The constant-V-f "governor": the static-table baseline every other
 *  policy is compared against. */
class NoneGovernor final : public Governor
{
  public:
    explicit NoneGovernor(GovernorParams p) : Governor(std::move(p)) {}
    const char *name() const override { return "none"; }
    Actuation
    controlEpoch(const EpochObs &) override
    {
        return {};
    }
};

/** Linux-ondemand-style utilization ladder, per tile. */
class OndemandGovernor final : public Governor
{
  public:
    explicit OndemandGovernor(GovernorParams p) : Governor(std::move(p)) {}
    const char *name() const override { return "ondemand"; }

    void
    onInit() override
    {
        tileF_.assign(plat_.piton->tileCount,
                      clampFreqMhz(plat_.nominalFreqMhz));
    }

    Actuation
    controlEpoch(const EpochObs &obs) override
    {
        piton_assert(obs.tiles.size() == tileF_.size(),
                     "tile count mismatch");
        const double step = vf_.params().freqStepMhz;
        const double fmax = fmaxMhz(params_.maxVddV);
        // Issue slots the tile actually had: total thread-cycles scaled
        // by its duty share of the chip clock.
        const double slots =
            static_cast<double>(plat_.piton->threadsPerCore)
            * static_cast<double>(obs.epochCycles);
        bool changed = false;
        double chip_f = params_.minFreqMhz;
        for (std::size_t t = 0; t < tileF_.size(); ++t) {
            const TileObs &to = obs.tiles[t];
            const double frac =
                obs.freqMhz > 0.0 ? to.freqMhz / obs.freqMhz : 0.0;
            const double util =
                (slots > 0.0 && frac > 0.0)
                    ? static_cast<double>(to.insts) / (slots * frac)
                    : 0.0;
            double f = tileF_[t];
            if (util > params_.upUtil)
                f = fmax; // ondemand semantics: jump straight to max
            else if (util < params_.downUtil)
                f = clampFreqMhz(tileF_[t] - 4.0 * step);
            if (f != tileF_[t]) {
                tileF_[t] = f;
                changed = true;
            }
            chip_f = std::max(chip_f, tileF_[t]);
        }
        Actuation act;
        act.changed = changed || chip_f != obs.freqMhz;
        act.freqMhz = clampFreqMhz(chip_f);
        act.vddV = vddForFreq(act.freqMhz);
        act.tileFreqMhz = tileF_;
        return act;
    }

    void
    serialize(ckpt::Archive &ar) override
    {
        const std::uint64_t n = ar.ioSize(tileF_.size(), 8);
        if (ar.loading())
            tileF_.resize(static_cast<std::size_t>(n));
        for (auto &f : tileF_)
            ar.io(f);
    }

  private:
    std::vector<double> tileF_;
};

/** PI(D) power-cap tracker: moves the chip operating point along the
 *  V-f curve to hold a watt budget on the on-chip total or one rail. */
class PidCapGovernor final : public Governor
{
  public:
    explicit PidCapGovernor(GovernorParams p) : Governor(std::move(p))
    {
        if (params_.capRail != "onchip" && params_.capRail != "vdd"
            && params_.capRail != "vcs" && params_.capRail != "vio")
            throw std::runtime_error("pidcap: bad cap_rail '"
                                     + params_.capRail
                                     + "' (onchip|vdd|vcs|vio)");
        if (!(params_.capW > 0.0))
            throw std::runtime_error("pidcap: cap_w must be > 0");
    }
    const char *name() const override { return "pidcap"; }

    void
    onInit() override
    {
        baseF_ = clampFreqMhz(plat_.nominalFreqMhz);
        integW_ = 0.0;
        prevErrW_ = 0.0;
        hasPrev_ = false;
    }

    Actuation
    controlEpoch(const EpochObs &obs) override
    {
        double measured = obs.onChipPowerW;
        if (params_.capRail == "vdd")
            measured = obs.railPowerW[0];
        else if (params_.capRail == "vcs")
            measured = obs.railPowerW[1];
        else if (params_.capRail == "vio")
            measured = obs.railPowerW[2];

        const double err = params_.capW - measured;
        integW_ += err;
        // Anti-windup: the integral term alone may never command more
        // than the full frequency range.
        const double span = fmaxMhz(params_.maxVddV) - params_.minFreqMhz;
        const double ilim =
            span / std::max(std::abs(params_.kiMhzPerW), 1e-9);
        integW_ = std::min(std::max(integW_, -ilim), ilim);
        const double deriv = hasPrev_ ? err - prevErrW_ : 0.0;
        prevErrW_ = err;
        hasPrev_ = true;

        Actuation act;
        act.freqMhz = clampFreqMhz(baseF_ + params_.kpMhzPerW * err
                                   + params_.kiMhzPerW * integW_
                                   + params_.kdMhzPerW * deriv);
        act.vddV = vddForFreq(act.freqMhz);
        act.changed = act.freqMhz != obs.freqMhz || act.vddV != obs.vddV;
        return act;
    }

    void
    serialize(ckpt::Archive &ar) override
    {
        ar.io(baseF_);
        ar.io(integW_);
        ar.io(prevErrW_);
        ar.io(hasPrev_);
    }

  private:
    double baseF_ = 0.0;
    double integW_ = 0.0;
    double prevErrW_ = 0.0;
    bool hasPrev_ = false;
};

/** THEAS-style cache-aware placement + DVFS: throttle memory-bound
 *  tiles (their cycles are stalls, not work), boost compute-bound
 *  ones, hard-gate idle ones, and cluster active tiles around the
 *  mesh center so shared-L2 traffic takes fewer NoC hops. */
class TheasGovernor final : public Governor
{
  public:
    explicit TheasGovernor(GovernorParams p) : Governor(std::move(p)) {}
    const char *name() const override { return "theas"; }

    void
    onInit() override
    {
        tileF_.assign(plat_.piton->tileCount,
                      clampFreqMhz(plat_.nominalFreqMhz));
    }

    std::vector<TileId>
    placeTiles(std::uint32_t count) const override
    {
        piton_assert(plat_.piton != nullptr, "placeTiles before init");
        const config::PitonParams &p = *plat_.piton;
        const std::uint32_t n = std::min<std::uint32_t>(count, p.tileCount);
        const TileId center =
            config::tileIdAt(p, p.meshWidth / 2, p.meshHeight / 2);
        std::vector<TileId> tiles(p.tileCount);
        for (TileId t = 0; t < p.tileCount; ++t)
            tiles[t] = t;
        std::sort(tiles.begin(), tiles.end(), [&](TileId a, TileId b) {
            const std::uint32_t da = config::hopDistance(p, center, a);
            const std::uint32_t db = config::hopDistance(p, center, b);
            return da != db ? da < db : a < b;
        });
        tiles.resize(n);
        return tiles;
    }

    Actuation
    controlEpoch(const EpochObs &obs) override
    {
        piton_assert(obs.tiles.size() == tileF_.size(),
                     "tile count mismatch");
        const double step = vf_.params().freqStepMhz;
        bool changed = false;
        double chip_f = params_.minFreqMhz;
        for (std::size_t t = 0; t < tileF_.size(); ++t) {
            const TileObs &to = obs.tiles[t];
            double f = tileF_[t];
            if (to.insts == 0 && to.stallCycles == 0) {
                // Truly idle this epoch: gate it off entirely.  (A
                // gated tile with unfinished threads is force-run one
                // window per epoch by the System progress guard, so
                // stalled-but-live tiles resurface here as stalls.)
                f = 0.0;
            } else {
                const double frac =
                    obs.freqMhz > 0.0 && to.freqMhz > 0.0
                        ? to.freqMhz / obs.freqMhz
                        : 1.0;
                const double cyc =
                    static_cast<double>(plat_.piton->threadsPerCore)
                    * static_cast<double>(obs.epochCycles) * frac;
                const double stall =
                    cyc > 0.0 ? static_cast<double>(to.stallCycles) / cyc
                              : 0.0;
                const double cur = f > 0.0 ? f : params_.minFreqMhz;
                if (stall > params_.stallHi)
                    f = clampFreqMhz(cur - 4.0 * step);
                else if (stall < params_.stallLo)
                    f = clampFreqMhz(cur + 4.0 * step);
                else if (f == 0.0)
                    f = clampFreqMhz(cur);
            }
            if (f != tileF_[t]) {
                tileF_[t] = f;
                changed = true;
            }
            chip_f = std::max(chip_f, tileF_[t]);
        }
        Actuation act;
        act.changed = changed || chip_f != obs.freqMhz;
        act.freqMhz = clampFreqMhz(chip_f);
        act.vddV = vddForFreq(act.freqMhz);
        act.tileFreqMhz = tileF_;
        return act;
    }

    void
    serialize(ckpt::Archive &ar) override
    {
        const std::uint64_t n = ar.ioSize(tileF_.size(), 8);
        if (ar.loading())
            tileF_.resize(static_cast<std::size_t>(n));
        for (auto &f : tileF_)
            ar.io(f);
    }

  private:
    std::vector<double> tileF_;
};

} // namespace

std::unique_ptr<Governor>
makeGovernor(const GovernorParams &params)
{
    if (params.policy == "none")
        return std::make_unique<NoneGovernor>(params);
    if (params.policy == "ondemand")
        return std::make_unique<OndemandGovernor>(params);
    if (params.policy == "pidcap")
        return std::make_unique<PidCapGovernor>(params);
    if (params.policy == "theas")
        return std::make_unique<TheasGovernor>(params);
    throw std::runtime_error("unknown governor policy '" + params.policy
                             + "' (" + governorPolicyNames() + ")");
}

const char *
governorPolicyNames()
{
    return "none|ondemand|pidcap|theas";
}

GovernorParams
governorParamsFromKv(const config::KvFile &kv, GovernorParams base)
{
    GovernorParams p = std::move(base);
    p.policy = kv.get("governor", p.policy);
    p.epochWindows = static_cast<std::uint32_t>(
        kv.getUint("epoch_windows", p.epochWindows));
    p.capW = kv.getDouble("cap_w", p.capW);
    p.capRail = kv.get("cap_rail", p.capRail);
    p.kpMhzPerW = kv.getDouble("kp_mhz_per_w", p.kpMhzPerW);
    p.kiMhzPerW = kv.getDouble("ki_mhz_per_w", p.kiMhzPerW);
    p.kdMhzPerW = kv.getDouble("kd_mhz_per_w", p.kdMhzPerW);
    p.upUtil = kv.getDouble("up_util", p.upUtil);
    p.downUtil = kv.getDouble("down_util", p.downUtil);
    p.stallHi = kv.getDouble("stall_hi", p.stallHi);
    p.stallLo = kv.getDouble("stall_lo", p.stallLo);
    p.minFreqMhz = kv.getDouble("min_freq_mhz", p.minFreqMhz);
    p.maxVddV = kv.getDouble("max_vdd_v", p.maxVddV);
    if (p.epochWindows == 0)
        throw config::KvError("epoch_windows must be >= 1");
    return p;
}

} // namespace piton::governor
