/**
 * @file
 * Closed-loop DVFS governors (DESIGN.md §13).
 *
 * A Governor is the policy half of the control loop: sim::System
 * samples telemetry per control epoch (a fixed number of sample
 * windows), hands the governor an EpochObs, and realizes the returned
 * Actuation before the next window — a chip-wide V-f operating point on
 * the PLL grid plus a per-tile frequency command that System implements
 * as deterministic window-granularity duty gating.  Policies therefore
 * never touch the simulator: they are pure functions of the observation
 * stream plus their own serialized controller state, which is what
 * keeps governed runs bit-identical at any engine thread count and
 * across checkpoint/resume.
 *
 * Three policies ship behind the interface (plus "none"):
 *  - ondemand: per-tile utilization ladder — jump to fmax above the up
 *    threshold, step down the grid below the down threshold;
 *  - pidcap: PI(D) controller tracking a chip- or rail-level watt
 *    budget by moving the chip operating point along the V-f curve;
 *  - theas: cache-aware placement + DVFS in the spirit of THEAS —
 *    memory-bound tiles (high mem-stall fraction) are throttled,
 *    compute-bound tiles boosted, idle tiles hard-gated, and the
 *    thread-to-tile placement clusters work around the mesh center to
 *    shorten NoC routes to the L2 homes.
 */

#ifndef PITON_GOVERNOR_GOVERNOR_HH
#define PITON_GOVERNOR_GOVERNOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "config/piton_params.hh"
#include "power/rails.hh"
#include "power/vf_model.hh"

namespace piton::ckpt
{
class Archive;
}
namespace piton::config
{
class KvFile;
}

namespace piton::governor
{

/** Per-tile slice of one control epoch. */
struct TileObs
{
    /** Instructions retired by the tile this epoch. */
    std::uint64_t insts = 0;
    /** Memory-stall cycles accumulated by the tile's threads this
     *  epoch (the per-tile cache-pressure proxy; L2/NoC stats are
     *  chip-global). */
    std::uint64_t stallCycles = 0;
    /** Core-local VDD+VCS energy charged this epoch (J). */
    double energyJ = 0.0;
    /** Frequency commanded for this tile entering the epoch (MHz;
     *  0 = hard-gated). */
    double freqMhz = 0.0;
    /** Hard-gated for the whole epoch (no duty slots at all). */
    bool gated = false;
};

/** Everything a policy may observe at an epoch boundary. */
struct EpochObs
{
    /** Sample clock at the end of the epoch (s). */
    double timeS = 0.0;
    /** Simulated seconds covered by the epoch. */
    double epochS = 0.0;
    /** Chip cycles covered by the epoch. */
    std::uint64_t epochCycles = 0;
    /** Mean VDD+VCS power over the epoch (W), incl. clock + leakage. */
    double onChipPowerW = 0.0;
    /** Mean per-rail power over the epoch (W). */
    std::array<double, power::kNumRails> railPowerW{};
    double dieTempC = 0.0;
    double packageTempC = 0.0;
    /** Operating point the epoch ran at. */
    double vddV = 0.0;
    double freqMhz = 0.0;
    std::vector<TileObs> tiles;
};

/** What a policy decides at an epoch boundary. */
struct Actuation
{
    /** False = keep everything as is (the other fields are ignored). */
    bool changed = false;
    /** New chip supply (V) — must be able to sustain freqMhz. */
    double vddV = 0.0;
    /** New chip clock (MHz, on the PLL grid). */
    double freqMhz = 0.0;
    /** Per-tile frequency commands (MHz; 0 = hard gate; values are
     *  clamped to freqMhz).  Empty = every tile at freqMhz. */
    std::vector<double> tileFreqMhz;
};

/** Static facts about the platform the governor controls. */
struct Platform
{
    const config::PitonParams *piton = nullptr;
    power::VfParams vf{};
    /** Per-chip process-variation speed multiplier. */
    double speedFactor = 1.0;
    /** Operating point at attach time. */
    double nominalVddV = 1.0;
    double nominalFreqMhz = 500.05;
};

/** Policy selection + tuning knobs (kv-file schema in scenario.hh). */
struct GovernorParams
{
    /** "none" | "ondemand" | "pidcap" | "theas". */
    std::string policy = "none";
    /** Control epoch length in sample windows (>= 1). */
    std::uint32_t epochWindows = 4;

    // pidcap
    double capW = 0.0;
    /** "onchip" (VDD+VCS) or a rail name: "vdd" | "vcs" | "vio". */
    std::string capRail = "onchip";
    double kpMhzPerW = 40.0;
    double kiMhzPerW = 12.0;
    double kdMhzPerW = 0.0;

    // ondemand
    double upUtil = 0.70;
    double downUtil = 0.25;

    // theas
    double stallHi = 0.04;
    double stallLo = 0.01;

    // shared actuation bounds
    double minFreqMhz = 100.0;
    double maxVddV = 1.05;
};

class Governor
{
  public:
    virtual ~Governor() = default;

    virtual const char *name() const = 0;

    /** Bind the policy to a platform; resets controller state.  Must
     *  be called (System::attachGovernor does) before controlEpoch. */
    void init(const Platform &plat);

    /** One control decision; called by System at every epoch boundary. */
    virtual Actuation controlEpoch(const EpochObs &obs) = 0;

    /** Controller state for the checkpoint's sys.governor section
     *  (PID integrator etc.; platform/params are reconstructed by the
     *  caller, not stored).  Default: stateless. */
    virtual void serialize(ckpt::Archive &ar);

    /**
     * Thread-to-tile placement for `count` active tiles (the scenario
     * engine loads workloads onto the returned tiles, in order).
     * Default: linear 0..count-1.  THEAS clusters around the mesh
     * center to shorten NoC routes.  Requires init().
     */
    virtual std::vector<TileId> placeTiles(std::uint32_t count) const;

    std::uint32_t epochWindows() const { return params_.epochWindows; }
    /** Cap-schedule hook (scenario engine): retune the watt budget
     *  mid-run; policies read it fresh at every epoch. */
    void setCapW(double cap_w) { params_.capW = cap_w; }
    const GovernorParams &params() const { return params_; }
    const Platform &platform() const { return plat_; }
    const power::VfModel &vfModel() const { return vf_; }

    /** Smallest supply (within [model minimum, maxVddV]) whose device
     *  fmax sustains `f_mhz`; deterministic fixed-step bisection. */
    double vddForFreq(double f_mhz) const;

    /** Quantized fmax at `vdd_v` for this chip's speed factor. */
    double fmaxMhz(double vdd_v) const;

    /** Clamp a frequency request to [minFreqMhz, fmax(maxVddV)] and
     *  quantize it onto the PLL grid (never below one grid step). */
    double clampFreqMhz(double f_mhz) const;

  protected:
    explicit Governor(GovernorParams params) : params_(std::move(params)) {}

    /** Policy hook run at the end of init() (state reset). */
    virtual void onInit() {}

    GovernorParams params_;
    Platform plat_;
    power::VfModel vf_;
};

/** Instantiate a policy by GovernorParams::policy; throws
 *  std::runtime_error on an unknown name. */
std::unique_ptr<Governor> makeGovernor(const GovernorParams &params);

/** Valid policy names, for CLI help / validation. */
const char *governorPolicyNames();

/**
 * Read the governor.* keys of a scenario kv-file (see scenario.hh for
 * the schema) over the defaults in `base`; unknown-key detection stays
 * with the caller (KvFile::checkUnknownKeys after all consumers ran).
 */
GovernorParams governorParamsFromKv(const config::KvFile &kv,
                                    GovernorParams base = {});

} // namespace piton::governor

#endif // PITON_GOVERNOR_GOVERNOR_HH
