#include "governor/scenario.hh"

#include <utility>

#include "common/logging.hh"
#include "config/kv_file.hh"

namespace piton::governor
{

namespace
{

std::string
phaseKey(std::size_t i, const char *suffix)
{
    return "phase" + std::to_string(i) + "." + suffix;
}

} // namespace

workloads::Microbench
microbenchFromName(const std::string &name)
{
    if (name == "int")
        return workloads::Microbench::Int;
    if (name == "hp")
        return workloads::Microbench::HP;
    if (name == "hist")
        return workloads::Microbench::Hist;
    throw config::KvError("unknown workload '" + name
                          + "' (int|hp|hist)");
}

Scenario
Scenario::fromKv(const config::KvFile &kv)
{
    Scenario sc;
    sc.name = kv.get("name", sc.name);
    sc.gov = governorParamsFromKv(kv);
    sc.workload = kv.get("workload", sc.workload);
    microbenchFromName(sc.workload); // validate early
    sc.tiles = static_cast<std::uint32_t>(kv.getUint("tiles", sc.tiles));
    sc.threadsPerCore = static_cast<std::uint32_t>(
        kv.getUint("threads_per_core", sc.threadsPerCore));
    sc.iterations = kv.getUint("iterations", sc.iterations);
    sc.histElements = kv.getUint("hist_elements", sc.histElements);
    if (sc.tiles < 1 || sc.tiles > 25)
        throw config::KvError("tiles must be in [1, 25]");
    if (sc.threadsPerCore != 1 && sc.threadsPerCore != 2)
        throw config::KvError("threads_per_core must be 1 or 2");

    const std::uint64_t default_cycles = kv.getUint("cycles", 250'000);
    const std::uint64_t nphases = kv.getUint("phases", 1);
    if (nphases < 1 || nphases > 64)
        throw config::KvError("phases must be in [1, 64]");
    for (std::size_t i = 0; i < nphases; ++i) {
        ScenarioPhase ph;
        ph.cycles = kv.getUint(phaseKey(i, "cycles"), default_cycles);
        ph.capW = kv.getDouble(phaseKey(i, "cap_w"), 0.0);
        ph.workload = kv.get(phaseKey(i, "workload"), "");
        if (!ph.workload.empty())
            microbenchFromName(ph.workload); // validate early
        if (ph.cycles == 0)
            throw config::KvError(phaseKey(i, "cycles") + " must be > 0");
        sc.phases.push_back(std::move(ph));
    }
    kv.checkUnknownKeys("scenario '" + sc.name + "'");
    return sc;
}

Scenario
Scenario::fromFile(const std::string &path)
{
    return fromKv(config::KvFile::parseFile(path));
}

Scenario
Scenario::fromText(const std::string &text, const std::string &source)
{
    return fromKv(config::KvFile::parseText(text, source));
}

ScenarioResult
runScenario(sim::System &system, const Scenario &sc)
{
    std::unique_ptr<Governor> gov = makeGovernor(sc.gov);
    system.attachGovernor(gov.get());
    const std::vector<TileId> tiles = gov->placeTiles(sc.tiles);
    piton_assert(!tiles.empty(), "scenario placed no tiles");

    // Programs must outlive the threads running them; every phase's
    // images accumulate here until the run ends.
    std::vector<std::vector<isa::Program>> images;
    images.push_back(workloads::loadMicrobenchOnTiles(
        system, microbenchFromName(sc.workload), tiles, sc.threadsPerCore,
        sc.iterations, sc.histElements));

    ScenarioResult res;
    res.name = sc.name;
    res.policy = gov->name();
    std::uint64_t prev_insts = system.pitonChip().totalInsts();
    for (const ScenarioPhase &ph : sc.phases) {
        if (ph.capW > 0.0)
            gov->setCapW(ph.capW);
        if (!ph.workload.empty())
            images.push_back(workloads::loadMicrobenchOnTiles(
                system, microbenchFromName(ph.workload), tiles,
                sc.threadsPerCore, sc.iterations, sc.histElements));

        PhaseResult pr;
        pr.run = system.runToCompletion(ph.cycles);
        const std::uint64_t now_insts = system.pitonChip().totalInsts();
        pr.insts = now_insts - prev_insts;
        prev_insts = now_insts;
        pr.avgPowerW = pr.run.seconds > 0.0
                           ? pr.run.onChipEnergyJ / pr.run.seconds
                           : 0.0;
        pr.epi = pr.insts > 0
                     ? pr.run.onChipEnergyJ / static_cast<double>(pr.insts)
                     : 0.0;
        pr.dieTempC = system.thermalModel().dieTempC();
        pr.endTimeS = system.sampleClockS();

        res.cycles += pr.run.cycles;
        res.insts += pr.insts;
        res.seconds += pr.run.seconds;
        res.energyJ += pr.run.onChipEnergyJ;
        res.phases.push_back(std::move(pr));
    }
    res.avgPowerW = res.seconds > 0.0 ? res.energyJ / res.seconds : 0.0;
    res.epi = res.insts > 0
                  ? res.energyJ / static_cast<double>(res.insts)
                  : 0.0;
    res.finalDieTempC = system.thermalModel().dieTempC();
    system.attachGovernor(nullptr);
    return res;
}

} // namespace piton::governor
