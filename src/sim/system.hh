/**
 * @file
 * The full experimental system: a Piton chip in its socket on the test
 * board, with bench supplies, the heat-sink/fan cooling solution, and
 * the chipset FPGA behind it (Section III).
 *
 * System glues the layers together and implements the measurement
 * methodology: true rail powers are composed per sample window from
 * (a) the event-energy ledger accumulated by the architecture model,
 * (b) the analytic clock-tree idle power, and (c) leakage at the
 * current die temperature; the window powers then pass through the
 * board's monitor chain (quantization + noise) and the 128-sample
 * averaging protocol.
 */

#ifndef PITON_SIM_SYSTEM_HH
#define PITON_SIM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/piton_chip.hh"
#include "board/measurement.hh"
#include "board/test_board.hh"
#include "chip/chip_instance.hh"
#include "config/piton_params.hh"
#include "governor/governor.hh"
#include "power/energy_model.hh"
#include "telemetry/recorder.hh"
#include "thermal/thermal_model.hh"

namespace piton::sim
{

struct SystemOptions
{
    config::SystemConfig cfg = config::defaultSystemConfig();
    int chipId = 2;
    double vddV = 1.00;
    double vcsV = 1.05;
    double vioV = 1.80;
    double coreClockMhz = 500.05;
    std::uint64_t seed = 0x517;

    /** Simulated cycles represented by one 17 Hz monitor sample.  The
     *  workloads are steady-state loops, so shortening the real 29 M-
     *  cycle window preserves the sample statistics (DESIGN.md). */
    Cycle cyclesPerSample = 2000;
    Cycle warmupCycles = 30000;

    /** Worker threads for the experiment drivers' sweep fan-outs
     *  (runAll()-style methods); 0 means all hardware threads.  Each
     *  sweep point runs in its own System, so results are bit-identical
     *  at any value (see common/parallel.hh). */
    unsigned sweepThreads = 1;

    /** Use the event-driven chip scheduler + batched core issue
     *  (DESIGN.md §9).  false selects the legacy per-cycle reference
     *  stepping; both produce bit-identical results (the escape hatch
     *  exists for equivalence testing and debugging). */
    bool fastPath = true;

    /** Worker threads for the fast path's sharded run-ahead rounds
     *  (DESIGN.md §12): tiles are sharded over a resident gang; 0
     *  means all hardware threads, and the chip clamps to the tile
     *  count.  A speed knob like fastPath: results are bit-identical
     *  at any value (tests/test_fastpath_equiv.cc sweeps 1/2/8). */
    unsigned engineThreads = 1;

    /** BBV histogram buckets per tile for the sampling subsystem's
     *  interval profiler (DESIGN.md §14); power of two in [2, 2^20],
     *  0 disables.  The counters are commutative integers, so enabling
     *  them never perturbs results — only adds a per-retire bump. */
    std::uint32_t bbvBuckets = 0;

    /** Static per-tile commanded frequency (MHz), realized exactly like
     *  a governor actuation: window-granularity duty gating, integer
     *  Bresenham on the PLL grid (DESIGN.md §13/§16).  Empty = every
     *  tile at the chip clock (no gating).  When non-empty the size
     *  must equal cfg.piton.tileCount; entries <= 0 hard-gate the tile,
     *  entries above the chip clock clamp to it.  Mutually exclusive
     *  with attachGovernor — the governor owns the duty tables.  The
     *  table joins the checkpoint fingerprint, and ungoverned duty
     *  phase rides in an unconditional sys.duty section, so placed runs
     *  stay bit-identical across engines/threads/checkpoint-resume. */
    std::vector<double> tileFreqMhz;

    power::EnergyParams energyParams = power::defaultEnergyParams();
    thermal::ThermalParams thermalParams;
};

/** Result of running a finite workload to completion. */
struct CompletionResult
{
    bool completed = false;
    /** True when the run was abandoned because the chip stopped making
     *  forward progress (no cycles elapsed across consecutive run
     *  windows without halting).  No energy is charged for the
     *  zero-progress windows. */
    bool stalled = false;
    Cycle cycles = 0;
    double seconds = 0.0;
    std::uint64_t insts = 0;
    /** VDD+VCS energy including the clock-tree and leakage floor. */
    double onChipEnergyJ = 0.0;
    /** Event energy only (the "active" portion of Fig. 14). */
    double activeEnergyJ = 0.0;
    /** Clock tree + leakage over the run ("idle" portion). */
    double idleEnergyJ = 0.0;
};

class System;

/** One recorded run window, as observed by a WindowHook. */
struct WindowObs
{
    Cycle cycles = 0;        ///< cycles the chip advanced this window
    double windowS = 0.0;    ///< wall-clock seconds of the window
    double idleEnergyJ = 0.0;///< clock-tree + leakage J of the window
    bool done = false;       ///< the workload finished in this window
};

/**
 * Per-window observer for runToCompletion: invoked after each window's
 * accounting (thermal step, telemetry, governor, sample clock) with the
 * window's observation.  Return false to stop the run after this window
 * — the result reports the partial run with completed == false.  The
 * sampling profiler uses this to cut intervals and to stop slice
 * replays at exact window boundaries (DESIGN.md §14).
 */
using WindowHook = std::function<bool(const WindowObs &)>;

/**
 * A subsystem that rides along in System checkpoints (the sampling
 * profiler is the one client today).  Mirrors the telemetry/governor
 * contract: the client's section is written only while attached, and
 * restoring an image without the section re-baselines the client on the
 * restored state instead (attach first, then restore).
 */
class CheckpointClient
{
  public:
    virtual ~CheckpointClient() = default;
    /** Archive section name, e.g. "sys.sampling"; must be stable. */
    virtual const char *checkpointSection() const = 0;
    /** Symmetric field I/O for the client's state. */
    virtual void serializeClient(ckpt::Archive &ar) = 0;
    /** Restored an image with no client section: restart from the
     *  restored counters (like snapshotTelemetryBaselines). */
    virtual void rebaseline(System &sys) = 0;
};

class System
{
  public:
    explicit System(SystemOptions opts = SystemOptions{});

    arch::PitonChip &pitonChip() { return *chip_; }
    board::TestBoard &testBoard() { return board_; }
    thermal::ThermalModel &thermalModel() { return thermal_; }
    const power::EnergyModel &energyModel() const { return energy_; }
    const chip::ChipInstance &chipInstance() const { return instance_; }
    const SystemOptions &options() const { return opts_; }

    void loadProgram(TileId tile, ThreadId tid, const isa::Program *p,
                     const std::vector<std::pair<int, RegVal>> &init = {});

    /** Current core clock.  Equal to the configured clock unless a
     *  governor has actuated a different operating point. */
    double coreClockHz() const { return mhzToHz(effClockMhz_); }
    double effectiveClockMhz() const { return effClockMhz_; }
    double effectiveVddV() const { return effVddV_; }

    /**
     * Steady-state measurement per the paper's protocol: run the warmup
     * window, pin the thermal state at the equilibrium for the observed
     * power, then record `samples` monitor samples.
     */
    board::PowerMeasurement measure(std::uint32_t samples = 128);

    /** Static power: all inputs (including clocks) grounded — leakage
     *  only, with the die barely above ambient. */
    board::PowerMeasurement measureStatic(std::uint32_t samples = 128);

    /** Run a finite workload to completion (energy + execution time). */
    CompletionResult runToCompletion(Cycle max_cycles);

    /** Closed-form idle power (W, VDD+VCS) at thermal equilibrium. */
    double idlePowerW() const;

    /** True rail powers over one window, advancing the chip; exposed
     *  for time-series experiments. Returns {VDD, VCS, VIO} watts. */
    std::array<double, 3> windowTruePowers(Cycle window_cycles);

    /** Die temperature right now. */
    double dieTempC() const { return thermal_.dieTempC(); }

    /**
     * Attach a telemetry recorder: every subsequent sample window
     * (windowTruePowers, measure, runToCompletion chunks) records the
     * schema of telemetry/schema.hh — true per-rail powers, the
     * static/dynamic decomposition, per-category ledger deltas, NoC
     * counters, thermal readout, and (if the recorder's config asks
     * for it) per-tile core energies.  The monitor chain additionally
     * records the measured.* series during measure()/measureStatic().
     * Counter baselines snapshot at attach time, so deltas cover only
     * post-attach activity.  Pass nullptr to detach.
     */
    void attachTelemetry(telemetry::TelemetryRecorder *rec);
    telemetry::TelemetryRecorder *telemetry() const { return telem_; }

    /**
     * Attach a closed-loop DVFS governor (DESIGN.md §13).  Every
     * sample window thereafter: (1) the per-tile duty gates for the
     * window are derived from the governor's last actuation (integer
     * Bresenham on the PLL grid — a tile commanded f_t of a chip clock
     * f runs round(f_t/step) of every round(f/step) windows, ungated
     * in the windows its accumulator carries); (2) the chip runs the
     * window; (3) telemetry records it; (4) the epoch accumulators
     * advance, and at every epochWindows()-th window the governor's
     * controlEpoch() runs and its actuation (chip V-f via
     * EnergyModel::setOperatingPoint + the effective clock, per-tile
     * duty tables) applies before the next window.  All of it is
     * serial arithmetic on bit-identical inputs, so governed runs stay
     * bit-identical at any engineThreads and across checkpoint/resume.
     *
     * The governor is init()-ed against this system's platform at
     * attach; counter baselines snapshot like attachTelemetry.  For
     * telemetry of the control loop itself (governor.* series), attach
     * the recorder first.  Pass nullptr to detach (gates clear; the
     * actuated operating point remains).  Checkpoints save controller
     * state in a sys.governor section when a governor is attached;
     * restoring governed state requires attaching a governor of the
     * same policy first (mirrors the telemetry contract).
     */
    void attachGovernor(governor::Governor *gov);
    governor::Governor *dvfsGovernor() const { return gov_; }

    /** Install the per-window observer (see WindowHook); empty
     *  function detaches.  Purely observational unless it stops the
     *  run, so hooked runs are otherwise bit-identical. */
    void setWindowHook(WindowHook hook) { windowHook_ = std::move(hook); }

    /** Attach/detach (nullptr) the checkpoint extension client whose
     *  state rides along in saveBytes (see CheckpointClient). */
    void attachCheckpointClient(CheckpointClient *client)
    {
        client_ = client;
    }
    CheckpointClient *checkpointClient() const { return client_; }

    /** Tiles duty-gated for the window currently being set up/run. */
    std::uint32_t gatedTileCount() const { return gatedTiles_; }

    /** Monotone sample-clock: seconds of sample windows recorded so
     *  far (the telemetry time axis; advances even when the chip has
     *  halted, like the board's 17 Hz monitors do). */
    double sampleClockS() const { return sampleClockS_; }

    // ---- checkpointing (DESIGN.md §10) -------------------------------
    //
    // A checkpoint captures the full system: chip (cores, caches,
    // coherence, NoC, memory pages, energy ledger, program images),
    // board (supply config + monitor-noise RNG), thermal state, the
    // per-window telemetry baselines, and — when a recorder is
    // attached at save time — the recorder contents.  Restore into a
    // System constructed with the same SystemOptions (key knobs are
    // fingerprinted; mismatches throw ckpt::CheckpointError) resumes
    // bit-identically: ledger sums, per-tile energies, and telemetry
    // exports match an uninterrupted run byte for byte, under either
    // fastPath setting.  Attach the recorder *before* restoring so the
    // saved ring contents have series to land in.

    std::vector<std::uint8_t> saveBytes();
    void save(const std::string &path);

    /** Restore from a checkpoint image.  `mark_telemetry_event`
     *  additionally records a schema::kEventRestore sample at the
     *  resume time (opt-in: it breaks byte-identity with an
     *  uninterrupted run's export by design). */
    void restoreBytes(const std::vector<std::uint8_t> &bytes,
                      bool mark_telemetry_event = false);
    void restore(const std::string &path,
                 bool mark_telemetry_event = false);

  private:
    /** Shared body of saveBytes/restoreBytes. */
    void serializeSystem(ckpt::Archive &ar);

    /** Re-baseline the per-window telemetry deltas on the current chip
     *  counters (as attachTelemetry does).  Used after restoring a
     *  checkpoint that carried no recorder state: the saved baselines
     *  belong to a system that never recorded, so the attached
     *  recorder's deltas must start from the restored counters. */
    void snapshotTelemetryBaselines();

    /** Clock-tree power (W) per rail at the operating point. */
    power::RailEnergy clockTreePowerW() const;

    /** Record one sample window into the attached recorder (called
     *  after the thermal step; does not advance the sample clock). */
    void recordWindowTelemetry(double window_s,
                               const std::array<double, 3> &true_p,
                               const power::RailEnergy &delta,
                               const power::RailEnergy &clock_w,
                               const power::RailEnergy &leak_w);

    // ---- governor control loop (DESIGN.md §13) -----------------------

    /** Derive and apply the per-tile duty gates for the next window
     *  (call immediately before chip_->run).  Guarantees at least one
     *  unfinished core stays ungated, so governed runs always make
     *  forward progress and allHalted keeps its meaning. */
    void applyGovernorGates();

    /** Advance the epoch accumulators by one recorded window; at an
     *  epoch boundary, run the governor and apply its actuation. */
    void governorEpochWindow(Cycle cycles, double window_s,
                             const power::RailEnergy &delta,
                             const power::RailEnergy &clock_w,
                             const power::RailEnergy &leak_w);

    /** Realize an actuation: chip operating point + duty tables. */
    void applyActuation(const governor::Actuation &act);

    /** Reset the epoch state and baselines on the current counters
     *  (attach, or restore of a checkpoint without governor state). */
    void snapshotGovernorBaselines();

    /** Build the duty tables from SystemOptions::tileFreqMhz (ctor). */
    void initStaticDuty();

    /** Duty gates are live: a governor drives them, or the static
     *  per-tile table from SystemOptions::tileFreqMhz does. */
    bool dutyActive() const { return gov_ != nullptr || staticDuty_; }

    /** Record the governor.* series for one epoch (lazy schema). */
    void recordGovernorEpoch(const governor::EpochObs &obs);

    SystemOptions opts_;
    chip::ChipInstance instance_;
    power::EnergyModel energy_;
    std::unique_ptr<arch::PitonChip> chip_;
    board::TestBoard board_;
    thermal::ThermalModel thermal_;
    power::RailEnergy prevLedger_;

    telemetry::TelemetryRecorder *telem_ = nullptr;
    WindowHook windowHook_;
    CheckpointClient *client_ = nullptr;
    double sampleClockS_ = 0.0;
    /** Series indices into telem_, resolved once at attach. */
    struct TelemetryIds
    {
        std::size_t vddW, vcsW, vioW, onChipW;
        std::size_t dynamicW, clockW, leakW;
        std::size_t activeJ;
        std::array<std::size_t, power::kNumCategories> catJ;
        std::size_t nocFlits, nocFlitHops, nocToggledBits, nocFlitsPerS;
        std::size_t dieC, packageC;
        std::size_t insts, activeThreads;
        /** Per-rail power/voltage/current gauges (power.rail.*). */
        std::array<std::size_t, power::kNumRails> railW, railV, railA;
        std::vector<std::size_t> tileJ; ///< empty unless perTile
    } tids_{};
    /** Counter baselines for per-window deltas. */
    std::array<power::RailEnergy, power::kNumCategories> prevCatJ_{};
    arch::NocStats prevNoc_{};
    std::uint64_t prevInsts_ = 0;
    std::vector<double> prevTileJ_;

    // ---- governor state (checkpointed as sys.governor) ---------------
    governor::Governor *gov_ = nullptr;
    /** Duty tables seeded from SystemOptions::tileFreqMhz (no
     *  governor); accumulator phase checkpointed as sys.duty. */
    bool staticDuty_ = false;
    /** Actuated operating point; == the configured one until a
     *  governor changes it (so ungoverned runs are untouched). */
    double effVddV_ = 0.0;
    double effClockMhz_ = 0.0;
    /** Duty tables: a tile runs dutyNum_[t] of every dutyDen_ windows
     *  (Bresenham accumulator dutyAcc_); num == den = never gated,
     *  num == 0 = hard-gated. */
    std::uint32_t dutyDen_ = 1;
    std::vector<std::uint32_t> dutyNum_;
    std::vector<std::uint32_t> dutyAcc_;
    /** Per-tile commanded frequency (MHz; 0 = off), for EpochObs. */
    std::vector<double> tileFreqCmd_;
    std::uint32_t gatedTiles_ = 0;
    /** Epoch accumulators and per-tile counter baselines. */
    std::uint32_t epochWindow_ = 0;
    std::uint64_t epochCycles_ = 0;
    double epochTimeS_ = 0.0;
    std::array<double, power::kNumRails> epochRailJ_{};
    std::vector<std::uint64_t> govPrevInsts_;
    std::vector<std::uint64_t> govPrevStall_;
    std::vector<double> govPrevTileJ_;
    /** governor.* series ids, resolved lazily at the first epoch. */
    struct GovTids
    {
        bool ready = false;
        std::size_t freqMhz, vddV, powerW, capW, gatedTiles, epochs;
    } govTids_{};
};

} // namespace piton::sim

#endif // PITON_SIM_SYSTEM_HH
