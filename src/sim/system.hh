/**
 * @file
 * The full experimental system: a Piton chip in its socket on the test
 * board, with bench supplies, the heat-sink/fan cooling solution, and
 * the chipset FPGA behind it (Section III).
 *
 * System glues the layers together and implements the measurement
 * methodology: true rail powers are composed per sample window from
 * (a) the event-energy ledger accumulated by the architecture model,
 * (b) the analytic clock-tree idle power, and (c) leakage at the
 * current die temperature; the window powers then pass through the
 * board's monitor chain (quantization + noise) and the 128-sample
 * averaging protocol.
 */

#ifndef PITON_SIM_SYSTEM_HH
#define PITON_SIM_SYSTEM_HH

#include <array>
#include <memory>
#include <vector>

#include "arch/piton_chip.hh"
#include "board/measurement.hh"
#include "board/test_board.hh"
#include "chip/chip_instance.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"
#include "thermal/thermal_model.hh"

namespace piton::sim
{

struct SystemOptions
{
    config::SystemConfig cfg = config::defaultSystemConfig();
    int chipId = 2;
    double vddV = 1.00;
    double vcsV = 1.05;
    double vioV = 1.80;
    double coreClockMhz = 500.05;
    std::uint64_t seed = 0x517;

    /** Simulated cycles represented by one 17 Hz monitor sample.  The
     *  workloads are steady-state loops, so shortening the real 29 M-
     *  cycle window preserves the sample statistics (DESIGN.md). */
    Cycle cyclesPerSample = 2000;
    Cycle warmupCycles = 30000;

    /** Worker threads for the experiment drivers' sweep fan-outs
     *  (runAll()-style methods); 0 means all hardware threads.  Each
     *  sweep point runs in its own System, so results are bit-identical
     *  at any value (see common/parallel.hh). */
    unsigned sweepThreads = 1;

    power::EnergyParams energyParams = power::defaultEnergyParams();
    thermal::ThermalParams thermalParams;
};

/** Result of running a finite workload to completion. */
struct CompletionResult
{
    bool completed = false;
    /** True when the run was abandoned because the chip stopped making
     *  forward progress (no cycles elapsed across consecutive run
     *  windows without halting).  No energy is charged for the
     *  zero-progress windows. */
    bool stalled = false;
    Cycle cycles = 0;
    double seconds = 0.0;
    std::uint64_t insts = 0;
    /** VDD+VCS energy including the clock-tree and leakage floor. */
    double onChipEnergyJ = 0.0;
    /** Event energy only (the "active" portion of Fig. 14). */
    double activeEnergyJ = 0.0;
    /** Clock tree + leakage over the run ("idle" portion). */
    double idleEnergyJ = 0.0;
};

class System
{
  public:
    explicit System(SystemOptions opts = SystemOptions{});

    arch::PitonChip &pitonChip() { return *chip_; }
    board::TestBoard &testBoard() { return board_; }
    thermal::ThermalModel &thermalModel() { return thermal_; }
    const power::EnergyModel &energyModel() const { return energy_; }
    const chip::ChipInstance &chipInstance() const { return instance_; }
    const SystemOptions &options() const { return opts_; }

    void loadProgram(TileId tile, ThreadId tid, const isa::Program *p,
                     const std::vector<std::pair<int, RegVal>> &init = {});

    double coreClockHz() const { return mhzToHz(opts_.coreClockMhz); }

    /**
     * Steady-state measurement per the paper's protocol: run the warmup
     * window, pin the thermal state at the equilibrium for the observed
     * power, then record `samples` monitor samples.
     */
    board::PowerMeasurement measure(std::uint32_t samples = 128);

    /** Static power: all inputs (including clocks) grounded — leakage
     *  only, with the die barely above ambient. */
    board::PowerMeasurement measureStatic(std::uint32_t samples = 128);

    /** Run a finite workload to completion (energy + execution time). */
    CompletionResult runToCompletion(Cycle max_cycles);

    /** Closed-form idle power (W, VDD+VCS) at thermal equilibrium. */
    double idlePowerW() const;

    /** True rail powers over one window, advancing the chip; exposed
     *  for time-series experiments. Returns {VDD, VCS, VIO} watts. */
    std::array<double, 3> windowTruePowers(Cycle window_cycles);

    /** Die temperature right now. */
    double dieTempC() const { return thermal_.dieTempC(); }

  private:
    /** Clock-tree power (W) per rail at the operating point. */
    power::RailEnergy clockTreePowerW() const;

    SystemOptions opts_;
    chip::ChipInstance instance_;
    power::EnergyModel energy_;
    std::unique_ptr<arch::PitonChip> chip_;
    board::TestBoard board_;
    thermal::ThermalModel thermal_;
    power::RailEnergy prevLedger_;
};

} // namespace piton::sim

#endif // PITON_SIM_SYSTEM_HH
