#include "sim/system.hh"

#include <cmath>
#include <string>

#include "checkpoint/archive.hh"
#include "common/logging.hh"
#include "telemetry/schema.hh"

namespace piton::sim
{

namespace
{

/** Two-digit tile series name, e.g. "tile07.core_j". */
std::string
tileSeriesName(std::size_t tile)
{
    namespace ts = telemetry::schema;
    std::string n = ts::kTilePrefix;
    n += static_cast<char>('0' + tile / 10);
    n += static_cast<char>('0' + tile % 10);
    n += ts::kTileCoreSuffix;
    return n;
}

} // namespace

System::System(SystemOptions opts)
    : opts_(opts), instance_(chip::makeChip(opts.chipId, opts.seed)),
      energy_(opts.energyParams), board_(opts.seed ^ 0xB0A2D),
      thermal_(opts.thermalParams)
{
    energy_.setOperatingPoint(opts_.vddV, opts_.vcsV);
    chip_ = std::make_unique<arch::PitonChip>(opts_.cfg.piton, instance_,
                                              energy_, opts_.seed);
    chip_->setFastPath(opts_.fastPath);
    chip_->setEngineThreads(opts_.engineThreads);
    board_.setSupply(power::Rail::Vdd, opts_.vddV);
    board_.setSupply(power::Rail::Vcs, opts_.vcsV);
    board_.setSupply(power::Rail::Vio, opts_.vioV);
    thermal_.reset();
}

void
System::loadProgram(TileId tile, ThreadId tid, const isa::Program *p,
                    const std::vector<std::pair<int, RegVal>> &init)
{
    chip_->loadProgram(tile, tid, p, init);
}

power::RailEnergy
System::clockTreePowerW() const
{
    const power::RailEnergy per_cycle = energy_.idleCycleEnergy();
    return per_cycle.scaled(static_cast<double>(opts_.cfg.piton.tileCount)
                            * coreClockHz() * instance_.dynFactor);
}

double
System::idlePowerW() const
{
    // Fixed point between idle power and die temperature.
    const double clock_w = clockTreePowerW().onChipCoreAndSram();
    double temp = thermal_.params().ambientC;
    double total = clock_w;
    for (int i = 0; i < 100; ++i) {
        const double leak =
            energy_.leakagePowerW(temp, instance_.leakFactor)
                .onChipCoreAndSram();
        total = clock_w + leak;
        const double new_temp = thermal_.steadyState(total).dieC;
        if (std::abs(new_temp - temp) < 1e-5)
            break;
        temp = 0.5 * (temp + new_temp);
    }
    return total;
}

std::array<double, 3>
System::windowTruePowers(Cycle window_cycles)
{
    piton_assert(window_cycles > 0, "empty sample window");
    chip_->run(window_cycles);
    const power::RailEnergy now_total = chip_->ledger().total();
    const power::RailEnergy delta = now_total - prevLedger_;
    prevLedger_ = now_total;

    const double window_s =
        static_cast<double>(window_cycles) / coreClockHz();
    const power::RailEnergy clock_w = clockTreePowerW();
    const power::RailEnergy leak_w =
        energy_.leakagePowerW(thermal_.dieTempC(), instance_.leakFactor);

    std::array<double, 3> p{};
    for (std::size_t r = 0; r < power::kNumRails; ++r) {
        const auto rail = static_cast<power::Rail>(r);
        p[r] = delta.get(rail) / window_s + clock_w.get(rail)
               + leak_w.get(rail);
    }

    // Advance the thermal network: on-chip power heats the die.
    thermal_.step(p[0] + p[1], window_s);
    if (telem_)
        recordWindowTelemetry(window_s, p, delta, clock_w, leak_w);
    sampleClockS_ += window_s;
    return p;
}

void
System::attachTelemetry(telemetry::TelemetryRecorder *rec)
{
    telem_ = rec;
    if (!rec)
        return;
    namespace ts = telemetry::schema;
    using telemetry::Downsample;
    using telemetry::Unit;
    rec->setCyclesPerSample(opts_.cyclesPerSample);

    tids_.vddW =
        rec->defineSeries(ts::kPowerVddW, Unit::Watts, Downsample::Mean);
    tids_.vcsW =
        rec->defineSeries(ts::kPowerVcsW, Unit::Watts, Downsample::Mean);
    tids_.vioW =
        rec->defineSeries(ts::kPowerVioW, Unit::Watts, Downsample::Mean);
    tids_.onChipW =
        rec->defineSeries(ts::kPowerOnChipW, Unit::Watts, Downsample::Mean);
    tids_.dynamicW =
        rec->defineSeries(ts::kPowerDynamicW, Unit::Watts, Downsample::Mean);
    tids_.clockW =
        rec->defineSeries(ts::kPowerClockW, Unit::Watts, Downsample::Mean);
    tids_.leakW =
        rec->defineSeries(ts::kPowerLeakW, Unit::Watts, Downsample::Mean);
    tids_.activeJ =
        rec->defineSeries(ts::kEnergyActiveJ, Unit::Joules, Downsample::Sum);
    for (std::size_t i = 0; i < power::kNumCategories; ++i) {
        const auto c = static_cast<power::Category>(i);
        tids_.catJ[i] = rec->defineSeries(
            std::string(ts::kEnergyCategoryPrefix) + power::categoryName(c)
                + "_j",
            Unit::Joules, Downsample::Sum);
        prevCatJ_[i] = chip_->ledger().category(c);
    }
    tids_.nocFlits =
        rec->defineSeries(ts::kNocFlits, Unit::Count, Downsample::Sum);
    tids_.nocFlitHops =
        rec->defineSeries(ts::kNocFlitHops, Unit::Count, Downsample::Sum);
    tids_.nocToggledBits =
        rec->defineSeries(ts::kNocToggledBits, Unit::Count, Downsample::Sum);
    tids_.nocFlitsPerS =
        rec->defineSeries(ts::kNocFlitsPerS, Unit::Hertz, Downsample::Mean);
    tids_.dieC =
        rec->defineSeries(ts::kThermalDieC, Unit::Celsius, Downsample::Mean);
    tids_.packageC = rec->defineSeries(ts::kThermalPackageC, Unit::Celsius,
                                       Downsample::Mean);
    tids_.insts = rec->defineSeries(ts::kChipInsts, Unit::Count,
                                    Downsample::Sum);
    tids_.activeThreads = rec->defineSeries(ts::kChipActiveThreads,
                                            Unit::Count, Downsample::Mean);
    tids_.tileJ.clear();
    prevTileJ_.clear();
    if (rec->config().perTile) {
        prevTileJ_ = chip_->tileCoreEnergyJ();
        for (std::size_t t = 0; t < prevTileJ_.size(); ++t)
            tids_.tileJ.push_back(rec->defineSeries(
                tileSeriesName(t), Unit::Joules, Downsample::Sum));
    }
    prevNoc_ = chip_->memSystem().noc().stats();
    prevInsts_ = chip_->totalInsts();
}

void
System::snapshotTelemetryBaselines()
{
    for (std::size_t i = 0; i < power::kNumCategories; ++i)
        prevCatJ_[i] =
            chip_->ledger().category(static_cast<power::Category>(i));
    prevTileJ_.clear();
    if (telem_ != nullptr && telem_->config().perTile)
        prevTileJ_ = chip_->tileCoreEnergyJ();
    prevNoc_ = chip_->memSystem().noc().stats();
    prevInsts_ = chip_->totalInsts();
}

void
System::recordWindowTelemetry(double window_s,
                              const std::array<double, 3> &true_p,
                              const power::RailEnergy &delta,
                              const power::RailEnergy &clock_w,
                              const power::RailEnergy &leak_w)
{
    const double t = sampleClockS_;
    const auto rec = [&](std::size_t id, double v) {
        telem_->record(id, t, window_s, v);
    };
    rec(tids_.vddW, true_p[0]);
    rec(tids_.vcsW, true_p[1]);
    rec(tids_.vioW, true_p[2]);
    rec(tids_.onChipW, true_p[0] + true_p[1]);
    rec(tids_.dynamicW, delta.onChipCoreAndSram() / window_s);
    rec(tids_.clockW, clock_w.onChipCoreAndSram());
    rec(tids_.leakW, leak_w.onChipCoreAndSram());
    rec(tids_.activeJ, delta.onChipCoreAndSram());
    for (std::size_t i = 0; i < power::kNumCategories; ++i) {
        const power::RailEnergy cur =
            chip_->ledger().category(static_cast<power::Category>(i));
        rec(tids_.catJ[i], (cur - prevCatJ_[i]).onChipCoreAndSram());
        prevCatJ_[i] = cur;
    }
    const arch::NocStats noc_now = chip_->memSystem().noc().stats();
    const arch::NocStats d = noc_now.delta(prevNoc_);
    prevNoc_ = noc_now;
    rec(tids_.nocFlits, static_cast<double>(d.flits));
    rec(tids_.nocFlitHops, static_cast<double>(d.flitHops));
    rec(tids_.nocToggledBits, static_cast<double>(d.toggledBits));
    rec(tids_.nocFlitsPerS, static_cast<double>(d.flits) / window_s);
    rec(tids_.dieC, thermal_.dieTempC());
    rec(tids_.packageC, thermal_.packageTempC());
    const std::uint64_t insts_now = chip_->totalInsts();
    rec(tids_.insts, static_cast<double>(insts_now - prevInsts_));
    prevInsts_ = insts_now;
    rec(tids_.activeThreads,
        static_cast<double>(chip_->activeThreads()));
    if (!tids_.tileJ.empty()) {
        const std::vector<double> tile_now = chip_->tileCoreEnergyJ();
        for (std::size_t i = 0; i < tids_.tileJ.size(); ++i) {
            rec(tids_.tileJ[i], tile_now[i] - prevTileJ_[i]);
            prevTileJ_[i] = tile_now[i];
        }
    }
}

board::PowerMeasurement
System::measure(std::uint32_t samples)
{
    // Warm up caches and power, then pin the thermal network at the
    // equilibrium for the observed steady-state power ("after the
    // system reaches a steady state", Section III-A).
    double warm_power = 0.0;
    const Cycle chunk = opts_.cyclesPerSample;
    const std::uint32_t warm_windows = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(opts_.warmupCycles / chunk));
    for (std::uint32_t i = 0; i < warm_windows; ++i) {
        const auto p = windowTruePowers(chunk);
        warm_power = p[0] + p[1];
    }
    // Pin the thermal state at equilibrium, then re-settle: leakage
    // depends on temperature, so the power/temperature pair converges
    // over a few pin iterations.
    for (int pin = 0; pin < 4; ++pin) {
        thermal_.setState(thermal_.steadyState(warm_power));
        const auto p = windowTruePowers(chunk);
        warm_power = p[0] + p[1];
    }
    thermal_.setState(thermal_.steadyState(warm_power));

    return board::collectMeasurement(
        board_, samples,
        [this, chunk] { return windowTruePowers(chunk); }, telem_,
        sampleClockS_, static_cast<double>(chunk) / coreClockHz());
}

board::PowerMeasurement
System::measureStatic(std::uint32_t samples)
{
    // Clocks grounded: only leakage flows; the die sits barely above
    // ambient.
    double temp = thermal_.params().ambientC;
    double leak = 0.0;
    for (int i = 0; i < 100; ++i) {
        const power::RailEnergy l =
            energy_.leakagePowerW(temp, instance_.leakFactor);
        leak = l.onChipCoreAndSram();
        const double new_temp = thermal_.steadyState(leak).dieC;
        if (std::abs(new_temp - temp) < 1e-6)
            break;
        temp = 0.5 * (temp + new_temp);
    }
    const power::RailEnergy l =
        energy_.leakagePowerW(temp, instance_.leakFactor);
    // The chip is not advancing, but the monitors still tick at the
    // sample cadence: space the measured samples on the sample clock
    // and advance it past the collection interval.
    const double dt_s =
        static_cast<double>(opts_.cyclesPerSample) / coreClockHz();
    const board::PowerMeasurement m = board::collectMeasurement(
        board_, samples,
        [&l] {
            return std::array<double, 3>{l.get(power::Rail::Vdd),
                                         l.get(power::Rail::Vcs),
                                         l.get(power::Rail::Vio)};
        },
        telem_, sampleClockS_, dt_s);
    if (telem_)
        sampleClockS_ += static_cast<double>(samples) * dt_s;
    return m;
}

CompletionResult
System::runToCompletion(Cycle max_cycles)
{
    CompletionResult res;
    const power::RailEnergy start_ledger = chip_->ledger().total();
    const Cycle start_cycle = chip_->now();
    const Cycle chunk = opts_.cyclesPerSample;

    // Consecutive run windows in which the chip advanced zero cycles
    // without halting.  Such windows represent no simulated time, so
    // they must not be charged clock-tree/leakage energy; and since a
    // chip that makes no progress will never make progress on its own,
    // a short streak is enough to declare the run stalled.
    constexpr int kMaxNoProgressWindows = 3;
    int no_progress = 0;

    double idle_energy_j = 0.0;
    power::RailEnergy prev_chunk = start_ledger;
    while (chip_->now() - start_cycle < max_cycles) {
        const Cycle remaining = max_cycles - (chip_->now() - start_cycle);
        const Cycle before = chip_->now();
        const auto r = chip_->run(std::min(chunk, remaining));
        const Cycle elapsed = chip_->now() - before;
        if (elapsed == 0) {
            if (r.allHalted) {
                res.completed = true;
                break;
            }
            if (++no_progress >= kMaxNoProgressWindows) {
                res.stalled = true;
                break;
            }
            continue;
        }
        no_progress = 0;
        const double dt = static_cast<double>(elapsed) / coreClockHz();
        const power::RailEnergy clock_re = clockTreePowerW();
        const power::RailEnergy leak_re =
            energy_.leakagePowerW(thermal_.dieTempC(), instance_.leakFactor);
        const double clock_w = clock_re.onChipCoreAndSram();
        const double leak_w = leak_re.onChipCoreAndSram();
        idle_energy_j += (clock_w + leak_w) * dt;
        const power::RailEnergy chunk_delta =
            chip_->ledger().total() - prev_chunk;
        prev_chunk = chip_->ledger().total();
        thermal_.step(clock_w + leak_w
                          + chunk_delta.onChipCoreAndSram() / dt,
                      dt);
        if (telem_) {
            std::array<double, 3> p{};
            for (std::size_t r = 0; r < power::kNumRails; ++r) {
                const auto rail = static_cast<power::Rail>(r);
                p[r] = chunk_delta.get(rail) / dt + clock_re.get(rail)
                       + leak_re.get(rail);
            }
            recordWindowTelemetry(dt, p, chunk_delta, clock_re, leak_re);
        }
        sampleClockS_ += dt;
        if (r.allHalted) {
            res.completed = true;
            break;
        }
    }

    res.cycles = chip_->now() - start_cycle;
    res.seconds = static_cast<double>(res.cycles) / coreClockHz();
    res.insts = chip_->totalInsts();
    const power::RailEnergy delta = chip_->ledger().total() - start_ledger;
    prevLedger_ = chip_->ledger().total();
    res.activeEnergyJ = delta.onChipCoreAndSram();
    res.idleEnergyJ = idle_energy_j;
    res.onChipEnergyJ = res.activeEnergyJ + res.idleEnergyJ;
    return res;
}

void
System::serializeSystem(ckpt::Archive &ar)
{
    // Identity fingerprint: a checkpoint only restores into a System
    // built with the same operating point and sampling cadence (the
    // chip adds its own structural fingerprint).  fastPath and
    // engineThreads are deliberately absent — every engine/thread-count
    // combination is bit-identical, so a checkpoint taken under one may
    // resume under any other.
    ar.beginSection("sys.meta");
    ar.ioExpect(static_cast<std::int64_t>(opts_.chipId), "chip id");
    ar.ioExpect(opts_.seed, "seed");
    ar.ioExpect(opts_.vddV, "vdd setpoint");
    ar.ioExpect(opts_.vcsV, "vcs setpoint");
    ar.ioExpect(opts_.vioV, "vio setpoint");
    ar.ioExpect(opts_.coreClockMhz, "core clock");
    ar.ioExpect(opts_.cyclesPerSample, "cycles per sample");
    ar.endSection();

    chip_->serialize(ar);

    ar.beginSection("sys.board");
    board_.serialize(ar);
    ar.endSection();

    ar.beginSection("sys.thermal");
    thermal_.serialize(ar);
    ar.endSection();

    // Per-window baselines: restoring them re-aims the next window's
    // deltas at the saved ledger/counter values, which is what makes a
    // resumed run's telemetry continue seamlessly (and what makes the
    // attach-then-restore warm-start pattern equal to attaching after
    // an in-place warmup).
    ar.beginSection("sys.sim");
    prevLedger_.serialize(ar);
    ar.io(sampleClockS_);
    for (auto &c : prevCatJ_)
        c.serialize(ar);
    ar.io(prevNoc_.packets);
    ar.io(prevNoc_.flits);
    ar.io(prevNoc_.flitHops);
    ar.io(prevNoc_.toggledBits);
    ar.io(prevInsts_);
    std::uint64_t nt = ar.ioSize(prevTileJ_.size(), 8);
    if (ar.loading())
        prevTileJ_.resize(static_cast<std::size_t>(nt));
    for (auto &v : prevTileJ_)
        ar.io(v);
    ar.endSection();

    // Recorder contents ride along only when one is attached at save
    // time; on restore the section is applied only if a recorder is
    // attached to receive it (attach first, then restore).
    const bool do_telemetry =
        telem_ != nullptr
        && (ar.saving() || ar.hasSection("sys.telemetry"));
    if (do_telemetry) {
        ar.beginSection("sys.telemetry");
        telem_->serialize(ar);
        ar.endSection();
    }
}

std::vector<std::uint8_t>
System::saveBytes()
{
    ckpt::Archive ar = ckpt::Archive::forSave();
    serializeSystem(ar);
    return ar.finish();
}

void
System::save(const std::string &path)
{
    ckpt::writeFile(path, saveBytes());
}

void
System::restoreBytes(const std::vector<std::uint8_t> &bytes,
                     bool mark_telemetry_event)
{
    ckpt::Archive ar = ckpt::Archive::forLoad(bytes);
    serializeSystem(ar);
    // A checkpoint saved without a recorder never maintained the
    // per-window delta baselines; if this system has one attached, the
    // deltas must start from the restored counters — exactly what a
    // cold run gets by attaching after its warmup (warm_start.hh relies
    // on this for bit-identical fan-out).
    if (telem_ != nullptr && !ar.hasSection("sys.telemetry"))
        snapshotTelemetryBaselines();
    if (mark_telemetry_event && telem_) {
        const std::size_t id =
            telem_->defineSeries(telemetry::schema::kEventRestore,
                                 telemetry::Unit::Count,
                                 telemetry::Downsample::Sum);
        telem_->record(id, sampleClockS_,
                       static_cast<double>(opts_.cyclesPerSample)
                           / coreClockHz(),
                       1.0);
    }
}

void
System::restore(const std::string &path, bool mark_telemetry_event)
{
    restoreBytes(ckpt::readFile(path), mark_telemetry_event);
}

} // namespace piton::sim
