#include "sim/system.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>

#include "checkpoint/archive.hh"
#include "common/logging.hh"
#include "telemetry/schema.hh"

namespace piton::sim
{

namespace
{

/** Two-digit tile series name, e.g. "tile07.core_j". */
std::string
tileSeriesName(std::size_t tile)
{
    namespace ts = telemetry::schema;
    std::string n = ts::kTilePrefix;
    n += static_cast<char>('0' + tile / 10);
    n += static_cast<char>('0' + tile % 10);
    n += ts::kTileCoreSuffix;
    return n;
}

/** "power.rail.vdd_w" etc. (railName() spells rails in caps). */
std::string
railSeriesName(power::Rail r, const char *suffix)
{
    std::string n = telemetry::schema::kPowerRailPrefix;
    for (const char *p = power::railName(r); *p != '\0'; ++p)
        n += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    n += suffix;
    return n;
}

} // namespace

System::System(SystemOptions opts)
    : opts_(opts), instance_(chip::makeChip(opts.chipId, opts.seed)),
      energy_(opts.energyParams), board_(opts.seed ^ 0xB0A2D),
      thermal_(opts.thermalParams)
{
    effVddV_ = opts_.vddV;
    effClockMhz_ = opts_.coreClockMhz;
    energy_.setOperatingPoint(opts_.vddV, opts_.vcsV);
    chip_ = std::make_unique<arch::PitonChip>(opts_.cfg.piton, instance_,
                                              energy_, opts_.seed);
    chip_->setFastPath(opts_.fastPath);
    chip_->setEngineThreads(opts_.engineThreads);
    if (opts_.bbvBuckets != 0)
        chip_->enableBbv(opts_.bbvBuckets);
    board_.setSupply(power::Rail::Vdd, opts_.vddV);
    board_.setSupply(power::Rail::Vcs, opts_.vcsV);
    board_.setSupply(power::Rail::Vio, opts_.vioV);
    thermal_.reset();
    if (!opts_.tileFreqMhz.empty())
        initStaticDuty();
}

void
System::initStaticDuty()
{
    const std::uint32_t n = opts_.cfg.piton.tileCount;
    piton_assert(opts_.tileFreqMhz.size() == n,
                 "tileFreqMhz must cover every tile");
    // Same realization as applyActuation: a tile commanded f_t of the
    // chip clock f runs round(f_t/step) of every round(f/step) windows.
    const double step = power::VfParams{}.freqStepMhz;
    dutyDen_ = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(opts_.coreClockMhz / step)));
    dutyNum_.assign(n, dutyDen_);
    dutyAcc_.assign(n, 0);
    tileFreqCmd_.assign(n, opts_.coreClockMhz);
    for (std::uint32_t t = 0; t < n; ++t) {
        const double f = opts_.tileFreqMhz[t];
        if (f <= 0.0) {
            tileFreqCmd_[t] = 0.0;
            dutyNum_[t] = 0;
            continue;
        }
        tileFreqCmd_[t] = std::min(f, opts_.coreClockMhz);
        const long long num = std::llround(tileFreqCmd_[t] / step);
        dutyNum_[t] = static_cast<std::uint32_t>(std::min<long long>(
            std::max<long long>(num, 1), dutyDen_));
    }
    staticDuty_ = true;
}

void
System::loadProgram(TileId tile, ThreadId tid, const isa::Program *p,
                    const std::vector<std::pair<int, RegVal>> &init)
{
    chip_->loadProgram(tile, tid, p, init);
}

power::RailEnergy
System::clockTreePowerW() const
{
    // Hard-gated tiles have their local clock grid stopped, so they
    // draw no clock-tree power (duty-gated tiles still do on their
    // ungated windows; the factor tracks the current window's gates).
    const power::RailEnergy per_cycle = energy_.idleCycleEnergy();
    return per_cycle.scaled(
        static_cast<double>(opts_.cfg.piton.tileCount - gatedTiles_)
        * coreClockHz() * instance_.dynFactor);
}

double
System::idlePowerW() const
{
    // Fixed point between idle power and die temperature.
    const double clock_w = clockTreePowerW().onChipCoreAndSram();
    double temp = thermal_.params().ambientC;
    double total = clock_w;
    for (int i = 0; i < 100; ++i) {
        const double leak =
            energy_.leakagePowerW(temp, instance_.leakFactor)
                .onChipCoreAndSram();
        total = clock_w + leak;
        const double new_temp = thermal_.steadyState(total).dieC;
        if (std::abs(new_temp - temp) < 1e-5)
            break;
        temp = 0.5 * (temp + new_temp);
    }
    return total;
}

std::array<double, 3>
System::windowTruePowers(Cycle window_cycles)
{
    piton_assert(window_cycles > 0, "empty sample window");
    if (dutyActive())
        applyGovernorGates();
    chip_->run(window_cycles);
    const power::RailEnergy now_total = chip_->ledger().total();
    const power::RailEnergy delta = now_total - prevLedger_;
    prevLedger_ = now_total;

    const double window_s =
        static_cast<double>(window_cycles) / coreClockHz();
    const power::RailEnergy clock_w = clockTreePowerW();
    const power::RailEnergy leak_w =
        energy_.leakagePowerW(thermal_.dieTempC(), instance_.leakFactor);

    std::array<double, 3> p{};
    for (std::size_t r = 0; r < power::kNumRails; ++r) {
        const auto rail = static_cast<power::Rail>(r);
        p[r] = delta.get(rail) / window_s + clock_w.get(rail)
               + leak_w.get(rail);
    }

    // Advance the thermal network: on-chip power heats the die.
    thermal_.step(p[0] + p[1], window_s);
    if (telem_)
        recordWindowTelemetry(window_s, p, delta, clock_w, leak_w);
    if (gov_ != nullptr)
        governorEpochWindow(window_cycles, window_s, delta, clock_w,
                            leak_w);
    sampleClockS_ += window_s;
    return p;
}

void
System::attachTelemetry(telemetry::TelemetryRecorder *rec)
{
    telem_ = rec;
    if (!rec)
        return;
    namespace ts = telemetry::schema;
    using telemetry::Downsample;
    using telemetry::Unit;
    rec->setCyclesPerSample(opts_.cyclesPerSample);

    tids_.vddW =
        rec->defineSeries(ts::kPowerVddW, Unit::Watts, Downsample::Mean);
    tids_.vcsW =
        rec->defineSeries(ts::kPowerVcsW, Unit::Watts, Downsample::Mean);
    tids_.vioW =
        rec->defineSeries(ts::kPowerVioW, Unit::Watts, Downsample::Mean);
    tids_.onChipW =
        rec->defineSeries(ts::kPowerOnChipW, Unit::Watts, Downsample::Mean);
    tids_.dynamicW =
        rec->defineSeries(ts::kPowerDynamicW, Unit::Watts, Downsample::Mean);
    tids_.clockW =
        rec->defineSeries(ts::kPowerClockW, Unit::Watts, Downsample::Mean);
    tids_.leakW =
        rec->defineSeries(ts::kPowerLeakW, Unit::Watts, Downsample::Mean);
    tids_.activeJ =
        rec->defineSeries(ts::kEnergyActiveJ, Unit::Joules, Downsample::Sum);
    for (std::size_t i = 0; i < power::kNumCategories; ++i) {
        const auto c = static_cast<power::Category>(i);
        tids_.catJ[i] = rec->defineSeries(
            std::string(ts::kEnergyCategoryPrefix) + power::categoryName(c)
                + "_j",
            Unit::Joules, Downsample::Sum);
        prevCatJ_[i] = chip_->ledger().category(c);
    }
    tids_.nocFlits =
        rec->defineSeries(ts::kNocFlits, Unit::Count, Downsample::Sum);
    tids_.nocFlitHops =
        rec->defineSeries(ts::kNocFlitHops, Unit::Count, Downsample::Sum);
    tids_.nocToggledBits =
        rec->defineSeries(ts::kNocToggledBits, Unit::Count, Downsample::Sum);
    tids_.nocFlitsPerS =
        rec->defineSeries(ts::kNocFlitsPerS, Unit::Hertz, Downsample::Mean);
    tids_.dieC =
        rec->defineSeries(ts::kThermalDieC, Unit::Celsius, Downsample::Mean);
    tids_.packageC = rec->defineSeries(ts::kThermalPackageC, Unit::Celsius,
                                       Downsample::Mean);
    tids_.insts = rec->defineSeries(ts::kChipInsts, Unit::Count,
                                    Downsample::Sum);
    tids_.activeThreads = rec->defineSeries(ts::kChipActiveThreads,
                                            Unit::Count, Downsample::Mean);
    for (std::size_t r = 0; r < power::kNumRails; ++r) {
        const auto rail = static_cast<power::Rail>(r);
        tids_.railW[r] = rec->defineSeries(railSeriesName(rail, "_w"),
                                           Unit::Watts, Downsample::Mean);
        tids_.railV[r] = rec->defineSeries(railSeriesName(rail, "_v"),
                                           Unit::Volts, Downsample::Mean);
        tids_.railA[r] = rec->defineSeries(railSeriesName(rail, "_a"),
                                           Unit::Amps, Downsample::Mean);
    }
    tids_.tileJ.clear();
    prevTileJ_.clear();
    if (rec->config().perTile) {
        prevTileJ_ = chip_->tileCoreEnergyJ();
        for (std::size_t t = 0; t < prevTileJ_.size(); ++t)
            tids_.tileJ.push_back(rec->defineSeries(
                tileSeriesName(t), Unit::Joules, Downsample::Sum));
    }
    prevNoc_ = chip_->memSystem().noc().stats();
    prevInsts_ = chip_->totalInsts();
}

void
System::snapshotTelemetryBaselines()
{
    for (std::size_t i = 0; i < power::kNumCategories; ++i)
        prevCatJ_[i] =
            chip_->ledger().category(static_cast<power::Category>(i));
    prevTileJ_.clear();
    if (telem_ != nullptr && telem_->config().perTile)
        prevTileJ_ = chip_->tileCoreEnergyJ();
    prevNoc_ = chip_->memSystem().noc().stats();
    prevInsts_ = chip_->totalInsts();
}

void
System::recordWindowTelemetry(double window_s,
                              const std::array<double, 3> &true_p,
                              const power::RailEnergy &delta,
                              const power::RailEnergy &clock_w,
                              const power::RailEnergy &leak_w)
{
    const double t = sampleClockS_;
    const auto rec = [&](std::size_t id, double v) {
        telem_->record(id, t, window_s, v);
    };
    rec(tids_.vddW, true_p[0]);
    rec(tids_.vcsW, true_p[1]);
    rec(tids_.vioW, true_p[2]);
    rec(tids_.onChipW, true_p[0] + true_p[1]);
    rec(tids_.dynamicW, delta.onChipCoreAndSram() / window_s);
    rec(tids_.clockW, clock_w.onChipCoreAndSram());
    rec(tids_.leakW, leak_w.onChipCoreAndSram());
    rec(tids_.activeJ, delta.onChipCoreAndSram());
    for (std::size_t i = 0; i < power::kNumCategories; ++i) {
        const power::RailEnergy cur =
            chip_->ledger().category(static_cast<power::Category>(i));
        rec(tids_.catJ[i], (cur - prevCatJ_[i]).onChipCoreAndSram());
        prevCatJ_[i] = cur;
    }
    const arch::NocStats noc_now = chip_->memSystem().noc().stats();
    const arch::NocStats d = noc_now.delta(prevNoc_);
    prevNoc_ = noc_now;
    rec(tids_.nocFlits, static_cast<double>(d.flits));
    rec(tids_.nocFlitHops, static_cast<double>(d.flitHops));
    rec(tids_.nocToggledBits, static_cast<double>(d.toggledBits));
    rec(tids_.nocFlitsPerS, static_cast<double>(d.flits) / window_s);
    rec(tids_.dieC, thermal_.dieTempC());
    rec(tids_.packageC, thermal_.packageTempC());
    const std::uint64_t insts_now = chip_->totalInsts();
    rec(tids_.insts, static_cast<double>(insts_now - prevInsts_));
    prevInsts_ = insts_now;
    rec(tids_.activeThreads,
        static_cast<double>(chip_->activeThreads()));
    const std::array<double, 3> rail_v{effVddV_, opts_.vcsV, opts_.vioV};
    for (std::size_t r = 0; r < power::kNumRails; ++r) {
        rec(tids_.railW[r], true_p[r]);
        rec(tids_.railV[r], rail_v[r]);
        rec(tids_.railA[r], true_p[r] / rail_v[r]);
    }
    if (!tids_.tileJ.empty()) {
        const std::vector<double> tile_now = chip_->tileCoreEnergyJ();
        for (std::size_t i = 0; i < tids_.tileJ.size(); ++i) {
            rec(tids_.tileJ[i], tile_now[i] - prevTileJ_[i]);
            prevTileJ_[i] = tile_now[i];
        }
    }
}

void
System::attachGovernor(governor::Governor *gov)
{
    piton_assert(gov == nullptr || !staticDuty_,
                 "governor and SystemOptions::tileFreqMhz are mutually "
                 "exclusive — the governor owns the duty tables");
    gov_ = gov;
    if (gov_ == nullptr) {
        // Detach: drop every gate so ungoverned stepping resumes.
        for (TileId t = 0; t < opts_.cfg.piton.tileCount; ++t)
            chip_->setTileGated(t, false);
        gatedTiles_ = 0;
        return;
    }
    governor::Platform plat;
    plat.piton = &opts_.cfg.piton;
    plat.vf = power::VfParams{};
    plat.speedFactor = instance_.speedFactor;
    plat.nominalVddV = effVddV_;
    plat.nominalFreqMhz = effClockMhz_;
    gov_->init(plat);
    snapshotGovernorBaselines();
}

void
System::snapshotGovernorBaselines()
{
    piton_assert(gov_ != nullptr, "governor baselines without governor");
    const std::uint32_t n = opts_.cfg.piton.tileCount;
    const double step = gov_->vfModel().params().freqStepMhz;
    dutyDen_ = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(effClockMhz_ / step)));
    dutyNum_.assign(n, dutyDen_);
    dutyAcc_.assign(n, 0);
    tileFreqCmd_.assign(n, effClockMhz_);
    gatedTiles_ = 0;
    for (TileId t = 0; t < n; ++t)
        chip_->setTileGated(t, false);
    epochWindow_ = 0;
    epochCycles_ = 0;
    epochTimeS_ = 0.0;
    epochRailJ_ = {};
    govPrevInsts_ = chip_->tileInsts();
    govPrevStall_ = chip_->tileMemStallCycles();
    govPrevTileJ_ = chip_->tileCoreEnergyJ();
}

void
System::applyGovernorGates()
{
    const std::size_t n = dutyNum_.size();
    gatedTiles_ = 0;
    bool progress = false;
    for (std::size_t t = 0; t < n; ++t) {
        // Bresenham: a tile with num/den duty runs exactly num of every
        // den windows, evenly interleaved, whatever the epoch phase.
        dutyAcc_[t] += dutyNum_[t];
        const bool open = dutyAcc_[t] >= dutyDen_;
        if (open)
            dutyAcc_[t] -= dutyDen_;
        chip_->setTileGated(static_cast<TileId>(t), !open);
        if (!open)
            ++gatedTiles_;
        else if (!chip_->core(static_cast<TileId>(t)).allThreadsDone())
            progress = true;
    }
    if (progress || gatedTiles_ == 0)
        return;
    // Progress guard: some unfinished core must run every window, or
    // run() would report allHalted (and the stall detector would trip)
    // while gated work still exists.  Pick the unfinished tile whose
    // duty debt is largest (ties to the lowest id — deterministic).
    std::size_t pick = n;
    std::uint32_t best = 0;
    for (std::size_t t = 0; t < n; ++t) {
        if (chip_->core(static_cast<TileId>(t)).allThreadsDone())
            continue;
        if (pick == n || dutyAcc_[t] > best) {
            pick = t;
            best = dutyAcc_[t];
        }
    }
    if (pick != n) {
        chip_->setTileGated(static_cast<TileId>(pick), false);
        --gatedTiles_;
    }
}

void
System::governorEpochWindow(Cycle cycles, double window_s,
                            const power::RailEnergy &delta,
                            const power::RailEnergy &clock_w,
                            const power::RailEnergy &leak_w)
{
    epochCycles_ += cycles;
    epochTimeS_ += window_s;
    for (std::size_t r = 0; r < power::kNumRails; ++r) {
        const auto rail = static_cast<power::Rail>(r);
        epochRailJ_[r] += delta.get(rail)
                          + (clock_w.get(rail) + leak_w.get(rail))
                                * window_s;
    }
    if (++epochWindow_ < gov_->epochWindows())
        return;

    governor::EpochObs obs;
    obs.timeS = sampleClockS_;
    obs.epochS = epochTimeS_;
    obs.epochCycles = epochCycles_;
    obs.onChipPowerW = (epochRailJ_[0] + epochRailJ_[1]) / epochTimeS_;
    for (std::size_t r = 0; r < power::kNumRails; ++r)
        obs.railPowerW[r] = epochRailJ_[r] / epochTimeS_;
    obs.dieTempC = thermal_.dieTempC();
    obs.packageTempC = thermal_.packageTempC();
    obs.vddV = effVddV_;
    obs.freqMhz = effClockMhz_;
    const std::vector<std::uint64_t> insts = chip_->tileInsts();
    const std::vector<std::uint64_t> stall = chip_->tileMemStallCycles();
    const std::vector<double> tile_j = chip_->tileCoreEnergyJ();
    obs.tiles.resize(insts.size());
    for (std::size_t t = 0; t < insts.size(); ++t) {
        obs.tiles[t].insts = insts[t] - govPrevInsts_[t];
        obs.tiles[t].stallCycles = stall[t] - govPrevStall_[t];
        obs.tiles[t].energyJ = tile_j[t] - govPrevTileJ_[t];
        obs.tiles[t].freqMhz = tileFreqCmd_[t];
        obs.tiles[t].gated = dutyNum_[t] == 0;
    }

    const governor::Actuation act = gov_->controlEpoch(obs);
    if (act.changed)
        applyActuation(act);
    if (telem_ != nullptr)
        recordGovernorEpoch(obs);

    epochWindow_ = 0;
    epochCycles_ = 0;
    epochTimeS_ = 0.0;
    epochRailJ_ = {};
    govPrevInsts_ = insts;
    govPrevStall_ = stall;
    govPrevTileJ_ = tile_j;
}

void
System::applyActuation(const governor::Actuation &act)
{
    piton_assert(act.freqMhz > 0.0 && act.vddV > 0.0,
                 "actuation must carry a live operating point");
    effClockMhz_ = act.freqMhz;
    effVddV_ = act.vddV;
    // The chip-wide point feeds the energy model (CV^2 scaling) and the
    // board's VDD supply; VCS/VIO stay at their configured setpoints.
    energy_.setOperatingPoint(effVddV_, opts_.vcsV);
    board_.setSupply(power::Rail::Vdd, effVddV_);

    const double step = gov_->vfModel().params().freqStepMhz;
    dutyDen_ = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(effClockMhz_ / step)));
    const std::size_t n = dutyNum_.size();
    for (std::size_t t = 0; t < n; ++t) {
        const double f =
            act.tileFreqMhz.empty() ? effClockMhz_ : act.tileFreqMhz[t];
        if (f <= 0.0) {
            tileFreqCmd_[t] = 0.0;
            dutyNum_[t] = 0;
        } else {
            tileFreqCmd_[t] = std::min(f, effClockMhz_);
            const long long num = std::llround(tileFreqCmd_[t] / step);
            dutyNum_[t] = static_cast<std::uint32_t>(std::min<long long>(
                std::max<long long>(num, 1), dutyDen_));
        }
        // Keep accumulators in range under a shrinking denominator.
        if (dutyAcc_[t] >= dutyDen_)
            dutyAcc_[t] = dutyDen_ - 1;
    }
}

void
System::recordGovernorEpoch(const governor::EpochObs &obs)
{
    namespace ts = telemetry::schema;
    using telemetry::Downsample;
    using telemetry::Unit;
    if (!govTids_.ready) {
        // Lazy and idempotent (defineSeries dedups by name), so a
        // resumed recorder rebinds to the restored schema ids.
        govTids_.freqMhz = telem_->defineSeries(
            ts::kGovernorFreqMhz, Unit::Hertz, Downsample::Mean);
        govTids_.vddV = telem_->defineSeries(ts::kGovernorVddV, Unit::Volts,
                                             Downsample::Mean);
        govTids_.powerW = telem_->defineSeries(
            ts::kGovernorPowerW, Unit::Watts, Downsample::Mean);
        govTids_.capW = telem_->defineSeries(ts::kGovernorCapW, Unit::Watts,
                                             Downsample::Mean);
        govTids_.gatedTiles = telem_->defineSeries(
            ts::kGovernorGatedTiles, Unit::Count, Downsample::Mean);
        govTids_.epochs = telem_->defineSeries(
            ts::kGovernorEpochs, Unit::Count, Downsample::Sum);
        govTids_.ready = true;
    }
    const double t = sampleClockS_;
    const double dt = obs.epochS;
    telem_->record(govTids_.freqMhz, t, dt, effClockMhz_);
    telem_->record(govTids_.vddV, t, dt, effVddV_);
    telem_->record(govTids_.powerW, t, dt, obs.onChipPowerW);
    telem_->record(govTids_.capW, t, dt, gov_->params().capW);
    std::uint32_t hard_gated = 0;
    for (const std::uint32_t num : dutyNum_)
        hard_gated += num == 0 ? 1 : 0;
    telem_->record(govTids_.gatedTiles, t, dt,
                   static_cast<double>(hard_gated));
    telem_->record(govTids_.epochs, t, dt, 1.0);
}

board::PowerMeasurement
System::measure(std::uint32_t samples)
{
    // Warm up caches and power, then pin the thermal network at the
    // equilibrium for the observed steady-state power ("after the
    // system reaches a steady state", Section III-A).
    double warm_power = 0.0;
    const Cycle chunk = opts_.cyclesPerSample;
    const std::uint32_t warm_windows = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(opts_.warmupCycles / chunk));
    for (std::uint32_t i = 0; i < warm_windows; ++i) {
        const auto p = windowTruePowers(chunk);
        warm_power = p[0] + p[1];
    }
    // Pin the thermal state at equilibrium, then re-settle: leakage
    // depends on temperature, so the power/temperature pair converges
    // over a few pin iterations.
    for (int pin = 0; pin < 4; ++pin) {
        thermal_.setState(thermal_.steadyState(warm_power));
        const auto p = windowTruePowers(chunk);
        warm_power = p[0] + p[1];
    }
    thermal_.setState(thermal_.steadyState(warm_power));

    return board::collectMeasurement(
        board_, samples,
        [this, chunk] { return windowTruePowers(chunk); }, telem_,
        sampleClockS_, static_cast<double>(chunk) / coreClockHz());
}

board::PowerMeasurement
System::measureStatic(std::uint32_t samples)
{
    // Clocks grounded: only leakage flows; the die sits barely above
    // ambient.
    double temp = thermal_.params().ambientC;
    double leak = 0.0;
    for (int i = 0; i < 100; ++i) {
        const power::RailEnergy l =
            energy_.leakagePowerW(temp, instance_.leakFactor);
        leak = l.onChipCoreAndSram();
        const double new_temp = thermal_.steadyState(leak).dieC;
        if (std::abs(new_temp - temp) < 1e-6)
            break;
        temp = 0.5 * (temp + new_temp);
    }
    const power::RailEnergy l =
        energy_.leakagePowerW(temp, instance_.leakFactor);
    // The chip is not advancing, but the monitors still tick at the
    // sample cadence: space the measured samples on the sample clock
    // and advance it past the collection interval.
    const double dt_s =
        static_cast<double>(opts_.cyclesPerSample) / coreClockHz();
    const board::PowerMeasurement m = board::collectMeasurement(
        board_, samples,
        [&l] {
            return std::array<double, 3>{l.get(power::Rail::Vdd),
                                         l.get(power::Rail::Vcs),
                                         l.get(power::Rail::Vio)};
        },
        telem_, sampleClockS_, dt_s);
    if (telem_)
        sampleClockS_ += static_cast<double>(samples) * dt_s;
    return m;
}

CompletionResult
System::runToCompletion(Cycle max_cycles)
{
    CompletionResult res;
    const power::RailEnergy start_ledger = chip_->ledger().total();
    const Cycle start_cycle = chip_->now();
    const Cycle chunk = opts_.cyclesPerSample;

    // Consecutive run windows in which the chip advanced zero cycles
    // without halting.  Such windows represent no simulated time, so
    // they must not be charged clock-tree/leakage energy; and since a
    // chip that makes no progress will never make progress on its own,
    // a short streak is enough to declare the run stalled.
    constexpr int kMaxNoProgressWindows = 3;
    int no_progress = 0;

    // Under a governor the clock can change between windows, so wall
    // time is the sum of per-window durations, not cycles / one clock.
    double run_s = 0.0;
    double idle_energy_j = 0.0;
    power::RailEnergy prev_chunk = start_ledger;
    while (chip_->now() - start_cycle < max_cycles) {
        const Cycle remaining = max_cycles - (chip_->now() - start_cycle);
        const Cycle before = chip_->now();
        if (dutyActive())
            applyGovernorGates();
        const auto r = chip_->run(std::min(chunk, remaining));
        const Cycle elapsed = chip_->now() - before;
        // allHalted ignores duty-gated cores; the ground truth for "the
        // workload finished" under live duty gates is allThreadsDone().
        const bool done =
            r.allHalted && (!dutyActive() || chip_->allThreadsDone());
        if (elapsed == 0) {
            if (done) {
                res.completed = true;
                break;
            }
            if (++no_progress >= kMaxNoProgressWindows) {
                res.stalled = true;
                break;
            }
            continue;
        }
        no_progress = 0;
        const double dt = static_cast<double>(elapsed) / coreClockHz();
        const power::RailEnergy clock_re = clockTreePowerW();
        const power::RailEnergy leak_re =
            energy_.leakagePowerW(thermal_.dieTempC(), instance_.leakFactor);
        const double clock_w = clock_re.onChipCoreAndSram();
        const double leak_w = leak_re.onChipCoreAndSram();
        idle_energy_j += (clock_w + leak_w) * dt;
        const power::RailEnergy chunk_delta =
            chip_->ledger().total() - prev_chunk;
        prev_chunk = chip_->ledger().total();
        thermal_.step(clock_w + leak_w
                          + chunk_delta.onChipCoreAndSram() / dt,
                      dt);
        if (telem_) {
            std::array<double, 3> p{};
            for (std::size_t r = 0; r < power::kNumRails; ++r) {
                const auto rail = static_cast<power::Rail>(r);
                p[r] = chunk_delta.get(rail) / dt + clock_re.get(rail)
                       + leak_re.get(rail);
            }
            recordWindowTelemetry(dt, p, chunk_delta, clock_re, leak_re);
        }
        if (gov_ != nullptr)
            governorEpochWindow(elapsed, dt, chunk_delta, clock_re,
                                leak_re);
        sampleClockS_ += dt;
        run_s += dt;
        // The hook observes the fully-accounted window; a completed run
        // still reports completed even if the hook also asked to stop.
        bool hook_stop = false;
        if (windowHook_)
            hook_stop = !windowHook_(
                WindowObs{elapsed, dt, (clock_w + leak_w) * dt, done});
        if (done) {
            res.completed = true;
            break;
        }
        if (hook_stop)
            break;
    }

    res.cycles = chip_->now() - start_cycle;
    res.seconds = gov_ != nullptr
                      ? run_s
                      : static_cast<double>(res.cycles) / coreClockHz();
    res.insts = chip_->totalInsts();
    const power::RailEnergy delta = chip_->ledger().total() - start_ledger;
    prevLedger_ = chip_->ledger().total();
    res.activeEnergyJ = delta.onChipCoreAndSram();
    res.idleEnergyJ = idle_energy_j;
    res.onChipEnergyJ = res.activeEnergyJ + res.idleEnergyJ;
    return res;
}

void
System::serializeSystem(ckpt::Archive &ar)
{
    // Identity fingerprint: a checkpoint only restores into a System
    // built with the same operating point and sampling cadence (the
    // chip adds its own structural fingerprint).  fastPath and
    // engineThreads are deliberately absent — every engine/thread-count
    // combination is bit-identical, so a checkpoint taken under one may
    // resume under any other.
    ar.beginSection("sys.meta");
    ar.ioExpect(static_cast<std::int64_t>(opts_.chipId), "chip id");
    ar.ioExpect(opts_.seed, "seed");
    ar.ioExpect(opts_.vddV, "vdd setpoint");
    ar.ioExpect(opts_.vcsV, "vcs setpoint");
    ar.ioExpect(opts_.vioV, "vio setpoint");
    ar.ioExpect(opts_.coreClockMhz, "core clock");
    ar.ioExpect(opts_.cyclesPerSample, "cycles per sample");
    ar.ioExpect(static_cast<std::uint64_t>(opts_.tileFreqMhz.size()),
                "static tile-frequency count");
    for (const double f : opts_.tileFreqMhz)
        ar.ioExpect(f, "static tile frequency");
    ar.endSection();

    chip_->serialize(ar);

    ar.beginSection("sys.board");
    board_.serialize(ar);
    ar.endSection();

    ar.beginSection("sys.thermal");
    thermal_.serialize(ar);
    ar.endSection();

    // Per-window baselines: restoring them re-aims the next window's
    // deltas at the saved ledger/counter values, which is what makes a
    // resumed run's telemetry continue seamlessly (and what makes the
    // attach-then-restore warm-start pattern equal to attaching after
    // an in-place warmup).
    ar.beginSection("sys.sim");
    prevLedger_.serialize(ar);
    ar.io(sampleClockS_);
    for (auto &c : prevCatJ_)
        c.serialize(ar);
    ar.io(prevNoc_.packets);
    ar.io(prevNoc_.flits);
    ar.io(prevNoc_.flitHops);
    ar.io(prevNoc_.toggledBits);
    ar.io(prevInsts_);
    std::uint64_t nt = ar.ioSize(prevTileJ_.size(), 8);
    if (ar.loading())
        prevTileJ_.resize(static_cast<std::size_t>(nt));
    for (auto &v : prevTileJ_)
        ar.io(v);
    ar.endSection();

    // Ungoverned static duty gating: the tables themselves derive from
    // SystemOptions (fingerprinted above), but the Bresenham
    // accumulator phase is run state and must ride along for a resumed
    // placed run to gate the same windows an uninterrupted one would.
    // Unconditional when active: the fingerprint guarantees a static-
    // duty image only restores into a static-duty system.
    if (staticDuty_) {
        ar.beginSection("sys.duty");
        ar.ioExpect(dutyDen_, "duty denominator");
        std::uint64_t nd = ar.ioSize(dutyAcc_.size(), 4);
        piton_assert(static_cast<std::size_t>(nd) == dutyAcc_.size(),
                     "sys.duty accumulator count");
        for (auto &v : dutyAcc_)
            ar.io(v);
        ar.endSection();
        if (ar.loading()) {
            gatedTiles_ = 0;
            for (TileId t = 0; t < opts_.cfg.piton.tileCount; ++t)
                chip_->setTileGated(t, false);
        }
    }

    // Governor control-loop state rides along only when a governor is
    // attached at save time; restoring it requires attaching a governor
    // of the same policy first (the name is fingerprinted).  Like the
    // telemetry section below, a governed System restoring an
    // ungoverned checkpoint just re-baselines (restoreBytes).
    const bool do_governor =
        gov_ != nullptr && (ar.saving() || ar.hasSection("sys.governor"));
    if (do_governor) {
        ar.beginSection("sys.governor");
        ar.ioExpect(std::string(gov_->name()), "governor policy");
        ar.io(effVddV_);
        ar.io(effClockMhz_);
        ar.io(dutyDen_);
        std::uint64_t ng = ar.ioSize(dutyNum_.size(), 4);
        if (ar.loading()) {
            const auto sz = static_cast<std::size_t>(ng);
            dutyNum_.resize(sz);
            dutyAcc_.resize(sz);
            tileFreqCmd_.resize(sz);
            govPrevInsts_.resize(sz);
            govPrevStall_.resize(sz);
            govPrevTileJ_.resize(sz);
        }
        for (auto &v : dutyNum_)
            ar.io(v);
        for (auto &v : dutyAcc_)
            ar.io(v);
        for (auto &v : tileFreqCmd_)
            ar.io(v);
        for (auto &v : govPrevInsts_)
            ar.io(v);
        for (auto &v : govPrevStall_)
            ar.io(v);
        for (auto &v : govPrevTileJ_)
            ar.io(v);
        ar.io(epochWindow_);
        ar.io(epochCycles_);
        ar.io(epochTimeS_);
        for (auto &j : epochRailJ_)
            ar.io(j);
        gov_->serialize(ar);
        ar.endSection();
        if (ar.loading()) {
            // Re-realize the restored operating point: the energy
            // model's V-scaling and the board's VDD setpoint are not
            // part of any section's payload.  Core gate flags are
            // derived per window, never stored.
            energy_.setOperatingPoint(effVddV_, opts_.vcsV);
            board_.setSupply(power::Rail::Vdd, effVddV_);
            gatedTiles_ = 0;
            for (TileId t = 0; t < opts_.cfg.piton.tileCount; ++t)
                chip_->setTileGated(t, false);
        }
    }

    // Extension-client state (the sampling interval profiler today,
    // DESIGN.md §14) rides along only while a client is attached; same
    // attach-before-restore contract as the recorder below.
    const bool do_client =
        client_ != nullptr
        && (ar.saving() || ar.hasSection(client_->checkpointSection()));
    if (do_client) {
        ar.beginSection(client_->checkpointSection());
        client_->serializeClient(ar);
        ar.endSection();
    }

    // Recorder contents ride along only when one is attached at save
    // time; on restore the section is applied only if a recorder is
    // attached to receive it (attach first, then restore).
    const bool do_telemetry =
        telem_ != nullptr
        && (ar.saving() || ar.hasSection("sys.telemetry"));
    if (do_telemetry) {
        ar.beginSection("sys.telemetry");
        telem_->serialize(ar);
        ar.endSection();
    }
}

std::vector<std::uint8_t>
System::saveBytes()
{
    ckpt::Archive ar = ckpt::Archive::forSave();
    serializeSystem(ar);
    return ar.finish();
}

void
System::save(const std::string &path)
{
    ckpt::writeFile(path, saveBytes());
}

void
System::restoreBytes(const std::vector<std::uint8_t> &bytes,
                     bool mark_telemetry_event)
{
    ckpt::Archive ar = ckpt::Archive::forLoad(bytes);
    serializeSystem(ar);
    // A checkpoint saved without a recorder never maintained the
    // per-window delta baselines; if this system has one attached, the
    // deltas must start from the restored counters — exactly what a
    // cold run gets by attaching after its warmup (warm_start.hh relies
    // on this for bit-identical fan-out).
    if (telem_ != nullptr && !ar.hasSection("sys.telemetry"))
        snapshotTelemetryBaselines();
    // Same for the governor: a checkpoint saved ungoverned restores
    // into a governed System by starting a fresh control epoch at the
    // restored counters (the nominal operating point still applies).
    if (gov_ != nullptr && !ar.hasSection("sys.governor"))
        snapshotGovernorBaselines();
    // And the extension client: an image without its section restarts
    // the client on the restored counters.
    if (client_ != nullptr
        && !ar.hasSection(client_->checkpointSection()))
        client_->rebaseline(*this);
    if (mark_telemetry_event && telem_) {
        const std::size_t id =
            telem_->defineSeries(telemetry::schema::kEventRestore,
                                 telemetry::Unit::Count,
                                 telemetry::Downsample::Sum);
        telem_->record(id, sampleClockS_,
                       static_cast<double>(opts_.cyclesPerSample)
                           / coreClockHz(),
                       1.0);
    }
}

void
System::restore(const std::string &path, bool mark_telemetry_event)
{
    restoreBytes(ckpt::readFile(path), mark_telemetry_event);
}

} // namespace piton::sim
