/**
 * @file
 * Warm-started sweep fan-out over a shared simulation prefix.
 *
 * Many sweeps (fan effectiveness, slice mapping, power caps) run the
 * same workload to a steady state and only then diverge in a parameter
 * that takes effect going forward.  Simulating that shared prefix once,
 * checkpointing it, and forking each sweep point from the checkpoint
 * produces results bit-identical to re-simulating the prefix per point
 * — the checkpoint restores the complete state, including FP
 * accumulator bit patterns and RNG stream positions — while paying the
 * prefix cost once instead of once per point (bench_ablation_warmstart
 * demonstrates and verifies this).
 *
 * Determinism contract: each fork is a fresh System restored from the
 * same immutable byte image, so points are independent and the fan-out
 * is bit-identical at any thread count (common/parallel.hh).
 */

#ifndef PITON_SIM_WARM_START_HH
#define PITON_SIM_WARM_START_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/parallel.hh"
#include "sim/system.hh"

namespace piton::sim
{

class SweepWarmStart
{
  public:
    /** Capture the shared prefix: the donor's full checkpoint image
     *  plus its options (every fork is constructed identically). */
    static SweepWarmStart
    capture(System &sys)
    {
        SweepWarmStart ws;
        ws.opts_ = sys.options();
        ws.bytes_ = std::make_shared<const std::vector<std::uint8_t>>(
            sys.saveBytes());
        return ws;
    }

    /** Rebuild a warm start from a previously saved image (e.g. a
     *  --checkpoint-out file): `opts` must match the options the image
     *  was saved under — the restore fingerprints catch mismatches. */
    static SweepWarmStart
    fromImage(SystemOptions opts, std::vector<std::uint8_t> bytes)
    {
        return fromShared(
            std::move(opts),
            std::make_shared<const std::vector<std::uint8_t>>(
                std::move(bytes)));
    }

    /** Like fromImage(), but sharing an immutable image already held
     *  elsewhere (the service's prefix cache) instead of copying it. */
    static SweepWarmStart
    fromShared(SystemOptions opts,
               std::shared_ptr<const std::vector<std::uint8_t>> bytes)
    {
        SweepWarmStart ws;
        ws.opts_ = std::move(opts);
        ws.bytes_ = std::move(bytes);
        return ws;
    }

    const SystemOptions &options() const { return opts_; }
    const std::vector<std::uint8_t> &bytes() const { return *bytes_; }
    /** The image as a shareable handle (for content-addressed stores). */
    std::shared_ptr<const std::vector<std::uint8_t>>
    sharedBytes() const
    {
        return bytes_;
    }

    /** A fresh System with the prefix restored.  (System is
     *  non-movable, so forks live behind unique_ptr.) */
    std::unique_ptr<System>
    fork() const
    {
        auto sys = std::make_unique<System>(opts_);
        sys->restoreBytes(*bytes_);
        return sys;
    }

    /** fork() with a recorder attached *before* the restore, so saved
     *  ring contents (if the donor recorded any) land in it and the
     *  per-window baselines line up for seamless recording. */
    std::unique_ptr<System>
    fork(telemetry::TelemetryRecorder &rec) const
    {
        auto sys = std::make_unique<System>(opts_);
        sys->attachTelemetry(&rec);
        sys->restoreBytes(*bytes_);
        return sys;
    }

    /** Run fn(i, fork) for i in [0, n) across `threads` workers; each
     *  point gets its own fork, so iterations are independent and the
     *  results are bit-identical at any thread count. */
    void
    forEachPoint(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t, System &)> &fn) const
    {
        parallelFor(n, threads, [&](std::size_t i) {
            const std::unique_ptr<System> sys = fork();
            fn(i, *sys);
        });
    }

  private:
    SweepWarmStart() = default;

    SystemOptions opts_;
    std::shared_ptr<const std::vector<std::uint8_t>> bytes_;
};

} // namespace piton::sim

#endif // PITON_SIM_WARM_START_HH
