#include "service/response.hh"

namespace piton::service
{

namespace
{

void
encodeRailStats(WireWriter &w, const RailStatsWire &s)
{
    w.u64(s.count);
    w.f64(s.meanW);
    w.f64(s.stddevW);
    w.f64(s.minW);
    w.f64(s.maxW);
}

RailStatsWire
decodeRailStats(WireReader &r)
{
    RailStatsWire s;
    s.count = r.u64();
    s.meanW = r.f64();
    s.stddevW = r.f64();
    s.minW = r.f64();
    s.maxW = r.f64();
    return s;
}

constexpr std::size_t kMaxResultPoints = 4096;

} // namespace

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "ok";
    case Status::Error:
        return "error";
    case Status::Shed:
        return "shed";
    case Status::DeadlineExpired:
        return "deadline-expired";
    case Status::Cancelled:
        return "cancelled";
    case Status::StatusCount:
        break;
    }
    return "?";
}

std::vector<std::uint8_t>
ExperimentResponse::encodeBody() const
{
    WireWriter w;
    w.u16(static_cast<std::uint16_t>(status));
    w.u16(static_cast<std::uint16_t>(kind));
    w.str(error);
    switch (kind) {
    case Kind::MeasurePower:
    case Kind::MeasureStatic:
        encodeRailStats(w, measure.vdd);
        encodeRailStats(w, measure.vcs);
        encodeRailStats(w, measure.vio);
        encodeRailStats(w, measure.onChip);
        w.f64(measure.dieTempC);
        break;
    case Kind::EnergyRun:
    case Kind::PlacedRun:
        w.u8(energy.completed);
        w.u8(energy.stalled);
        w.u64(energy.cycles);
        w.f64(energy.seconds);
        w.u64(energy.insts);
        w.f64(energy.onChipEnergyJ);
        w.f64(energy.activeEnergyJ);
        w.f64(energy.idleEnergyJ);
        w.u8(energy.sampled); // result format v2
        w.f64(energy.energyCi95J);
        w.f64(energy.epiCi95);
        w.f64(energy.simulatedFrac);
        break;
    case Kind::Sweep:
        w.u32(static_cast<std::uint32_t>(points.size()));
        for (const SweepPointResult &p : points) {
            w.f64(p.fanEffectiveness);
            encodeRailStats(w, p.onChip);
            w.f64(p.finalDieC);
        }
        break;
    case Kind::VfCurve:
        w.u32(static_cast<std::uint32_t>(vfPoints.size()));
        for (const VfPointResult &p : vfPoints) {
            w.f64(p.vddV);
            w.f64(p.fmaxMhz);
            w.f64(p.nextStepMhz);
            w.u8(p.thermallyLimited);
            w.f64(p.dieTempC);
        }
        break;
    case Kind::KindCount:
        break;
    }
    return w.take();
}

ExperimentResponse
ExperimentResponse::decodeBody(const std::vector<std::uint8_t> &b)
{
    WireReader r(b);
    ExperimentResponse resp;
    const std::uint16_t raw_status = r.u16();
    if (raw_status >= static_cast<std::uint16_t>(Status::StatusCount))
        throw ServiceError("bad response status");
    resp.status = static_cast<Status>(raw_status);
    const std::uint16_t raw_kind = r.u16();
    if (raw_kind >= static_cast<std::uint16_t>(Kind::KindCount))
        throw ServiceError("bad response kind");
    resp.kind = static_cast<Kind>(raw_kind);
    resp.error = r.str();
    switch (resp.kind) {
    case Kind::MeasurePower:
    case Kind::MeasureStatic:
        resp.measure.vdd = decodeRailStats(r);
        resp.measure.vcs = decodeRailStats(r);
        resp.measure.vio = decodeRailStats(r);
        resp.measure.onChip = decodeRailStats(r);
        resp.measure.dieTempC = r.f64();
        break;
    case Kind::EnergyRun:
    case Kind::PlacedRun:
        resp.energy.completed = r.u8();
        resp.energy.stalled = r.u8();
        resp.energy.cycles = r.u64();
        resp.energy.seconds = r.f64();
        resp.energy.insts = r.u64();
        resp.energy.onChipEnergyJ = r.f64();
        resp.energy.activeEnergyJ = r.f64();
        resp.energy.idleEnergyJ = r.f64();
        resp.energy.sampled = r.u8(); // result format v2
        resp.energy.energyCi95J = r.f64();
        resp.energy.epiCi95 = r.f64();
        resp.energy.simulatedFrac = r.f64();
        break;
    case Kind::Sweep: {
        const std::uint32_t n = r.u32();
        if (n > kMaxResultPoints)
            throw ServiceError("too many sweep points in response");
        resp.points.resize(n);
        for (SweepPointResult &p : resp.points) {
            p.fanEffectiveness = r.f64();
            p.onChip = decodeRailStats(r);
            p.finalDieC = r.f64();
        }
        break;
    }
    case Kind::VfCurve: {
        const std::uint32_t n = r.u32();
        if (n > kMaxResultPoints)
            throw ServiceError("too many V-f points in response");
        resp.vfPoints.resize(n);
        for (VfPointResult &p : resp.vfPoints) {
            p.vddV = r.f64();
            p.fmaxMhz = r.f64();
            p.nextStepMhz = r.f64();
            p.thermallyLimited = r.u8();
            p.dieTempC = r.f64();
        }
        break;
    }
    case Kind::KindCount:
        break;
    }
    r.expectEnd();
    return resp;
}

ExperimentResponse
ExperimentResponse::failure(Status status, Kind kind, std::string message)
{
    ExperimentResponse resp;
    resp.status = status;
    resp.kind = kind;
    resp.error = std::move(message);
    return resp;
}

std::vector<std::uint8_t>
encodeResponseEnvelope(bool served_from_cache,
                       const std::vector<std::uint8_t> &body)
{
    WireWriter w;
    w.u8(served_from_cache ? 1 : 0);
    w.blob(body);
    return w.take();
}

ResponseEnvelope
decodeResponseEnvelope(const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    ResponseEnvelope env;
    env.servedFromCache = r.u8() != 0;
    env.body = r.blob();
    r.expectEnd();
    return env;
}

} // namespace piton::service
