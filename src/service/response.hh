/**
 * @file
 * Service responses.  The encoded response *body* is the unit of
 * byte-identity: a cache hit replays the stored body verbatim, and the
 * acceptance contract is that it equals the body a cold run would
 * encode.  Anything that may legitimately differ between a hit and a
 * cold run (the servedFromCache marker, timings) therefore lives in
 * the envelope around the body, never inside it.
 *
 * Envelope layout (the Response frame payload):
 *     u8  servedFromCache
 *     u32 bodyLen | body[bodyLen]
 *
 * Body layout: status, kind, error string, then the kind's result
 * section.  All doubles are raw IEEE-754 bit patterns (wire.hh), so
 * bodies are comparable with memcmp.
 */

#ifndef PITON_SERVICE_RESPONSE_HH
#define PITON_SERVICE_RESPONSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/request.hh"
#include "service/wire.hh"

namespace piton::service
{

/** Bumped whenever the response body layout (or the meaning of any
 *  result field) changes; part of the cache key, so old entries are
 *  invalidated rather than replayed with a stale layout.
 *  v2: EnergyResult grew the sampled-estimate fields (sampled flag,
 *  CI bounds, simulated fraction) and serves PlacedRun too. */
inline constexpr std::uint32_t kResultFormatVersion = 2;

enum class Status : std::uint16_t
{
    Ok = 0,
    /** Request failed (bad parameters, simulation error); see error. */
    Error = 1,
    /** Admission control refused the request (backpressure). */
    Shed = 2,
    /** The deadline passed before the result was produced. */
    DeadlineExpired = 3,
    /** Cancelled by the client (or its connection went away). */
    Cancelled = 4,

    StatusCount
};

const char *statusName(Status s);

/** RunningStats snapshot (count + moments, bit-exact). */
struct RailStatsWire
{
    std::uint64_t count = 0;
    double meanW = 0.0;
    double stddevW = 0.0;
    double minW = 0.0;
    double maxW = 0.0;
};

/** MeasurePower / MeasureStatic result. */
struct MeasureResult
{
    RailStatsWire vdd, vcs, vio, onChip;
    double dieTempC = 0.0;
};

/** EnergyRun / PlacedRun result (mirrors sim::CompletionResult).  A
 *  sampled run (ExperimentRequest::sampledSlices > 0) reports the
 *  stitched estimate instead: seconds/onChipEnergyJ come from the
 *  ratio estimator, insts is exact from the profile, the CI fields are
 *  live, and the active/idle decomposition is not available (both 0 —
 *  slices replay total energy only). */
struct EnergyResult
{
    std::uint8_t completed = 0;
    std::uint8_t stalled = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    std::uint64_t insts = 0;
    double onChipEnergyJ = 0.0;
    double activeEnergyJ = 0.0;
    double idleEnergyJ = 0.0;
    /** Sampled-estimate section (result format v2). */
    std::uint8_t sampled = 0;
    double energyCi95J = 0.0;
    double epiCi95 = 0.0;
    double simulatedFrac = 0.0;
};

/** One Sweep tail's result: on-chip power stats over the recorded
 *  windows plus the final die temperature at that fan point. */
struct SweepPointResult
{
    double fanEffectiveness = 1.0;
    RailStatsWire onChip;
    double finalDieC = 0.0;
};

/** One VfCurve point (core::VfPoint, wire form). */
struct VfPointResult
{
    double vddV = 0.0;
    double fmaxMhz = 0.0;
    double nextStepMhz = 0.0;
    std::uint8_t thermallyLimited = 0;
    double dieTempC = 0.0;
};

struct ExperimentResponse
{
    Status status = Status::Ok;
    Kind kind = Kind::MeasurePower;
    std::string error;

    MeasureResult measure;               ///< MeasurePower / MeasureStatic
    EnergyResult energy;                 ///< EnergyRun
    std::vector<SweepPointResult> points; ///< Sweep
    std::vector<VfPointResult> vfPoints;  ///< VfCurve

    /** Encode/decode the response *body* (see file comment). */
    std::vector<std::uint8_t> encodeBody() const;
    static ExperimentResponse decodeBody(const std::vector<std::uint8_t> &b);

    /** Build an error-status response (not cacheable). */
    static ExperimentResponse failure(Status status, Kind kind,
                                      std::string message);
};

/** The Response frame payload: servedFromCache marker + body. */
std::vector<std::uint8_t>
encodeResponseEnvelope(bool served_from_cache,
                       const std::vector<std::uint8_t> &body);

struct ResponseEnvelope
{
    bool servedFromCache = false;
    std::vector<std::uint8_t> body;
};

ResponseEnvelope
decodeResponseEnvelope(const std::vector<std::uint8_t> &payload);

} // namespace piton::service

#endif // PITON_SERVICE_RESPONSE_HH
