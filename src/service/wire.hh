/**
 * @file
 * Wire encoding for the experiment service (DESIGN.md §11).
 *
 * Two layers:
 *
 *  - WireWriter/WireReader: the byte codec every request/response body
 *    goes through.  Fixed-width little-endian scalars, doubles as raw
 *    IEEE-754 bit patterns (byte-exact round trips, same rule as
 *    ckpt::Archive), strings and blobs with a u32 length prefix.
 *    Reads are bounds-checked and throw ServiceError on truncation —
 *    a malformed frame can never read out of bounds.
 *
 *  - Frames: the length-prefixed envelope on the TCP stream.
 *        u32 magic 'PSRV' | u16 wireVersion | u16 type |
 *        u64 requestId     | u32 payloadLen  | u32 payloadCrc |
 *        payload[payloadLen]
 *    The CRC (ckpt::crc32, the checkpoint subsystem's polynomial) lets
 *    the receiver reject corrupted frames before decoding.  requestId
 *    is chosen by the client and echoed in the response, so one
 *    connection can pipeline many requests and cancel by id.
 *
 * The body encoding doubles as the *canonical form* for cache keying:
 * the content-addressed result cache hashes exactly these bytes (see
 * request.hh), which is why the codec has no nondeterminism (no maps,
 * no pointers, no padding).
 */

#ifndef PITON_SERVICE_WIRE_HH
#define PITON_SERVICE_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

namespace piton::service
{

/** Thrown on malformed frames/bodies and client-side protocol errors. */
class ServiceError : public std::runtime_error
{
  public:
    explicit ServiceError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Bumped on any frame-layout or body-encoding change.
 *  v2: ExperimentRequest grew engineThreads (u32, after fastPath).
 *  v3: fleet-aware — Hello/HelloAck worker handshake, VersionError
 *      typed mismatch frames, StatsReply carries WorkerStats (worker
 *      id + threads ahead of the metrics).
 *  v4: search-aware — ExperimentRequest grew Kind::PlacedRun with
 *      placement + tileFreqSteps vectors and the sampled-run opt-in
 *      (sampledSlices, sampledIntervalInsns); EnergyResult grew the
 *      sampled-estimate section (result format v2). */
inline constexpr std::uint16_t kWireVersion = 4;

/**
 * Thrown when the peer speaks a different wire version.  Typed (rather
 * than a generic ServiceError) so callers can distinguish "deploy
 * mismatch, reconnecting won't help" from transient protocol damage —
 * the fleet coordinator must NOT fail over on it, and clients surface
 * it verbatim.  Carries both versions and, when known, the request id
 * of the offending frame so a server can address its VersionError
 * reply.
 */
class VersionMismatchError : public ServiceError
{
  public:
    VersionMismatchError(std::uint16_t got, std::uint16_t want,
                         std::uint64_t request_id = 0)
        : ServiceError("wire version mismatch: got "
                       + std::to_string(got) + ", want "
                       + std::to_string(want)),
          got_(got), want_(want), requestId_(request_id)
    {}

    std::uint16_t got() const { return got_; }
    std::uint16_t want() const { return want_; }
    std::uint64_t requestId() const { return requestId_; }

  private:
    std::uint16_t got_;
    std::uint16_t want_;
    std::uint64_t requestId_;
};

/** Frame magic "PSRV" (little-endian u32 on the wire). */
inline constexpr std::uint32_t kFrameMagic = 0x56525350u;

/** Refuse absurd payloads before allocating (a corrupted length field
 *  must not turn into a multi-gigabyte allocation). */
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024 * 1024;

enum class FrameType : std::uint16_t
{
    Request = 1,
    Response = 2,
    Cancel = 3,
    Ping = 4,
    Pong = 5,
    StatsQuery = 6,
    StatsReply = 7,
    Shutdown = 8,
    ShutdownAck = 9,
    /** Worker handshake (v3): client announces its version and name,
     *  server replies with HelloAck (version, worker id, threads). */
    Hello = 10,
    HelloAck = 11,
    /**
     * Typed version-mismatch reply (v3 servers).  The frame HEADER is
     * encoded with the *peer's* version number so the peer's strict
     * parser accepts it, and the payload layout below is frozen across
     * all future versions — it is the one frame both sides of any
     * version skew can decode.
     */
    VersionError = 12,
};

// ---- body codec -----------------------------------------------------

class WireWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u16(std::uint16_t v) { putLe(v, 2); }
    void u32(std::uint32_t v) { putLe(v, 4); }
    void u64(std::uint64_t v) { putLe(v, 8); }
    void f64(double v);
    void str(const std::string &s);
    void blob(const std::vector<std::uint8_t> &b);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    void putLe(std::uint64_t v, int n);

    std::vector<std::uint8_t> bytes_;
};

class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {}
    explicit WireReader(const std::vector<std::uint8_t> &bytes)
        : WireReader(bytes.data(), bytes.size())
    {}

    std::uint8_t u8();
    std::uint16_t u16() { return static_cast<std::uint16_t>(getLe(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(getLe(4)); }
    std::uint64_t u64() { return getLe(8); }
    double f64();
    std::string str();
    std::vector<std::uint8_t> blob();

    std::size_t remaining() const { return len_ - pos_; }
    /** Trailing bytes mean writer/reader layout disagreement. */
    void expectEnd() const;

  private:
    std::uint64_t getLe(int n);
    void need(std::size_t n) const;

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

// ---- framing --------------------------------------------------------

struct Frame
{
    FrameType type = FrameType::Ping;
    std::uint64_t requestId = 0;
    std::vector<std::uint8_t> payload;
};

/** Serialize a complete frame (header + CRC + payload).  The optional
 *  `wire_version` override exists for VersionError replies, which are
 *  stamped with the peer's version so its parser accepts them. */
std::vector<std::uint8_t> encodeFrame(const Frame &frame,
                                      std::uint16_t wire_version
                                      = kWireVersion);

/** Hello payload (client → server). */
struct HelloRequest
{
    std::uint16_t wireVersion = kWireVersion;
    std::string clientName;
};

/** HelloAck payload (server → client): the worker's registration
 *  card — identity the fleet coordinator routes and reports by. */
struct HelloReply
{
    std::uint16_t wireVersion = kWireVersion;
    std::string workerId;
    std::uint32_t schedulerThreads = 0;
};

std::vector<std::uint8_t> encodeHelloRequest(const HelloRequest &h);
HelloRequest decodeHelloRequest(const std::vector<std::uint8_t> &payload);
std::vector<std::uint8_t> encodeHelloReply(const HelloReply &h);
HelloReply decodeHelloReply(const std::vector<std::uint8_t> &payload);

/** VersionError payload.  FROZEN layout (u16 server, u16 client echo,
 *  str message): every future version must encode/decode it
 *  identically, or version skew becomes undiagnosable. */
struct VersionInfo
{
    std::uint16_t serverVersion = 0;
    std::uint16_t clientVersion = 0;
    std::string message;
};

std::vector<std::uint8_t> encodeVersionError(const VersionInfo &info);
VersionInfo decodeVersionError(const std::vector<std::uint8_t> &payload);

/**
 * Incremental frame decoder for one byte stream.  feed() appends raw
 * received bytes; next() pops the earliest complete frame, validating
 * magic, version, length bound, and payload CRC (throwing ServiceError
 * on any violation — the connection is then unrecoverable and should
 * be closed).  A version mismatch throws the typed
 * VersionMismatchError (with the offending frame's request id) so the
 * server can answer with a VersionError frame instead of silently
 * dropping the connection.
 */
class FrameParser
{
  public:
    void feed(const std::uint8_t *data, std::size_t len);
    bool next(Frame &out);

    std::size_t bufferedBytes() const { return buf_.size(); }

  private:
    std::deque<std::uint8_t> buf_;
};

} // namespace piton::service

#endif // PITON_SERVICE_WIRE_HH
