/**
 * @file
 * Sharded, content-addressed result cache (DESIGN.md §11).
 *
 * Keys are Hash128 digests of canonical request bytes (request.hh);
 * values are immutable byte payloads (encoded response bodies, or
 * checkpoint prefix images for the warm-start cache).  Three
 * guarantees:
 *
 *  - Integrity: every payload is stored with its CRC32 and re-verified
 *    on each hit.  A corrupted entry is evicted and reported as a
 *    miss, so the caller recomputes instead of serving garbage.
 *
 *  - Single-flight: concurrent requests for the same missing key
 *    coalesce — the first caller becomes the *leader* and computes,
 *    the rest block on the leader's future and share its payload.  A
 *    leader that fails abandons the flight; waiters then recompute
 *    individually (the error is not cached).
 *
 *  - Bounded memory: per-shard LRU lists, evicting from the
 *    least-recently-used end whenever the configured byte or entry
 *    budget is exceeded.
 *
 * Optional disk spill (`diskDir`): published entries are also written
 * to `<dir>/<keyhex>.res` — a content-addressed store that survives
 * restarts.  Misses fall back to disk; a corrupted or truncated file
 * is deleted and treated as a miss.  Disk entries record the same
 * version salt the in-memory key was derived with, so version bumps
 * invalidate them identically.
 */

#ifndef PITON_SERVICE_CACHE_HH
#define PITON_SERVICE_CACHE_HH

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"

namespace piton::service
{

/** Immutable shared payload bytes. */
using CachePayload = std::shared_ptr<const std::vector<std::uint8_t>>;

struct CacheConfig
{
    std::size_t shards = 8;
    /** Total payload-byte budget across shards (0 = unbounded). */
    std::size_t maxBytes = 256u * 1024 * 1024;
    /** Total entry budget across shards (0 = unbounded). */
    std::size_t maxEntries = 4096;
    /** Content-addressed spill directory ("" = memory only). */
    std::string diskDir;
};

struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Requests that joined another request's in-flight computation. */
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corruptRejected = 0;
    std::uint64_t diskHits = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
};

/** Internal lock-free hit/miss counters (cache.cc). */
struct CacheCounters;

class ResultCache
{
  public:
    explicit ResultCache(CacheConfig cfg = {});
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Outcome of acquire(): exactly one of the three cases. */
    struct Acquired
    {
        /** Set on a hit (memory or disk). */
        CachePayload payload;
        /** Set when another thread is computing this key; wait on it.
         *  A null payload from the future means the leader failed —
         *  recompute yourself. */
        std::shared_future<CachePayload> pending;
        /** True when this caller is the leader and must publish() or
         *  abandon() the key. */
        bool leader = false;

        bool hit() const { return payload != nullptr; }
    };

    /**
     * Look up `key`; on a miss, either join the in-flight computation
     * or become its leader.  A leader MUST eventually call publish()
     * or abandon() for the key (ServeGuard in scheduler.cc wraps
     * this).
     */
    Acquired acquire(const Hash128 &key);

    /** Plain lookup: no single-flight registration. */
    CachePayload lookup(const Hash128 &key);

    /** Store the leader's payload and wake all waiters. */
    void publish(const Hash128 &key, CachePayload payload);

    /** Leader failed: wake waiters with a null payload, cache nothing. */
    void abandon(const Hash128 &key);

    /** Insert without single-flight (warm-fill, tests). */
    void insert(const Hash128 &key, CachePayload payload);

    /** Drop every entry (memory only; disk files stay). */
    void clear();

    CacheStats stats() const;

    /** Test hook: flip one payload byte in place, as bit rot would.
     *  Returns false when the key is absent. */
    bool corruptEntryForTest(const Hash128 &key);

    /** Disk path an entry of `key` would spill to ("" if no diskDir). */
    std::string diskPathFor(const Hash128 &key) const;

  private:
    struct Entry
    {
        CachePayload payload;
        std::uint32_t crc = 0;
        /** Position in the shard's LRU list (front = most recent). */
        std::list<Hash128>::iterator lruPos;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<Hash128, Entry, Hash128Hasher> entries;
        std::list<Hash128> lru; ///< front = most recently used
        std::size_t bytes = 0;  ///< sum of cached payload sizes
        std::unordered_map<Hash128, std::shared_ptr<std::promise<CachePayload>>,
                           Hash128Hasher>
            inflight;
    };

    Shard &shardFor(const Hash128 &key);
    /** Insert under the shard lock; returns bytes freed by eviction. */
    void insertLocked(Shard &shard, const Hash128 &key,
                      CachePayload payload);
    void evictIfNeededLocked(Shard &shard);
    CachePayload tryDiskLoad(const Hash128 &key);
    void diskStore(const Hash128 &key, const CachePayload &payload);

    CacheConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<CacheCounters> counters_;
};

} // namespace piton::service

#endif // PITON_SERVICE_CACHE_HH
