/**
 * @file
 * Admission control + execution scheduling for the experiment service.
 *
 * The scheduler owns the worker pool (common/parallel.hh), the
 * content-addressed result cache, and the warm-start prefix cache.  A
 * submitted request is:
 *
 *  1. canonicalized (request.hh) — malformed requests fail here,
 *  2. admitted or shed: at most `maxPending` requests may be queued or
 *     running; beyond that the request is rejected immediately with
 *     Status::Shed instead of growing an unbounded queue,
 *  3. keyed and looked up: an exact cache hit returns the stored body
 *     byte-identically; concurrent misses on the same key coalesce
 *     (single-flight) so the experiment runs once,
 *  4. executed on the pool with its deadline/cancel control; only Ok
 *     responses are published to the cache.
 *
 * Per-request latency (submit to completion) feeds a bounded reservoir
 * from which metrics() derives p50/p99.  exportTelemetry() publishes
 * the service gauges under the telemetry::schema::kService* names.
 */

#ifndef PITON_SERVICE_SCHEDULER_HH
#define PITON_SERVICE_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/parallel.hh"
#include "service/cache.hh"
#include "service/executor.hh"
#include "service/request.hh"
#include "service/response.hh"

namespace piton::telemetry
{
class TelemetryRecorder;
}

namespace piton::service
{

struct SchedulerConfig
{
    /** Worker threads (0 = all hardware threads). */
    unsigned threads = 0;
    /** Admission bound: max requests queued or running before new
     *  submissions are shed.  Must not exceed queueCapacity + threads
     *  or submit() could block the caller. */
    std::size_t maxPending = 32;
    /** Task-queue capacity backing the pool. */
    std::size_t queueCapacity = 64;
    CacheConfig resultCache;
    CacheConfig prefixCache;
    /** Folded into every cache key; bump to invalidate all entries
     *  (stands in for a result-format/code version change). */
    std::uint32_t versionSalt = 0;
    /** Time source for deadline bookkeeping (empty = real steady
     *  clock).  Injected by tests so deadline-expiry outcomes are
     *  deterministic under load; latency metrics also use it. */
    std::function<std::chrono::steady_clock::time_point()> clock;
};

/** Completed request outcome.  `body` is the encoded response body —
 *  the byte-identity unit: a cache hit returns the stored bytes
 *  unmodified.  `cacheHit` reports how it was served (the transport
 *  carries it outside the body for exactly that reason). */
struct ServeResult
{
    Status status = Status::Error;
    bool cacheHit = false;
    CachePayload body;
};

struct SchedulerMetrics
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadlineExpired = 0;
    /** Responses served from the result cache (exact-hit bodies). */
    std::uint64_t cacheHits = 0;
    /** Requests currently queued or running. */
    std::size_t queueDepth = 0;
    double hitRate = 0.0; ///< cacheHits / completed (0 when idle)
    double latencyP50Ms = 0.0;
    double latencyP99Ms = 0.0;
    CacheStats resultCache;
    CacheStats prefixCache;
};

/** StatsReply payload codec (the wire form of metrics()). */
std::vector<std::uint8_t> encodeMetrics(const SchedulerMetrics &m);
SchedulerMetrics decodeMetrics(const std::vector<std::uint8_t> &payload);

/** StatsReply payload since wire v3: worker identity ahead of the
 *  metrics, so a fleet coordinator can attribute stats to ring
 *  members without a side channel. */
struct WorkerStats
{
    std::string workerId;
    std::uint32_t threads = 0;
    SchedulerMetrics metrics;
};

std::vector<std::uint8_t> encodeWorkerStats(const WorkerStats &s);
WorkerStats decodeWorkerStats(const std::vector<std::uint8_t> &payload);

class ExperimentScheduler
{
  public:
    explicit ExperimentScheduler(SchedulerConfig cfg = {});
    ~ExperimentScheduler();

    ExperimentScheduler(const ExperimentScheduler &) = delete;
    ExperimentScheduler &operator=(const ExperimentScheduler &) = delete;

    /** Handle to an admitted (or immediately rejected) request. */
    struct Ticket
    {
        std::uint64_t id = 0;
        std::shared_future<ServeResult> result;
        /** Store true to request cancellation (stage-boundary). */
        std::shared_ptr<std::atomic<bool>> cancel;
    };

    /**
     * Canonicalize, admit, and enqueue `req`.  Never throws: a
     * malformed request yields a ready ticket with Status::Error, an
     * over-capacity one a ready ticket with Status::Shed.
     *
     * `on_done`, when set, fires exactly once with the final result —
     * on the worker thread for executed requests, or synchronously
     * inside submit() for requests rejected at admission.  The server
     * uses it to push completions into its poll loop.
     */
    Ticket submit(const ExperimentRequest &req,
                  std::function<void(const ServeResult &)> on_done = {});

    /** submit() + wait: the synchronous (LocalClient) path. */
    ServeResult serve(const ExperimentRequest &req);

    /** Block until no request is queued or running. */
    void drain();

    SchedulerMetrics metrics() const;

    /** Append one sample of each service gauge to `rec` (the time axis
     *  is the export sequence number, dt = 1). */
    void exportTelemetry(telemetry::TelemetryRecorder &rec);

    ResultCache &resultCache() { return resultCache_; }
    ResultCache &prefixCache() { return prefixCache_; }
    const SchedulerConfig &config() const { return cfg_; }
    /** Worker threads actually running (resolves cfg.threads == 0). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(pool_.threadCount());
    }

  private:
    std::chrono::steady_clock::time_point now() const
    {
        return cfg_.clock ? cfg_.clock()
                          : std::chrono::steady_clock::now();
    }
    ServeResult execute(const ExperimentRequest &canon,
                        const RunControl &ctl);
    void recordOutcome(const ServeResult &r,
                       std::chrono::steady_clock::time_point submitted_at);

    SchedulerConfig cfg_;
    ResultCache resultCache_;
    ResultCache prefixCache_;
    ThreadPool pool_;

    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<std::size_t> pending_{0};

    mutable std::mutex metricsMutex_;
    SchedulerMetrics counters_;              ///< counter fields only
    std::vector<double> latencyReservoirMs_; ///< ring, newest overwrites
    std::size_t latencyNext_ = 0;
    std::uint64_t exportSeq_ = 0;

    std::mutex drainMutex_;
    std::condition_variable drainCv_;
};

} // namespace piton::service

#endif // PITON_SERVICE_SCHEDULER_HH
