/**
 * @file
 * Characterization requests: what a client asks the experiment service
 * to run, in a canonical, hashable form.
 *
 * A request selects an experiment kind, an operating point, a workload,
 * and the measurement parameters.  Two requests that would provably
 * produce the same result must hash to the same cache key, so the key
 * is computed from `canonicalBytes()` — the wire encoding of the
 * *canonicalized* request:
 *
 *  - fields the kind does not consume are forced to fixed values
 *    (e.g. `samples` for an energy run, the whole workload for a
 *    static measurement), so irrelevant differences cannot split the
 *    cache;
 *  - fields with a constrained domain are clamped the same way the
 *    executor clamps them (cores to [1,25], threads/core to {1,2});
 *  - `fastPath` is canonicalized to true: both engines are
 *    bit-identical by contract (DESIGN.md §9, enforced by the equiv
 *    suite), so engine choice selects a speed, not a result;
 *  - `deadlineMs` is excluded entirely — a deadline is delivery QoS,
 *    not part of what the result *is*;
 *  - `engineThreads` is likewise excluded from the identity (results
 *    are bit-identical at any thread count, DESIGN.md §12), but unlike
 *    fastPath it is preserved through canonicalize() so the executor
 *    honours the client's requested parallelism.
 *
 * The cache key additionally folds in the wire version and the result
 * format version (response.hh), so bumping either invalidates every
 * stored entry instead of replaying stale encodings (DESIGN.md §11).
 */

#ifndef PITON_SERVICE_REQUEST_HH
#define PITON_SERVICE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "service/wire.hh"
#include "sim/system.hh"

namespace piton::service
{

enum class Kind : std::uint16_t
{
    /** Steady-state power of a microbenchmark: System::measure(). */
    MeasurePower = 0,
    /** Leakage-only static power: System::measureStatic().  Ignores
     *  the workload entirely. */
    MeasureStatic = 1,
    /** Finite run to completion: energy + execution time
     *  (System::runToCompletion()); requires iterations > 0. */
    EnergyRun = 2,
    /** Warm-started fan sweep (the Fig. 17 shape): shared workload +
     *  warmup prefix, then per-point divergent tails.  Prefix images
     *  are cached content-addressed and forked per point. */
    Sweep = 3,
    /** Fig. 9 V-f curve: fmax at each requested VDD (fmax solver; no
     *  chip simulation).  Ignores workload and measurement fields. */
    VfCurve = 4,
    /** Finite run with an explicit thread→tile placement and per-tile
     *  PLL steps (the search subsystem's evaluation unit, DESIGN.md
     *  §16).  Like EnergyRun, but the workload loads onto
     *  `placement` via loadMicrobenchOnTiles, placed tiles duty-gate
     *  to `tileFreqSteps` on the PLL grid, and unplaced tiles are
     *  hard-gated (local clock grid stopped).  Requires
     *  iterations > 0. */
    PlacedRun = 5,

    KindCount // bound for validation
};

const char *kindName(Kind k);

/** Workload selection (workloads::Microbench + mapping parameters). */
struct WorkloadSpec
{
    std::uint16_t bench = 0; ///< workloads::Microbench underlying value
    std::uint32_t cores = 25;
    std::uint32_t threadsPerCore = 2;
    std::uint64_t iterations = 0; ///< 0 = infinite (power variants)
    std::uint64_t totalElements = 4096;
};

/** Hard bound on PlacedRun placements (the 5x5 mesh). */
inline constexpr std::uint32_t kMaxPlacementTiles = 25;

/** BBV buckets a sampled service run profiles with.  Fixed (not a
 *  request field) so equal sampled requests cluster identically —
 *  changing it changes stitched results, so bump the result format
 *  version with it. */
inline constexpr std::uint32_t kSampledBbvBuckets = 64;

/** One divergent tail of a Sweep request (applied after the shared
 *  prefix; everything before it is byte-shared across points). */
struct SweepTail
{
    double fanEffectiveness = 1.0;
    std::uint32_t windows = 16;
};

struct ExperimentRequest
{
    Kind kind = Kind::MeasurePower;

    // Operating point.
    double vddV = 1.00;
    double vcsV = 1.05;
    double vioV = 1.80;
    double coreClockMhz = 500.05;
    int chipId = 2;

    // Simulation parameters.
    std::uint64_t seed = 0x517;
    std::uint64_t cyclesPerSample = 2000;
    std::uint64_t warmupCycles = 30000;
    bool fastPath = true;
    /** Sharded-engine worker threads (SystemOptions::engineThreads;
     *  0 = all hardware threads).  A speed knob like fastPath —
     *  canonicalized away, so it never splits the result cache. */
    std::uint32_t engineThreads = 1;

    WorkloadSpec workload;

    /** Monitor samples (MeasurePower / MeasureStatic). */
    std::uint32_t samples = 128;
    /** Cycle budget for EnergyRun. */
    std::uint64_t maxCycles = 4'000'000'000ULL;
    /** Sweep tails (Kind::Sweep only). */
    std::vector<SweepTail> tails;
    /** VDD grid for VfCurve (empty = the Fig. 9 default grid). */
    std::vector<double> voltages;

    /** Thread→tile placement (Kind::PlacedRun only): position i in the
     *  list is core i of the workload mapping — thread roles and work
     *  slices follow the position, exactly as loadMicrobenchOnTiles.
     *  Tiles must be distinct and < 25; canonicalize() forces
     *  workload.cores to the placement size. */
    std::vector<std::uint16_t> placement;
    /** Per-placed-tile PLL step (Kind::PlacedRun): position-aligned
     *  with `placement`; entry i is the Bresenham duty numerator of
     *  placement[i] — the tile runs step_i of every
     *  round(coreClockMhz / freqStepMhz) windows.  Empty or short =
     *  full speed for the uncovered positions; canonicalize() clamps
     *  every entry into [1, den], so out-of-range encodings collapse
     *  onto one cache key. */
    std::vector<std::uint16_t> tileFreqSteps;

    /** Sampled-run opt-in (EnergyRun / PlacedRun): > 0 runs the
     *  workload under the interval profiler and stitches a sampled
     *  estimate from this many representative slices (DESIGN.md §14)
     *  instead of reporting the exact ledger totals.  Joins the cache
     *  identity — a sampled result is a different result (it carries a
     *  CI and a stitched estimate), never a stand-in for the exact
     *  one. */
    std::uint32_t sampledSlices = 0;
    /** Profiler interval size in retired instructions (sampled runs
     *  only; 0 canonicalizes to the 100k default). */
    std::uint64_t sampledIntervalInsns = 0;

    /** Per-request deadline in milliseconds (0 = none).  Excluded from
     *  the cache key. */
    std::uint32_t deadlineMs = 0;

    /** sim::SystemOptions for this request (executor + warm start). */
    sim::SystemOptions systemOptions() const;

    /** Normalize in place (see file comment). */
    void canonicalize();

    /** Wire encoding (everything, including deadlineMs). */
    void encode(WireWriter &w) const;
    static ExperimentRequest decode(WireReader &r);

    /** Encoding of the canonicalized request minus QoS fields — the
     *  content-addressed identity of the experiment. */
    std::vector<std::uint8_t> canonicalBytes() const;

    /** Result-cache key: hash(canonicalBytes ‖ wire version ‖ result
     *  format version ‖ versionSalt).  `version_salt` lets tests and
     *  operators force a cold cache without a rebuild. */
    Hash128 cacheKey(std::uint32_t version_salt = 0) const;

    /** Prefix-cache key for warm-startable kinds: hashes only the
     *  fields the shared prefix depends on (workload, operating point,
     *  seed, warmup — NOT the tails), so sweeps differing only in
     *  their tails share one prefix image. */
    Hash128 prefixKey(std::uint32_t version_salt = 0) const;
};

/**
 * A canned request reproducing (a smoke-sized slice of) a paper
 * experiment: "fig10" "fig11" "fig13" "fig14" "fig16" "fig17"
 * "table5" "table7" "fig9".  Throws ServiceError on unknown names;
 * presetNames() lists the supported set.
 */
ExperimentRequest presetRequest(const std::string &name);
std::vector<std::string> presetNames();

} // namespace piton::service

#endif // PITON_SERVICE_REQUEST_HH
