#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <poll.h>
#include <sys/socket.h>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"

namespace piton::service
{

struct ExperimentServer::Connection
{
    std::uint64_t id = 0;
    net::Socket sock;
    FrameParser parser;
    /** Framed bytes awaiting write (outPos consumed from the front
     *  buffer — partial writes pick up where they left off). */
    std::deque<std::vector<std::uint8_t>> outQueue;
    std::size_t outPos = 0;
    /** In-flight request ids → their cancel flags (Cancel routing). */
    std::unordered_map<std::uint64_t, std::shared_ptr<std::atomic<bool>>>
        inflight;
    bool dead = false;
};

ExperimentServer::ExperimentServer(ServerConfig cfg)
    : cfg_(cfg), scheduler_(cfg.scheduler)
{}

ExperimentServer::~ExperimentServer()
{
    stop();
}

void
ExperimentServer::start()
{
    piton_assert(!running_.load(), "server already started");
    listener_ = net::listenTcp(cfg_.port);
    port_ = net::boundPort(listener_);
    if (cfg_.workerId.empty())
        cfg_.workerId = "worker-" + std::to_string(port_);
    running_.store(true, std::memory_order_release);
    ioThread_ = std::thread([this] { ioLoop(); });
    piton_inform("piton-served listening on 127.0.0.1:%u",
                 static_cast<unsigned>(port_));
}

void
ExperimentServer::requestStop()
{
    stopRequested_.store(true, std::memory_order_release);
    wakeup_.notify();
}

void
ExperimentServer::wait()
{
    if (ioThread_.joinable())
        ioThread_.join();
    running_.store(false, std::memory_order_release);
}

void
ExperimentServer::stop()
{
    requestStop();
    wait();
}

void
ExperimentServer::ioLoop()
{
    std::vector<pollfd> fds;
    while (true) {
        flushCompletions();

        const bool draining = stopRequested_.load(std::memory_order_acquire);
        if (draining && listener_.valid())
            listener_.close();

        // Exit once drained: no connection holds an in-flight request
        // or unflushed output.  (Requests whose connection died keep
        // running on the pool; scheduler_.drain() below waits for
        // them.)
        if (draining) {
            bool busy = false;
            for (const auto &conn : conns_)
                busy = busy || !conn->inflight.empty()
                       || !conn->outQueue.empty();
            {
                std::lock_guard<std::mutex> lock(completionsMutex_);
                busy = busy || !completions_.empty();
            }
            if (!busy)
                break;
        }

        fds.clear();
        fds.push_back({wakeup_.fd(), POLLIN, 0});
        if (listener_.valid())
            fds.push_back({listener_.fd(), POLLIN, 0});
        const std::size_t polled_conns = conns_.size();
        for (const auto &conn : conns_) {
            short events = POLLIN;
            if (!conn->outQueue.empty())
                events |= POLLOUT;
            fds.push_back({conn->sock.fd(), events, 0});
        }

        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), 500);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            piton_warn("server poll failed: %s", std::strerror(errno));
            break;
        }

        std::size_t idx = 0;
        if (fds[idx].revents & POLLIN)
            wakeup_.drain();
        ++idx;
        if (listener_.valid()) {
            if (fds[idx].revents & POLLIN)
                acceptPending();
            ++idx;
        }
        // Only the first `polled_conns` connections have a pollfd:
        // acceptPending() above may have appended fresh connections,
        // and indexing fds by the post-accept count would read past
        // its end and kill newcomers on garbage revents.  They get
        // polled from the next iteration on.
        for (std::size_t c = 0; c < polled_conns; ++c, ++idx) {
            Connection &conn = *conns_[c];
            const short re = fds[idx].revents;
            if (re & (POLLERR | POLLHUP | POLLNVAL)) {
                conn.dead = true;
                continue;
            }
            if ((re & POLLIN) && !handleReadable(conn))
                conn.dead = true;
            if ((re & POLLOUT) && !writePending(conn))
                conn.dead = true;
        }
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const auto &c) { return c->dead; }),
                     conns_.end());
    }

    // Graceful tail: wait for orphaned work, then drop connections.
    scheduler_.drain();
    flushCompletions();
    for (auto &conn : conns_)
        writePending(*conn);
    conns_.clear();
    listener_.close();
}

void
ExperimentServer::acceptPending()
{
    while (true) {
        net::Socket sock = net::acceptConnection(listener_);
        if (!sock.valid())
            return;
        auto conn = std::make_unique<Connection>();
        conn->id = nextConnId_++;
        conn->sock = std::move(sock);
        conns_.push_back(std::move(conn));
    }
}

bool
ExperimentServer::handleReadable(Connection &conn)
{
    std::uint8_t buf[4096];
    while (true) {
        const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
            conn.parser.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            return false; // peer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }
    try {
        Frame frame;
        while (conn.parser.next(frame))
            if (!handleFrame(conn, std::move(frame)))
                return false;
    } catch (const VersionMismatchError &e) {
        // Answer with a typed VersionError the peer can decode: the
        // header is stamped with *its* version so its strict parser
        // accepts the frame, then the connection closes (a version-
        // skewed stream cannot be resynchronized).
        piton_warn("connection %llu speaks wire v%u (this server is "
                   "v%u); replying VersionError and closing",
                   static_cast<unsigned long long>(conn.id),
                   static_cast<unsigned>(e.got()),
                   static_cast<unsigned>(e.want()));
        VersionInfo info;
        info.serverVersion = kWireVersion;
        info.clientVersion = e.got();
        info.message = e.what();
        Frame reply;
        reply.type = FrameType::VersionError;
        reply.requestId = e.requestId();
        reply.payload = encodeVersionError(info);
        conn.outQueue.push_back(encodeFrame(reply, e.got()));
        writePending(conn);
        return false;
    } catch (const ServiceError &e) {
        piton_warn("closing connection %llu on protocol error: %s",
                   static_cast<unsigned long long>(conn.id), e.what());
        return false;
    }
    return true;
}

bool
ExperimentServer::handleFrame(Connection &conn, Frame frame)
{
    switch (frame.type) {
    case FrameType::Request: {
        ExperimentRequest req;
        try {
            WireReader r(frame.payload);
            req = ExperimentRequest::decode(r);
            r.expectEnd();
        } catch (const std::exception &e) {
            ServeResult bad;
            bad.status = Status::Error;
            bad.body = std::make_shared<const std::vector<std::uint8_t>>(
                ExperimentResponse::failure(Status::Error,
                                            Kind::MeasurePower, e.what())
                    .encodeBody());
            Frame resp;
            resp.type = FrameType::Response;
            resp.requestId = frame.requestId;
            resp.payload = encodeResponseEnvelope(false, *bad.body);
            enqueueFrame(conn, resp);
            return true;
        }
        if (stopRequested_.load(std::memory_order_acquire)) {
            Frame resp;
            resp.type = FrameType::Response;
            resp.requestId = frame.requestId;
            resp.payload = encodeResponseEnvelope(
                false, ExperimentResponse::failure(Status::Shed, req.kind,
                                                   "server shutting down")
                           .encodeBody());
            enqueueFrame(conn, resp);
            return true;
        }
        const std::uint64_t conn_id = conn.id;
        const std::uint64_t request_id = frame.requestId;
        ExperimentScheduler::Ticket ticket = scheduler_.submit(
            req, [this, conn_id, request_id](const ServeResult &r) {
                {
                    std::lock_guard<std::mutex> lock(completionsMutex_);
                    completions_.push_back({conn_id, request_id, r});
                }
                wakeup_.notify();
            });
        conn.inflight.emplace(request_id, ticket.cancel);
        return true;
    }
    case FrameType::Cancel: {
        auto it = conn.inflight.find(frame.requestId);
        if (it != conn.inflight.end() && it->second)
            it->second->store(true, std::memory_order_relaxed);
        return true;
    }
    case FrameType::Ping: {
        Frame pong;
        pong.type = FrameType::Pong;
        pong.requestId = frame.requestId;
        enqueueFrame(conn, pong);
        return true;
    }
    case FrameType::Hello: {
        try {
            (void)decodeHelloRequest(frame.payload);
        } catch (const ServiceError &) {
            return false; // malformed handshake
        }
        HelloReply h;
        h.workerId = cfg_.workerId;
        h.schedulerThreads = scheduler_.threadCount();
        Frame ack;
        ack.type = FrameType::HelloAck;
        ack.requestId = frame.requestId;
        ack.payload = encodeHelloReply(h);
        enqueueFrame(conn, ack);
        return true;
    }
    case FrameType::StatsQuery: {
        WorkerStats s;
        s.workerId = cfg_.workerId;
        s.threads = scheduler_.threadCount();
        s.metrics = scheduler_.metrics();
        Frame reply;
        reply.type = FrameType::StatsReply;
        reply.requestId = frame.requestId;
        reply.payload = encodeWorkerStats(s);
        enqueueFrame(conn, reply);
        return true;
    }
    case FrameType::Shutdown: {
        Frame ack;
        ack.type = FrameType::ShutdownAck;
        ack.requestId = frame.requestId;
        enqueueFrame(conn, ack);
        stopRequested_.store(true, std::memory_order_release);
        return true;
    }
    case FrameType::Response:
    case FrameType::Pong:
    case FrameType::StatsReply:
    case FrameType::ShutdownAck:
    case FrameType::HelloAck:
    case FrameType::VersionError:
        break; // server-to-client types are invalid from a client
    }
    piton_warn("closing connection %llu: unexpected frame type %u",
               static_cast<unsigned long long>(conn.id),
               static_cast<unsigned>(frame.type));
    return false;
}

void
ExperimentServer::flushCompletions()
{
    std::vector<Completion> done;
    {
        std::lock_guard<std::mutex> lock(completionsMutex_);
        done.swap(completions_);
    }
    for (Completion &c : done) {
        Connection *conn = nullptr;
        for (const auto &candidate : conns_)
            if (candidate->id == c.connId && !candidate->dead) {
                conn = candidate.get();
                break;
            }
        if (conn == nullptr)
            continue; // connection closed before the result arrived
        conn->inflight.erase(c.requestId);
        Frame resp;
        resp.type = FrameType::Response;
        resp.requestId = c.requestId;
        resp.payload =
            encodeResponseEnvelope(c.result.cacheHit, *c.result.body);
        enqueueFrame(*conn, resp);
    }
}

void
ExperimentServer::enqueueFrame(Connection &conn, const Frame &frame)
{
    conn.outQueue.push_back(encodeFrame(frame));
    // Opportunistic write: most responses fit in the socket buffer, so
    // the common path completes without waiting for the next POLLOUT.
    if (!writePending(conn))
        conn.dead = true;
}

bool
ExperimentServer::writePending(Connection &conn)
{
    while (!conn.outQueue.empty()) {
        const std::vector<std::uint8_t> &buf = conn.outQueue.front();
        const ssize_t n =
            ::send(conn.sock.fd(), buf.data() + conn.outPos,
                   buf.size() - conn.outPos, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // wait for POLLOUT
            if (errno == EINTR)
                continue;
            return false;
        }
        conn.outPos += static_cast<std::size_t>(n);
        if (conn.outPos == buf.size()) {
            conn.outQueue.pop_front();
            conn.outPos = 0;
        }
    }
    return true;
}

} // namespace piton::service
