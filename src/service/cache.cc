#include "service/cache.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "checkpoint/archive.hh"
#include "common/logging.hh"
#include "service/wire.hh"

namespace piton::service
{

namespace
{

/** Disk-entry header magic ("PCRE": Piton Cached REsult). */
constexpr std::uint32_t kDiskMagic = 0x45524350u;

std::uint32_t
payloadCrc(const std::vector<std::uint8_t> &bytes)
{
    return ckpt::crc32(bytes.data(), bytes.size());
}

} // namespace

// Counters are plain atomics so hits never serialize on a global lock.
struct CacheCounters
{
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> corruptRejected{0};
    std::atomic<std::uint64_t> diskHits{0};
};

ResultCache::ResultCache(CacheConfig cfg)
    : cfg_(std::move(cfg)), counters_(std::make_unique<CacheCounters>())
{
    if (cfg_.shards == 0)
        cfg_.shards = 1;
    shards_.reserve(cfg_.shards);
    for (std::size_t i = 0; i < cfg_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::~ResultCache() = default;

ResultCache::Shard &
ResultCache::shardFor(const Hash128 &key)
{
    return *shards_[static_cast<std::size_t>(key.lo) % shards_.size()];
}

ResultCache::Acquired
ResultCache::acquire(const Hash128 &key)
{
    CacheCounters &ctr = *counters_;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);

    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        if (payloadCrc(*it->second.payload) == it->second.crc) {
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second.lruPos);
            ctr.hits.fetch_add(1, std::memory_order_relaxed);
            return Acquired{it->second.payload, {}, false};
        }
        // Bit rot: reject and recompute rather than serve garbage.
        ctr.corruptRejected.fetch_add(1, std::memory_order_relaxed);
        shard.lru.erase(it->second.lruPos);
        shard.entries.erase(it);
    }

    if (CachePayload disk = tryDiskLoad(key)) {
        insertLocked(shard, key, disk);
        ctr.hits.fetch_add(1, std::memory_order_relaxed);
        ctr.diskHits.fetch_add(1, std::memory_order_relaxed);
        return Acquired{std::move(disk), {}, false};
    }

    auto flight = shard.inflight.find(key);
    if (flight != shard.inflight.end()) {
        ctr.coalesced.fetch_add(1, std::memory_order_relaxed);
        return Acquired{nullptr, flight->second->get_future().share(),
                        false};
    }

    shard.inflight.emplace(key,
                           std::make_shared<std::promise<CachePayload>>());
    ctr.misses.fetch_add(1, std::memory_order_relaxed);
    Acquired a;
    a.leader = true;
    return a;
}

CachePayload
ResultCache::lookup(const Hash128 &key)
{
    CacheCounters &ctr = *counters_;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        ctr.misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    if (payloadCrc(*it->second.payload) != it->second.crc) {
        ctr.corruptRejected.fetch_add(1, std::memory_order_relaxed);
        shard.lru.erase(it->second.lruPos);
        shard.entries.erase(it);
        ctr.misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lruPos);
    ctr.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second.payload;
}

void
ResultCache::publish(const Hash128 &key, CachePayload payload)
{
    piton_assert(payload != nullptr, "publish of null payload");
    std::shared_ptr<std::promise<CachePayload>> promise;
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        insertLocked(shard, key, payload);
        auto flight = shard.inflight.find(key);
        if (flight != shard.inflight.end()) {
            promise = flight->second;
            shard.inflight.erase(flight);
        }
    }
    if (promise)
        promise->set_value(payload);
    diskStore(key, payload);
}

void
ResultCache::abandon(const Hash128 &key)
{
    std::shared_ptr<std::promise<CachePayload>> promise;
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto flight = shard.inflight.find(key);
        if (flight != shard.inflight.end()) {
            promise = flight->second;
            shard.inflight.erase(flight);
        }
    }
    if (promise)
        promise->set_value(nullptr); // waiters recompute themselves
}

void
ResultCache::insert(const Hash128 &key, CachePayload payload)
{
    piton_assert(payload != nullptr, "insert of null payload");
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        insertLocked(shard, key, payload);
    }
    diskStore(key, payload);
}

void
ResultCache::insertLocked(Shard &shard, const Hash128 &key,
                          CachePayload payload)
{
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        shard.bytes -= it->second.payload->size();
        it->second.payload = std::move(payload);
        it->second.crc = payloadCrc(*it->second.payload);
        shard.bytes += it->second.payload->size();
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lruPos);
        return;
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.payload = std::move(payload);
    entry.crc = payloadCrc(*entry.payload);
    entry.lruPos = shard.lru.begin();
    shard.bytes += entry.payload->size();
    shard.entries.emplace(key, std::move(entry));
    evictIfNeededLocked(shard);
}

void
ResultCache::evictIfNeededLocked(Shard &shard)
{
    // Budgets are per shard: cross-shard coordination would put every
    // insert behind one lock for no practical gain at these sizes.
    const std::size_t byte_budget =
        cfg_.maxBytes == 0 ? 0
                           : std::max<std::size_t>(1, cfg_.maxBytes
                                                          / shards_.size());
    const std::size_t entry_budget =
        cfg_.maxEntries == 0
            ? 0
            : std::max<std::size_t>(1, cfg_.maxEntries / shards_.size());
    CacheCounters &ctr = *counters_;
    while (!shard.lru.empty()
           && ((byte_budget != 0 && shard.bytes > byte_budget)
               || (entry_budget != 0
                   && shard.entries.size() > entry_budget))) {
        const Hash128 victim = shard.lru.back();
        auto it = shard.entries.find(victim);
        piton_assert(it != shard.entries.end(), "LRU/entry map skew");
        shard.bytes -= it->second.payload->size();
        shard.lru.pop_back();
        shard.entries.erase(it);
        ctr.evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ResultCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->entries.clear();
        shard->lru.clear();
        shard->bytes = 0;
    }
}

CacheStats
ResultCache::stats() const
{
    CacheCounters &ctr = *counters_;
    CacheStats s;
    s.hits = ctr.hits.load(std::memory_order_relaxed);
    s.misses = ctr.misses.load(std::memory_order_relaxed);
    s.coalesced = ctr.coalesced.load(std::memory_order_relaxed);
    s.evictions = ctr.evictions.load(std::memory_order_relaxed);
    s.corruptRejected = ctr.corruptRejected.load(std::memory_order_relaxed);
    s.diskHits = ctr.diskHits.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        s.entries += shard->entries.size();
        s.bytes += shard->bytes;
    }
    return s;
}

bool
ResultCache::corruptEntryForTest(const Hash128 &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() || it->second.payload->empty())
        return false;
    // The payload is shared immutable by contract; this test hook
    // simulates bit rot in place, exactly what the CRC exists to catch.
    auto &bytes = const_cast<std::vector<std::uint8_t> &>(
        *it->second.payload);
    bytes.back() ^= 0x01;
    return true;
}

std::string
ResultCache::diskPathFor(const Hash128 &key) const
{
    if (cfg_.diskDir.empty())
        return {};
    return cfg_.diskDir + "/" + key.hex() + ".res";
}

void
ResultCache::diskStore(const Hash128 &key, const CachePayload &payload)
{
    const std::string path = diskPathFor(key);
    if (path.empty())
        return;
    WireWriter w;
    w.u32(kDiskMagic);
    w.u32(payloadCrc(*payload));
    w.blob(*payload);
    try {
        ckpt::writeFile(path, w.bytes());
    } catch (const std::exception &e) {
        // Spill is best-effort; the in-memory entry stays valid.
        piton_warn("result-cache disk spill failed: %s", e.what());
    }
}

CachePayload
ResultCache::tryDiskLoad(const Hash128 &key)
{
    const std::string path = diskPathFor(key);
    if (path.empty())
        return nullptr;
    std::vector<std::uint8_t> file;
    try {
        file = ckpt::readFile(path);
    } catch (const std::exception &) {
        return nullptr; // absent (or unreadable): a plain miss
    }
    CacheCounters &ctr = *counters_;
    try {
        WireReader r(file);
        if (r.u32() != kDiskMagic)
            throw ServiceError("bad disk-entry magic");
        const std::uint32_t crc = r.u32();
        std::vector<std::uint8_t> payload = r.blob();
        r.expectEnd();
        if (payloadCrc(payload) != crc)
            throw ServiceError("disk-entry CRC mismatch");
        return std::make_shared<const std::vector<std::uint8_t>>(
            std::move(payload));
    } catch (const ServiceError &e) {
        ctr.corruptRejected.fetch_add(1, std::memory_order_relaxed);
        piton_warn("rejecting corrupted cache file %s: %s", path.c_str(),
                   e.what());
        std::remove(path.c_str());
        return nullptr;
    }
}

} // namespace piton::service
