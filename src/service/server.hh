/**
 * @file
 * TCP front end of the experiment service (`piton-served`).
 *
 * One poll()-driven I/O thread owns the listening socket, every client
 * connection, and a self-pipe wakeup; experiment execution happens on
 * the scheduler's worker pool.  The I/O thread therefore never blocks
 * on simulation, and workers never touch sockets: completions are
 * pushed through a queue + wakeup back to the poll loop, which frames
 * and writes the response on the originating connection.
 *
 * Per-connection state is a FrameParser (input), an output byte queue
 * (partial writes survive), and the set of in-flight request ids (for
 * Cancel routing and for dropping responses to closed connections).
 *
 * Shutdown: stop() — or a Shutdown frame from any client — stops
 * accepting, lets in-flight requests finish (drain), flushes pending
 * output, then closes.  A Shutdown frame is acknowledged with
 * ShutdownAck before the listener closes, so the requesting client can
 * confirm graceful termination.
 */

#ifndef PITON_SERVICE_SERVER_HH
#define PITON_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.hh"
#include "service/scheduler.hh"
#include "service/wire.hh"

namespace piton::service
{

struct ServerConfig
{
    /** 0 = ephemeral; read the resolved port from port(). */
    std::uint16_t port = 0;
    /** Identity reported in HelloAck/StatsReply (fleet routing and
     *  attribution).  Empty = "worker-<port>" once bound. */
    std::string workerId;
    SchedulerConfig scheduler;
};

class ExperimentServer
{
  public:
    explicit ExperimentServer(ServerConfig cfg = {});
    ~ExperimentServer();

    ExperimentServer(const ExperimentServer &) = delete;
    ExperimentServer &operator=(const ExperimentServer &) = delete;

    /** Bind + start the I/O thread.  Throws net::NetError on bind
     *  failure. */
    void start();

    /** Graceful stop: reject new connections, drain in-flight work,
     *  flush responses, join the I/O thread.  Idempotent; safe from
     *  any thread (including a signal-triggered caller via notify). */
    void stop();

    /** Async stop request (signal-safe apart from the atomic+pipe
     *  write): the I/O thread initiates the same graceful sequence. */
    void requestStop();

    /** Block until the server stops — via requestStop(), stop(), or a
     *  client Shutdown frame.  Does not itself request a stop. */
    void wait();

    /** Resolved listening port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Worker identity (valid after start()). */
    const std::string &workerId() const { return cfg_.workerId; }

    bool running() const { return running_.load(std::memory_order_acquire); }

    ExperimentScheduler &scheduler() { return scheduler_; }

  private:
    struct Connection;
    struct Completion
    {
        std::uint64_t connId = 0;
        std::uint64_t requestId = 0;
        ServeResult result;
    };

    void ioLoop();
    void acceptPending();
    bool handleReadable(Connection &conn);
    bool handleFrame(Connection &conn, Frame frame);
    void flushCompletions();
    bool writePending(Connection &conn);
    void enqueueFrame(Connection &conn, const Frame &frame);

    ServerConfig cfg_;
    ExperimentScheduler scheduler_;

    net::Socket listener_;
    std::uint16_t port_ = 0;
    net::Wakeup wakeup_;
    std::thread ioThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};

    std::uint64_t nextConnId_ = 1; ///< I/O thread only
    std::vector<std::unique_ptr<Connection>> conns_; ///< I/O thread only

    std::mutex completionsMutex_;
    std::vector<Completion> completions_;
};

} // namespace piton::service

#endif // PITON_SERVICE_SERVER_HH
