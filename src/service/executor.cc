#include "service/executor.hh"

#include <algorithm>
#include <utility>

#include "board/measurement.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/vf_experiments.hh"
#include "sampling/profiler.hh"
#include "sampling/sampled_run.hh"
#include "sim/system.hh"
#include "sim/warm_start.hh"
#include "workloads/microbenchmarks.hh"

namespace piton::service
{

namespace
{

RailStatsWire
toWire(const RunningStats &s)
{
    RailStatsWire w;
    w.count = s.count();
    w.meanW = s.mean();
    w.stddevW = s.stddev();
    w.minW = s.min();
    w.maxW = s.max();
    return w;
}

MeasureResult
toWire(const board::PowerMeasurement &m, double die_c)
{
    MeasureResult r;
    r.vdd = toWire(m.vddW);
    r.vcs = toWire(m.vcsW);
    r.vio = toWire(m.vioW);
    r.onChip = toWire(m.onChipW);
    r.dieTempC = die_c;
    return r;
}

workloads::Microbench
benchOf(const ExperimentRequest &req)
{
    return static_cast<workloads::Microbench>(req.workload.bench);
}

/** Shared Sweep prefix: fresh system + workload + warmup windows.
 *  Identical for the donor (warm) and per-point (cold) paths — that
 *  identity is what makes warm == cold bit-exact. */
std::vector<isa::Program>
runSweepPrefix(sim::System &sys, const ExperimentRequest &req)
{
    std::vector<isa::Program> programs = workloads::loadMicrobench(
        sys, benchOf(req), req.workload.cores, req.workload.threadsPerCore,
        /*iterations=*/0, req.workload.totalElements);
    const std::uint64_t windows = std::max<std::uint64_t>(
        1, req.warmupCycles / req.cyclesPerSample);
    for (std::uint64_t w = 0; w < windows; ++w)
        sys.windowTruePowers(req.cyclesPerSample);
    return programs;
}

SweepPointResult
runSweepTail(sim::System &sys, const SweepTail &tail)
{
    SweepPointResult r;
    r.fanEffectiveness = tail.fanEffectiveness;
    sys.thermalModel().setFanEffectiveness(tail.fanEffectiveness);
    // Pin the thermal state at the new fan point's equilibrium (the
    // measure() protocol: sample windows sit far below the thermal
    // time constants).
    for (int i = 0; i < 4; ++i) {
        const auto p =
            sys.windowTruePowers(sys.options().cyclesPerSample);
        sys.thermalModel().setState(
            sys.thermalModel().steadyState(p[0] + p[1]));
    }
    RunningStats on_chip;
    for (std::uint32_t w = 0; w < tail.windows; ++w) {
        const auto p =
            sys.windowTruePowers(sys.options().cyclesPerSample);
        on_chip.add(p[0] + p[1]);
    }
    r.onChip = toWire(on_chip);
    r.finalDieC = sys.dieTempC();
    return r;
}

/** Obtain the sweep's warm-start state: from the prefix cache when
 *  available (single-flight: one simulation per prefix key), else by
 *  simulating the prefix directly. */
sim::SweepWarmStart
sweepWarmStart(const ExperimentRequest &req, ResultCache *prefix_cache,
               std::uint32_t version_salt)
{
    const sim::SystemOptions opts = req.systemOptions();
    const auto simulatePrefix = [&] {
        sim::System donor(opts);
        const auto programs = runSweepPrefix(donor, req);
        return sim::SweepWarmStart::capture(donor);
    };
    if (prefix_cache == nullptr)
        return simulatePrefix();

    const Hash128 key = req.prefixKey(version_salt);
    ResultCache::Acquired acq = prefix_cache->acquire(key);
    if (acq.hit())
        return sim::SweepWarmStart::fromShared(opts,
                                               std::move(acq.payload));
    if (acq.leader) {
        try {
            sim::SweepWarmStart ws = simulatePrefix();
            prefix_cache->publish(key, ws.sharedBytes());
            return ws;
        } catch (...) {
            prefix_cache->abandon(key);
            throw;
        }
    }
    // Another request is simulating this prefix: share its image, or
    // fall back to simulating locally if the leader failed.
    CachePayload image = acq.pending.get();
    if (image)
        return sim::SweepWarmStart::fromShared(opts, std::move(image));
    return simulatePrefix();
}

ExperimentResponse
runMeasurePower(const ExperimentRequest &req)
{
    sim::System sys(req.systemOptions());
    const auto programs = workloads::loadMicrobench(
        sys, benchOf(req), req.workload.cores, req.workload.threadsPerCore,
        /*iterations=*/0, req.workload.totalElements);
    const board::PowerMeasurement m = sys.measure(req.samples);
    ExperimentResponse resp;
    resp.kind = req.kind;
    resp.measure = toWire(m, sys.dieTempC());
    return resp;
}

ExperimentResponse
runMeasureStatic(const ExperimentRequest &req)
{
    sim::System sys(req.systemOptions());
    const board::PowerMeasurement m = sys.measureStatic(req.samples);
    ExperimentResponse resp;
    resp.kind = req.kind;
    resp.measure = toWire(m, sys.dieTempC());
    return resp;
}

/** Load the (finite) workload of an EnergyRun or PlacedRun: onto the
 *  explicit placement when there is one, onto tiles 0..cores-1
 *  otherwise (the two are identical for the identity placement). */
std::vector<isa::Program>
loadEnergyWorkload(sim::System &sys, const ExperimentRequest &req)
{
    if (req.kind == Kind::PlacedRun) {
        std::vector<TileId> tiles(req.placement.begin(),
                                  req.placement.end());
        return workloads::loadMicrobenchOnTiles(
            sys, benchOf(req), tiles, req.workload.threadsPerCore,
            req.workload.iterations, req.workload.totalElements);
    }
    return workloads::loadMicrobench(
        sys, benchOf(req), req.workload.cores, req.workload.threadsPerCore,
        req.workload.iterations, req.workload.totalElements);
}

void
fillEnergy(EnergyResult &e, const sim::CompletionResult &r)
{
    e.completed = r.completed ? 1 : 0;
    e.stalled = r.stalled ? 1 : 0;
    e.cycles = r.cycles;
    e.seconds = r.seconds;
    e.insts = r.insts;
    e.onChipEnergyJ = r.onChipEnergyJ;
    e.activeEnergyJ = r.activeEnergyJ;
    e.idleEnergyJ = r.idleEnergyJ;
}

ExperimentResponse
runEnergy(const ExperimentRequest &req, const RunControl &ctl)
{
    sim::System sys(req.systemOptions());
    const auto programs = loadEnergyWorkload(sys, req);
    ExperimentResponse resp;
    resp.kind = req.kind;
    if (req.sampledSlices == 0) {
        fillEnergy(resp.energy, sys.runToCompletion(req.maxCycles));
        return resp;
    }
    // Sampled opt-in (DESIGN.md §14 through the service): profile the
    // run once, then stitch the estimate from representative slices.
    // Everything feeding the estimate is canonical request state plus
    // fixed constants, so equal requests stitch bit-identical bodies.
    sampling::ProfilerOptions popts;
    popts.intervalInsns = req.sampledIntervalInsns;
    popts.captureImages = true;
    popts.telemetry = false;
    sampling::IntervalProfiler prof(sys, popts);
    const sim::CompletionResult r = prof.run(req.maxCycles);
    if (!r.completed) {
        // Nothing meaningful to stitch; report the exact partial run.
        fillEnergy(resp.energy, r);
        return resp;
    }
    if (ctl.isCancelled())
        return ExperimentResponse::failure(Status::Cancelled, req.kind,
                                           "cancelled");
    if (ctl.deadlineExpired())
        return ExperimentResponse::failure(Status::DeadlineExpired,
                                           req.kind, "deadline expired");
    sampling::SampledOptions sopts;
    sopts.maxSlices = req.sampledSlices;
    sopts.threads = req.engineThreads;
    const sampling::SampledEstimate est =
        sampling::runSampled(prof.intervals(), sys.options(), sopts);
    resp.energy.completed = 1;
    resp.energy.cycles = r.cycles;
    resp.energy.seconds = est.seconds;
    resp.energy.insts = est.totalInsns;
    resp.energy.onChipEnergyJ = est.energyJ;
    resp.energy.sampled = 1;
    resp.energy.energyCi95J = est.energyCi95J;
    resp.energy.epiCi95 = est.epiCi95;
    resp.energy.simulatedFrac = est.simulatedFrac;
    return resp;
}

ExperimentResponse
runVfCurve(const ExperimentRequest &req, const RunControl &ctl)
{
    const core::VfScalingExperiment vf;
    ExperimentResponse resp;
    resp.kind = req.kind;
    for (const double v : req.voltages) {
        if (ctl.isCancelled())
            return ExperimentResponse::failure(Status::Cancelled,
                                               req.kind, "cancelled");
        if (ctl.deadlineExpired())
            return ExperimentResponse::failure(Status::DeadlineExpired,
                                               req.kind,
                                               "deadline expired");
        const core::VfPoint p = vf.measure(req.chipId, v);
        VfPointResult r;
        r.vddV = p.vddV;
        r.fmaxMhz = p.fmaxMhz;
        r.nextStepMhz = p.nextStepMhz;
        r.thermallyLimited = p.thermallyLimited ? 1 : 0;
        r.dieTempC = p.dieTempC;
        resp.vfPoints.push_back(r);
    }
    return resp;
}

ExperimentResponse
runSweep(const ExperimentRequest &req, const RunControl &ctl,
         ResultCache *prefix_cache, std::uint32_t version_salt)
{
    const sim::SweepWarmStart ws =
        sweepWarmStart(req, prefix_cache, version_salt);
    if (ctl.isCancelled())
        return ExperimentResponse::failure(Status::Cancelled, req.kind,
                                           "cancelled");
    if (ctl.deadlineExpired())
        return ExperimentResponse::failure(Status::DeadlineExpired,
                                           req.kind, "deadline expired");
    ExperimentResponse resp;
    resp.kind = req.kind;
    for (const SweepTail &tail : req.tails) {
        if (ctl.isCancelled())
            return ExperimentResponse::failure(Status::Cancelled,
                                               req.kind, "cancelled");
        if (ctl.deadlineExpired())
            return ExperimentResponse::failure(Status::DeadlineExpired,
                                               req.kind,
                                               "deadline expired");
        const std::unique_ptr<sim::System> sys = ws.fork();
        resp.points.push_back(runSweepTail(*sys, tail));
    }
    return resp;
}

} // namespace

ExperimentResponse
runExperiment(const ExperimentRequest &canon, const RunControl &ctl,
              ResultCache *prefix_cache, std::uint32_t version_salt)
{
    if (ctl.isCancelled())
        return ExperimentResponse::failure(Status::Cancelled, canon.kind,
                                           "cancelled before execution");
    if (ctl.deadlineExpired())
        return ExperimentResponse::failure(Status::DeadlineExpired,
                                           canon.kind,
                                           "deadline expired in queue");
    try {
        switch (canon.kind) {
        case Kind::MeasurePower:
            return runMeasurePower(canon);
        case Kind::MeasureStatic:
            return runMeasureStatic(canon);
        case Kind::EnergyRun:
        case Kind::PlacedRun:
            return runEnergy(canon, ctl);
        case Kind::Sweep:
            return runSweep(canon, ctl, prefix_cache, version_salt);
        case Kind::VfCurve:
            return runVfCurve(canon, ctl);
        case Kind::KindCount:
            break;
        }
        return ExperimentResponse::failure(Status::Error, canon.kind,
                                           "unknown kind");
    } catch (const std::exception &e) {
        return ExperimentResponse::failure(Status::Error, canon.kind,
                                           e.what());
    }
}

} // namespace piton::service
