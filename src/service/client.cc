#include "service/client.hh"

#include <utility>

#include "checkpoint/archive.hh"

namespace piton::service
{

namespace
{

/** Frame header: magic u32, version u16, type u16, requestId u64,
 *  payloadLen u32, payloadCrc u32. */
constexpr std::size_t kFrameHeaderBytes = 24;

ClientResult
resultFromBody(bool served_from_cache, std::vector<std::uint8_t> body)
{
    ClientResult r;
    r.servedFromCache = served_from_cache;
    r.response = ExperimentResponse::decodeBody(body);
    r.status = r.response.status;
    r.body = std::move(body);
    return r;
}

} // namespace

ClientResult
LocalClient::run(const ExperimentRequest &req)
{
    const ServeResult served = sched_.serve(req);
    return resultFromBody(served.cacheHit, *served.body);
}

TcpClient::TcpClient(std::uint16_t port, int timeout_ms)
    : sock_(net::connectTcp(port, timeout_ms))
{}

void
TcpClient::sendFrame(const Frame &frame)
{
    const std::vector<std::uint8_t> bytes = encodeFrame(frame);
    net::sendAll(sock_, bytes.data(), bytes.size());
}

Frame
TcpClient::recvFrame()
{
    std::uint8_t header[kFrameHeaderBytes];
    if (!net::recvExact(sock_, header, sizeof(header)))
        throw ServiceError("server closed the connection");
    WireReader r(header, sizeof(header));
    if (r.u32() != kFrameMagic)
        throw ServiceError("bad frame magic from server");
    const std::uint16_t version = r.u16();
    Frame frame;
    frame.type = static_cast<FrameType>(r.u16());
    frame.requestId = r.u64();
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (len > kMaxPayloadBytes)
        throw ServiceError("oversized frame from server");
    frame.payload.resize(len);
    if (len > 0 && !net::recvExact(sock_, frame.payload.data(), len))
        throw ServiceError("server closed mid-frame");
    if (ckpt::crc32(frame.payload.data(), frame.payload.size()) != crc)
        throw ServiceError("frame CRC mismatch from server");
    // A VersionError frame is decodable regardless of the version in
    // its header (frozen payload layout) — surface it typed so callers
    // know reconnecting won't help.
    if (frame.type == FrameType::VersionError) {
        const VersionInfo info = decodeVersionError(frame.payload);
        throw VersionMismatchError(info.serverVersion, kWireVersion,
                                   frame.requestId);
    }
    if (version != kWireVersion)
        throw VersionMismatchError(version, kWireVersion,
                                   frame.requestId);
    return frame;
}

Frame
TcpClient::awaitFrame(FrameType type, std::uint64_t request_id)
{
    while (true) {
        Frame frame = recvFrame();
        if (frame.type == type && frame.requestId == request_id)
            return frame;
        if (frame.type == FrameType::Response) {
            stashed_.emplace(frame.requestId, std::move(frame));
            continue;
        }
        throw ServiceError("unexpected frame type from server");
    }
}

std::uint64_t
TcpClient::submit(const ExperimentRequest &req)
{
    const std::uint64_t id = nextRequestId_++;
    Frame frame;
    frame.type = FrameType::Request;
    frame.requestId = id;
    WireWriter w;
    req.encode(w);
    frame.payload = w.take();
    sendFrame(frame);
    return id;
}

ClientResult
TcpClient::waitFor(std::uint64_t request_id)
{
    Frame frame;
    auto it = stashed_.find(request_id);
    if (it != stashed_.end()) {
        frame = std::move(it->second);
        stashed_.erase(it);
    } else {
        frame = awaitFrame(FrameType::Response, request_id);
    }
    ResponseEnvelope env = decodeResponseEnvelope(frame.payload);
    return resultFromBody(env.servedFromCache, std::move(env.body));
}

ClientResult
TcpClient::run(const ExperimentRequest &req)
{
    return waitFor(submit(req));
}

void
TcpClient::cancel(std::uint64_t request_id)
{
    Frame frame;
    frame.type = FrameType::Cancel;
    frame.requestId = request_id;
    sendFrame(frame);
}

void
TcpClient::awaitReadable(int timeout_ms, const char *what)
{
    if (timeout_ms <= 0)
        return; // blocking recv below waits for us
    if (!net::waitReadable(sock_.fd(), timeout_ms))
        throw net::NetError(std::string(what) + " timed out after "
                            + std::to_string(timeout_ms) + " ms");
}

void
TcpClient::ping(int timeout_ms)
{
    const std::uint64_t id = nextRequestId_++;
    Frame frame;
    frame.type = FrameType::Ping;
    frame.requestId = id;
    sendFrame(frame);
    awaitReadable(timeout_ms, "ping");
    awaitFrame(FrameType::Pong, id);
}

HelloReply
TcpClient::hello(int timeout_ms, const std::string &client_name)
{
    const std::uint64_t id = nextRequestId_++;
    Frame frame;
    frame.type = FrameType::Hello;
    frame.requestId = id;
    HelloRequest req;
    req.clientName = client_name;
    frame.payload = encodeHelloRequest(req);
    sendFrame(frame);
    awaitReadable(timeout_ms, "hello");
    const Frame reply = awaitFrame(FrameType::HelloAck, id);
    return decodeHelloReply(reply.payload);
}

WorkerStats
TcpClient::workerStats()
{
    const std::uint64_t id = nextRequestId_++;
    Frame frame;
    frame.type = FrameType::StatsQuery;
    frame.requestId = id;
    sendFrame(frame);
    const Frame reply = awaitFrame(FrameType::StatsReply, id);
    return decodeWorkerStats(reply.payload);
}

SchedulerMetrics
TcpClient::stats()
{
    return workerStats().metrics;
}

net::Socket
TcpClient::releaseSocket()
{
    if (!stashed_.empty())
        throw ServiceError(
            "releaseSocket with responses still stashed");
    return std::move(sock_);
}

void
TcpClient::shutdownServer()
{
    const std::uint64_t id = nextRequestId_++;
    Frame frame;
    frame.type = FrameType::Shutdown;
    frame.requestId = id;
    sendFrame(frame);
    awaitFrame(FrameType::ShutdownAck, id);
}

} // namespace piton::service
