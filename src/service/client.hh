/**
 * @file
 * Client side of the experiment service.
 *
 * Two transports behind one interface:
 *
 *  - LocalClient: in-process, wraps an ExperimentScheduler directly.
 *    No sockets, no serialization of the transport envelope — but the
 *    response *body* still round-trips through the wire codec, so a
 *    local result is byte-identical to the same request served over
 *    TCP (tests assert this).
 *
 *  - TcpClient: blocking loopback connection to piton-served.  One
 *    connection can pipeline many requests (submit()/waitFor() with
 *    client-chosen request ids); run() is the submit-and-wait
 *    convenience.  Out-of-order responses are stashed until their id
 *    is waited on.
 */

#ifndef PITON_SERVICE_CLIENT_HH
#define PITON_SERVICE_CLIENT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/net.hh"
#include "service/request.hh"
#include "service/response.hh"
#include "service/scheduler.hh"
#include "service/wire.hh"

namespace piton::service
{

/** A completed request as seen by a client. */
struct ClientResult
{
    Status status = Status::Error;
    /** True when the server answered from its result cache. */
    bool servedFromCache = false;
    /** Raw encoded body — the byte-identity unit. */
    std::vector<std::uint8_t> body;
    /** Decoded view of `body`. */
    ExperimentResponse response;
};

/** Transport-agnostic client interface. */
class Client
{
  public:
    virtual ~Client() = default;
    virtual ClientResult run(const ExperimentRequest &req) = 0;
    virtual SchedulerMetrics stats() = 0;
};

/** In-process client over a shared scheduler. */
class LocalClient : public Client
{
  public:
    explicit LocalClient(ExperimentScheduler &sched) : sched_(sched) {}

    ClientResult run(const ExperimentRequest &req) override;
    SchedulerMetrics stats() override { return sched_.metrics(); }

    ExperimentScheduler &scheduler() { return sched_; }

  private:
    ExperimentScheduler &sched_;
};

/** Blocking TCP client (loopback). */
class TcpClient : public Client
{
  public:
    /** Connects immediately; throws net::NetError on failure. */
    explicit TcpClient(std::uint16_t port, int timeout_ms = 5000);
    /** Adopt an already-connected socket (e.g. one checked out of a
     *  net::ConnectionPool).  The socket must be at a frame boundary. */
    explicit TcpClient(net::Socket sock) : sock_(std::move(sock)) {}

    ClientResult run(const ExperimentRequest &req) override;
    SchedulerMetrics stats() override;

    /** Full v3 stats: worker identity + metrics. */
    WorkerStats workerStats();

    /** Send a request without waiting; returns its request id. */
    std::uint64_t submit(const ExperimentRequest &req);
    /** Block until the response for `request_id` arrives. */
    ClientResult waitFor(std::uint64_t request_id);
    /** Best-effort cancellation of an in-flight request. */
    void cancel(std::uint64_t request_id);

    /** Round-trip liveness probe.  timeout_ms > 0 bounds the wait for
     *  the reply (net::NetError on expiry) — the fleet health checker
     *  depends on this never hanging on a wedged worker. */
    void ping(int timeout_ms = 0);
    /** Version/identity handshake; throws VersionMismatchError on
     *  skew.  timeout_ms as for ping(). */
    HelloReply hello(int timeout_ms = 0,
                     const std::string &client_name = "piton-client");
    /** Graceful server shutdown; returns once ShutdownAck arrives. */
    void shutdownServer();

    /**
     * Give the connection back (for pooled reuse).  Only legal when
     * the stream is quiescent — no stashed responses, nothing
     * in flight — i.e. after run()/ping()/stats() returned normally.
     * The client is unusable afterwards.
     */
    net::Socket releaseSocket();
    bool reusable() const { return sock_.valid() && stashed_.empty(); }

  private:
    void sendFrame(const Frame &frame);
    /** Read one frame off the wire (blocking).  Throws ServiceError on
     *  protocol violations or unexpected close, VersionMismatchError
     *  when the server speaks another version (including decoding its
     *  typed VersionError reply, whatever version stamps it). */
    Frame recvFrame();
    /** Read frames until one of `type` with `request_id` arrives,
     *  stashing other Response frames for later waitFor() calls. */
    Frame awaitFrame(FrameType type, std::uint64_t request_id);
    /** waitReadable with timeout (0 = wait forever). */
    void awaitReadable(int timeout_ms, const char *what);

    net::Socket sock_;
    std::uint64_t nextRequestId_ = 1;
    std::unordered_map<std::uint64_t, Frame> stashed_;
};

} // namespace piton::service

#endif // PITON_SERVICE_CLIENT_HH
