/**
 * @file
 * Client side of the experiment service.
 *
 * Two transports behind one interface:
 *
 *  - LocalClient: in-process, wraps an ExperimentScheduler directly.
 *    No sockets, no serialization of the transport envelope — but the
 *    response *body* still round-trips through the wire codec, so a
 *    local result is byte-identical to the same request served over
 *    TCP (tests assert this).
 *
 *  - TcpClient: blocking loopback connection to piton-served.  One
 *    connection can pipeline many requests (submit()/waitFor() with
 *    client-chosen request ids); run() is the submit-and-wait
 *    convenience.  Out-of-order responses are stashed until their id
 *    is waited on.
 */

#ifndef PITON_SERVICE_CLIENT_HH
#define PITON_SERVICE_CLIENT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/net.hh"
#include "service/request.hh"
#include "service/response.hh"
#include "service/scheduler.hh"
#include "service/wire.hh"

namespace piton::service
{

/** A completed request as seen by a client. */
struct ClientResult
{
    Status status = Status::Error;
    /** True when the server answered from its result cache. */
    bool servedFromCache = false;
    /** Raw encoded body — the byte-identity unit. */
    std::vector<std::uint8_t> body;
    /** Decoded view of `body`. */
    ExperimentResponse response;
};

/** Transport-agnostic client interface. */
class Client
{
  public:
    virtual ~Client() = default;
    virtual ClientResult run(const ExperimentRequest &req) = 0;
    virtual SchedulerMetrics stats() = 0;
};

/** In-process client over a shared scheduler. */
class LocalClient : public Client
{
  public:
    explicit LocalClient(ExperimentScheduler &sched) : sched_(sched) {}

    ClientResult run(const ExperimentRequest &req) override;
    SchedulerMetrics stats() override { return sched_.metrics(); }

    ExperimentScheduler &scheduler() { return sched_; }

  private:
    ExperimentScheduler &sched_;
};

/** Blocking TCP client (loopback). */
class TcpClient : public Client
{
  public:
    /** Connects immediately; throws net::NetError on failure. */
    explicit TcpClient(std::uint16_t port, int timeout_ms = 5000);

    ClientResult run(const ExperimentRequest &req) override;
    SchedulerMetrics stats() override;

    /** Send a request without waiting; returns its request id. */
    std::uint64_t submit(const ExperimentRequest &req);
    /** Block until the response for `request_id` arrives. */
    ClientResult waitFor(std::uint64_t request_id);
    /** Best-effort cancellation of an in-flight request. */
    void cancel(std::uint64_t request_id);

    /** Round-trip liveness probe. */
    void ping();
    /** Graceful server shutdown; returns once ShutdownAck arrives. */
    void shutdownServer();

  private:
    void sendFrame(const Frame &frame);
    /** Read one frame off the wire (blocking).  Throws ServiceError on
     *  protocol violations or unexpected close. */
    Frame recvFrame();
    /** Read frames until one of `type` with `request_id` arrives,
     *  stashing other Response frames for later waitFor() calls. */
    Frame awaitFrame(FrameType type, std::uint64_t request_id);

    net::Socket sock_;
    std::uint64_t nextRequestId_ = 1;
    std::unordered_map<std::uint64_t, Frame> stashed_;
};

} // namespace piton::service

#endif // PITON_SERVICE_CLIENT_HH
