/**
 * @file
 * Request execution: turns a canonicalized ExperimentRequest into an
 * encoded result, driving the existing sim/workloads/core layers.
 *
 * Sweep requests route through the warm-start prefix cache: the shared
 * (workload + warmup) prefix is simulated once per prefixKey(), the
 * checkpoint image is stored content-addressed, and every sweep point
 * forks from the image (sim::SweepWarmStart).  The checkpoint restore
 * contract makes the fork bit-identical to re-simulating the prefix,
 * so a warm-started point's encoded result equals its cold
 * equivalent's byte for byte (tests/test_service.cc asserts this; run
 * with `prefix_cache == nullptr` to force the cold path).
 *
 * Cancellation and deadlines are checked at stage boundaries (before
 * the run, after the prefix, between sweep points/voltage steps) — a
 * stage in progress is never preempted mid-window, so a cancelled
 * request releases its pool slot within one stage.
 */

#ifndef PITON_SERVICE_EXECUTOR_HH
#define PITON_SERVICE_EXECUTOR_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>

#include "service/cache.hh"
#include "service/request.hh"
#include "service/response.hh"

namespace piton::service
{

/** Cancellation + deadline state shared with the connection layer. */
struct RunControl
{
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /** Time source for deadline checks; empty = the real steady clock.
     *  Tests inject a fake clock here (via SchedulerConfig::clock) to
     *  make expiry deterministic instead of racing wall time. */
    std::function<std::chrono::steady_clock::time_point()> now;

    bool
    isCancelled() const
    {
        return cancelled && cancelled->load(std::memory_order_relaxed);
    }
    bool
    deadlineExpired() const
    {
        const auto t = now ? now() : std::chrono::steady_clock::now();
        return t >= deadline;
    }
};

/**
 * Execute `canon` (must already be canonicalized).  Never throws:
 * simulation failures come back as Status::Error, checks at stage
 * boundaries as Cancelled/DeadlineExpired.  `prefix_cache` may be
 * null (no warm-start reuse; the bit-identity reference path).
 */
ExperimentResponse runExperiment(const ExperimentRequest &canon,
                                 const RunControl &ctl,
                                 ResultCache *prefix_cache,
                                 std::uint32_t version_salt);

} // namespace piton::service

#endif // PITON_SERVICE_EXECUTOR_HH
