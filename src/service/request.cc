#include "service/request.hh"

#include <algorithm>
#include <cmath>

#include "checkpoint/archive.hh"
#include "core/vf_experiments.hh"
#include "power/vf_model.hh"
#include "service/response.hh"
#include "workloads/microbenchmarks.hh"

namespace piton::service
{

namespace
{

constexpr std::uint16_t kMaxBench =
    static_cast<std::uint16_t>(workloads::Microbench::Phased);

/** Canonical duty denominator: windows per duty period at this chip
 *  clock (the PLL-grid step count of the clock).  Matches
 *  sim::System::initStaticDuty so a clamped tileFreqSteps entry maps
 *  onto exactly the duty numerator the simulation will run. */
std::uint32_t
dutyDenominator(double core_clock_mhz)
{
    const double step = power::VfParams{}.freqStepMhz;
    return static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(core_clock_mhz / step)));
}

/** Default interval size for sampled service runs (retired insns). */
constexpr std::uint64_t kDefaultSampledIntervalInsns = 100'000;
constexpr std::uint64_t kMinSampledIntervalInsns = 1'000;
constexpr std::uint32_t kMaxSampledSlices = 64;

/** Hard bound on sweep fan-out and voltage grids: a request is one
 *  scheduler slot, so its internal fan-out must stay boundable. */
constexpr std::size_t kMaxTails = 256;
constexpr std::size_t kMaxVoltages = 256;

template <typename T>
T
clampRange(T v, T lo, T hi)
{
    return std::min(std::max(v, lo), hi);
}

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
    case Kind::MeasurePower:
        return "measure-power";
    case Kind::MeasureStatic:
        return "measure-static";
    case Kind::EnergyRun:
        return "energy-run";
    case Kind::Sweep:
        return "sweep";
    case Kind::VfCurve:
        return "vf-curve";
    case Kind::PlacedRun:
        return "placed-run";
    case Kind::KindCount:
        break;
    }
    return "?";
}

sim::SystemOptions
ExperimentRequest::systemOptions() const
{
    sim::SystemOptions opts;
    opts.chipId = chipId;
    opts.vddV = vddV;
    opts.vcsV = vcsV;
    opts.vioV = vioV;
    opts.coreClockMhz = coreClockMhz;
    opts.seed = seed;
    opts.cyclesPerSample = std::max<std::uint64_t>(1, cyclesPerSample);
    opts.warmupCycles = warmupCycles;
    opts.fastPath = fastPath;
    opts.engineThreads = engineThreads;
    if (!placement.empty()) {
        // PlacedRun: unplaced tiles hard-gate (<= 0), placed tiles run
        // their PLL step.  step_i * freqStepMhz round-trips through
        // initStaticDuty back to exactly step_i windows per period.
        const double step = power::VfParams{}.freqStepMhz;
        opts.tileFreqMhz.assign(opts.cfg.piton.tileCount, 0.0);
        for (std::size_t i = 0; i < placement.size(); ++i) {
            const double f = i < tileFreqSteps.size()
                                 ? step * tileFreqSteps[i]
                                 : coreClockMhz;
            opts.tileFreqMhz[placement[i]] = f;
        }
    }
    if (sampledSlices > 0)
        opts.bbvBuckets = kSampledBbvBuckets;
    return opts;
}

void
ExperimentRequest::canonicalize()
{
    if (static_cast<std::uint16_t>(kind)
        >= static_cast<std::uint16_t>(Kind::KindCount))
        throw ServiceError("unknown experiment kind");
    if (workload.bench > kMaxBench)
        throw ServiceError("unknown workload bench");
    if (tails.size() > kMaxTails)
        throw ServiceError("too many sweep tails");
    if (voltages.size() > kMaxVoltages)
        throw ServiceError("too many voltage points");
    if (placement.size() > kMaxPlacementTiles)
        throw ServiceError("placement exceeds the tile count");

    // Phased always halts after its reps, so the infinite (power)
    // variants cannot run it.
    if (workload.bench
            == static_cast<std::uint16_t>(workloads::Microbench::Phased)
        && (kind == Kind::MeasurePower || kind == Kind::Sweep))
        throw ServiceError("Phased is finite-only (energy kinds)");

    // Engine choice is a speed knob, not a result knob (DESIGN.md §9).
    // engineThreads is a speed knob too (§12) but, unlike fastPath,
    // has no universally-right value, so canonicalize preserves the
    // client's choice for execution; canonicalBytes() strips it (like
    // deadlineMs) so it never splits the result cache.
    fastPath = true;

    workload.cores = clampRange<std::uint32_t>(workload.cores, 1, 25);
    workload.threadsPerCore =
        clampRange<std::uint32_t>(workload.threadsPerCore, 1, 2);
    cyclesPerSample = std::max<std::uint64_t>(1, cyclesPerSample);

    const auto zeroWorkload = [this] {
        workload = WorkloadSpec{0, 1, 1, 0, 0};
    };

    // Placement and sampling are PlacedRun/EnergyRun concerns; forcing
    // them off everywhere else keeps them out of other kinds' cache
    // identities.
    if (kind != Kind::PlacedRun) {
        placement.clear();
        tileFreqSteps.clear();
    }
    if (kind != Kind::EnergyRun && kind != Kind::PlacedRun)
        sampledSlices = 0;
    if (sampledSlices == 0) {
        sampledIntervalInsns = 0;
    } else {
        sampledSlices = clampRange(sampledSlices, 1u, kMaxSampledSlices);
        if (sampledIntervalInsns == 0)
            sampledIntervalInsns = kDefaultSampledIntervalInsns;
        sampledIntervalInsns =
            std::max(sampledIntervalInsns, kMinSampledIntervalInsns);
    }

    switch (kind) {
    case Kind::MeasurePower:
        samples = std::max<std::uint32_t>(1, samples);
        workload.iterations = 0; // steady-state: infinite variant
        maxCycles = 0;
        tails.clear();
        voltages.clear();
        break;
    case Kind::MeasureStatic:
        samples = std::max<std::uint32_t>(1, samples);
        zeroWorkload();
        warmupCycles = 0; // nothing runs before a static measurement
        maxCycles = 0;
        tails.clear();
        voltages.clear();
        break;
    case Kind::EnergyRun:
        if (workload.iterations == 0)
            throw ServiceError(
                "energy run requires finite workload iterations");
        maxCycles = std::max<std::uint64_t>(1, maxCycles);
        samples = 0;
        tails.clear();
        voltages.clear();
        break;
    case Kind::Sweep:
        if (tails.empty())
            throw ServiceError("sweep request with no tails");
        workload.iterations = 0;
        samples = 0;
        maxCycles = 0;
        voltages.clear();
        for (SweepTail &t : tails) {
            t.fanEffectiveness = clampRange(t.fanEffectiveness, 0.0, 1.0);
            t.windows = std::max<std::uint32_t>(1, t.windows);
        }
        break;
    case Kind::PlacedRun: {
        if (workload.iterations == 0)
            throw ServiceError(
                "placed run requires finite workload iterations");
        if (placement.empty())
            throw ServiceError("placed run requires a placement");
        std::uint32_t seen = 0;
        for (const std::uint16_t t : placement) {
            if (t >= kMaxPlacementTiles)
                throw ServiceError("placement tile out of range");
            if ((seen >> t) & 1u)
                throw ServiceError("placement tiles must be distinct");
            seen |= 1u << t;
        }
        // The placement *is* the core list; a divergent cores field
        // must not split the cache (or confuse the loader).
        workload.cores = static_cast<std::uint32_t>(placement.size());
        const std::uint32_t den = dutyDenominator(coreClockMhz);
        const auto full =
            static_cast<std::uint16_t>(std::min<std::uint32_t>(den, 0xFFFF));
        tileFreqSteps.resize(placement.size(), full);
        for (std::uint16_t &s : tileFreqSteps)
            s = clampRange<std::uint16_t>(s, 1, full);
        maxCycles = std::max<std::uint64_t>(1, maxCycles);
        samples = 0;
        tails.clear();
        voltages.clear();
        break;
    }
    case Kind::VfCurve:
        zeroWorkload();
        samples = 0;
        maxCycles = 0;
        seed = 0;
        cyclesPerSample = 1;
        warmupCycles = 0;
        vddV = vcsV = vioV = coreClockMhz = 0.0;
        tails.clear();
        if (voltages.empty())
            voltages = core::VfScalingExperiment::voltageGrid();
        break;
    case Kind::KindCount:
        break;
    }
}

void
ExperimentRequest::encode(WireWriter &w) const
{
    w.u16(static_cast<std::uint16_t>(kind));
    w.f64(vddV);
    w.f64(vcsV);
    w.f64(vioV);
    w.f64(coreClockMhz);
    w.u32(static_cast<std::uint32_t>(chipId));
    w.u64(seed);
    w.u64(cyclesPerSample);
    w.u64(warmupCycles);
    w.u8(fastPath ? 1 : 0);
    w.u32(engineThreads); // wire v2
    w.u16(workload.bench);
    w.u32(workload.cores);
    w.u32(workload.threadsPerCore);
    w.u64(workload.iterations);
    w.u64(workload.totalElements);
    w.u32(samples);
    w.u64(maxCycles);
    w.u32(static_cast<std::uint32_t>(tails.size()));
    for (const SweepTail &t : tails) {
        w.f64(t.fanEffectiveness);
        w.u32(t.windows);
    }
    w.u32(static_cast<std::uint32_t>(voltages.size()));
    for (const double v : voltages)
        w.f64(v);
    w.u16(static_cast<std::uint16_t>(placement.size())); // wire v4
    for (const std::uint16_t t : placement)
        w.u16(t);
    w.u16(static_cast<std::uint16_t>(tileFreqSteps.size()));
    for (const std::uint16_t s : tileFreqSteps)
        w.u16(s);
    w.u32(sampledSlices);
    w.u64(sampledIntervalInsns);
    w.u32(deadlineMs);
}

ExperimentRequest
ExperimentRequest::decode(WireReader &r)
{
    ExperimentRequest req;
    req.kind = static_cast<Kind>(r.u16());
    req.vddV = r.f64();
    req.vcsV = r.f64();
    req.vioV = r.f64();
    req.coreClockMhz = r.f64();
    req.chipId = static_cast<int>(r.u32());
    req.seed = r.u64();
    req.cyclesPerSample = r.u64();
    req.warmupCycles = r.u64();
    req.fastPath = r.u8() != 0;
    req.engineThreads = r.u32(); // wire v2
    req.workload.bench = r.u16();
    req.workload.cores = r.u32();
    req.workload.threadsPerCore = r.u32();
    req.workload.iterations = r.u64();
    req.workload.totalElements = r.u64();
    req.samples = r.u32();
    req.maxCycles = r.u64();
    const std::uint32_t n_tails = r.u32();
    if (n_tails > kMaxTails)
        throw ServiceError("too many sweep tails");
    req.tails.resize(n_tails);
    for (SweepTail &t : req.tails) {
        t.fanEffectiveness = r.f64();
        t.windows = r.u32();
    }
    const std::uint32_t n_volts = r.u32();
    if (n_volts > kMaxVoltages)
        throw ServiceError("too many voltage points");
    req.voltages.resize(n_volts);
    for (double &v : req.voltages)
        v = r.f64();
    const std::uint16_t n_place = r.u16(); // wire v4
    if (n_place > kMaxPlacementTiles)
        throw ServiceError("placement exceeds the tile count");
    req.placement.resize(n_place);
    for (std::uint16_t &t : req.placement)
        t = r.u16();
    const std::uint16_t n_steps = r.u16();
    if (n_steps > kMaxPlacementTiles)
        throw ServiceError("too many tile frequency steps");
    req.tileFreqSteps.resize(n_steps);
    for (std::uint16_t &s : req.tileFreqSteps)
        s = r.u16();
    req.sampledSlices = r.u32();
    req.sampledIntervalInsns = r.u64();
    req.deadlineMs = r.u32();
    return req;
}

std::vector<std::uint8_t>
ExperimentRequest::canonicalBytes() const
{
    ExperimentRequest canon = *this;
    canon.canonicalize();
    canon.deadlineMs = 0;     // QoS, not identity
    canon.engineThreads = 1;  // speed, not identity (bit-identical
                              // results at any thread count, §12)
    WireWriter w;
    canon.encode(w);
    return w.take();
}

Hash128
ExperimentRequest::cacheKey(std::uint32_t version_salt) const
{
    Hasher h;
    h.update("piton-service-result");
    h.updateU32(kWireVersion);
    h.updateU32(kResultFormatVersion);
    h.updateU32(version_salt);
    h.update(canonicalBytes());
    return h.digest();
}

Hash128
ExperimentRequest::prefixKey(std::uint32_t version_salt) const
{
    ExperimentRequest canon = *this;
    canon.canonicalize();
    Hasher h;
    h.update("piton-service-prefix");
    h.updateU32(kWireVersion);
    // Prefix images are checkpoint files; their layout is governed by
    // the checkpoint format version, not the response layout.
    h.updateU32(ckpt::kFormatVersion);
    h.updateU32(version_salt);
    WireWriter w;
    w.f64(canon.vddV);
    w.f64(canon.vcsV);
    w.f64(canon.vioV);
    w.f64(canon.coreClockMhz);
    w.u32(static_cast<std::uint32_t>(canon.chipId));
    w.u64(canon.seed);
    w.u64(canon.cyclesPerSample);
    w.u64(canon.warmupCycles);
    w.u16(canon.workload.bench);
    w.u32(canon.workload.cores);
    w.u32(canon.workload.threadsPerCore);
    w.u64(canon.workload.iterations);
    w.u64(canon.workload.totalElements);
    h.update(w.bytes());
    return h.digest();
}

ExperimentRequest
presetRequest(const std::string &name)
{
    ExperimentRequest req;
    const auto microbench = [&req](workloads::Microbench b) {
        req.workload.bench =
            static_cast<std::uint16_t>(b);
    };
    if (name == "fig9") {
        req.kind = Kind::VfCurve;
    } else if (name == "fig10") {
        req.kind = Kind::MeasureStatic;
        req.samples = 16;
    } else if (name == "fig11") {
        req.kind = Kind::EnergyRun;
        microbench(workloads::Microbench::Int);
        req.workload.iterations = 2000;
        req.maxCycles = 50'000'000;
    } else if (name == "fig13") {
        req.kind = Kind::MeasurePower;
        microbench(workloads::Microbench::HP);
        req.samples = 16;
    } else if (name == "fig14") {
        req.kind = Kind::EnergyRun;
        microbench(workloads::Microbench::Hist);
        req.workload.iterations = 4;
        req.maxCycles = 100'000'000;
    } else if (name == "fig16") {
        req.kind = Kind::MeasurePower;
        microbench(workloads::Microbench::Int);
        req.samples = 32;
    } else if (name == "fig17") {
        req.kind = Kind::Sweep;
        microbench(workloads::Microbench::HP);
        req.workload.cores = 8;
        req.warmupCycles = 64 * req.cyclesPerSample;
        req.tails = {{1.0, 16}, {0.75, 16}, {0.5, 16}, {0.25, 16},
                     {0.0, 16}};
    } else if (name == "table5") {
        req.kind = Kind::MeasurePower;
        microbench(workloads::Microbench::Int);
        req.samples = 16;
    } else if (name == "table7") {
        req.kind = Kind::EnergyRun;
        microbench(workloads::Microbench::HP);
        req.workload.iterations = 1000;
        req.maxCycles = 50'000'000;
    } else {
        throw ServiceError("unknown preset '" + name
                           + "' (see presetNames())");
    }
    req.canonicalize();
    return req;
}

std::vector<std::string>
presetNames()
{
    return {"fig9",  "fig10", "fig11", "fig13",  "fig14",
            "fig16", "fig17", "table5", "table7"};
}

} // namespace piton::service
