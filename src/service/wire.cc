#include "service/wire.hh"

#include <cstring>

#include "checkpoint/archive.hh"

namespace piton::service
{

// ---- WireWriter -----------------------------------------------------

void
WireWriter::putLe(std::uint64_t v, int n)
{
    for (int i = 0; i < n; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void
WireWriter::blob(const std::vector<std::uint8_t> &b)
{
    u32(static_cast<std::uint32_t>(b.size()));
    bytes_.insert(bytes_.end(), b.begin(), b.end());
}

// ---- WireReader -----------------------------------------------------

void
WireReader::need(std::size_t n) const
{
    if (len_ - pos_ < n)
        throw ServiceError("truncated message body");
}

std::uint64_t
WireReader::getLe(int n)
{
    need(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return v;
}

std::uint8_t
WireReader::u8()
{
    need(1);
    return data_[pos_++];
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
    pos_ += n;
    return s;
}

std::vector<std::uint8_t>
WireReader::blob()
{
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
}

void
WireReader::expectEnd() const
{
    if (pos_ != len_)
        throw ServiceError("trailing bytes after message body");
}

// ---- framing --------------------------------------------------------

namespace
{

constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8 + 4 + 4;

} // namespace

std::vector<std::uint8_t>
encodeFrame(const Frame &frame, std::uint16_t wire_version)
{
    if (frame.payload.size() > kMaxPayloadBytes)
        throw ServiceError("frame payload too large");
    WireWriter w;
    w.u32(kFrameMagic);
    w.u16(wire_version);
    w.u16(static_cast<std::uint16_t>(frame.type));
    w.u64(frame.requestId);
    w.u32(static_cast<std::uint32_t>(frame.payload.size()));
    w.u32(ckpt::crc32(frame.payload.data(), frame.payload.size()));
    std::vector<std::uint8_t> out = w.take();
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

std::vector<std::uint8_t>
encodeHelloRequest(const HelloRequest &h)
{
    WireWriter w;
    w.u16(h.wireVersion);
    w.str(h.clientName);
    return w.take();
}

HelloRequest
decodeHelloRequest(const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    HelloRequest h;
    h.wireVersion = r.u16();
    h.clientName = r.str();
    r.expectEnd();
    return h;
}

std::vector<std::uint8_t>
encodeHelloReply(const HelloReply &h)
{
    WireWriter w;
    w.u16(h.wireVersion);
    w.str(h.workerId);
    w.u32(h.schedulerThreads);
    return w.take();
}

HelloReply
decodeHelloReply(const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    HelloReply h;
    h.wireVersion = r.u16();
    h.workerId = r.str();
    h.schedulerThreads = r.u32();
    r.expectEnd();
    return h;
}

std::vector<std::uint8_t>
encodeVersionError(const VersionInfo &info)
{
    WireWriter w;
    w.u16(info.serverVersion);
    w.u16(info.clientVersion);
    w.str(info.message);
    return w.take();
}

VersionInfo
decodeVersionError(const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    VersionInfo info;
    info.serverVersion = r.u16();
    info.clientVersion = r.u16();
    info.message = r.str();
    r.expectEnd();
    return info;
}

void
FrameParser::feed(const std::uint8_t *data, std::size_t len)
{
    buf_.insert(buf_.end(), data, data + len);
}

bool
FrameParser::next(Frame &out)
{
    if (buf_.size() < kHeaderBytes)
        return false;
    std::uint8_t header[kHeaderBytes];
    for (std::size_t i = 0; i < kHeaderBytes; ++i)
        header[i] = buf_[i];
    WireReader r(header, kHeaderBytes);
    if (r.u32() != kFrameMagic)
        throw ServiceError("bad frame magic");
    const std::uint16_t version = r.u16();
    const auto type = static_cast<FrameType>(r.u16());
    const std::uint64_t request_id = r.u64();
    const std::uint32_t payload_len = r.u32();
    const std::uint32_t payload_crc = r.u32();
    if (version != kWireVersion)
        throw VersionMismatchError(version, kWireVersion, request_id);
    if (payload_len > kMaxPayloadBytes)
        throw ServiceError("frame payload too large");
    if (buf_.size() < kHeaderBytes + payload_len)
        return false;

    out.type = type;
    out.requestId = request_id;
    out.payload.assign(buf_.begin() + kHeaderBytes,
                       buf_.begin() + kHeaderBytes + payload_len);
    buf_.erase(buf_.begin(), buf_.begin() + kHeaderBytes + payload_len);
    if (ckpt::crc32(out.payload.data(), out.payload.size()) != payload_crc)
        throw ServiceError("frame payload CRC mismatch");
    return true;
}

} // namespace piton::service
