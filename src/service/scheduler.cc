#include "service/scheduler.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "telemetry/recorder.hh"
#include "telemetry/schema.hh"

namespace piton::service
{

namespace
{

constexpr std::size_t kLatencyReservoir = 1024;

/** Ready ticket for requests rejected before reaching the pool. */
ExperimentScheduler::Ticket
readyTicket(std::uint64_t id, ServeResult result)
{
    std::promise<ServeResult> p;
    p.set_value(std::move(result));
    ExperimentScheduler::Ticket t;
    t.id = id;
    t.result = p.get_future().share();
    t.cancel = std::make_shared<std::atomic<bool>>(false);
    return t;
}

ServeResult
failureResult(Status status, Kind kind, const std::string &message)
{
    ServeResult r;
    r.status = status;
    r.body = std::make_shared<const std::vector<std::uint8_t>>(
        ExperimentResponse::failure(status, kind, message).encodeBody());
    return r;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
encodeCacheStats(WireWriter &w, const CacheStats &s)
{
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.coalesced);
    w.u64(s.evictions);
    w.u64(s.corruptRejected);
    w.u64(s.diskHits);
    w.u64(s.entries);
    w.u64(s.bytes);
}

CacheStats
decodeCacheStats(WireReader &r)
{
    CacheStats s;
    s.hits = r.u64();
    s.misses = r.u64();
    s.coalesced = r.u64();
    s.evictions = r.u64();
    s.corruptRejected = r.u64();
    s.diskHits = r.u64();
    s.entries = static_cast<std::size_t>(r.u64());
    s.bytes = static_cast<std::size_t>(r.u64());
    return s;
}

} // namespace

std::vector<std::uint8_t>
encodeMetrics(const SchedulerMetrics &m)
{
    WireWriter w;
    w.u64(m.submitted);
    w.u64(m.completed);
    w.u64(m.shed);
    w.u64(m.errors);
    w.u64(m.cancelled);
    w.u64(m.deadlineExpired);
    w.u64(m.cacheHits);
    w.u64(m.queueDepth);
    w.f64(m.hitRate);
    w.f64(m.latencyP50Ms);
    w.f64(m.latencyP99Ms);
    encodeCacheStats(w, m.resultCache);
    encodeCacheStats(w, m.prefixCache);
    return w.take();
}

SchedulerMetrics
decodeMetrics(const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    SchedulerMetrics m;
    m.submitted = r.u64();
    m.completed = r.u64();
    m.shed = r.u64();
    m.errors = r.u64();
    m.cancelled = r.u64();
    m.deadlineExpired = r.u64();
    m.cacheHits = r.u64();
    m.queueDepth = static_cast<std::size_t>(r.u64());
    m.hitRate = r.f64();
    m.latencyP50Ms = r.f64();
    m.latencyP99Ms = r.f64();
    m.resultCache = decodeCacheStats(r);
    m.prefixCache = decodeCacheStats(r);
    r.expectEnd();
    return m;
}

std::vector<std::uint8_t>
encodeWorkerStats(const WorkerStats &s)
{
    WireWriter w;
    w.str(s.workerId);
    w.u32(s.threads);
    const std::vector<std::uint8_t> metrics = encodeMetrics(s.metrics);
    w.blob(metrics);
    return w.take();
}

WorkerStats
decodeWorkerStats(const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    WorkerStats s;
    s.workerId = r.str();
    s.threads = r.u32();
    s.metrics = decodeMetrics(r.blob());
    r.expectEnd();
    return s;
}

ExperimentScheduler::ExperimentScheduler(SchedulerConfig cfg)
    : cfg_(cfg), resultCache_(cfg.resultCache), prefixCache_(cfg.prefixCache),
      pool_(cfg.threads, std::max<std::size_t>(1, cfg.queueCapacity))
{
    // An admission bound above queue + workers would let submit()
    // block inside ThreadPool::submit, defeating the shed path.
    cfg_.maxPending = std::max<std::size_t>(
        1, std::min(cfg_.maxPending,
                    cfg_.queueCapacity + pool_.threadCount()));
    latencyReservoirMs_.reserve(kLatencyReservoir);
}

ExperimentScheduler::~ExperimentScheduler()
{
    drain();
}

ExperimentScheduler::Ticket
ExperimentScheduler::submit(const ExperimentRequest &req,
                            std::function<void(const ServeResult &)> on_done)
{
    const std::uint64_t id =
        nextId_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        ++counters_.submitted;
    }

    const auto reject = [&](ServeResult r) {
        recordOutcome(r, now());
        if (on_done)
            on_done(r);
        return readyTicket(id, std::move(r));
    };

    ExperimentRequest canon = req;
    try {
        canon.canonicalize();
    } catch (const std::exception &e) {
        return reject(failureResult(Status::Error, req.kind, e.what()));
    }

    // Admission control: claim a slot or shed.  CAS loop rather than
    // fetch_add/undo so a burst can never transiently exceed the bound.
    std::size_t depth = pending_.load(std::memory_order_relaxed);
    do {
        if (depth >= cfg_.maxPending)
            return reject(failureResult(Status::Shed, canon.kind,
                                        "server at capacity"));
    } while (!pending_.compare_exchange_weak(depth, depth + 1,
                                             std::memory_order_relaxed));

    const auto submitted_at = now();
    RunControl ctl;
    ctl.cancelled = std::make_shared<std::atomic<bool>>(false);
    ctl.now = cfg_.clock;
    if (canon.deadlineMs > 0)
        ctl.deadline =
            submitted_at + std::chrono::milliseconds(canon.deadlineMs);

    auto promise = std::make_shared<std::promise<ServeResult>>();
    Ticket ticket;
    ticket.id = id;
    ticket.result = promise->get_future().share();
    ticket.cancel = ctl.cancelled;

    pool_.submit([this, canon = std::move(canon), ctl, promise,
                  submitted_at, on_done = std::move(on_done)] {
        ServeResult r = execute(canon, ctl);
        recordOutcome(r, submitted_at);
        promise->set_value(r);
        if (on_done)
            on_done(r);
        // Release the slot last: drain() returning guarantees the
        // completion callback has already run.
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(drainMutex_);
            drainCv_.notify_all();
        }
    });
    return ticket;
}

ServeResult
ExperimentScheduler::serve(const ExperimentRequest &req)
{
    return submit(req).result.get();
}

ServeResult
ExperimentScheduler::execute(const ExperimentRequest &canon,
                             const RunControl &ctl)
{
    if (ctl.isCancelled() || ctl.deadlineExpired()) {
        const Status s = ctl.isCancelled() ? Status::Cancelled
                                           : Status::DeadlineExpired;
        return failureResult(s, canon.kind, "rejected in queue");
    }

    const Hash128 key = canon.cacheKey(cfg_.versionSalt);
    ResultCache::Acquired acq = resultCache_.acquire(key);
    if (acq.hit()) {
        ServeResult r;
        r.status = Status::Ok;
        r.cacheHit = true;
        r.body = std::move(acq.payload);
        return r;
    }
    if (!acq.leader) {
        // Coalesced: share the leader's bytes.  A null payload means
        // the leader failed; fall through and compute ourselves.
        CachePayload body = acq.pending.get();
        if (body) {
            ServeResult r;
            r.status = Status::Ok;
            r.cacheHit = true;
            r.body = std::move(body);
            return r;
        }
    }

    ExperimentResponse resp;
    try {
        resp = runExperiment(canon, ctl, &prefixCache_, cfg_.versionSalt);
    } catch (...) {
        if (acq.leader)
            resultCache_.abandon(key);
        throw; // runExperiment never throws; belt and braces
    }

    ServeResult r;
    r.status = resp.status;
    r.body = std::make_shared<const std::vector<std::uint8_t>>(
        resp.encodeBody());
    if (resp.status == Status::Ok) {
        if (acq.leader)
            resultCache_.publish(key, r.body);
        else
            resultCache_.insert(key, r.body);
    } else if (acq.leader) {
        // Failures are not cached: waiters recompute (their own
        // deadline/cancel state may differ).
        resultCache_.abandon(key);
    }
    return r;
}

void
ExperimentScheduler::recordOutcome(
    const ServeResult &r, std::chrono::steady_clock::time_point submitted_at)
{
    const double latency_ms =
        std::chrono::duration<double, std::milli>(now() - submitted_at)
            .count();
    std::lock_guard<std::mutex> lock(metricsMutex_);
    ++counters_.completed;
    switch (r.status) {
    case Status::Ok:
        if (r.cacheHit)
            ++counters_.cacheHits;
        break;
    case Status::Error:
        ++counters_.errors;
        break;
    case Status::Shed:
        ++counters_.shed;
        break;
    case Status::DeadlineExpired:
        ++counters_.deadlineExpired;
        break;
    case Status::Cancelled:
        ++counters_.cancelled;
        break;
    case Status::StatusCount:
        break;
    }
    if (latencyReservoirMs_.size() < kLatencyReservoir) {
        latencyReservoirMs_.push_back(latency_ms);
    } else {
        latencyReservoirMs_[latencyNext_] = latency_ms;
        latencyNext_ = (latencyNext_ + 1) % kLatencyReservoir;
    }
}

void
ExperimentScheduler::drain()
{
    std::unique_lock<std::mutex> lock(drainMutex_);
    drainCv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

SchedulerMetrics
ExperimentScheduler::metrics() const
{
    SchedulerMetrics m;
    std::vector<double> latencies;
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        m = counters_;
        latencies = latencyReservoirMs_;
    }
    m.queueDepth = pending_.load(std::memory_order_relaxed);
    m.hitRate = m.completed == 0 ? 0.0
                                 : static_cast<double>(m.cacheHits)
                                       / static_cast<double>(m.completed);
    std::sort(latencies.begin(), latencies.end());
    m.latencyP50Ms = percentile(latencies, 0.50);
    m.latencyP99Ms = percentile(latencies, 0.99);
    m.resultCache = resultCache_.stats();
    m.prefixCache = prefixCache_.stats();
    return m;
}

void
ExperimentScheduler::exportTelemetry(telemetry::TelemetryRecorder &rec)
{
    namespace schema = telemetry::schema;
    const SchedulerMetrics m = metrics();
    double seq;
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        seq = static_cast<double>(exportSeq_++);
    }
    using telemetry::Downsample;
    using telemetry::Unit;
    const auto gauge = [&](const char *name, double value) {
        const std::size_t idx =
            rec.defineSeries(name, Unit::Count, Downsample::Mean);
        rec.record(idx, seq, 1.0, value);
    };
    gauge(schema::kServiceQueueDepth,
          static_cast<double>(m.queueDepth));
    gauge(schema::kServiceHitRate, m.hitRate);
    gauge(schema::kServiceLatencyP50Ms, m.latencyP50Ms);
    gauge(schema::kServiceLatencyP99Ms, m.latencyP99Ms);
    gauge(schema::kServiceShed, static_cast<double>(m.shed));
}

} // namespace piton::service
