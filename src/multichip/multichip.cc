#include "multichip/multichip.hh"

#include "common/logging.hh"

namespace piton::multichip
{

MultiChipSystem::MultiChipSystem(std::uint32_t sockets, int chip_id,
                                 std::uint64_t seed)
{
    piton_assert(sockets >= 1 && sockets <= 16,
                 "socket count %u out of range", sockets);
    config::PitonParams params;
    for (std::uint32_t s = 0; s < sockets; ++s) {
        instances_.push_back(chip::makeChip(chip_id, seed + s));
        chips_.push_back(std::make_unique<arch::PitonChip>(
            params, instances_.back(), energy_, seed + 77 * s));
    }
}

std::uint32_t
MultiChipSystem::homeSocket(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> 6) % chips_.size());
}

CrossChipOutcome
MultiChipSystem::localLoad(std::uint32_t socket, TileId tile, Addr addr,
                           Cycle now)
{
    piton_assert(socket < chips_.size(), "socket out of range");
    RegVal data;
    const arch::AccessOutcome out =
        chips_[socket]->memSystem().load(tile, addr, data, now);
    CrossChipOutcome res;
    res.latency = out.latency;
    res.remoteL2Hit = out.level != arch::HitLevel::OffChip;
    return res;
}

CrossChipOutcome
MultiChipSystem::crossChipLoad(std::uint32_t socket, TileId tile,
                               Addr addr, Cycle now)
{
    piton_assert(socket < chips_.size(), "socket out of range");
    const std::uint32_t home = homeSocket(addr);
    if (home == socket)
        return localLoad(socket, tile, addr, now);

    ++crossings_;
    arch::PitonChip &local = *chips_[socket];
    arch::PitonChip &remote = *chips_[home];

    CrossChipOutcome res;

    // 1. Local mesh: requester tile to the chip bridge at tile 0, plus
    //    the local L1/L1.5/L2 miss detection (the request only leaves
    //    the socket once the local hierarchy misses).
    const auto &p = local.params();
    const std::uint32_t hops_out = config::hopDistance(p, tile, 0);
    res.latency += 28; // L1 miss + L2 miss detect (Fig. 15 tile stage)
    res.latency += 2 * hops_out;

    // 2. Outbound crossing: local bridge, link, remote bridge entry.
    res.latency += fabric_.bridgeCrossing + fabric_.linkTransfer
                   + fabric_.remoteEntry;

    // 3. Remote socket resolves the line, entering its mesh at the
    //    chip bridge (tile 0); the access outcome already includes the
    //    remote mesh round trip to the home slice.
    RegVal data;
    const arch::AccessOutcome remote_out =
        remote.memSystem().load(0, addr, data, now);
    res.latency += remote_out.latency;
    res.remoteL2Hit = remote_out.level != arch::HitLevel::OffChip;

    // 4. Return crossing.
    res.latency += fabric_.bridgeCrossing + fabric_.linkTransfer
                   + fabric_.remoteEntry;

    // Energy: both sockets' bridges serialize the 3-flit request and
    // the 3-flit (16 B) response over their VIO pads.
    const double before_local = local.ledger().total().onChipCoreAndSram();
    const double before_remote =
        remote.ledger().total().onChipCoreAndSram();
    for (int flit = 0; flit < 6; ++flit) {
        local.ledger().add(power::Category::ChipBridge,
                           energy_.chipBridgeFlitEnergy());
        local.ledger().add(power::Category::ChipBridge,
                           energy_.vioBeatEnergy());
        local.ledger().add(power::Category::ChipBridge,
                           energy_.vioBeatEnergy());
        remote.ledger().add(power::Category::ChipBridge,
                            energy_.chipBridgeFlitEnergy());
        remote.ledger().add(power::Category::ChipBridge,
                            energy_.vioBeatEnergy());
        remote.ledger().add(power::Category::ChipBridge,
                            energy_.vioBeatEnergy());
    }
    res.energyJ = (local.ledger().total().onChipCoreAndSram()
                   - before_local)
                  + (remote.ledger().total().onChipCoreAndSram()
                     - before_remote);
    return res;
}

} // namespace piton::multichip
