/**
 * @file
 * Multi-socket Piton systems (Section II).
 *
 * Piton's three NoCs and its directory-based coherence protocol extend
 * off-chip: the chip bridge multiplexes the networks over the 32-bit
 * pin interface so multiple sockets share memory ("enabling multi-
 * socket Piton systems with support for inter-chip shared memory").
 * The paper characterizes a single socket; this module extends the
 * energy/latency models to K-socket systems so the memory-energy
 * ladder of Table VII gains its natural next rungs: remote-chip L2
 * hits and shared-DRAM misses.
 *
 * Modelling level: each socket is a full cycle-level PitonChip; the
 * inter-chip fabric is transaction-level (like the Fig. 15 chipset
 * path), with per-stage latencies normalized to the core clock and
 * chip-bridge/VIO energy charged on both sockets for every crossing.
 */

#ifndef PITON_MULTICHIP_MULTICHIP_HH
#define PITON_MULTICHIP_MULTICHIP_HH

#include <memory>
#include <vector>

#include "arch/piton_chip.hh"
#include "chip/chip_instance.hh"
#include "power/energy_model.hh"

namespace piton::multichip
{

/** Inter-chip fabric latencies (core-clock cycles at 500.05 MHz). */
struct FabricLatencies
{
    /** One direction through a chip bridge + gateway buffering
     *  (Fig. 15's chip-bridge and gateway stages). */
    std::uint32_t bridgeCrossing = 44; // 5 + 39
    /** Inter-socket link transfer (FMC-class connector). */
    std::uint32_t linkTransfer = 18;
    /** Entry through the remote socket's bridge demux into its mesh. */
    std::uint32_t remoteEntry = 11;
};

struct CrossChipOutcome
{
    std::uint32_t latency = 0;   ///< total cycles, requester's view
    double energyJ = 0.0;        ///< VDD+VCS energy charged (both sockets)
    bool remoteL2Hit = false;    ///< false = went to shared DRAM
};

/**
 * A K-socket Piton system.  Sockets run independent workloads through
 * their own PitonChip; inter-chip shared-memory traffic uses the
 * transaction-level fabric.
 */
class MultiChipSystem
{
  public:
    /**
     * @param sockets     number of chips (>= 1)
     * @param chip_id     calibrated chip instance used for every socket
     */
    explicit MultiChipSystem(std::uint32_t sockets, int chip_id = 2,
                             std::uint64_t seed = 0x50C);

    std::uint32_t socketCount() const
    {
        return static_cast<std::uint32_t>(chips_.size());
    }
    arch::PitonChip &socket(std::uint32_t s) { return *chips_[s]; }

    /** Home socket of an address (line-interleaved across sockets). */
    std::uint32_t homeSocket(Addr addr) const;

    /**
     * A load from `tile` on `socket` to an address homed on another
     * socket: traverses the local mesh to the chip bridge, crosses the
     * fabric, resolves at the remote home L2 (hit or shared-DRAM
     * fill), and returns.  Charges energy on both sockets' ledgers.
     */
    CrossChipOutcome crossChipLoad(std::uint32_t socket, TileId tile,
                                   Addr addr, Cycle now);

    /** Same-socket load passthrough (for symmetric call sites). */
    CrossChipOutcome localLoad(std::uint32_t socket, TileId tile,
                               Addr addr, Cycle now);

    const FabricLatencies &fabric() const { return fabric_; }

    /** Total fabric crossings so far (diagnostics). */
    std::uint64_t fabricCrossings() const { return crossings_; }

  private:
    power::EnergyModel energy_;
    FabricLatencies fabric_;
    std::vector<chip::ChipInstance> instances_;
    std::vector<std::unique_ptr<arch::PitonChip>> chips_;
    std::uint64_t crossings_ = 0;
};

} // namespace piton::multichip

#endif // PITON_MULTICHIP_MULTICHIP_HH
