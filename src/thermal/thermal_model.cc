#include "thermal/thermal_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace piton::thermal
{

ThermalModel::ThermalModel(ThermalParams params) : params_(params)
{
    piton_assert(params_.dieCap > 0.0 && params_.packageCap > 0.0
                     && params_.sinkCap > 0.0,
                 "thermal capacitances must be positive");
    reset();
}

void
ThermalModel::setFanEffectiveness(double eff)
{
    piton_assert(eff >= 0.0 && eff <= 1.0,
                 "fan effectiveness %.2f outside [0,1]", eff);
    params_.fanEffectiveness = eff;
}

void
ThermalModel::setHasHeatSink(bool has)
{
    params_.hasHeatSink = has;
}

void
ThermalModel::reset()
{
    state_.dieC = params_.ambientC;
    state_.packageC = params_.ambientC;
    state_.sinkC = params_.ambientC;
}

double
ThermalModel::convectionR() const
{
    const double base = params_.hasHeatSink ? params_.sinkToAmbientR
                                            : params_.packageToAmbientNoSinkR;
    // Linear interpolation between full-fan and fan-off resistance.
    const double factor = params_.fanOffFactor
                          - (params_.fanOffFactor - 1.0)
                                * params_.fanEffectiveness;
    return base * factor;
}

void
ThermalModel::step(double power_w, double dt_s)
{
    piton_assert(dt_s > 0.0, "dt must be positive");
    // Sub-step at a fraction of the fastest time constant (the die).
    const double tau_die = params_.dieCap * params_.dieToPackageR;
    const double max_h = std::max(1e-4, tau_die * 0.2);
    int n = std::max(1, static_cast<int>(std::ceil(dt_s / max_h)));
    const double h = dt_s / n;

    for (int i = 0; i < n; ++i) {
        if (params_.hasHeatSink) {
            const double q_dp =
                (state_.dieC - state_.packageC) / params_.dieToPackageR;
            const double q_ps =
                (state_.packageC - state_.sinkC) / params_.packageToSinkR;
            const double q_sa =
                (state_.sinkC - params_.ambientC) / convectionR();
            state_.dieC += h * (power_w - q_dp) / params_.dieCap;
            state_.packageC += h * (q_dp - q_ps) / params_.packageCap;
            state_.sinkC += h * (q_ps - q_sa) / params_.sinkCap;
        } else {
            const double q_dp =
                (state_.dieC - state_.packageC) / params_.dieToPackageR;
            const double q_pa =
                (state_.packageC - params_.ambientC) / convectionR();
            state_.dieC += h * (power_w - q_dp) / params_.dieCap;
            state_.packageC += h * (q_dp - q_pa) / params_.packageCap;
            state_.sinkC = state_.packageC;
        }
    }
}

ThermalState
ThermalModel::steadyState(double power_w) const
{
    ThermalState s;
    if (params_.hasHeatSink) {
        s.sinkC = params_.ambientC + power_w * convectionR();
        s.packageC = s.sinkC + power_w * params_.packageToSinkR;
        s.dieC = s.packageC + power_w * params_.dieToPackageR;
    } else {
        s.packageC = params_.ambientC + power_w * convectionR();
        s.sinkC = s.packageC;
        s.dieC = s.packageC + power_w * params_.dieToPackageR;
    }
    return s;
}

} // namespace piton::thermal
