/**
 * @file
 * Lumped-RC thermal model of the packaged Piton chip (Fig. 6/7, 17, 18).
 *
 * Four thermal nodes — die, package (ceramic QFP + epoxy encapsulation),
 * heat sink, ambient — connected by thermal resistances.  The paper's
 * package is cavity-up with an epoxy lid and a socket, so the die-to-
 * package resistance dominates (this is what thermally limits Fig. 9's
 * high-voltage points).  The fan changes the sink/package-to-ambient
 * convection resistance; Fig. 17 sweeps it by tilting the fan, and
 * Fig. 17/18 run with the heat sink removed entirely.
 *
 * The model integrates dT/dt = (P_in - sum(dT/R)) / C per node with
 * forward Euler and also solves the steady state directly.
 */

#ifndef PITON_THERMAL_THERMAL_MODEL_HH
#define PITON_THERMAL_THERMAL_MODEL_HH

namespace piton::thermal
{

struct ThermalParams
{
    double ambientC = 20.0;

    // Thermal capacitances (J/K).  The package value reflects the
    // thermal mass the FLIR camera actually sees responding in
    // Fig. 18's ~10 s phases (the package surface), not the full
    // ceramic body.
    double dieCap = 0.05;
    double packageCap = 1.5;
    double sinkCap = 40.0;

    // Thermal resistances (K/W).
    double dieToPackageR = 6.0;   ///< cavity-up die + epoxy bottleneck
    double packageToSinkR = 2.0;  ///< spacers + thermal paste (Fig. 6)
    double sinkToAmbientR = 2.5;  ///< heat sink + 44 cfm fan

    /** Package-to-ambient convection when no heat sink is mounted,
     *  at full fan effectiveness (Fig. 17 setup). */
    double packageToAmbientNoSinkR = 30.0;

    bool hasHeatSink = true;

    /**
     * Fan effectiveness in [0, 1]: 1 = fan square to the fins, 0 = fan
     * fully tilted away.  Scales the convection resistance up to
     * fanOffFactor at 0.  The factor is bounded so the leakage-thermal
     * loop keeps a stable operating point (the real experiment swept
     * the fan only over the 36..56 C window of Fig. 17).
     */
    double fanEffectiveness = 1.0;
    double fanOffFactor = 1.15;
};

/** Node temperatures (degrees Celsius). */
struct ThermalState
{
    double dieC = 20.0;
    double packageC = 20.0;
    double sinkC = 20.0;
};

class ThermalModel
{
  public:
    explicit ThermalModel(ThermalParams params = ThermalParams{});

    const ThermalParams &params() const { return params_; }
    void setFanEffectiveness(double eff);
    void setHasHeatSink(bool has);

    /** Reset all nodes to ambient. */
    void reset();

    const ThermalState &state() const { return state_; }
    double dieTempC() const { return state_.dieC; }
    double packageTempC() const { return state_.packageC; }

    /** Advance the network by dt seconds with chip power power_w
     *  injected at the die node. Uses sub-stepping for stability. */
    void step(double power_w, double dt_s);

    /** Closed-form steady-state temperatures for constant power. */
    ThermalState steadyState(double power_w) const;

    /** Set state directly (e.g. to start from a known condition). */
    void setState(const ThermalState &s) { state_ = s; }

    /** Checkpoint hook: parameters (setFanEffectiveness and
     *  setHasHeatSink mutate them mid-run) plus node temperatures. */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        ar.io(params_.ambientC);
        ar.io(params_.dieCap);
        ar.io(params_.packageCap);
        ar.io(params_.sinkCap);
        ar.io(params_.dieToPackageR);
        ar.io(params_.packageToSinkR);
        ar.io(params_.sinkToAmbientR);
        ar.io(params_.packageToAmbientNoSinkR);
        ar.io(params_.hasHeatSink);
        ar.io(params_.fanEffectiveness);
        ar.io(params_.fanOffFactor);
        ar.io(state_.dieC);
        ar.io(state_.packageC);
        ar.io(state_.sinkC);
    }

  private:
    /** Convection resistance from the outermost node to ambient,
     *  including the fan model. */
    double convectionR() const;

    ThermalParams params_;
    ThermalState state_;
};

} // namespace piton::thermal

#endif // PITON_THERMAL_THERMAL_MODEL_HH
