/**
 * @file
 * Application-level experiments: the SPECint study (Table IX), the
 * per-supply power time series of a full benchmark run (Fig. 16), and
 * the system-comparison data of Table VIII.
 */

#ifndef PITON_CORE_APP_EXPERIMENTS_HH
#define PITON_CORE_APP_EXPERIMENTS_HH

#include <vector>

#include "board/test_board.hh"
#include "perfmodel/spec_model.hh"
#include "telemetry/recorder.hh"

namespace piton::core
{

/** A SpecModel wired to the paper's two machines and Chip #2. */
perfmodel::SpecModel makePaperSpecModel();

struct TimeSeriesPoint
{
    double timeS = 0.0;
    double coreMw = 0.0; ///< VDD rail
    double ioMw = 0.0;   ///< VIO rail
    double sramMw = 0.0; ///< VCS rail
};

/**
 * Fig. 16: the power of each supply over an entire benchmark run.
 * The benchmark's program phases modulate core activity and, for the
 * high-I/O benchmarks, VIO activity; the monitor chain adds its noise.
 */
class PowerTimeSeriesExperiment
{
  public:
    explicit PowerTimeSeriesExperiment(std::uint64_t seed = 0x916);

    /**
     * Synthesize the phase-modulated run of one benchmark profile,
     * sampled every `sample_period_s` seconds over the modelled Piton
     * execution time (capped at `max_seconds` for plotting).  When
     * `rec` is non-null the monitor readings also land there as the
     * measured.*_w series (watts, one point per sample period).
     */
    std::vector<TimeSeriesPoint>
    run(const workloads::SpecBenchmark &bench, double sample_period_s = 2.0,
        double max_seconds = 2000.0,
        telemetry::TelemetryRecorder *rec = nullptr) const;

    /**
     * Fig. 16 for every SPECint profile, one benchmark per task
     * fanned out over `threads` workers (0 = all hardware threads);
     * traces are indexed like specint2006Profiles().  When `merged`
     * is non-null each task records into its own recorder and the
     * recorders merge in task-index order under "<benchmark>/"
     * prefixes — bit-identical at any worker count.
     */
    std::vector<std::vector<TimeSeriesPoint>>
    runAll(double sample_period_s = 2.0, double max_seconds = 2000.0,
           unsigned threads = 1,
           telemetry::TelemetryRecorder *merged = nullptr) const;

  private:
    std::vector<TimeSeriesPoint>
    runSeeded(std::uint64_t seed, const workloads::SpecBenchmark &bench,
              double sample_period_s, double max_seconds,
              telemetry::TelemetryRecorder *rec) const;

    std::uint64_t seed_;
};

} // namespace piton::core

#endif // PITON_CORE_APP_EXPERIMENTS_HH
