#include "core/power_cap.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "telemetry/schema.hh"

namespace piton::core
{

PowerCapExperiment::PowerCapExperiment(sim::SystemOptions opts,
                                       std::uint32_t samples)
    : opts_(opts), samples_(samples)
{
    opts_.chipId = 3; // consistent with the microbenchmark studies
}

double
PowerCapExperiment::hpPowerW(std::uint32_t cores)
{
    piton_assert(cores <= 25, "core count out of range");
    const auto it = powerCache_.find(cores);
    if (it != powerCache_.end())
        return it->second;

    sim::System sys(opts_);
    double p = 0.0;
    if (cores == 0) {
        p = sys.idlePowerW();
    } else {
        const auto programs = workloads::loadMicrobench(
            sys, workloads::Microbench::HP, cores, 2, /*iterations=*/0);
        // Measure through the telemetry path: the monitor chain lands
        // its samples in the recorder and the steady-state power is
        // the aggregate mean of the measured on-chip series.
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        sys.measure(samples_);
        p = rec.aggregate(telemetry::schema::kMeasuredOnChipW).mean;
    }
    powerCache_.emplace(cores, p);
    return p;
}

StaticCapResult
PowerCapExperiment::maxCoresUnderCap(double cap_w)
{
    StaticCapResult res;
    res.capW = cap_w;
    for (std::uint32_t c = 0; c <= 25; ++c) {
        const double p = hpPowerW(c);
        if (p <= cap_w) {
            res.maxCores = c;
            res.powerAtMaxW = p;
        } else {
            break;
        }
    }
    res.headroomW = cap_w - res.powerAtMaxW;
    return res;
}

GovernorTrace
PowerCapExperiment::reactiveGovernor(double cap_w, double interval_s,
                                     double duration_s)
{
    GovernorTrace trace;
    trace.capW = cap_w;
    Rng noise(0xCA9);

    namespace ts = telemetry::schema;
    const std::size_t id_cores = telem_.defineSeries(
        ts::kGovernorCores, telemetry::Unit::Count,
        telemetry::Downsample::Mean);
    const std::size_t id_power = telem_.defineSeries(
        ts::kGovernorMeasuredW, telemetry::Unit::Watts,
        telemetry::Downsample::Mean);

    std::uint32_t cores = 25; // full demand at t = 0
    double above_time = 0.0;
    for (double t = 0.0; t < duration_s; t += interval_s) {
        // "Measure" the chip: steady-state power for the current
        // configuration plus monitor-grade noise.
        const double measured =
            hpPowerW(cores) + noise.gaussian(0.0, 0.002);

        GovernorPoint pt;
        pt.timeS = t;
        pt.activeCores = cores;
        pt.measuredPowerW = measured;
        trace.points.push_back(pt);
        telem_.record(id_cores, t, interval_s,
                      static_cast<double>(cores));
        telem_.record(id_power, t, interval_s, measured);

        if (measured > cap_w)
            above_time += interval_s;

        // Control law (no oracle — what a real governor can do):
        // throttle when over the cap; release a core only when at
        // least a core's worth of measured headroom exists.
        constexpr double kPerCoreHeadroomW = 0.095;
        if (measured > cap_w && cores > 0) {
            --cores;
        } else if (cores < 25 && measured < cap_w - kPerCoreHeadroomW) {
            ++cores;
        }
    }
    trace.violationFraction = above_time / duration_s;
    trace.settledCores = cores;
    return trace;
}

} // namespace piton::core
