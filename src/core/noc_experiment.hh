/**
 * @file
 * The NoC energy study (Section IV-G, Fig. 12).
 *
 * The chipset logic is modified to continually send dummy invalidation
 * packets (a routing header plus 6 payload flits) into Piton, destined
 * for tiles at increasing hop counts from the chip bridge entry at
 * tile 0.  The chip-bridge/NoC bandwidth mismatch yields 7 valid flits
 * every 47 cycles; EPF follows from the equation in core/equations.hh.
 * Four payload switching patterns quantify the link-activity
 * dependence: NSW (all zeros), HSW (0x3333.. alternating with zeros),
 * FSW (all ones alternating with zeros), and FSWA (0xAAAA..
 * alternating with 0x5555..).
 */

#ifndef PITON_CORE_NOC_EXPERIMENT_HH
#define PITON_CORE_NOC_EXPERIMENT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/system.hh"

namespace piton::core
{

enum class SwitchPattern
{
    NSW,  ///< no switching: all payload bits zero
    HSW,  ///< half switching: 0x3333... alternating with zeros
    FSW,  ///< full switching: all ones alternating with zeros
    FSWA, ///< full switching alternate: 0xAAAA... vs 0x5555...
};

const char *switchPatternName(SwitchPattern p);

/** The two payload flit values a pattern alternates between. */
std::pair<RegVal, RegVal> switchPatternFlits(SwitchPattern p);

/** Destination tile for an N-hop injection from tile 0 (N in 0..8):
 *  tiles 0,1,2,3,4,9,14,19,24 — the paper's examples extended along
 *  the east edge and down the last column. */
TileId hopTargetTile(std::uint32_t hops);

struct EpfRow
{
    SwitchPattern pattern;
    std::uint32_t hops = 0;
    double epfPj = 0.0;
    double errPj = 0.0;
};

struct EpfTrend
{
    SwitchPattern pattern;
    double pjPerHop = 0.0;
    double interceptPj = 0.0;
    double r2 = 0.0;
};

class NocEnergyExperiment
{
  public:
    explicit NocEnergyExperiment(sim::SystemOptions base_options = {},
                                 std::uint32_t samples = 128);

    /** EPF for one pattern at one hop count. */
    EpfRow measure(SwitchPattern pattern, std::uint32_t hops);

    /** The full Fig. 12 sweep: four patterns, 0..8 hops. */
    std::vector<EpfRow> runAll();

    /** Least-squares pJ/hop trendlines over a row set. */
    static std::vector<EpfTrend> trends(const std::vector<EpfRow> &rows);

  private:
    /** Average injection power for a destination/pattern. */
    double injectionPowerW(SwitchPattern pattern, TileId dst,
                           double *stddev_w);

    sim::SystemOptions opts_;
    std::uint32_t samples_;
};

} // namespace piton::core

#endif // PITON_CORE_NOC_EXPERIMENT_HH
