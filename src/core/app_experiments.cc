#include "core/app_experiments.hh"

#include <algorithm>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "telemetry/schema.hh"

namespace piton::core
{

perfmodel::SpecModel
makePaperSpecModel()
{
    return perfmodel::SpecModel(perfmodel::sunFireT2000(),
                                perfmodel::pitonSystem(),
                                power::EnergyModel(), 2.0153);
}

PowerTimeSeriesExperiment::PowerTimeSeriesExperiment(std::uint64_t seed)
    : seed_(seed)
{
}

std::vector<TimeSeriesPoint>
PowerTimeSeriesExperiment::run(const workloads::SpecBenchmark &bench,
                               double sample_period_s, double max_seconds,
                               telemetry::TelemetryRecorder *rec) const
{
    return runSeeded(seed_, bench, sample_period_s, max_seconds, rec);
}

std::vector<std::vector<TimeSeriesPoint>>
PowerTimeSeriesExperiment::runAll(double sample_period_s,
                                  double max_seconds, unsigned threads,
                                  telemetry::TelemetryRecorder *merged) const
{
    const auto &profiles = workloads::specint2006Profiles();
    std::vector<std::vector<TimeSeriesPoint>> out(profiles.size());
    // Per-task recorders, merged in task-index order after the join
    // (bit-identical at any worker count; see common/parallel.hh).
    std::vector<telemetry::TelemetryRecorder> recs(
        merged ? profiles.size() : 0);
    parallelFor(profiles.size(), threads, [&](std::size_t i) {
        out[i] = runSeeded(deriveTaskSeed(seed_, i), profiles[i],
                           sample_period_s, max_seconds,
                           merged ? &recs[i] : nullptr);
    });
    if (merged)
        for (std::size_t i = 0; i < recs.size(); ++i)
            merged->merge(recs[i], profiles[i].name + "/");
    return out;
}

std::vector<TimeSeriesPoint>
PowerTimeSeriesExperiment::runSeeded(std::uint64_t seed,
                                     const workloads::SpecBenchmark &bench,
                                     double sample_period_s,
                                     double max_seconds,
                                     telemetry::TelemetryRecorder *rec) const
{
    const perfmodel::SpecModel model = makePaperSpecModel();
    const perfmodel::SpecResult r = model.evaluate(bench);
    const double duration =
        std::min(max_seconds, r.pitonMinutes * 60.0);

    Rng rng(seed);
    board::TestBoard tb(seed ^ 0xF16);

    namespace ts = telemetry::schema;
    std::size_t id_vdd = 0, id_vcs = 0, id_vio = 0, id_onchip = 0;
    if (rec) {
        using telemetry::Downsample;
        using telemetry::Unit;
        id_vdd = rec->defineSeries(ts::kMeasuredVddW, Unit::Watts,
                                   Downsample::Mean);
        id_vcs = rec->defineSeries(ts::kMeasuredVcsW, Unit::Watts,
                                   Downsample::Mean);
        id_vio = rec->defineSeries(ts::kMeasuredVioW, Unit::Watts,
                                   Downsample::Mean);
        id_onchip = rec->defineSeries(ts::kMeasuredOnChipW, Unit::Watts,
                                      Downsample::Mean);
    }

    std::vector<TimeSeriesPoint> out;
    // Program phases: piecewise-constant activity segments 20..120 s
    // long; occasional I/O bursts (dominant for hmmer/libquantum).
    double seg_end = 0.0;
    double activity = 1.0;
    double io_burst = 1.0;
    for (double t = 0.0; t < duration; t += sample_period_s) {
        if (t >= seg_end) {
            seg_end = t + rng.uniform(20.0, 120.0);
            activity = rng.uniform(0.7, 1.3);
            // I/O bursts scale with the benchmark's I/O factor.
            io_burst = rng.chance(0.3) ? rng.uniform(2.0, 4.0) : 1.0;
        }
        auto rails = model.pitonRailPowers(bench, activity);
        rails[2] *= io_burst;

        TimeSeriesPoint pt;
        pt.timeS = t;
        pt.coreMw =
            wToMw(tb.sampleRail(power::Rail::Vdd, rails[0]).powerW());
        pt.sramMw =
            wToMw(tb.sampleRail(power::Rail::Vcs, rails[1]).powerW());
        pt.ioMw =
            wToMw(tb.sampleRail(power::Rail::Vio, rails[2]).powerW());
        out.push_back(pt);
        if (rec) {
            rec->record(id_vdd, t, sample_period_s,
                        mwToW(pt.coreMw));
            rec->record(id_vcs, t, sample_period_s,
                        mwToW(pt.sramMw));
            rec->record(id_vio, t, sample_period_s, mwToW(pt.ioMw));
            rec->record(id_onchip, t, sample_period_s,
                        mwToW(pt.coreMw + pt.sramMw));
        }
    }
    return out;
}

} // namespace piton::core
