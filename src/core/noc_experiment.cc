#include "core/noc_experiment.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/equations.hh"

namespace piton::core
{

const char *
switchPatternName(SwitchPattern p)
{
    switch (p) {
      case SwitchPattern::NSW: return "NSW";
      case SwitchPattern::HSW: return "HSW";
      case SwitchPattern::FSW: return "FSW";
      case SwitchPattern::FSWA: return "FSWA";
      default:
        piton_panic("bad SwitchPattern");
    }
}

std::pair<RegVal, RegVal>
switchPatternFlits(SwitchPattern p)
{
    switch (p) {
      case SwitchPattern::NSW:
        return {0x0ULL, 0x0ULL};
      case SwitchPattern::HSW:
        return {0x3333333333333333ULL, 0x0ULL};
      case SwitchPattern::FSW:
        return {~RegVal{0}, 0x0ULL};
      case SwitchPattern::FSWA:
        return {0xAAAAAAAAAAAAAAAAULL, 0x5555555555555555ULL};
      default:
        piton_panic("bad SwitchPattern");
    }
}

TileId
hopTargetTile(std::uint32_t hops)
{
    piton_assert(hops <= 8, "hop count %u exceeds the 5x5 mesh max", hops);
    // 0..4 hops straight east along the top row; 5..8 hops continue
    // down the east column (tile 9 = 5 hops, the paper's example).
    if (hops <= 4)
        return hops;
    return 4 + (hops - 4) * 5;
}

NocEnergyExperiment::NocEnergyExperiment(sim::SystemOptions base_options,
                                         std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

double
NocEnergyExperiment::injectionPowerW(SwitchPattern pattern, TileId dst,
                                     double *stddev_w)
{
    sim::System sys(opts_);
    const auto [flit_a, flit_b] = switchPatternFlits(pattern);
    const Cycle window = sys.options().cyclesPerSample;
    const std::uint64_t packets_per_window = window / kNocPatternCycles;

    auto inject_window = [&] {
        for (std::uint64_t i = 0; i < packets_per_window; ++i) {
            // Header + 6 payload flits alternating between the two
            // pattern values flit by flit.
            std::vector<RegVal> payload(6);
            for (std::size_t k = 0; k < payload.size(); ++k)
                payload[k] = (k % 2 == 0) ? flit_a : flit_b;
            sys.pitonChip().memSystem().injectPacket(dst, payload);
        }
        return sys.windowTruePowers(window);
    };

    // Warm up (prime the link state), then measure through the board.
    for (int i = 0; i < 8; ++i)
        inject_window();
    sys.thermalModel().setState(sys.thermalModel().steadyState(
        sys.idlePowerW()));

    const auto m = board::collectMeasurement(
        sys.testBoard(), samples_, [&] { return inject_window(); });
    if (stddev_w)
        *stddev_w = m.onChipStddevW();
    return m.onChipMeanW();
}

EpfRow
NocEnergyExperiment::measure(SwitchPattern pattern, std::uint32_t hops)
{
    double sigma_base = 0.0, sigma_hop = 0.0;
    const double p_base =
        injectionPowerW(pattern, hopTargetTile(0), &sigma_base);
    const double p_hop =
        injectionPowerW(pattern, hopTargetTile(hops), &sigma_hop);
    const double f = mhzToHz(opts_.coreClockMhz);

    EpfRow row;
    row.pattern = pattern;
    row.hops = hops;
    row.epfPj = jToPj(epfJoules(p_hop, p_base, f));
    row.errPj = jToPj(std::sqrt(sigma_base * sigma_base
                                + sigma_hop * sigma_hop)
                      / f * kNocPatternCycles / kNocPatternFlits);
    return row;
}

std::vector<EpfRow>
NocEnergyExperiment::runAll()
{
    std::vector<EpfRow> rows;
    for (const auto p : {SwitchPattern::NSW, SwitchPattern::HSW,
                         SwitchPattern::FSW, SwitchPattern::FSWA})
        for (std::uint32_t h = 0; h <= 8; ++h)
            rows.push_back(measure(p, h));
    return rows;
}

std::vector<EpfTrend>
NocEnergyExperiment::trends(const std::vector<EpfRow> &rows)
{
    std::vector<EpfTrend> out;
    for (const auto p : {SwitchPattern::NSW, SwitchPattern::HSW,
                         SwitchPattern::FSW, SwitchPattern::FSWA}) {
        LinearFit fit;
        for (const auto &r : rows)
            if (r.pattern == p)
                fit.add(r.hops, r.epfPj);
        if (fit.count() < 2)
            continue;
        const LineFit line = fit.fit();
        out.push_back(EpfTrend{p, line.slope, line.intercept, line.r2});
    }
    return out;
}

} // namespace piton::core
