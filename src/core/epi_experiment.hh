/**
 * @file
 * The EPI study (Fig. 11) and memory-system energy study (Table VII),
 * run end-to-end with the paper's methodology: assembly tests on the
 * simulated silicon, measured through the board's monitor chain, EPI
 * derived with the equations of Section IV-E.
 */

#ifndef PITON_CORE_EPI_EXPERIMENT_HH
#define PITON_CORE_EPI_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/epi_tests.hh"
#include "workloads/memory_tests.hh"

namespace piton::core
{

struct EpiRow
{
    std::string variant;              ///< e.g. "stx (NF)"
    workloads::OperandPattern pattern;
    double epiPj = 0.0;
    double errPj = 0.0; ///< propagated monitor-sample standard deviation
};

class EpiExperiment
{
  public:
    explicit EpiExperiment(sim::SystemOptions base_options = {},
                           std::uint32_t samples = 128);

    /** Measure one variant at one operand pattern. */
    EpiRow measure(const workloads::EpiVariant &variant,
                   workloads::OperandPattern pattern);

    /** The full Fig. 11 sweep (all variants, three patterns where
     *  operands apply). */
    std::vector<EpiRow> runAll();

    /** Idle power used in the EPI equation (measured once). */
    double idlePowerW();

  private:
    /** Measure idle power and the nop EPI baseline (needed by padded
     *  variants) once, before any fan-out; the parallel runAll tasks
     *  then only read these caches. */
    void ensureBaselines();

    EpiRow measureImpl(const sim::SystemOptions &opts,
                       const workloads::EpiVariant &variant,
                       workloads::OperandPattern pattern) const;

    double measureInstPowerW(const sim::SystemOptions &opts,
                             const workloads::EpiVariant &variant,
                             workloads::OperandPattern pattern,
                             double *stddev_w) const;

    sim::SystemOptions opts_;
    std::uint32_t samples_;
    double idleW_ = -1.0;
    double idleErrW_ = 0.0;
    double nopEpiPj_ = -1.0;
};

struct MemoryEnergyRow
{
    workloads::MemoryScenario scenario;
    std::uint32_t latency = 0;
    double energyNj = 0.0;
    double errNj = 0.0;
};

class MemoryEnergyExperiment
{
  public:
    explicit MemoryEnergyExperiment(sim::SystemOptions base_options = {},
                                    std::uint32_t samples = 128);

    /** Measure one Table VII scenario. */
    MemoryEnergyRow measure(workloads::MemoryScenario scenario) const;

    /** All five scenarios in table order, fanned out over
     *  opts_.sweepThreads workers. */
    std::vector<MemoryEnergyRow> runAll() const;

  private:
    MemoryEnergyRow measureImpl(const sim::SystemOptions &opts,
                                workloads::MemoryScenario scenario) const;

    sim::SystemOptions opts_;
    std::uint32_t samples_;
};

} // namespace piton::core

#endif // PITON_CORE_EPI_EXPERIMENT_HH
