/**
 * @file
 * Power-model fitting: the paper's primary open-data use case —
 * "enabling researchers to build new power models ... and derive power
 * models" — implemented as a library workflow:
 *
 *   1. run a set of training workloads through the measurement
 *      pipeline, recording (per-class instruction rates, measured
 *      power) pairs;
 *   2. fit a linear event model  P = P_idle + sum_k c_k * rate_k  by
 *      least squares (an EPI-table model in the style the paper's data
 *      release supports);
 *   3. validate by predicting the power of unseen workloads.
 *
 * The fitted coefficients are *recovered from measurements*, closing
 * the loop: the characterization is rich enough to rebuild the energy
 * table that generated it.
 */

#ifndef PITON_CORE_POWER_MODEL_FIT_HH
#define PITON_CORE_POWER_MODEL_FIT_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/system.hh"
#include "workloads/epi_tests.hh"

namespace piton::core
{

/** One training/validation observation. */
struct PowerObservation
{
    std::string name;
    /** Per-class retired instructions per second (chip-wide). */
    std::vector<double> classRates;
    double measuredPowerW = 0.0;
};

/** A fitted linear event model. */
struct FittedPowerModel
{
    double idleW = 0.0;
    /** pJ per instruction of each isa::InstClass (fitted). */
    std::vector<double> classEpiPj;
    bool valid = false;

    /** Predict power (W) from per-class rates (insts/second). */
    double predictW(const std::vector<double> &class_rates) const;
};

class PowerModelFit
{
  public:
    explicit PowerModelFit(sim::SystemOptions opts = {},
                           std::uint32_t samples = 32);

    /**
     * Measure one workload: load `program` on all 25 cores (thread 0),
     * measure steady-state power, and record per-class rates.
     */
    PowerObservation observe(const std::string &name,
                             const isa::Program &program);

    /** As above with one program per tile (used by the EPI-style
     *  training workloads so tiles touch disjoint data). */
    PowerObservation observe(const std::string &name,
                             const std::vector<isa::Program> &programs,
                             workloads::OperandPattern pattern);

    /** Fit the model over a set of observations (classes with zero
     *  rate everywhere are pinned to zero). */
    FittedPowerModel fit(const std::vector<PowerObservation> &train);

    /**
     * The standard training set: single-class instruction loops over
     * the Fig. 11 variants' classes, at mixed operand patterns.
     */
    std::vector<PowerObservation> standardTrainingSet();

    double idlePowerW();

  private:
    sim::SystemOptions opts_;
    std::uint32_t samples_;
    double idleW_ = -1.0;
};

} // namespace piton::core

#endif // PITON_CORE_POWER_MODEL_FIT_HH
