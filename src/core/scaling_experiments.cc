#include "core/scaling_experiments.hh"

#include "common/logging.hh"
#include "common/parallel.hh"

namespace piton::core
{

PowerScalingExperiment::PowerScalingExperiment(
    sim::SystemOptions base_options, std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
    opts_.chipId = 3; // the microbenchmark studies use Chip #3
    // Hist streams a 64 KB array through the cache hierarchy; the
    // steady state (everything L2-resident) needs a longer warm-up
    // than the default.
    opts_.warmupCycles = std::max<Cycle>(opts_.warmupCycles, 600'000);
}

PowerScalingPoint
PowerScalingExperiment::measure(workloads::Microbench bench,
                                std::uint32_t threads_per_core,
                                std::uint32_t cores) const
{
    return measureImpl(opts_, bench, threads_per_core, cores);
}

PowerScalingPoint
PowerScalingExperiment::measureImpl(const sim::SystemOptions &opts,
                                    workloads::Microbench bench,
                                    std::uint32_t threads_per_core,
                                    std::uint32_t cores) const
{
    sim::System sys(opts);
    const auto programs = workloads::loadMicrobench(
        sys, bench, cores, threads_per_core, /*iterations=*/0,
        kHistElements);
    const auto m = sys.measure(samples_);

    PowerScalingPoint p;
    p.bench = bench;
    p.threadsPerCore = threads_per_core;
    p.cores = cores;
    p.fullChipPowerW = m.onChipMeanW();
    p.errW = m.onChipStddevW();
    return p;
}

std::vector<PowerScalingPoint>
PowerScalingExperiment::runAll(
    const std::vector<std::uint32_t> &core_grid) const
{
    struct Task
    {
        workloads::Microbench bench;
        std::uint32_t tpc;
        std::uint32_t cores;
    };
    std::vector<Task> tasks;
    for (const auto bench :
         {workloads::Microbench::Int, workloads::Microbench::HP,
          workloads::Microbench::Hist})
        for (const std::uint32_t tpc : {1u, 2u})
            for (const std::uint32_t c : core_grid)
                tasks.push_back({bench, tpc, c});

    std::vector<PowerScalingPoint> out(tasks.size());
    parallelFor(tasks.size(), opts_.sweepThreads, [&](std::size_t i) {
        sim::SystemOptions o = opts_;
        o.seed = deriveTaskSeed(opts_.seed, i);
        out[i] =
            measureImpl(o, tasks[i].bench, tasks[i].tpc, tasks[i].cores);
    });
    return out;
}

std::vector<PowerScalingTrend>
PowerScalingExperiment::trends(const std::vector<PowerScalingPoint> &points)
{
    std::vector<PowerScalingTrend> out;
    for (const auto bench :
         {workloads::Microbench::Int, workloads::Microbench::HP,
          workloads::Microbench::Hist}) {
        for (const std::uint32_t tpc : {1u, 2u}) {
            LinearFit fit;
            for (const auto &p : points)
                if (p.bench == bench && p.threadsPerCore == tpc)
                    fit.add(p.cores, p.fullChipPowerW);
            if (fit.count() < 2)
                continue;
            const LineFit line = fit.fit();
            out.push_back(PowerScalingTrend{bench, tpc,
                                            wToMw(line.slope),
                                            line.intercept, line.r2});
        }
    }
    return out;
}

MtVsMcExperiment::MtVsMcExperiment(sim::SystemOptions base_options,
                                   std::uint64_t iterations,
                                   std::uint64_t hist_elements,
                                   std::uint64_t hist_outer_iters)
    : opts_(base_options), iterations_(iterations),
      histElements_(hist_elements), histOuterIters_(hist_outer_iters)
{
    opts_.chipId = 3;
}

MtMcPoint
MtVsMcExperiment::measure(workloads::Microbench bench,
                          std::uint32_t threads_per_core,
                          std::uint32_t threads) const
{
    return measureImpl(opts_, bench, threads_per_core, threads);
}

MtMcPoint
MtVsMcExperiment::measureImpl(const sim::SystemOptions &opts,
                              workloads::Microbench bench,
                              std::uint32_t threads_per_core,
                              std::uint32_t threads) const
{
    piton_assert(threads % threads_per_core == 0,
                 "thread count %u not divisible by %u threads/core",
                 threads, threads_per_core);
    const std::uint32_t cores = threads / threads_per_core;
    piton_assert(cores >= 1 && cores <= 25, "core count out of range");

    sim::System sys(opts);
    const double idle_full_w = sys.idlePowerW();

    const std::uint64_t iters =
        bench == workloads::Microbench::Hist ? histOuterIters_
                                             : iterations_;
    const auto programs = workloads::loadMicrobench(
        sys, bench, cores, threads_per_core, iters, histElements_);
    const sim::CompletionResult r =
        sys.runToCompletion(4'000'000'000ULL);
    piton_assert(r.completed, "microbenchmark did not complete");

    MtMcPoint p;
    p.bench = bench;
    p.threadsPerCore = threads_per_core;
    p.threads = threads;
    p.executionSeconds = r.seconds;
    // Fig. 14's decomposition: "active" is the measured power above the
    // full-chip idle floor; the idle share charged to the configuration
    // is full-chip idle scaled by the number of active cores.
    const double total_w = r.onChipEnergyJ / r.seconds;
    p.activePowerW = total_w - idle_full_w;
    p.activeCoresIdleW = idle_full_w / 25.0 * cores;
    p.activeEnergyJ = p.activePowerW * r.seconds;
    p.activeCoresIdleEnergyJ = p.activeCoresIdleW * r.seconds;
    return p;
}

std::vector<MtMcPoint>
MtVsMcExperiment::runAll() const
{
    struct Task
    {
        workloads::Microbench bench;
        std::uint32_t tpc;
        std::uint32_t threads;
    };
    std::vector<Task> tasks;
    for (const auto bench :
         {workloads::Microbench::Int, workloads::Microbench::HP,
          workloads::Microbench::Hist})
        for (const std::uint32_t tpc : {1u, 2u})
            for (std::uint32_t threads = 2; threads <= 24; threads += 2)
                tasks.push_back({bench, tpc, threads});

    std::vector<MtMcPoint> out(tasks.size());
    parallelFor(tasks.size(), opts_.sweepThreads, [&](std::size_t i) {
        sim::SystemOptions o = opts_;
        o.seed = deriveTaskSeed(opts_.seed, i);
        out[i] =
            measureImpl(o, tasks[i].bench, tasks[i].tpc, tasks[i].threads);
    });
    return out;
}

} // namespace piton::core
