#include "core/vf_experiments.hh"

#include <algorithm>

#include "common/logging.hh"

namespace piton::core
{

VfScalingExperiment::VfScalingExperiment(power::VfParams vf,
                                         power::EnergyParams energy,
                                         thermal::ThermalParams thermal)
    : vf_(vf), energy_(energy), thermal_(thermal)
{
}

std::vector<double>
VfScalingExperiment::voltageGrid()
{
    std::vector<double> grid;
    for (double v = 0.80; v <= 1.2001; v += 0.05)
        grid.push_back(v);
    return grid;
}

VfPoint
VfScalingExperiment::measure(int chip_id, double vdd_v) const
{
    const chip::FmaxSolver solver(power::VfModel(vf_),
                                  power::EnergyModel(energy_), thermal_);
    const chip::FmaxResult r =
        solver.solve(chip::makeChip(chip_id), vdd_v, vdd_v + 0.05);
    VfPoint p;
    p.chipId = chip_id;
    p.vddV = vdd_v;
    p.fmaxMhz = r.fmaxMhz;
    p.nextStepMhz = r.nextStepMhz;
    p.thermallyLimited = r.thermallyLimited;
    p.dieTempC = r.dieTempC;
    return p;
}

std::vector<VfPoint>
VfScalingExperiment::runAll(const std::vector<int> &chip_ids) const
{
    std::vector<VfPoint> out;
    for (const int id : chip_ids)
        for (const double v : voltageGrid())
            out.push_back(measure(id, v));
    return out;
}

StaticIdleExperiment::StaticIdleExperiment(sim::SystemOptions base_options,
                                           std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

StaticIdleRow
StaticIdleExperiment::measure(double vdd_v) const
{
    // Frequency: the minimum of the three chips' maximum frequencies
    // at this voltage (Section IV-D).
    const VfScalingExperiment vf(power::VfParams{}, opts_.energyParams,
                                 opts_.thermalParams);
    double fmin = 1e12;
    for (const int id : {1, 2, 3})
        fmin = std::min(fmin, vf.measure(id, vdd_v).fmaxMhz);

    StaticIdleRow row;
    row.vddV = vdd_v;
    row.freqMhz = fmin;

    for (const int id : {1, 2, 3}) {
        sim::SystemOptions o = opts_;
        o.chipId = id;
        o.vddV = vdd_v;
        o.vcsV = vdd_v + 0.05;
        o.coreClockMhz = fmin;
        sim::System sys(o);

        const auto s = sys.measureStatic(samples_);
        const auto i = sys.measure(samples_);
        row.coreStaticW += s.vddW.mean() / 3.0;
        row.sramStaticW += s.vcsW.mean() / 3.0;
        row.coreDynamicW += (i.vddW.mean() - s.vddW.mean()) / 3.0;
        row.sramDynamicW += (i.vcsW.mean() - s.vcsW.mean()) / 3.0;
    }
    return row;
}

std::vector<StaticIdleRow>
StaticIdleExperiment::runAll() const
{
    std::vector<StaticIdleRow> out;
    for (const double v : VfScalingExperiment::voltageGrid())
        out.push_back(measure(v));
    return out;
}

DefaultPowerResult
measureDefaultPower(int chip_id, std::uint32_t samples)
{
    sim::SystemOptions o;
    o.chipId = chip_id;
    sim::System sys(o);
    const auto s = sys.measureStatic(samples);
    // A fresh system for the idle measurement (clean thermal state).
    sim::System sys2(o);
    const auto i = sys2.measure(samples);

    DefaultPowerResult r;
    r.staticMw = wToMw(s.onChipMeanW());
    r.staticErrMw = wToMw(s.onChipStddevW());
    r.idleMw = wToMw(i.onChipMeanW());
    r.idleErrMw = wToMw(i.onChipStddevW());
    return r;
}

} // namespace piton::core
