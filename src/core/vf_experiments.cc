#include "core/vf_experiments.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace piton::core
{

VfScalingExperiment::VfScalingExperiment(power::VfParams vf,
                                         power::EnergyParams energy,
                                         thermal::ThermalParams thermal)
    : vf_(vf), energy_(energy), thermal_(thermal)
{
}

std::vector<double>
VfScalingExperiment::voltageGrid()
{
    std::vector<double> grid;
    for (double v = 0.80; v <= 1.2001; v += 0.05)
        grid.push_back(v);
    return grid;
}

VfPoint
VfScalingExperiment::measure(int chip_id, double vdd_v) const
{
    const chip::FmaxSolver solver(power::VfModel(vf_),
                                  power::EnergyModel(energy_), thermal_);
    const chip::FmaxResult r =
        solver.solve(chip::makeChip(chip_id), vdd_v, vdd_v + 0.05);
    VfPoint p;
    p.chipId = chip_id;
    p.vddV = vdd_v;
    p.fmaxMhz = r.fmaxMhz;
    p.nextStepMhz = r.nextStepMhz;
    p.thermallyLimited = r.thermallyLimited;
    p.dieTempC = r.dieTempC;
    return p;
}

std::vector<VfPoint>
VfScalingExperiment::runAll(const std::vector<int> &chip_ids,
                            unsigned threads) const
{
    const std::vector<double> grid = voltageGrid();
    std::vector<VfPoint> out(chip_ids.size() * grid.size());
    parallelFor(out.size(), threads, [&](std::size_t i) {
        const int id = chip_ids[i / grid.size()];
        const double v = grid[i % grid.size()];
        out[i] = measure(id, v);
    });
    return out;
}

StaticIdleExperiment::StaticIdleExperiment(sim::SystemOptions base_options,
                                           std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

StaticIdleRow
StaticIdleExperiment::measure(double vdd_v) const
{
    return measureImpl(opts_, vdd_v);
}

StaticIdleRow
StaticIdleExperiment::measureImpl(const sim::SystemOptions &opts,
                                  double vdd_v) const
{
    // Frequency: the minimum of the three chips' maximum frequencies
    // at this voltage (Section IV-D).
    const VfScalingExperiment vf(power::VfParams{}, opts.energyParams,
                                 opts.thermalParams);
    double fmin = 1e12;
    for (const int id : {1, 2, 3})
        fmin = std::min(fmin, vf.measure(id, vdd_v).fmaxMhz);

    StaticIdleRow row;
    row.vddV = vdd_v;
    row.freqMhz = fmin;

    for (const int id : {1, 2, 3}) {
        sim::SystemOptions o = opts;
        o.chipId = id;
        o.vddV = vdd_v;
        o.vcsV = vdd_v + 0.05;
        o.coreClockMhz = fmin;
        sim::System sys(o);

        const auto s = sys.measureStatic(samples_);
        const auto i = sys.measure(samples_);
        row.coreStaticW += s.vddW.mean() / 3.0;
        row.sramStaticW += s.vcsW.mean() / 3.0;
        row.coreDynamicW += (i.vddW.mean() - s.vddW.mean()) / 3.0;
        row.sramDynamicW += (i.vcsW.mean() - s.vcsW.mean()) / 3.0;
    }
    return row;
}

std::vector<StaticIdleRow>
StaticIdleExperiment::runAll() const
{
    const std::vector<double> grid = VfScalingExperiment::voltageGrid();
    std::vector<StaticIdleRow> out(grid.size());
    parallelFor(grid.size(), opts_.sweepThreads, [&](std::size_t i) {
        sim::SystemOptions o = opts_;
        o.seed = deriveTaskSeed(opts_.seed, i);
        out[i] = measureImpl(o, grid[i]);
    });
    return out;
}

DefaultPowerResult
measureDefaultPower(int chip_id, std::uint32_t samples)
{
    sim::SystemOptions o;
    o.chipId = chip_id;
    sim::System sys(o);
    const auto s = sys.measureStatic(samples);
    // A fresh system for the idle measurement (clean thermal state).
    sim::System sys2(o);
    const auto i = sys2.measure(samples);

    DefaultPowerResult r;
    r.staticMw = wToMw(s.onChipMeanW());
    r.staticErrMw = wToMw(s.onChipStddevW());
    r.idleMw = wToMw(i.onChipMeanW());
    r.idleErrMw = wToMw(i.onChipStddevW());
    return r;
}

} // namespace piton::core
