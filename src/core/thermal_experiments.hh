/**
 * @file
 * Thermal analysis experiments (Section IV-J).
 *
 * Both run with the heat sink removed, at reduced operating conditions
 * (100.01 MHz, VDD 0.9 V, VCS 0.95 V) on a fourth chip, with the FLIR
 * camera replaced by the package node of the RC thermal model:
 *
 *  - Fig. 17: chip power as a function of package temperature for
 *    0..50 active threads of HP, sweeping temperature by tilting the
 *    fan (exponential power/temperature relationship from leakage);
 *  - Fig. 18: the two-phase test application under synchronized vs
 *    interleaved scheduling — power/temperature time series and the
 *    hysteresis loop, with interleaved averaging cooler.
 */

#ifndef PITON_CORE_THERMAL_EXPERIMENTS_HH
#define PITON_CORE_THERMAL_EXPERIMENTS_HH

#include <vector>

#include "sim/system.hh"
#include "telemetry/recorder.hh"
#include "workloads/microbenchmarks.hh"

namespace piton::core
{

/** Operating conditions of the thermal study. */
sim::SystemOptions thermalStudyOptions();

struct ThermalPoint
{
    std::uint32_t activeThreads = 0;
    double fanEffectiveness = 1.0;
    double packageTempC = 0.0;
    double powerW = 0.0;
};

class ThermalSweepExperiment
{
  public:
    explicit ThermalSweepExperiment(
        sim::SystemOptions opts = thermalStudyOptions(),
        std::uint32_t samples = 32);

    /** Dynamic (temperature-independent) chip power with `threads`
     *  active threads of the HP workload.  Measured through the
     *  telemetry path (mean of the measured.onchip_w series minus
     *  leakage at the measurement temperature). */
    double dynamicPowerW(std::uint32_t threads) const;

    /**
     * Sweep fan effectiveness for one thread count.  When `rec` is
     * non-null the underlying measurement's full telemetry (true +
     * measured series) lands there, plus the sweep's own result
     * series (sweep.power_w / sweep.package_c / sweep.fan, indexed by
     * fan step on the time axis).
     */
    std::vector<ThermalPoint>
    sweep(std::uint32_t threads, std::uint32_t fan_steps = 12,
          telemetry::TelemetryRecorder *rec = nullptr) const;

    /**
     * The full Fig. 17 family: threads 0,10,20,30,40,50, one fan
     * sweep per task over opts_.sweepThreads workers.  When `merged`
     * is non-null, each task records into its own recorder and the
     * per-task recorders merge into `merged` in task-index order
     * under "threads=NN/" prefixes — bit-identical at any worker
     * count (the PR 1 sweep-engine contract).
     */
    std::vector<ThermalPoint>
    runAll(telemetry::TelemetryRecorder *merged = nullptr) const;

  private:
    double dynamicPowerImplW(const sim::SystemOptions &opts,
                             std::uint32_t threads,
                             telemetry::TelemetryRecorder *rec) const;
    std::vector<ThermalPoint>
    sweepImpl(const sim::SystemOptions &opts, std::uint32_t threads,
              std::uint32_t fan_steps,
              telemetry::TelemetryRecorder *rec) const;

    sim::SystemOptions opts_;
    std::uint32_t samples_;
};

enum class Schedule
{
    Synchronized, ///< all 50 threads change phase together
    Interleaved,  ///< 26 threads in one phase, 24 in the other
};

const char *scheduleName(Schedule s);

struct SchedulePoint
{
    double timeS = 0.0;
    double powerW = 0.0;        ///< with monitor noise
    double packageTempC = 0.0;
};

struct ScheduleResult
{
    Schedule schedule;
    std::vector<SchedulePoint> trace;
    double avgPowerW = 0.0;
    double avgPackageTempC = 0.0;
    double tempSwingC = 0.0; ///< max - min package temperature
};

class SchedulingExperiment
{
  public:
    explicit SchedulingExperiment(
        sim::SystemOptions opts = thermalStudyOptions(),
        std::uint32_t samples = 32);

    /** Phase powers measured from the two-phase application. */
    double computePhasePowerW() const;
    double idlePhasePowerW() const;

    ScheduleResult run(Schedule schedule, double phase_seconds = 10.0,
                       double duration_seconds = 400.0,
                       double step_seconds = 0.5) const;

  private:
    sim::SystemOptions opts_;
    std::uint32_t samples_;
};

} // namespace piton::core

#endif // PITON_CORE_THERMAL_EXPERIMENTS_HH
