#include "core/thermal_experiments.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "telemetry/schema.hh"

namespace piton::core
{

sim::SystemOptions
thermalStudyOptions()
{
    sim::SystemOptions o;
    o.chipId = 4; // "a different chip which has not been presented"
    o.vddV = 0.90;
    o.vcsV = 0.95;
    o.coreClockMhz = 100.01;
    o.thermalParams.hasHeatSink = false;
    return o;
}

ThermalSweepExperiment::ThermalSweepExperiment(sim::SystemOptions opts,
                                               std::uint32_t samples)
    : opts_(opts), samples_(samples)
{
}

double
ThermalSweepExperiment::dynamicPowerW(std::uint32_t threads) const
{
    return dynamicPowerImplW(opts_, threads, nullptr);
}

double
ThermalSweepExperiment::dynamicPowerImplW(
    const sim::SystemOptions &opts, std::uint32_t threads,
    telemetry::TelemetryRecorder *rec) const
{
    sim::System sys(opts);
    std::vector<isa::Program> programs;
    if (threads > 0) {
        const std::uint32_t cores = (threads + 1) / 2;
        const std::uint32_t tpc = threads >= 2 ? 2 : 1;
        programs = workloads::loadMicrobench(
            sys, workloads::Microbench::HP, cores, tpc, /*iterations=*/0);
    }
    // Measure through the telemetry path: a throwaway recorder stands
    // in when the caller does not want the series.
    telemetry::TelemetryRecorder local;
    telemetry::TelemetryRecorder *sink = rec ? rec : &local;
    sys.attachTelemetry(sink);
    sys.measure(samples_);
    const double mean_w =
        sink->aggregate(telemetry::schema::kMeasuredOnChipW).mean;
    // Subtract leakage at the measurement's die temperature to isolate
    // the temperature-independent dynamic component.
    const double leak =
        sys.energyModel()
            .leakagePowerW(sys.dieTempC(), sys.chipInstance().leakFactor)
            .onChipCoreAndSram();
    return std::max(0.0, mean_w - leak);
}

std::vector<ThermalPoint>
ThermalSweepExperiment::sweep(std::uint32_t threads,
                              std::uint32_t fan_steps,
                              telemetry::TelemetryRecorder *rec) const
{
    return sweepImpl(opts_, threads, fan_steps, rec);
}

std::vector<ThermalPoint>
ThermalSweepExperiment::sweepImpl(const sim::SystemOptions &opts,
                                  std::uint32_t threads,
                                  std::uint32_t fan_steps,
                                  telemetry::TelemetryRecorder *rec) const
{
    const double dyn_w = dynamicPowerImplW(opts, threads, rec);
    power::EnergyModel energy(opts.energyParams);
    energy.setOperatingPoint(opts.vddV, opts.vcsV);
    const chip::ChipInstance inst = chip::makeChip(opts.chipId);

    namespace ts = telemetry::schema;
    std::size_t id_p = 0, id_t = 0, id_f = 0;
    if (rec) {
        using telemetry::Downsample;
        using telemetry::Unit;
        id_p = rec->defineSeries(ts::kSweepPowerW, Unit::Watts,
                                 Downsample::Mean);
        id_t = rec->defineSeries(ts::kSweepPackageC, Unit::Celsius,
                                 Downsample::Mean);
        id_f = rec->defineSeries(ts::kSweepFan, Unit::Count,
                                 Downsample::Mean);
    }

    std::vector<ThermalPoint> out;
    for (std::uint32_t s = 0; s < fan_steps; ++s) {
        thermal::ThermalParams tp = opts.thermalParams;
        tp.fanEffectiveness =
            1.0 - static_cast<double>(s) / (fan_steps - 1);
        const thermal::ThermalModel tm(tp);
        // Fixed point: P = dyn + leak(T_die), T = steadyState(P).
        double temp = tp.ambientC;
        double p = dyn_w;
        for (int i = 0; i < 200; ++i) {
            const double leak =
                energy.leakagePowerW(temp, inst.leakFactor)
                    .onChipCoreAndSram();
            p = dyn_w + leak;
            const double t_new = tm.steadyState(p).dieC;
            if (std::abs(t_new - temp) < 1e-5)
                break;
            temp = 0.5 * (temp + t_new);
        }
        ThermalPoint pt;
        pt.activeThreads = threads;
        pt.fanEffectiveness = tp.fanEffectiveness;
        pt.packageTempC = tm.steadyState(p).packageC;
        pt.powerW = p;
        out.push_back(pt);
        if (rec) {
            const double step = static_cast<double>(s);
            rec->record(id_p, step, 1.0, pt.powerW);
            rec->record(id_t, step, 1.0, pt.packageTempC);
            rec->record(id_f, step, 1.0, pt.fanEffectiveness);
        }
    }
    return out;
}

std::vector<ThermalPoint>
ThermalSweepExperiment::runAll(telemetry::TelemetryRecorder *merged) const
{
    const std::vector<std::uint32_t> families = {0u, 10u, 20u,
                                                 30u, 40u, 50u};
    std::vector<std::vector<ThermalPoint>> per_family(families.size());
    // One recorder per task; merged in task-index order after the
    // join, so the store is bit-identical at any sweepThreads value.
    std::vector<telemetry::TelemetryRecorder> recs(
        merged ? families.size() : 0);
    parallelFor(families.size(), opts_.sweepThreads, [&](std::size_t i) {
        sim::SystemOptions o = opts_;
        o.seed = deriveTaskSeed(opts_.seed, i);
        per_family[i] = sweepImpl(o, families[i], /*fan_steps=*/12,
                                  merged ? &recs[i] : nullptr);
    });

    std::vector<ThermalPoint> out;
    for (const auto &pts : per_family)
        out.insert(out.end(), pts.begin(), pts.end());
    if (merged) {
        for (std::size_t i = 0; i < recs.size(); ++i) {
            merged->setCyclesPerSample(recs[i].cyclesPerSample());
            std::string prefix = "threads=";
            prefix += static_cast<char>('0' + families[i] / 10);
            prefix += static_cast<char>('0' + families[i] % 10);
            prefix += '/';
            merged->merge(recs[i], prefix);
        }
    }
    return out;
}

const char *
scheduleName(Schedule s)
{
    switch (s) {
      case Schedule::Synchronized: return "synchronized";
      case Schedule::Interleaved: return "interleaved";
      default:
        piton_panic("bad Schedule");
    }
}

SchedulingExperiment::SchedulingExperiment(sim::SystemOptions opts,
                                           std::uint32_t samples)
    : opts_(opts), samples_(samples)
{
}

double
SchedulingExperiment::computePhasePowerW() const
{
    sim::System sys(opts_);
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::Int, 25, 2, /*iterations=*/0);
    const auto m = sys.measure(samples_);
    const double leak =
        sys.energyModel()
            .leakagePowerW(sys.dieTempC(), sys.chipInstance().leakFactor)
            .onChipCoreAndSram();
    return std::max(0.0, m.onChipMeanW() - leak);
}

double
SchedulingExperiment::idlePhasePowerW() const
{
    sim::System sys(opts_);
    // All 50 threads in the nop loop.
    static const isa::Program nop_loop = [] {
        isa::ProgramBuilder b;
        b.label("loop").nop().nop().nop().nop().ba("loop");
        return b.build();
    }();
    for (TileId t = 0; t < 25; ++t) {
        sys.loadProgram(t, 0, &nop_loop);
        sys.loadProgram(t, 1, &nop_loop);
    }
    const auto m = sys.measure(samples_);
    const double leak =
        sys.energyModel()
            .leakagePowerW(sys.dieTempC(), sys.chipInstance().leakFactor)
            .onChipCoreAndSram();
    return std::max(0.0, m.onChipMeanW() - leak);
}

ScheduleResult
SchedulingExperiment::run(Schedule schedule, double phase_seconds,
                          double duration_seconds,
                          double step_seconds) const
{
    const double p_compute = computePhasePowerW();
    const double p_idle = idlePhasePowerW();

    power::EnergyModel energy(opts_.energyParams);
    energy.setOperatingPoint(opts_.vddV, opts_.vcsV);
    const chip::ChipInstance inst = chip::makeChip(opts_.chipId);
    thermal::ThermalModel tm(opts_.thermalParams);
    board::TestBoard tb(0xF162 ^ static_cast<std::uint64_t>(schedule));

    // Warm to the mean-power steady state before recording.
    const double p_mean_dyn = 0.5 * (p_compute + p_idle);
    for (int i = 0; i < 4000; ++i) {
        const double leak =
            energy.leakagePowerW(tm.dieTempC(), inst.leakFactor)
                .onChipCoreAndSram();
        tm.step(p_mean_dyn + leak, 1.0);
    }

    ScheduleResult res;
    res.schedule = schedule;
    RunningStats p_stats, t_stats;
    double t_min = 1e9, t_max = -1e9;
    for (double t = 0.0; t < duration_seconds; t += step_seconds) {
        const bool phase_a =
            static_cast<std::uint64_t>(t / phase_seconds) % 2 == 0;
        double dyn = 0.0;
        if (schedule == Schedule::Synchronized) {
            dyn = phase_a ? p_compute : p_idle;
        } else {
            // 26 threads in one phase, 24 in the opposite phase.
            const double hi = phase_a ? 26.0 : 24.0;
            dyn = (hi * p_compute + (50.0 - hi) * p_idle) / 50.0;
        }
        // Leakage follows the die *hotspot*: synchronized scheduling
        // concentrates the compute phase in time, so its high phase
        // runs a hotter hotspot than the interleaved schedule's
        // spatially-averaged load, and the exponential leakage turns
        // that asymmetry into extra average power and temperature —
        // the mechanism behind the paper's 0.22 C observation.
        constexpr double kHotspotRperW = 14.0;
        const double hotspot =
            tm.dieTempC() + kHotspotRperW * (dyn - p_mean_dyn);
        const double leak =
            energy.leakagePowerW(hotspot, inst.leakFactor)
                .onChipCoreAndSram();
        const double p_true = dyn + leak;
        tm.step(p_true, step_seconds);

        SchedulePoint pt;
        pt.timeS = t;
        const auto vdd = tb.sampleRail(power::Rail::Vdd, p_true * 0.86);
        const auto vcs = tb.sampleRail(power::Rail::Vcs, p_true * 0.14);
        pt.powerW = vdd.powerW() + vcs.powerW();
        pt.packageTempC = tm.packageTempC();
        res.trace.push_back(pt);
        p_stats.add(p_true);
        t_stats.add(pt.packageTempC);
        t_min = std::min(t_min, pt.packageTempC);
        t_max = std::max(t_max, pt.packageTempC);
    }
    res.avgPowerW = p_stats.mean();
    res.avgPackageTempC = t_stats.mean();
    res.tempSwingC = t_max - t_min;
    return res;
}

} // namespace piton::core
