#include "core/equations.hh"

#include "common/logging.hh"

namespace piton::core
{

double
epiJoules(double p_inst_w, double p_idle_w, double freq_hz,
          std::uint32_t latency, std::uint32_t cores)
{
    piton_assert(freq_hz > 0.0 && cores > 0 && latency > 0,
                 "bad EPI arguments");
    return (p_inst_w - p_idle_w) / static_cast<double>(cores) / freq_hz
           * static_cast<double>(latency);
}

double
epfJoules(double p_hop_w, double p_base_w, double freq_hz,
          std::uint32_t pattern_cycles, std::uint32_t pattern_flits)
{
    piton_assert(freq_hz > 0.0 && pattern_flits > 0, "bad EPF arguments");
    return (p_hop_w - p_base_w) / freq_hz
           * static_cast<double>(pattern_cycles)
           / static_cast<double>(pattern_flits);
}

} // namespace piton::core
