/**
 * @file
 * Voltage/frequency-scaling experiments: Fig. 9 (maximum Linux-boot
 * frequency vs VDD for three chips), Fig. 10 (static and idle power
 * split by supply across voltage/frequency pairs), and Table V
 * (default static/idle power of Chip #2).
 */

#ifndef PITON_CORE_VF_EXPERIMENTS_HH
#define PITON_CORE_VF_EXPERIMENTS_HH

#include <vector>

#include "chip/fmax_solver.hh"
#include "sim/system.hh"

namespace piton::core
{

struct VfPoint
{
    int chipId = 0;
    double vddV = 0.0;
    double fmaxMhz = 0.0;
    double nextStepMhz = 0.0; ///< quantization error bar
    bool thermallyLimited = false;
    double dieTempC = 0.0;
};

/** Fig. 9: VDD 0.8..1.2 V in 50 mV steps, VCS = VDD + 0.05 V. */
class VfScalingExperiment
{
  public:
    explicit VfScalingExperiment(
        power::VfParams vf = {},
        power::EnergyParams energy = power::defaultEnergyParams(),
        thermal::ThermalParams thermal = {});

    VfPoint measure(int chip_id, double vdd_v) const;

    /** Full chips x voltages sweep, fanned out over `threads` workers
     *  (0 = all hardware threads).  Output order and values are
     *  identical at any thread count. */
    std::vector<VfPoint> runAll(
        const std::vector<int> &chip_ids = {1, 2, 3},
        unsigned threads = 1) const;

    /** The voltage grid of Fig. 9/10. */
    static std::vector<double> voltageGrid();

  private:
    power::VfParams vf_;
    power::EnergyParams energy_;
    thermal::ThermalParams thermal_;
};

struct StaticIdleRow
{
    double vddV = 0.0;
    double freqMhz = 0.0; ///< min of the three chips' fmax at this VDD
    // Three-chip averages, split by supply (the Fig. 10 stack).
    double coreStaticW = 0.0;  ///< VDD static
    double sramStaticW = 0.0;  ///< VCS static
    double coreDynamicW = 0.0; ///< VDD idle dynamic (clock tree)
    double sramDynamicW = 0.0; ///< VCS idle dynamic
    double totalIdleW() const
    {
        return coreStaticW + sramStaticW + coreDynamicW + sramDynamicW;
    }
};

/** Fig. 10: static + idle power vs (V, f) pairs, three-chip average. */
class StaticIdleExperiment
{
  public:
    explicit StaticIdleExperiment(sim::SystemOptions base_options = {},
                                  std::uint32_t samples = 128);

    StaticIdleRow measure(double vdd_v) const;

    /** One voltage per task, fanned out over opts_.sweepThreads
     *  workers; each task gets its own Systems seeded by
     *  deriveTaskSeed(opts_.seed, taskIndex). */
    std::vector<StaticIdleRow> runAll() const;

  private:
    StaticIdleRow measureImpl(const sim::SystemOptions &opts,
                              double vdd_v) const;

    sim::SystemOptions opts_;
    std::uint32_t samples_;
};

/** Table V: default static and idle power of one chip. */
struct DefaultPowerResult
{
    double staticMw = 0.0;
    double staticErrMw = 0.0;
    double idleMw = 0.0;
    double idleErrMw = 0.0;
};

DefaultPowerResult measureDefaultPower(int chip_id = 2,
                                       std::uint32_t samples = 128);

} // namespace piton::core

#endif // PITON_CORE_VF_EXPERIMENTS_HH
