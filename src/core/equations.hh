/**
 * @file
 * The paper's measurement equations (Sections IV-E and IV-G).
 *
 * Energy per instruction, measured by running an instruction loop on
 * `cores` cores and subtracting idle power:
 *
 *     EPI = (1/cores) * (Pinst - Pidle) / f * L
 *
 * Energy per flit, derived from the chip-bridge-limited NoC traffic
 * pattern of 7 valid flits every 47 cycles:
 *
 *     EPF = (cycles/flits) * (Phop - Pbase) / f
 */

#ifndef PITON_CORE_EQUATIONS_HH
#define PITON_CORE_EQUATIONS_HH

#include <cstdint>

namespace piton::core
{

/** The NoC injection duty pattern (verified through simulation). */
constexpr std::uint32_t kNocPatternCycles = 47;
constexpr std::uint32_t kNocPatternFlits = 7;

/**
 * Energy per instruction in joules.
 * @param p_inst_w measured steady-state power while running the test
 * @param p_idle_w measured idle power
 * @param freq_hz  core clock frequency
 * @param latency  instruction latency in cycles (Table VI)
 * @param cores    number of cores running the test (25 in the paper)
 */
double epiJoules(double p_inst_w, double p_idle_w, double freq_hz,
                 std::uint32_t latency, std::uint32_t cores = 25);

/**
 * Energy per flit in joules.
 * @param p_hop_w  measured power while injecting to an N-hop target
 * @param p_base_w measured power while injecting to tile 0 (0 hops)
 */
double epfJoules(double p_hop_w, double p_base_w, double freq_hz,
                 std::uint32_t pattern_cycles = kNocPatternCycles,
                 std::uint32_t pattern_flits = kNocPatternFlits);

} // namespace piton::core

#endif // PITON_CORE_EQUATIONS_HH
