/**
 * @file
 * Microbenchmark studies (Section IV-H): power scaling with core count
 * (Fig. 13) and multithreading versus multicore power/energy (Fig. 14).
 * Both run on Chip #3, as in the paper.
 */

#ifndef PITON_CORE_SCALING_EXPERIMENTS_HH
#define PITON_CORE_SCALING_EXPERIMENTS_HH

#include <vector>

#include "common/stats.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

namespace piton::core
{

struct PowerScalingPoint
{
    workloads::Microbench bench;
    std::uint32_t threadsPerCore = 1;
    std::uint32_t cores = 1;
    double fullChipPowerW = 0.0;
    double errW = 0.0;
};

struct PowerScalingTrend
{
    workloads::Microbench bench;
    std::uint32_t threadsPerCore = 1;
    double mwPerCore = 0.0;
    double interceptW = 0.0;
    double r2 = 0.0;
};

/** Fig. 13: full-chip power vs active core count, 1 and 2 T/C. */
class PowerScalingExperiment
{
  public:
    explicit PowerScalingExperiment(sim::SystemOptions base_options = {},
                                    std::uint32_t samples = 128);

    PowerScalingPoint measure(workloads::Microbench bench,
                              std::uint32_t threads_per_core,
                              std::uint32_t cores) const;

    /** Sweep cores over `core_grid` for all three benchmarks and both
     *  T/C configurations. */
    std::vector<PowerScalingPoint>
    runAll(const std::vector<std::uint32_t> &core_grid) const;

    static std::vector<PowerScalingTrend>
    trends(const std::vector<PowerScalingPoint> &points);

    /** Hist input size (total work held constant): 128 KB of elements,
     *  sized so the merge-lock contention overtakes the per-thread
     *  compute just beyond ~34 threads — reproducing the 2 T/C power
     *  drop past 17 cores (Section IV-H1). */
    static constexpr std::uint64_t kHistElements = 16384;

  private:
    PowerScalingPoint measureImpl(const sim::SystemOptions &opts,
                                  workloads::Microbench bench,
                                  std::uint32_t threads_per_core,
                                  std::uint32_t cores) const;

    sim::SystemOptions opts_;
    std::uint32_t samples_;
};

struct MtMcPoint
{
    workloads::Microbench bench;
    std::uint32_t threadsPerCore = 1; ///< 1 = multicore, 2 = multithreading
    std::uint32_t threads = 2;        ///< total thread count
    double activePowerW = 0.0;        ///< above the full-chip idle floor
    double activeCoresIdleW = 0.0;    ///< idle share of the active cores
    double activeEnergyJ = 0.0;
    double activeCoresIdleEnergyJ = 0.0;
    double executionSeconds = 0.0;

    double totalPowerW() const { return activePowerW + activeCoresIdleW; }
    double totalEnergyJ() const
    {
        return activeEnergyJ + activeCoresIdleEnergyJ;
    }
};

/** Fig. 14: equal thread counts as 1 T/C (multicore) vs 2 T/C
 *  (multithreading); fixed iteration counts for execution time. */
class MtVsMcExperiment
{
  public:
    explicit MtVsMcExperiment(sim::SystemOptions base_options = {},
                              std::uint64_t iterations = 30000,
                              std::uint64_t hist_elements = 4096,
                              std::uint64_t hist_outer_iters = 4);

    MtMcPoint measure(workloads::Microbench bench,
                      std::uint32_t threads_per_core,
                      std::uint32_t threads) const;

    /** Thread counts 2..24 step 2, all three benchmarks, both
     *  configurations. */
    std::vector<MtMcPoint> runAll() const;

  private:
    MtMcPoint measureImpl(const sim::SystemOptions &opts,
                          workloads::Microbench bench,
                          std::uint32_t threads_per_core,
                          std::uint32_t threads) const;

    sim::SystemOptions opts_;
    std::uint64_t iterations_;
    std::uint64_t histElements_;
    std::uint64_t histOuterIters_;
};

} // namespace piton::core

#endif // PITON_CORE_SCALING_EXPERIMENTS_HH
