#include "core/power_model_fit.hh"

#include "common/linalg.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "workloads/epi_tests.hh"

namespace piton::core
{

namespace
{

constexpr std::size_t kClasses =
    static_cast<std::size_t>(isa::InstClass::NumClasses);

} // namespace

double
FittedPowerModel::predictW(const std::vector<double> &class_rates) const
{
    piton_assert(class_rates.size() == classEpiPj.size(),
                 "rate vector size mismatch");
    double p = idleW;
    for (std::size_t i = 0; i < class_rates.size(); ++i)
        p += class_rates[i] * pjToJ(classEpiPj[i]);
    return p;
}

PowerModelFit::PowerModelFit(sim::SystemOptions opts,
                             std::uint32_t samples)
    : opts_(opts), samples_(samples)
{
}

double
PowerModelFit::idlePowerW()
{
    if (idleW_ < 0.0) {
        sim::System sys(opts_);
        idleW_ = sys.measure(samples_).onChipMeanW();
    }
    return idleW_;
}

PowerObservation
PowerModelFit::observe(const std::string &name,
                       const isa::Program &program)
{
    return observe(name, std::vector<isa::Program>(1, program),
                   workloads::OperandPattern::Random);
}

PowerObservation
PowerModelFit::observe(const std::string &name,
                       const std::vector<isa::Program> &programs,
                       workloads::OperandPattern pattern)
{
    piton_assert(programs.size() == 1 || programs.size() == 25,
                 "need 1 shared or 25 per-tile programs");
    sim::System sys(opts_);
    for (TileId t = 0; t < 25; ++t) {
        workloads::initEpiMemory(sys.pitonChip().memory(), pattern, t);
        sys.loadProgram(t, 0,
                        &programs[programs.size() == 1 ? 0 : t]);
    }

    const Cycle start = sys.pitonChip().now();
    const auto counts_before = sys.pitonChip().classCounts();
    const auto m = sys.measure(samples_);
    const auto counts_after = sys.pitonChip().classCounts();
    const Cycle elapsed = sys.pitonChip().now() - start;
    const double seconds =
        static_cast<double>(elapsed) / sys.coreClockHz();

    PowerObservation obs;
    obs.name = name;
    obs.measuredPowerW = m.onChipMeanW();
    obs.classRates.resize(kClasses);
    for (std::size_t i = 0; i < kClasses; ++i)
        obs.classRates[i] =
            static_cast<double>(counts_after[i] - counts_before[i])
            / seconds;
    return obs;
}

FittedPowerModel
PowerModelFit::fit(const std::vector<PowerObservation> &train)
{
    FittedPowerModel model;
    model.idleW = idlePowerW();
    model.classEpiPj.assign(kClasses, 0.0);

    // Select the classes actually exercised by the training set.
    std::vector<std::size_t> active;
    for (std::size_t c = 0; c < kClasses; ++c) {
        for (const auto &obs : train) {
            if (obs.classRates[c] > 1e3) {
                active.push_back(c);
                break;
            }
        }
    }
    if (active.empty() || train.size() < active.size())
        return model;

    // Least squares on (P_measured - P_idle) = sum c_k rate_k.
    std::vector<double> a(train.size() * active.size());
    std::vector<double> b(train.size());
    for (std::size_t r = 0; r < train.size(); ++r) {
        for (std::size_t k = 0; k < active.size(); ++k)
            a[r * active.size() + k] = train[r].classRates[active[k]];
        b[r] = train[r].measuredPowerW - model.idleW;
    }
    const std::vector<double> coeffs =
        leastSquares(a, train.size(), active.size(), b);
    if (coeffs.empty())
        return model;

    for (std::size_t k = 0; k < active.size(); ++k)
        model.classEpiPj[active[k]] = jToPj(coeffs[k]);
    model.valid = true;
    return model;
}

std::vector<PowerObservation>
PowerModelFit::standardTrainingSet()
{
    // Single-class loops (the EPI tests) at the three operand
    // patterns, plus short mixed loops to decorrelate branch rates.
    std::vector<PowerObservation> out;
    std::vector<isa::Program> programs;
    const char *variants[] = {"nop",   "add",   "mulx",  "sdivx",
                              "faddd", "fmuld", "fdivd", "fadds",
                              "fmuls", "fdivs", "ldx",   "stx (NF)"};
    for (const char *label : variants) {
        const auto &v = workloads::epiVariant(label);
        for (const auto pattern :
             {workloads::OperandPattern::Minimum,
              workloads::OperandPattern::Maximum}) {
            std::vector<isa::Program> per_tile;
            per_tile.reserve(25);
            for (TileId t = 0; t < 25; ++t)
                per_tile.push_back(
                    workloads::makeEpiProgram(v, pattern, t));
            out.push_back(observe(
                std::string(label) + "/"
                    + workloads::operandPatternName(pattern),
                per_tile, pattern));
        }
    }
    // Mixed loops: vary the branch/ALU ratio.
    out.push_back(observe("mix-branchy", isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 0
        bne loop
        halt
    )")));
    out.push_back(observe("mix-straight", isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        and %r3, %r1, %r4
        or  %r4, %r2, %r5
        xor %r5, %r1, %r6
        add %r6, %r2, %r7
        xor %r7, %r1, %r8
        ba loop
    )")));
    return out;
}

} // namespace piton::core
