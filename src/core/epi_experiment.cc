#include "core/epi_experiment.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/equations.hh"

namespace piton::core
{

EpiExperiment::EpiExperiment(sim::SystemOptions base_options,
                             std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

double
EpiExperiment::idlePowerW()
{
    if (idleW_ < 0.0) {
        sim::System sys(opts_);
        const auto m = sys.measure(samples_);
        idleW_ = m.onChipMeanW();
        idleErrW_ = m.onChipStddevW();
    }
    return idleW_;
}

void
EpiExperiment::ensureBaselines()
{
    idlePowerW();
    if (nopEpiPj_ < 0.0) {
        const EpiRow nop_row =
            measureImpl(opts_, workloads::epiVariant("nop"),
                        workloads::OperandPattern::Random);
        nopEpiPj_ = nop_row.epiPj;
    }
}

double
EpiExperiment::measureInstPowerW(const sim::SystemOptions &opts,
                                 const workloads::EpiVariant &variant,
                                 workloads::OperandPattern pattern,
                                 double *stddev_w) const
{
    sim::System sys(opts);
    std::vector<isa::Program> programs;
    programs.reserve(25);
    for (TileId t = 0; t < 25; ++t) {
        programs.push_back(
            workloads::makeEpiProgram(variant, pattern, t));
        workloads::initEpiMemory(sys.pitonChip().memory(), pattern, t);
        // Run the test on all 25 cores to average out inter-tile power
        // variation (Section IV-E).
        sys.loadProgram(t, 0, &programs.back());
    }
    const auto m = sys.measure(samples_);
    if (stddev_w)
        *stddev_w = m.onChipStddevW();
    return m.onChipMeanW();
}

EpiRow
EpiExperiment::measure(const workloads::EpiVariant &variant,
                       workloads::OperandPattern pattern)
{
    idlePowerW();
    if (variant.padNops > 0)
        ensureBaselines();
    return measureImpl(opts_, variant, pattern);
}

EpiRow
EpiExperiment::measureImpl(const sim::SystemOptions &opts,
                           const workloads::EpiVariant &variant,
                           workloads::OperandPattern pattern) const
{
    piton_assert(idleW_ >= 0.0, "idle baseline not measured");
    const double p_idle = idleW_;
    double sigma = 0.0;
    const double p_inst =
        measureInstPowerW(opts, variant, pattern, &sigma);
    const double f = mhzToHz(opts.coreClockMhz);

    double epi_j = epiJoules(p_inst, p_idle, f, variant.latency, 25);
    double err_j =
        std::sqrt(sigma * sigma + idleErrW_ * idleErrW_) / 25.0 / f
        * variant.latency;

    if (variant.padNops > 0) {
        // stx(NF): the measured 10-cycle slot contains one store and
        // nine nops; subtract the nop energy (Section IV-E).
        piton_assert(nopEpiPj_ >= 0.0, "nop baseline not measured");
        epi_j -= variant.padNops * pjToJ(nopEpiPj_);
    }

    EpiRow row;
    row.variant = variant.label;
    row.pattern = pattern;
    row.epiPj = jToPj(epi_j);
    row.errPj = jToPj(err_j);
    return row;
}

std::vector<EpiRow>
EpiExperiment::runAll()
{
    ensureBaselines();

    struct Task
    {
        const workloads::EpiVariant *variant;
        workloads::OperandPattern pattern;
    };
    std::vector<Task> tasks;
    for (const auto &v : workloads::epiVariants()) {
        if (v.hasOperands) {
            for (const auto p : {workloads::OperandPattern::Minimum,
                                 workloads::OperandPattern::Random,
                                 workloads::OperandPattern::Maximum})
                tasks.push_back({&v, p});
        } else {
            tasks.push_back({&v, workloads::OperandPattern::Random});
        }
    }

    std::vector<EpiRow> rows(tasks.size());
    parallelFor(tasks.size(), opts_.sweepThreads, [&](std::size_t i) {
        sim::SystemOptions o = opts_;
        o.seed = deriveTaskSeed(opts_.seed, i);
        rows[i] = measureImpl(o, *tasks[i].variant, tasks[i].pattern);
    });
    return rows;
}

MemoryEnergyExperiment::MemoryEnergyExperiment(
    sim::SystemOptions base_options, std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

MemoryEnergyRow
MemoryEnergyExperiment::measure(workloads::MemoryScenario scenario) const
{
    return measureImpl(opts_, scenario);
}

MemoryEnergyRow
MemoryEnergyExperiment::measureImpl(
    const sim::SystemOptions &opts,
    workloads::MemoryScenario scenario) const
{
    using workloads::MemoryScenario;
    const bool remote = scenario == MemoryScenario::RemoteL2Hit4
                        || scenario == MemoryScenario::RemoteL2Hit8;
    const std::uint32_t cores = remote ? 1 : 25;

    // Idle reference.
    double p_idle = 0.0, idle_err = 0.0;
    {
        sim::System sys(opts);
        const auto m = sys.measure(samples_);
        p_idle = m.onChipMeanW();
        idle_err = m.onChipStddevW();
    }

    sim::System sys(opts);
    Rng rng(0x7E57 + static_cast<std::uint64_t>(scenario));
    std::vector<isa::Program> programs;
    std::vector<workloads::MemoryTestPlan> plans;
    programs.reserve(cores);
    plans.reserve(cores);
    for (TileId t = 0; t < cores; ++t) {
        plans.push_back(workloads::makeMemoryTestPlan(scenario, t));
        workloads::initMemoryTestData(sys.pitonChip().memory(),
                                      plans.back(), rng);
        programs.push_back(
            workloads::makeMemoryTestProgram(plans.back()));
        sys.loadProgram(t, 0, &programs.back());
    }

    const auto m = sys.measure(samples_);
    const double f = mhzToHz(opts.coreClockMhz);
    const std::uint32_t latency = workloads::memoryScenarioLatency(scenario);

    MemoryEnergyRow row;
    row.scenario = scenario;
    row.latency = latency;
    row.energyNj =
        jToNj(epiJoules(m.onChipMeanW(), p_idle, f, latency, cores));
    row.errNj = jToNj(std::sqrt(m.onChipStddevW() * m.onChipStddevW()
                                + idle_err * idle_err)
                      / cores / f * latency);
    return row;
}

std::vector<MemoryEnergyRow>
MemoryEnergyExperiment::runAll() const
{
    using workloads::MemoryScenario;
    const std::vector<MemoryScenario> scenarios = {
        MemoryScenario::L1Hit, MemoryScenario::LocalL2Hit,
        MemoryScenario::RemoteL2Hit4, MemoryScenario::RemoteL2Hit8,
        MemoryScenario::L2Miss};
    std::vector<MemoryEnergyRow> rows(scenarios.size());
    parallelFor(scenarios.size(), opts_.sweepThreads, [&](std::size_t i) {
        sim::SystemOptions o = opts_;
        o.seed = deriveTaskSeed(opts_.seed, i);
        rows[i] = measureImpl(o, scenarios[i]);
    });
    return rows;
}

} // namespace piton::core
