#include "core/epi_experiment.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/equations.hh"

namespace piton::core
{

EpiExperiment::EpiExperiment(sim::SystemOptions base_options,
                             std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

double
EpiExperiment::idlePowerW()
{
    if (idleW_ < 0.0) {
        sim::System sys(opts_);
        const auto m = sys.measure(samples_);
        idleW_ = m.onChipMeanW();
        idleErrW_ = m.onChipStddevW();
    }
    return idleW_;
}

double
EpiExperiment::measureInstPowerW(const workloads::EpiVariant &variant,
                                 workloads::OperandPattern pattern,
                                 double *stddev_w)
{
    sim::System sys(opts_);
    std::vector<isa::Program> programs;
    programs.reserve(25);
    for (TileId t = 0; t < 25; ++t) {
        programs.push_back(
            workloads::makeEpiProgram(variant, pattern, t));
        workloads::initEpiMemory(sys.pitonChip().memory(), pattern, t);
        // Run the test on all 25 cores to average out inter-tile power
        // variation (Section IV-E).
        sys.loadProgram(t, 0, &programs.back());
    }
    const auto m = sys.measure(samples_);
    if (stddev_w)
        *stddev_w = m.onChipStddevW();
    return m.onChipMeanW();
}

EpiRow
EpiExperiment::measure(const workloads::EpiVariant &variant,
                       workloads::OperandPattern pattern)
{
    const double p_idle = idlePowerW();
    double sigma = 0.0;
    const double p_inst = measureInstPowerW(variant, pattern, &sigma);
    const double f = mhzToHz(opts_.coreClockMhz);

    double epi_j = epiJoules(p_inst, p_idle, f, variant.latency, 25);
    double err_j =
        std::sqrt(sigma * sigma + idleErrW_ * idleErrW_) / 25.0 / f
        * variant.latency;

    if (variant.padNops > 0) {
        // stx(NF): the measured 10-cycle slot contains one store and
        // nine nops; subtract the nop energy (Section IV-E).
        if (nopEpiPj_ < 0.0) {
            const EpiRow nop_row = measure(
                workloads::epiVariant("nop"), workloads::OperandPattern::Random);
            nopEpiPj_ = nop_row.epiPj;
        }
        epi_j -= variant.padNops * pjToJ(nopEpiPj_);
    }

    EpiRow row;
    row.variant = variant.label;
    row.pattern = pattern;
    row.epiPj = jToPj(epi_j);
    row.errPj = jToPj(err_j);
    return row;
}

std::vector<EpiRow>
EpiExperiment::runAll()
{
    std::vector<EpiRow> rows;
    for (const auto &v : workloads::epiVariants()) {
        if (v.hasOperands) {
            for (const auto p : {workloads::OperandPattern::Minimum,
                                 workloads::OperandPattern::Random,
                                 workloads::OperandPattern::Maximum})
                rows.push_back(measure(v, p));
        } else {
            rows.push_back(measure(v, workloads::OperandPattern::Random));
        }
    }
    return rows;
}

MemoryEnergyExperiment::MemoryEnergyExperiment(
    sim::SystemOptions base_options, std::uint32_t samples)
    : opts_(base_options), samples_(samples)
{
}

MemoryEnergyRow
MemoryEnergyExperiment::measure(workloads::MemoryScenario scenario)
{
    using workloads::MemoryScenario;
    const bool remote = scenario == MemoryScenario::RemoteL2Hit4
                        || scenario == MemoryScenario::RemoteL2Hit8;
    const std::uint32_t cores = remote ? 1 : 25;

    // Idle reference.
    double p_idle = 0.0, idle_err = 0.0;
    {
        sim::System sys(opts_);
        const auto m = sys.measure(samples_);
        p_idle = m.onChipMeanW();
        idle_err = m.onChipStddevW();
    }

    sim::System sys(opts_);
    Rng rng(0x7E57 + static_cast<std::uint64_t>(scenario));
    std::vector<isa::Program> programs;
    std::vector<workloads::MemoryTestPlan> plans;
    programs.reserve(cores);
    plans.reserve(cores);
    for (TileId t = 0; t < cores; ++t) {
        plans.push_back(workloads::makeMemoryTestPlan(scenario, t));
        workloads::initMemoryTestData(sys.pitonChip().memory(),
                                      plans.back(), rng);
        programs.push_back(
            workloads::makeMemoryTestProgram(plans.back()));
        sys.loadProgram(t, 0, &programs.back());
    }

    const auto m = sys.measure(samples_);
    const double f = mhzToHz(opts_.coreClockMhz);
    const std::uint32_t latency = workloads::memoryScenarioLatency(scenario);

    MemoryEnergyRow row;
    row.scenario = scenario;
    row.latency = latency;
    row.energyNj =
        jToNj(epiJoules(m.onChipMeanW(), p_idle, f, latency, cores));
    row.errNj = jToNj(std::sqrt(m.onChipStddevW() * m.onChipStddevW()
                                + idle_err * idle_err)
                      / cores / f * latency);
    return row;
}

std::vector<MemoryEnergyRow>
MemoryEnergyExperiment::runAll()
{
    using workloads::MemoryScenario;
    std::vector<MemoryEnergyRow> rows;
    for (const auto s :
         {MemoryScenario::L1Hit, MemoryScenario::LocalL2Hit,
          MemoryScenario::RemoteL2Hit4, MemoryScenario::RemoteL2Hit8,
          MemoryScenario::L2Miss})
        rows.push_back(measure(s));
    return rows;
}

} // namespace piton::core
