/**
 * @file
 * Power-capping study (a research direction the paper motivates:
 * power is a first-class citizen in data centers [14][15], and
 * Section IV-J discusses TDP/power-capping scheduling [52][53]).
 *
 * Two experiments built on the characterization:
 *  - static capping: the largest HP thread count whose steady-state
 *    power fits a cap (the Fig. 13 curves, inverted);
 *  - a reactive governor: a control loop that watches the measured
 *    chip power and throttles/releases active cores to track a cap,
 *    producing the kind of trace a power-capping controller study
 *    would evaluate.
 */

#ifndef PITON_CORE_POWER_CAP_HH
#define PITON_CORE_POWER_CAP_HH

#include <map>
#include <vector>

#include "sim/system.hh"
#include "telemetry/recorder.hh"
#include "workloads/microbenchmarks.hh"

namespace piton::core
{

struct StaticCapResult
{
    double capW = 0.0;
    std::uint32_t maxCores = 0;     ///< at 2 T/C (HP workload)
    double powerAtMaxW = 0.0;
    double headroomW = 0.0;         ///< cap - power
};

struct GovernorPoint
{
    double timeS = 0.0;
    std::uint32_t activeCores = 0;
    double measuredPowerW = 0.0;
};

struct GovernorTrace
{
    double capW = 0.0;
    std::vector<GovernorPoint> points;
    double violationFraction = 0.0; ///< time above cap
    std::uint32_t settledCores = 0; ///< active cores at the end
};

class PowerCapExperiment
{
  public:
    explicit PowerCapExperiment(sim::SystemOptions opts = {},
                                std::uint32_t samples = 24);

    /** Steady-state HP power at `cores` active cores (2 T/C), cached.
     *  Measured through the telemetry path: the monitor samples land
     *  in a per-measurement recorder and the reported power is the
     *  aggregate mean of the measured.onchip_w series (bit-identical
     *  to the PowerMeasurement mean — both are the same Welford pass
     *  over the same samples). */
    double hpPowerW(std::uint32_t cores);

    /** Largest HP configuration that fits under the cap. */
    StaticCapResult maxCoresUnderCap(double cap_w);

    /**
     * Reactive governor: starting from full demand (25 cores), each
     * control interval measures power and throttles one core when
     * above the cap / releases one when a core of headroom exists.
     */
    GovernorTrace reactiveGovernor(double cap_w,
                                   double interval_s = 0.5,
                                   double duration_s = 20.0);

    /** The experiment's telemetry store: reactiveGovernor records its
     *  control trace here (governor.active_cores / governor.measured_w,
     *  one point per control interval), ready for exportTelemetry(). */
    const telemetry::TelemetryRecorder &telemetry() const
    {
        return telem_;
    }
    telemetry::TelemetryRecorder &telemetry() { return telem_; }

  private:
    sim::SystemOptions opts_;
    std::uint32_t samples_;
    std::map<std::uint32_t, double> powerCache_;
    telemetry::TelemetryRecorder telem_;
};

} // namespace piton::core

#endif // PITON_CORE_POWER_CAP_HH
