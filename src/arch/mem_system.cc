#include "arch/mem_system.hh"

#include <algorithm>
#include <bit>

#include "checkpoint/archive.hh"
#include "common/logging.hh"

namespace piton::arch
{

namespace
{

/** NoC message types (header-flit type field). */
enum MsgType : std::uint8_t
{
    ReqLoad = 1,
    ReqStore = 2,
    ReqAtomic = 3,
    ReqIFetch = 4,
    Resp = 5,
    Inval = 6,
    Fwd = 7,
    Writeback = 8,
};

} // namespace

const char *
hitLevelName(HitLevel l)
{
    switch (l) {
      case HitLevel::L1: return "L1 Hit";
      case HitLevel::L15: return "L1.5 Hit";
      case HitLevel::LocalL2: return "Local L2 Hit";
      case HitLevel::RemoteL2: return "Remote L2 Hit";
      case HitLevel::OffChip: return "L2 Miss";
      default:
        piton_panic("bad HitLevel");
    }
}

MemorySystem::MemorySystem(const config::PitonParams &params,
                           const power::EnergyModel &energy,
                           power::EnergyLedger &ledger, MainMemory &memory,
                           std::uint64_t seed)
    : params_(params), energy_(energy), ledger_(ledger), memory_(memory),
      noc_(params, energy, ledger), chipset_(energy, ledger, seed),
      mapping_(params.sliceMapping)
{
    tiles_.reserve(params_.tileCount);
    for (TileId t = 0; t < params_.tileCount; ++t)
        tiles_.emplace_back(params_);
}

Addr
MemorySystem::l2LineAlign(Addr a) const
{
    return a & ~static_cast<Addr>(params_.l2Slice.lineBytes - 1);
}

void
MemorySystem::setSliceMapping(config::LineToSliceMapping mapping)
{
    mapping_ = mapping;
}

TileId
MemorySystem::homeTile(Addr addr) const
{
    const Addr line = l2LineAlign(addr);
    unsigned shift = 6;
    switch (mapping_) {
      case config::LineToSliceMapping::LowOrder: shift = 6; break;
      case config::LineToSliceMapping::MidOrder: shift = 14; break;
      case config::LineToSliceMapping::HighOrder: shift = 22; break;
    }
    return static_cast<TileId>((line >> shift) % params_.tileCount);
}

void
MemorySystem::addCoherenceDomain(Addr base, Addr size,
                                 std::uint32_t tile_mask)
{
    piton_assert(size > 0, "empty coherence domain");
    piton_assert((tile_mask & ~((1u << params_.tileCount) - 1)) == 0,
                 "domain mask names nonexistent tiles");
    piton_assert(tile_mask != 0, "empty domain tile mask");
    domains_.push_back(CoherenceDomain{base, size, tile_mask});
}

std::uint32_t
MemorySystem::domainMaskFor(Addr addr) const
{
    for (const auto &d : domains_) {
        if (addr >= d.base && addr < d.base + d.size)
            return d.tileMask;
    }
    return (1u << params_.tileCount) - 1; // unrestricted
}

void
MemorySystem::chargeL2Access(Addr addr)
{
    // Tag + data array access, plus a directory lookup whose sharer
    // vector (and thus energy) shrinks under CDR.
    const auto mask = domainMaskFor(addr);
    const double dir_scale =
        (8.0 + std::popcount(mask))
        / (8.0 + static_cast<double>(params_.tileCount));
    const power::RailEnergy dir =
        energy_.l2AccessEnergy(true) - energy_.l2AccessEnergy(false);
    ledger_.add(power::Category::CacheL2, energy_.l2AccessEnergy(false));
    ledger_.add(power::Category::CacheL2, dir.scaled(dir_scale));
}

void
MemorySystem::checkDomain(TileId tile, Addr addr) const
{
    piton_assert((domainMaskFor(addr) >> tile) & 1u,
                 "tile %u accessed 0x%llx outside its coherence domain",
                 tile, static_cast<unsigned long long>(addr));
}

void
MemorySystem::chargeStall(std::uint32_t cycles)
{
    power::RailEnergy e;
    for (std::uint32_t i = 0; i < cycles; ++i)
        e += energy_.stallCycleEnergy();
    ledger_.add(power::Category::Stall, e);
}

std::uint32_t
MemorySystem::nocRoundTrip(TileId requester, TileId home, Addr addr,
                           Cycle, std::uint8_t req_type)
{
    // Request: header + address + metadata (3 flits).
    Packet req;
    req.net = NocId::Noc1;
    req.src = requester;
    req.dst = home;
    req.flits = {makeHeaderFlit(home, requester, 2, req_type), addr,
                 0x1ULL};
    noc_.send(req);

    // Response: header + 16 B L1.5 line of real data (3 flits).
    const Addr subline =
        addr & ~static_cast<Addr>(params_.l15.lineBytes - 1);
    Packet resp;
    resp.net = NocId::Noc2;
    resp.src = home;
    resp.dst = requester;
    resp.flits = {makeHeaderFlit(requester, home, 2, Resp),
                  memory_.read64(subline), memory_.read64(subline + 8)};
    noc_.send(resp);

    return lat_.perHop * noc_.hopsBetween(requester, home)
           + lat_.perTurn * noc_.turnsBetween(requester, home);
}

void
MemorySystem::invalidateTileLine(TileId tile, Addr l2_line, Cycle)
{
    Tile &t = tiles_[tile];
    for (Addr a = l2_line; a < l2_line + params_.l2Slice.lineBytes;
         a += params_.l15.lineBytes) {
        t.l15.invalidate(a);
        t.l1d.invalidate(a);
    }
}

void
MemorySystem::invalidateSharers(DirEntry &dir, Addr l2_line, TileId home,
                                TileId except, Cycle now)
{
    for (TileId s = 0; s < params_.tileCount; ++s) {
        if (s == except || !(dir.sharers & (1u << s)))
            continue;
        // Invalidation packet: header + line address (2 flits).
        Packet inv;
        inv.net = NocId::Noc3;
        inv.src = home;
        inv.dst = s;
        inv.flits = {makeHeaderFlit(s, home, 1, Inval), l2_line};
        noc_.send(inv);
        ledger_.add(power::Category::CacheL15, energy_.l15AccessEnergy());
        // If the sharer owned a dirty copy, it answers with data.
        if (dir.owned && dir.owner == s) {
            Packet wb;
            wb.net = NocId::Noc3;
            wb.src = s;
            wb.dst = home;
            wb.flits = {makeHeaderFlit(home, s, 2, Writeback),
                        memory_.read64(l2_line), memory_.read64(l2_line + 8)};
            noc_.send(wb);
            dir.owned = false;
        }
        invalidateTileLine(s, l2_line, now);
        ++stats_.invalidationsSent;
        dir.sharers &= ~(1u << s);
    }
    if (dir.owned && dir.owner != except)
        dir.owned = false;
}

void
MemorySystem::writebackToL2(TileId tile, Addr line_addr, Cycle /*now*/)
{
    ++stats_.writebacks;
    const TileId home = homeTile(line_addr);
    const Addr l2_line = l2LineAlign(line_addr);
    if (home != tile) {
        Packet wb;
        wb.net = NocId::Noc3;
        wb.src = tile;
        wb.dst = home;
        wb.flits = {makeHeaderFlit(home, tile, 2, Writeback),
                    memory_.read64(line_addr),
                    memory_.read64(line_addr + 8)};
        noc_.send(wb);
    }
    ledger_.add(power::Category::CacheL2, energy_.l2AccessEnergy(false));
    Tile &h = tiles_[home];
    if (h.l2.probe(l2_line) != Mesi::Invalid) {
        h.l2.setState(l2_line, Mesi::Modified);
    } else {
        // The L2 already evicted the line (non-inclusive corner);
        // forward straight to DRAM.
        chipset_.postWriteback();
    }
    // The evicting tile no longer shares the line.
    auto it = directory_.find(l2_line);
    if (it != directory_.end()) {
        it->second.sharers &= ~(1u << tile);
        if (it->second.owned && it->second.owner == tile)
            it->second.owned = false;
    }
}

void
MemorySystem::fillPrivate(TileId tile, Addr addr, Mesi state, Cycle now,
                          bool fill_l1d)
{
    Tile &t = tiles_[tile];
    const Addr subline =
        addr & ~static_cast<Addr>(params_.l15.lineBytes - 1);
    const Eviction ev = t.l15.fill(subline, state, now);
    if (ev.happened) {
        // L1D inclusion: the evicted L1.5 line leaves the L1D too.
        t.l1d.invalidate(ev.lineAddr);
        if (ev.state == Mesi::Modified)
            writebackToL2(tile, ev.lineAddr, now);
    }
    if (fill_l1d)
        t.l1d.fill(subline, Mesi::Shared, now);
}

std::uint32_t
MemorySystem::accessHomeL2(TileId requester, TileId home, Addr addr,
                           bool exclusive, Cycle now, HitLevel &level)
{
    checkDomain(requester, addr);
    Tile &h = tiles_[home];
    const Addr l2_line = l2LineAlign(addr);
    chargeL2Access(addr);

    std::uint32_t extra = 0;
    if (h.l2.access(l2_line, now)) {
        level = (home == requester) ? HitLevel::LocalL2
                                    : HitLevel::RemoteL2;
        if (home == requester)
            ++stats_.localL2Hits;
        else
            ++stats_.remoteL2Hits;
    } else {
        // Off-chip fetch through the chipset (Fig. 15 path).
        level = HitLevel::OffChip;
        ++stats_.offChipMisses;
        ledger_.add(power::Category::OffChip, energy_.offChipMissEnergy());
        extra = chipset_.memoryRoundTrip(now);
        const Eviction ev = h.l2.fill(l2_line, Mesi::Exclusive, now);
        if (ev.happened) {
            auto it = directory_.find(ev.lineAddr);
            if (it != directory_.end()) {
                invalidateSharers(it->second, ev.lineAddr, home,
                                  params_.tileCount /* no exception */,
                                  now);
                directory_.erase(it);
            }
            if (ev.state == Mesi::Modified)
                chipset_.postWriteback();
        }
    }

    DirEntry &dir = directory_[l2_line];
    if (exclusive) {
        invalidateSharers(dir, l2_line, home, requester, now);
        dir.sharers = 1u << requester;
        dir.owned = true;
        dir.owner = requester;
        h.l2.setState(l2_line, Mesi::Modified);
        ++stats_.upgrades;
    } else {
        // A remote dirty owner must be downgraded before sharing.
        if (dir.owned && dir.owner != requester) {
            const TileId owner = dir.owner;
            Packet fwd;
            fwd.net = NocId::Noc3;
            fwd.src = home;
            fwd.dst = owner;
            fwd.flits = {makeHeaderFlit(owner, home, 1, Fwd), l2_line};
            noc_.send(fwd);
            Packet resp;
            resp.net = NocId::Noc3;
            resp.src = owner;
            resp.dst = home;
            resp.flits = {makeHeaderFlit(home, owner, 2, Writeback),
                          memory_.read64(l2_line),
                          memory_.read64(l2_line + 8)};
            noc_.send(resp);
            ledger_.add(power::Category::CacheL15,
                        energy_.l15AccessEnergy());
            // Downgrade every modified subline of the 64 B L2 line the
            // owner may hold (the L1.5 tracks 16 B lines).
            for (Addr sub = l2_line;
                 sub < l2_line + params_.l2Slice.lineBytes;
                 sub += params_.l15.lineBytes) {
                if (tiles_[owner].l15.probe(sub) == Mesi::Modified)
                    tiles_[owner].l15.setState(sub, Mesi::Shared);
            }
            dir.owned = false;
            extra += lat_.perHop * noc_.hopsBetween(home, owner)
                     + lat_.perTurn * noc_.turnsBetween(home, owner) + 8;
        }
        dir.sharers |= 1u << requester;
    }
    return extra;
}

AccessOutcome
MemorySystem::load(TileId tile, Addr addr, RegVal &data, Cycle now)
{
    ++stats_.loads;
    Tile &t = tiles_[tile];
    data = memory_.read64(addr);

    if (t.l1d.access(addr, now)) {
        ++stats_.l1Hits;
        return {lat_.l1Hit, HitLevel::L1};
    }

    // The thread scheduler speculated an L1 hit: rollback and replay.
    ledger_.add(power::Category::Rollback, energy_.rollbackEnergy());
    ledger_.add(power::Category::CacheL15, energy_.l15AccessEnergy());

    if (t.l15.access(addr, now)) {
        ++stats_.l15Hits;
        t.l1d.fill(addr & ~static_cast<Addr>(params_.l15.lineBytes - 1),
                   Mesi::Shared, now);
        chargeStall(lat_.l15Hit - lat_.l1Hit);
        return {lat_.l15Hit, HitLevel::L15};
    }

    const TileId home = homeTile(addr);
    std::uint32_t latency = lat_.localL2Hit;
    if (home != tile)
        latency += nocRoundTrip(tile, home, addr, now, ReqLoad);

    HitLevel level = HitLevel::LocalL2;
    const std::uint32_t extra =
        accessHomeL2(tile, home, addr, /*exclusive=*/false, now, level);
    if (level == HitLevel::OffChip)
        latency = extra
                  + (home != tile
                         ? lat_.perHop * noc_.hopsBetween(tile, home)
                               + lat_.perTurn * noc_.turnsBetween(tile, home)
                         : 0);
    else
        latency += extra;

    fillPrivate(tile, addr, Mesi::Shared, now, /*fill_l1d=*/true);
    chargeStall(latency - lat_.l1Hit);
    return {latency, level};
}

AccessOutcome
MemorySystem::store(TileId tile, Addr addr, RegVal data, Cycle now)
{
    ++stats_.stores;
    Tile &t = tiles_[tile];
    memory_.write64(addr, data);

    // Write-through L1D: update on hit, no allocate on miss.
    t.l1d.access(addr, now);

    const Mesi l15_state = t.l15.probe(addr);
    if (l15_state == Mesi::Modified) {
        // Common case: the store drains from the store buffer into an
        // exclusive L1.5 line. Base stx EPI already covers this write.
        return {lat_.storeBuffer, HitLevel::L15};
    }

    const TileId home = homeTile(addr);
    const Addr l2_line = l2LineAlign(addr);
    std::uint32_t latency = lat_.storeBuffer;

    if (l15_state == Mesi::Shared || l15_state == Mesi::Exclusive) {
        // Upgrade: ask the home directory to invalidate other sharers.
        checkDomain(tile, addr);
        chargeL2Access(addr);
        DirEntry &dir = directory_[l2_line];
        invalidateSharers(dir, l2_line, home, tile, now);
        dir.sharers = 1u << tile;
        dir.owned = true;
        dir.owner = tile;
        t.l15.setState(addr & ~static_cast<Addr>(params_.l15.lineBytes - 1),
                       Mesi::Modified);
        tiles_[home].l2.setState(l2_line, Mesi::Modified);
        latency += lat_.localL2Hit;
        if (home != tile)
            latency += nocRoundTrip(tile, home, addr, now, ReqStore);
        ++stats_.upgrades;
        chargeStall(latency - lat_.storeBuffer);
        return {latency, t.l15.probe(addr) == Mesi::Modified
                             ? HitLevel::L15
                             : HitLevel::LocalL2};
    }

    // L1.5 miss: read-for-ownership from the home slice.
    ledger_.add(power::Category::CacheL15, energy_.l15AccessEnergy());
    std::uint32_t rfo = lat_.localL2Hit;
    if (home != tile)
        rfo += nocRoundTrip(tile, home, addr, now, ReqStore);
    HitLevel level = HitLevel::LocalL2;
    const std::uint32_t extra =
        accessHomeL2(tile, home, addr, /*exclusive=*/true, now, level);
    if (level == HitLevel::OffChip)
        rfo = extra
              + (home != tile
                     ? lat_.perHop * noc_.hopsBetween(tile, home)
                           + lat_.perTurn * noc_.turnsBetween(tile, home)
                     : 0);
    else
        rfo += extra;

    fillPrivate(tile, addr, Mesi::Modified, now, /*fill_l1d=*/false);
    latency += rfo;
    chargeStall(rfo);
    return {latency, level};
}

AccessOutcome
MemorySystem::atomicCas(TileId tile, Addr addr, RegVal expected,
                        RegVal swap, RegVal &old, Cycle now)
{
    ++stats_.atomics;
    checkDomain(tile, addr);
    const TileId home = homeTile(addr);
    const Addr l2_line = l2LineAlign(addr);

    // Atomics execute at the home L2: all cached copies (including the
    // requester's) are invalidated first.  A CAS whose comparison fails
    // (the common spin-lock case) performs only the tag/data read, not
    // the full read-modify-write.
    const bool will_succeed = memory_.read64(addr) == expected;
    if (will_succeed) {
        chargeL2Access(addr);
    } else {
        ledger_.add(power::Category::CacheL2,
                    energy_.l2AccessEnergy(false).scaled(0.15));
    }
    auto dir_it = directory_.find(l2_line);
    if (dir_it != directory_.end()) {
        invalidateSharers(dir_it->second, l2_line, home,
                          params_.tileCount /* invalidate everyone */,
                          now);
        dir_it->second.sharers = 0;
        dir_it->second.owned = false;
    }
    invalidateTileLine(tile, l2_line, now);

    std::uint32_t latency = lat_.localL2Hit;
    HitLevel level = HitLevel::LocalL2;
    if (home != tile) {
        latency += nocRoundTrip(tile, home, addr, now, ReqAtomic);
        level = HitLevel::RemoteL2;
    }

    // Atomics to the same line serialize at the home slice: each RMW
    // occupies it for ~20 cycles, so heavy lock contention queues the
    // spinning threads (Section IV-H's contention effects).
    constexpr std::uint32_t kAtomicOccupancy = 20;
    Cycle &busy = atomicBusyUntil_[l2_line];
    const Cycle start = std::max<Cycle>(now, busy);
    latency += static_cast<std::uint32_t>(start - now);
    busy = start + kAtomicOccupancy;

    Tile &h = tiles_[home];
    if (!h.l2.access(l2_line, now)) {
        level = HitLevel::OffChip;
        ++stats_.offChipMisses;
        ledger_.add(power::Category::OffChip, energy_.offChipMissEnergy());
        latency = chipset_.memoryRoundTrip(now)
                  + (home != tile
                         ? lat_.perHop * noc_.hopsBetween(tile, home)
                               + lat_.perTurn * noc_.turnsBetween(tile, home)
                         : 0);
        const Eviction ev = h.l2.fill(l2_line, Mesi::Exclusive, now);
        if (ev.happened && ev.state == Mesi::Modified)
            chipset_.postWriteback();
    }

    old = memory_.read64(addr);
    if (old == expected) {
        memory_.write64(addr, swap);
        h.l2.setState(l2_line, Mesi::Modified);
    }
    // A failed CAS (spin-waiting) leaves the thread parked on the
    // round trip; only the successful RMW pays active-stall energy.
    if (will_succeed)
        chargeStall(latency);
    return {latency, level};
}

std::uint32_t
MemorySystem::ifetchMiss(TileId tile, Addr line, Cycle now)
{
    ++stats_.ifetchMisses;
    const TileId home = homeTile(line);
    std::uint32_t latency = lat_.localL2Hit - lat_.l1Hit;

    chargeL2Access(line);
    if (home != tile) {
        // Request + 32 B response (header + 4 words).
        Packet req;
        req.net = NocId::Noc1;
        req.src = tile;
        req.dst = home;
        req.flits = {makeHeaderFlit(home, tile, 2, ReqIFetch), line, 0};
        noc_.send(req);
        Packet resp;
        resp.net = NocId::Noc2;
        resp.src = home;
        resp.dst = tile;
        resp.flits = {makeHeaderFlit(tile, home, 4, Resp),
                      memory_.read64(line), memory_.read64(line + 8),
                      memory_.read64(line + 16), memory_.read64(line + 24)};
        noc_.send(resp);
        latency += lat_.perHop * noc_.hopsBetween(tile, home)
                   + lat_.perTurn * noc_.turnsBetween(tile, home);
    }

    Tile &h = tiles_[home];
    const Addr l2_line = l2LineAlign(line);
    if (!h.l2.access(l2_line, now)) {
        latency = chipset_.memoryRoundTrip(now);
        const Eviction ev = h.l2.fill(l2_line, Mesi::Exclusive, now);
        if (ev.happened && ev.state == Mesi::Modified)
            chipset_.postWriteback();
    }

    tiles_[tile].l1i.fill(line, Mesi::Shared, now);
    chargeStall(latency);
    return latency;
}

NocSendResult
MemorySystem::injectPacket(TileId dst, const std::vector<RegVal> &payload)
{
    // Off-chip traffic enters the mesh through tile 0's chip bridge.
    Packet pkt;
    pkt.net = NocId::Noc3;
    pkt.src = 0;
    pkt.dst = dst;
    pkt.flits.reserve(payload.size() + 1);
    pkt.flits.push_back(makeHeaderFlit(
        dst, 0, static_cast<std::uint8_t>(payload.size()), Inval));
    pkt.flits.insert(pkt.flits.end(), payload.begin(), payload.end());
    // The receiving L1.5 performs an invalidation lookup.
    ledger_.add(power::Category::CacheL15, energy_.l15AccessEnergy());
    return noc_.send(pkt);
}

Mesi
MemorySystem::probeL15(TileId tile, Addr addr) const
{
    return tiles_[tile].l15.probe(addr);
}

Mesi
MemorySystem::probeL1d(TileId tile, Addr addr) const
{
    return tiles_[tile].l1d.probe(addr);
}

Mesi
MemorySystem::probeL2(TileId tile, Addr addr) const
{
    return tiles_[tile].l2.probe(addr);
}

void
MemorySystem::flushAll()
{
    for (auto &t : tiles_) {
        t.l1i.flushAll();
        t.l1d.flushAll();
        t.l15.flushAll();
        t.l2.flushAll();
    }
    directory_.clear();
}

namespace
{

/** Serialize an unordered_map in sorted-key order (the byte stream
 *  must not depend on hash iteration order), with `io_value` doing the
 *  per-entry value I/O. */
template <typename Map, typename IoValue>
void
ioSortedMap(ckpt::Archive &ar, Map &map, std::uint64_t min_entry_bytes,
            IoValue &&io_value)
{
    using Key = typename Map::key_type;
    std::vector<Key> keys;
    if (ar.saving()) {
        keys.reserve(map.size());
        for (const auto &kv : map)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
    }
    const std::uint64_t n = ar.ioSize(keys.size(), min_entry_bytes);
    if (ar.loading())
        map.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        Key key = ar.saving() ? keys[i] : Key{};
        ar.io(key);
        io_value(map[key]);
    }
}

} // namespace

void
MemorySystem::serialize(ckpt::Archive &ar)
{
    ar.ioExpect(static_cast<std::uint32_t>(tiles_.size()), "tile count");
    for (auto &tile : tiles_) {
        tile.l1i.serialize(ar);
        tile.l1d.serialize(ar);
        tile.l15.serialize(ar);
        tile.l2.serialize(ar);
    }

    ioSortedMap(ar, directory_, 8 + 4 + 1 + 4, [&](DirEntry &e) {
        ar.io(e.sharers);
        ar.io(e.owned);
        ar.io(e.owner);
        ckpt::Archive::check(e.owner < tiles_.size(),
                             "directory owner out of range");
    });
    ioSortedMap(ar, atomicBusyUntil_, 8 + 8,
                [&](Cycle &busy) { ar.io(busy); });

    ar.ioEnum(mapping_, static_cast<config::LineToSliceMapping>(3));
    std::uint64_t nd = ar.ioSize(domains_.size(), 8 + 8 + 4);
    if (ar.loading())
        domains_.resize(static_cast<std::size_t>(nd));
    for (auto &d : domains_) {
        ar.io(d.base);
        ar.io(d.size);
        ar.io(d.tileMask);
    }

    ar.io(stats_.loads);
    ar.io(stats_.stores);
    ar.io(stats_.atomics);
    ar.io(stats_.l1Hits);
    ar.io(stats_.l15Hits);
    ar.io(stats_.localL2Hits);
    ar.io(stats_.remoteL2Hits);
    ar.io(stats_.offChipMisses);
    ar.io(stats_.ifetchMisses);
    ar.io(stats_.invalidationsSent);
    ar.io(stats_.writebacks);
    ar.io(stats_.upgrades);

    noc_.serialize(ar);
    chipset_.serialize(ar);
}

} // namespace piton::arch
