/**
 * @file
 * The Piton memory hierarchy: per-tile L1I / write-through L1D /
 * write-back L1.5, the distributed shared L2 with its integrated
 * directory (MESI), the three NoCs, and the off-chip chipset path.
 *
 * Coherence transactions are resolved atomically at the home L2 slice
 * ("transaction-level" modelling): when a core access misses, the full
 * transaction — directory lookup, sharer invalidations, forwards,
 * off-chip fetch — executes immediately against the architectural
 * state, returning the cycle latency the requesting thread must wait
 * and charging every constituent energy event (cache accesses, NoC
 * flits with real payload toggles, chip-bridge/VIO crossings) to the
 * ledger.  The characterization workloads never saturate the NoCs or
 * the memory controller, so contention is folded into the calibrated
 * per-stage latencies (Table VII / Fig. 15).
 */

#ifndef PITON_ARCH_MEM_SYSTEM_HH
#define PITON_ARCH_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/cache.hh"
#include "arch/chipset.hh"
#include "arch/memory.hh"
#include "arch/noc.hh"
#include "common/types.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

namespace piton::ckpt
{
class Archive;
}

namespace piton::arch
{

/** Where a request was satisfied (Table VII's scenarios). */
enum class HitLevel : std::uint8_t
{
    L1,
    L15,
    LocalL2,
    RemoteL2,
    OffChip,
};

const char *hitLevelName(HitLevel l);

struct AccessOutcome
{
    std::uint32_t latency = 0; ///< cycles from issue to completion
    HitLevel level = HitLevel::L1;
};

/** Fixed latency components (Table VII, verified in simulation). */
struct MemLatencies
{
    std::uint32_t l1Hit = 3;
    std::uint32_t l15Hit = 8;
    std::uint32_t localL2Hit = 34;
    std::uint32_t perHop = 2;  ///< request + response direction
    std::uint32_t perTurn = 2;
    std::uint32_t storeBuffer = 10;
};

struct MemStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l15Hits = 0;
    std::uint64_t localL2Hits = 0;
    std::uint64_t remoteL2Hits = 0;
    std::uint64_t offChipMisses = 0;
    std::uint64_t ifetchMisses = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t upgrades = 0;
};

class MemorySystem
{
  public:
    MemorySystem(const config::PitonParams &params,
                 const power::EnergyModel &energy,
                 power::EnergyLedger &ledger, MainMemory &memory,
                 std::uint64_t seed = 0xBEEF);

    // ---- core-facing interface -------------------------------------

    /** 64-bit load; data returned through `data`. */
    AccessOutcome load(TileId tile, Addr addr, RegVal &data, Cycle now);

    /**
     * 64-bit store.  The returned latency is the store-buffer occupancy
     * (how long the entry stays before draining to the L1.5).
     */
    AccessOutcome store(TileId tile, Addr addr, RegVal data, Cycle now);

    /** Compare-and-swap, performed at the home L2 slice. */
    AccessOutcome atomicCas(TileId tile, Addr addr, RegVal expected,
                            RegVal swap, RegVal &old, Cycle now);

    /** Extra fetch latency beyond the pipeline (0 on an L1I hit).  The
     *  hit check inlines into the issue engine; only misses leave the
     *  header (ifetchMiss). */
    std::uint32_t ifetch(TileId tile, Addr pc, Cycle now)
    {
        const Addr line = pc & ~static_cast<Addr>(params_.l1i.lineBytes - 1);
        if (tiles_[tile].l1i.access(line, now)) [[likely]]
            return 0;
        return ifetchMiss(tile, line, now);
    }

    /** Resident-L1I line handle for the issue engine's per-thread MRU
     *  fetch cache (see Core::issue); nullptr when not resident. */
    CacheLine *l1iLine(TileId tile, Addr line)
    {
        return tiles_[tile].l1i.lineAt(line);
    }

    /** Side-effect-free L1I residency check (no LRU touch), used by the
     *  run-ahead scheduler to classify a fetch as core-local. */
    bool l1iResident(TileId tile, Addr line) const
    {
        return tiles_[tile].l1i.probe(line) != Mesi::Invalid;
    }

    // ---- chipset-facing interface (Fig. 12 experiment) --------------

    /**
     * Inject an invalidation-type packet from the chip bridge (enters
     * the mesh at tile 0) to `dst`, with the given payload flits.
     * Returns the NoC result for the injected packet.
     */
    NocSendResult injectPacket(TileId dst,
                               const std::vector<RegVal> &payload);

    // ---- configuration ----------------------------------------------

    /** Line->slice mapping, software-configurable per Section IV-F. */
    void setSliceMapping(config::LineToSliceMapping mapping);
    TileId homeTile(Addr addr) const;

    // ---- Coherence Domain Restriction (CDR, Fu et al. MICRO'15) -----
    //
    // Piton's L2 implements CDR: shared memory regions can be
    // restricted to an arbitrary subset of cores, shrinking the
    // directory's sharer vector and bounding invalidation fan-out in
    // large systems.

    /** Restrict coherence for [base, base+size) to the tiles in
     *  `tile_mask` (bit per tile). Accesses from outside the domain
     *  are a programming error (panic). */
    void addCoherenceDomain(Addr base, Addr size, std::uint32_t tile_mask);
    /** Domain tile mask covering `addr` (all tiles if unrestricted). */
    std::uint32_t domainMaskFor(Addr addr) const;

    const MemStats &stats() const { return stats_; }
    void resetStats() { stats_ = MemStats{}; }
    const MemLatencies &latencies() const { return lat_; }
    NocNetwork &noc() { return noc_; }
    Chipset &chipset() { return chipset_; }

    /** Drop all cached state (power-on reset). */
    void flushAll();

    /** Checkpoint hook: caches, directory, atomic serialization state,
     *  NoC, chipset, slice-mapping configuration, and counters. */
    void serialize(ckpt::Archive &ar);

    // ---- diagnostic probes (tests, tools) ----------------------------

    /** MESI state of a line in a tile's L1.5 (no LRU side effects). */
    Mesi probeL15(TileId tile, Addr addr) const;
    /** MESI state of a line in a tile's L1D. */
    Mesi probeL1d(TileId tile, Addr addr) const;
    /** MESI state of a line in a tile's L2 slice. */
    Mesi probeL2(TileId tile, Addr addr) const;

  private:
    struct DirEntry
    {
        std::uint32_t sharers = 0; ///< L1.5 sharer bitmask (25 tiles)
        bool owned = false;        ///< a single M owner exists
        TileId owner = 0;
    };

    struct CoherenceDomain
    {
        Addr base = 0;
        Addr size = 0;
        std::uint32_t tileMask = 0;
    };

    struct Tile
    {
        CacheArray l1i;
        CacheArray l1d;
        CacheArray l15;
        CacheArray l2; ///< this tile's slice of the shared L2

        Tile(const config::PitonParams &p)
            : l1i(p.l1i), l1d(p.l1d), l15(p.l15), l2(p.l2Slice)
        {}
    };

    Addr l2LineAlign(Addr a) const;

    /** Out-of-line L1I miss path of ifetch(); `line` is line-aligned. */
    std::uint32_t ifetchMiss(TileId tile, Addr line, Cycle now);

    /** Fetch a 16 B subline into tile's L1.5 (and optionally L1D) with
     *  the given MESI state; handles L1.5 dirty evictions. */
    void fillPrivate(TileId tile, Addr addr, Mesi state, Cycle now,
                     bool fill_l1d);

    /** Invalidate a 64 B L2 line from one tile's private caches. */
    void invalidateTileLine(TileId tile, Addr l2_line, Cycle now);

    /** Invalidate every sharer except `except`; charges NoC + L1.5. */
    void invalidateSharers(DirEntry &dir, Addr l2_line, TileId home,
                           TileId except, Cycle now);

    /** Handle an L1.5 dirty eviction: writeback packet to home L2. */
    void writebackToL2(TileId tile, Addr line_addr, Cycle now);

    /**
     * Obtain a 64 B line at the home L2 slice (hit or off-chip fill),
     * returning the latency of that portion and charging energy.
     */
    std::uint32_t accessHomeL2(TileId requester, TileId home, Addr addr,
                               bool exclusive, Cycle now, HitLevel &level);

    /** Request/response NoC round trip between requester and home. */
    std::uint32_t nocRoundTrip(TileId requester, TileId home, Addr addr,
                               Cycle now, std::uint8_t req_type);

    /** Charge stall energy for a thread waiting `cycles`. */
    void chargeStall(std::uint32_t cycles);

    /** Charge an L2 + directory access; the directory's sharer-vector
     *  energy shrinks with the CDR domain size. */
    void chargeL2Access(Addr addr);

    /** Panic if `tile` is outside `addr`'s coherence domain. */
    void checkDomain(TileId tile, Addr addr) const;

    const config::PitonParams &params_;
    const power::EnergyModel &energy_;
    power::EnergyLedger &ledger_;
    MainMemory &memory_;
    NocNetwork noc_;
    Chipset chipset_;
    MemLatencies lat_;
    std::vector<Tile> tiles_;
    std::unordered_map<Addr, DirEntry> directory_; ///< keyed by L2 line
    /** Atomic RMWs serialize at the home L2 slice; this tracks when
     *  each contended line is next free (lock contention modelling). */
    std::unordered_map<Addr, Cycle> atomicBusyUntil_;
    config::LineToSliceMapping mapping_;
    std::vector<CoherenceDomain> domains_;
    MemStats stats_;
};

} // namespace piton::arch

#endif // PITON_ARCH_MEM_SYSTEM_HH
