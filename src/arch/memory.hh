/**
 * @file
 * Sparse functional memory backing store.
 *
 * Holds the architectural contents of DRAM as 4 KB pages allocated on
 * first touch.  Timing and energy of DRAM accesses are modelled in
 * Chipset; this class is purely functional state.  Real data values are
 * kept (not just tags) because NoC link energy depends on the bit
 * patterns of cache-line payloads.
 */

#ifndef PITON_ARCH_MEMORY_HH
#define PITON_ARCH_MEMORY_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace piton::arch
{

class MainMemory
{
  public:
    static constexpr Addr kPageBytes = 4096;

    /** Read an aligned 64-bit word; untouched memory reads as zero. */
    RegVal read64(Addr addr) const;

    /** Write an aligned 64-bit word. */
    void write64(Addr addr, RegVal value);

    /** Read an aligned block (for cache-line fills) into out. */
    void readBlock(Addr addr, std::size_t bytes,
                   std::vector<RegVal> &out) const;

    /** Number of pages currently allocated (for tests/diagnostics). */
    std::size_t pageCount() const { return pages_.size(); }

    /** Checkpoint hook: pages in sorted-key order, so the byte stream
     *  is independent of unordered_map iteration order. */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        constexpr std::uint64_t kWords = kPageBytes / 8;
        std::vector<Addr> keys;
        if (ar.saving()) {
            keys.reserve(pages_.size());
            for (const auto &kv : pages_)
                keys.push_back(kv.first);
            std::sort(keys.begin(), keys.end());
        }
        std::uint64_t n = ar.ioSize(keys.size(), 8 + kWords * 8);
        if (ar.loading())
            pages_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr key = ar.saving() ? keys[i] : 0;
            ar.io(key);
            Page &page = pages_[key]; // load: creates; save: exists
            if (ar.loading())
                page.resize(kWords);
            Ar::check(page.size() == kWords, "bad page size");
            for (auto &w : page)
                ar.io(w);
        }
    }

  private:
    using Page = std::vector<RegVal>; // kPageBytes / 8 words

    static Addr pageOf(Addr addr) { return addr / kPageBytes; }
    static std::size_t
    wordIndex(Addr addr)
    {
        return static_cast<std::size_t>((addr % kPageBytes) / 8);
    }

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr) const;

    std::unordered_map<Addr, Page> pages_;
};

} // namespace piton::arch

#endif // PITON_ARCH_MEMORY_HH
