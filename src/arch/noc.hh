/**
 * @file
 * Three-network 2D-mesh NoC model.
 *
 * Piton interconnects its 25 tiles with three physical 64-bit networks
 * using dimension-ordered (X-then-Y) wormhole routing at one cycle per
 * hop plus one extra cycle per turn.  This model routes packets
 * transaction-at-a-time (the characterization workloads never saturate
 * the networks, matching the paper's low observed NoC power) while
 * tracking, per physical link, the bit toggles between consecutive
 * flits — the quantity Fig. 12 shows dominates NoC energy (FSW vs NSW
 * patterns).
 */

#ifndef PITON_ARCH_NOC_HH
#define PITON_ARCH_NOC_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

namespace piton::arch
{

/** The three physical networks and their (Piton-like) roles. */
enum class NocId : std::uint8_t
{
    Noc1 = 0, ///< requests (L1.5 -> L2)
    Noc2 = 1, ///< responses (L2 -> L1.5)
    Noc3 = 2, ///< writebacks, forwards, invalidations
};

/** A packet is a header flit followed by payload flits (64-bit each). */
struct Packet
{
    NocId net = NocId::Noc1;
    TileId src = 0;
    TileId dst = 0;
    std::vector<RegVal> flits; ///< includes the header at index 0
};

/** Build a header flit encoding dst/src/length/type. */
RegVal makeHeaderFlit(TileId dst, TileId src, std::uint8_t payload_flits,
                      std::uint8_t type);

struct NocSendResult
{
    std::uint32_t hops = 0;
    std::uint32_t turns = 0;
    /** Head-flit latency: hops + turns; tail adds flits-1. */
    std::uint32_t headLatency = 0;
    std::uint32_t packetLatency = 0;
    double energyJ = 0.0;
};

struct NocStats
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    /** Ledger-charged flit traversals: link hops plus the destination
     *  ejection port (every flit of every packet, including 0-hop
     *  same-tile routes). */
    std::uint64_t flitHops = 0;
    std::uint64_t toggledBits = 0;

    /** Counter-wise difference against an earlier snapshot (telemetry
     *  per-window deltas). */
    NocStats
    delta(const NocStats &prev) const
    {
        return NocStats{packets - prev.packets, flits - prev.flits,
                        flitHops - prev.flitHops,
                        toggledBits - prev.toggledBits};
    }
};

/** Every NocStats member must be covered by resetStats() (which
 *  value-initializes the whole struct, so members reset by
 *  construction), by delta() above, and by the reset-coverage test in
 *  tests/test_arch_basics.cc.  When adding a counter: update delta(),
 *  the test, and then this size guard. */
static_assert(sizeof(NocStats) == 4 * sizeof(std::uint64_t),
              "NocStats gained a member: cover it in delta() and the "
              "reset-coverage test, then update this guard");

class NocNetwork
{
  public:
    NocNetwork(const config::PitonParams &params,
               const power::EnergyModel &energy,
               power::EnergyLedger &ledger);

    /**
     * Route a packet and charge its energy to the ledger.  The energy
     * comprises one router ejection at the destination plus, per hop,
     * router traversal and link-toggle energy computed against the
     * previous flit observed on that physical link.
     */
    NocSendResult send(const Packet &pkt);

    /** XY-routing hop/turn count between two tiles. */
    std::uint32_t hopsBetween(TileId a, TileId b) const;
    std::uint32_t turnsBetween(TileId a, TileId b) const;

    const NocStats &stats() const { return stats_; }

    /**
     * Reset the counters and, by default, the per-link last-flit state:
     * otherwise the first flit of the next experiment pays toggle
     * energy against the previous experiment's traffic, making
     * back-to-back experiments order-dependent.  Pass
     * `preserve_link_state = true` to model a continuation of the same
     * traffic (links keep their latched values).
     */
    void resetStats(bool preserve_link_state = false)
    {
        stats_ = NocStats{};
        if (!preserve_link_state)
            linkState_.clear();
    }

    /** Checkpoint hook: per-link latched flit values (link toggle
     *  energy depends on them) in sorted-key order, plus counters. */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        std::vector<std::uint64_t> keys;
        if (ar.saving()) {
            keys.reserve(linkState_.size());
            for (const auto &kv : linkState_)
                keys.push_back(kv.first);
            std::sort(keys.begin(), keys.end());
        }
        std::uint64_t n = ar.ioSize(keys.size(), 16);
        if (ar.loading())
            linkState_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t key = ar.saving() ? keys[i] : 0;
            ar.io(key);
            RegVal &last = linkState_[key];
            ar.io(last);
        }
        ar.io(stats_.packets);
        ar.io(stats_.flits);
        ar.io(stats_.flitHops);
        ar.io(stats_.toggledBits);
    }

  private:
    /** Unique id for a directed link (from-tile, direction, network). */
    std::uint64_t linkId(NocId net, TileId from, int direction) const;

    const config::PitonParams &params_;
    const power::EnergyModel &energy_;
    power::EnergyLedger &ledger_;
    /** Last flit value seen per directed physical link. */
    std::unordered_map<std::uint64_t, RegVal> linkState_;
    NocStats stats_;
};

} // namespace piton::arch

#endif // PITON_ARCH_NOC_HH
