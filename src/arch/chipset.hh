/**
 * @file
 * Off-chip chipset model: gateway FPGA, FMC link, chip bridge demux,
 * north bridge, DRAM controller, and DRAM (Fig. 15, Table II).
 *
 * The experimental system routes every memory request from the chip
 * bridge through a gateway FPGA, over an FMC connector, into a Kintex-7
 * chipset FPGA that hosts the DRAM controller and a 32-bit DDR3 DRAM
 * interface (which needs two accesses per 64-bit-wide request).  Fig. 15
 * itemizes where the ~395-cycle (790 ns) round trip goes; this model
 * encodes that stage table, adds controller/bank-conflict jitter so the
 * *average* L2-miss latency matches Table VII's 424 cycles, and charges
 * chip-bridge and VIO pad energy for the off-chip crossing.
 */

#ifndef PITON_ARCH_CHIPSET_HH
#define PITON_ARCH_CHIPSET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "power/energy_model.hh"

namespace piton::arch
{

/** One stage of the Fig. 15 memory-latency breakdown. */
struct LatencyStage
{
    std::string component;
    std::string detail;
    std::uint32_t coreCycles; ///< normalized to the 500.05 MHz core clock
};

struct ChipsetStats
{
    std::uint64_t requests = 0;
    std::uint64_t dramAccesses = 0; ///< two per request (32-bit interface)
    std::uint64_t vioBeats = 0;
    std::uint64_t bridgeFlits = 0;
};

class Chipset
{
  public:
    Chipset(const power::EnergyModel &energy, power::EnergyLedger &ledger,
            std::uint64_t jitter_seed = 0xC0FFEE);

    /** The Fig. 15 stage table (request path, DRAM, response path). */
    static const std::vector<LatencyStage> &memoryLatencyStages();

    /** Sum of all stages: the nominal round trip (~395 cycles). */
    static std::uint32_t nominalRoundTripCycles();

    /** Stages outside the tile array (chip bridge onward). */
    static std::uint32_t offChipPortionCycles();

    /**
     * Latency of one memory round trip including controller jitter.
     * Charges chip-bridge flit energy and VIO pad energy for the
     * request (3 flits) and response (header + 64 B line = 9 flits).
     */
    std::uint32_t memoryRoundTrip(Cycle now);

    /** Charge a DRAM write-back (no latency returned; posted). */
    void postWriteback();

    const ChipsetStats &stats() const { return stats_; }
    void resetStats() { stats_ = ChipsetStats{}; }

    /** Mean extra cycles from jitter (for closed-form checks). */
    static constexpr double kMeanJitterCycles = 29.0;

    /** Checkpoint hook: jitter RNG stream position plus counters. */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        Rng::Snapshot snap = rng_.snapshot();
        for (auto &w : snap.s)
            ar.io(w);
        ar.io(snap.haveCached);
        ar.io(snap.cached);
        if (ar.loading())
            rng_.restore(snap);
        ar.io(stats_.requests);
        ar.io(stats_.dramAccesses);
        ar.io(stats_.vioBeats);
        ar.io(stats_.bridgeFlits);
    }

  private:
    void chargeCrossing(std::uint32_t flits);

    const power::EnergyModel &energy_;
    power::EnergyLedger &ledger_;
    Rng rng_;
    ChipsetStats stats_;
};

} // namespace piton::arch

#endif // PITON_ARCH_CHIPSET_HH
