#include "arch/chipset.hh"

namespace piton::arch
{

Chipset::Chipset(const power::EnergyModel &energy,
                 power::EnergyLedger &ledger, std::uint64_t jitter_seed)
    : energy_(energy), ledger_(ledger), rng_(jitter_seed)
{
}

const std::vector<LatencyStage> &
Chipset::memoryLatencyStages()
{
    // Fig. 15, normalized to the 500.05 MHz core clock.  The DRAM stage
    // is the "~70 cycles x2" item plus memory-controller occupancy.
    static const std::vector<LatencyStage> stages = {
        {"Tile Array", "L1 Miss + L2 Miss", 28},
        {"Chip Bridge", "AFIFO + Mux", 5},
        {"Gateway FPGA (out)", "Buf FFs + AFIFO", 39},
        {"FMC (out)", "Buf FFs + AFIFO", 9},
        {"Chip Bridge Demux", "Buf FFs + AFIFO", 11},
        {"North Bridge", "Buf FFs + Route", 8},
        {"DRAM Ctl", "AFIFO + Buf FFs + Req Send", 16},
        {"DRAM", "Mem Ctl + DRAM Access (x2, 32-bit I/F)", 170},
        {"DRAM Ctl (resp)", "Resp Process + AFIFO", 11},
        {"North Bridge (resp)", "Buf FFs + Mux", 6},
        {"Chip Bridge Mux", "Buf FFs + Mux", 12},
        {"Gateway FPGA (in)", "Buf FFs + AFIFO", 63},
        {"Tile Array (fill)", "L2 Fill + L1 Fill", 17},
    };
    return stages;
}

std::uint32_t
Chipset::nominalRoundTripCycles()
{
    std::uint32_t total = 0;
    for (const auto &s : memoryLatencyStages())
        total += s.coreCycles;
    return total;
}

std::uint32_t
Chipset::offChipPortionCycles()
{
    const auto &stages = memoryLatencyStages();
    std::uint32_t total = 0;
    for (std::size_t i = 1; i + 1 < stages.size(); ++i)
        total += stages[i].coreCycles;
    return total;
}

void
Chipset::chargeCrossing(std::uint32_t flits)
{
    power::RailEnergy bridge;
    power::RailEnergy pads;
    for (std::uint32_t i = 0; i < flits; ++i) {
        bridge += energy_.chipBridgeFlitEnergy();
        // Each 64-bit flit crosses the 32-bit interface as two beats.
        pads += energy_.vioBeatEnergy();
        pads += energy_.vioBeatEnergy();
    }
    stats_.bridgeFlits += flits;
    stats_.vioBeats += 2ULL * flits;
    ledger_.add(power::Category::ChipBridge, bridge);
    ledger_.add(power::Category::ChipBridge, pads);
}

std::uint32_t
Chipset::memoryRoundTrip(Cycle)
{
    ++stats_.requests;
    stats_.dramAccesses += 2;
    // Request: 3 flits; response: header + 64 B line (8 flits).
    chargeCrossing(3);
    chargeCrossing(9);
    // Controller/bank jitter: uniform 0..58 cycles (mean 29) lifts the
    // 395-cycle nominal trip to Table VII's measured 424 average.
    const auto jitter = static_cast<std::uint32_t>(rng_.below(59));
    return nominalRoundTripCycles() + jitter;
}

void
Chipset::postWriteback()
{
    ++stats_.requests;
    stats_.dramAccesses += 2;
    chargeCrossing(9); // header + line out; ack ignored
}

} // namespace piton::arch
