/**
 * @file
 * MITTS: Memory Inter-arrival Time Traffic Shaper.
 *
 * Each Piton tile contains a MITTS instance (Zhou & Wentzlaff, ISCA'16)
 * that shapes the core's off-chip memory traffic into a configured
 * inter-arrival-time distribution, enabling fine-grained memory
 * bandwidth provisioning in multi-tenant systems.  The paper does not
 * characterize MITTS power (it is 0.17% of tile area) but it is part of
 * the tile, so the substrate includes a functional model: a set of
 * inter-arrival-time bins holding credits that refill periodically; a
 * request departing with inter-arrival time in bin i consumes a credit
 * from bin i (or, failing that, from a longer-time bin); a request that
 * finds no credit is delayed until it matches a bin with credits.
 */

#ifndef PITON_ARCH_MITTS_HH
#define PITON_ARCH_MITTS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace piton::arch
{

struct MittsParams
{
    /** Bin i covers inter-arrival times [2^i, 2^(i+1)) cycles. */
    std::uint32_t numBins = 10;
    /** Credits per bin at each refill; empty = shaping disabled. */
    std::vector<std::uint32_t> binCredits;
    /** Refill period in cycles. */
    Cycle refillPeriod = 10000;

    bool enabled() const { return !binCredits.empty(); }
};

class Mitts
{
  public:
    explicit Mitts(MittsParams params = MittsParams{});

    const MittsParams &params() const { return params_; }

    /**
     * Account for a memory request attempted at cycle `now`.
     * @return the cycle at which the request may depart (>= now).
     */
    Cycle requestDepartureCycle(Cycle now);

    /** Bin index for a given inter-arrival gap. */
    std::uint32_t binFor(Cycle gap) const;

    std::uint64_t delayedRequests() const { return delayed_; }
    std::uint64_t totalRequests() const { return total_; }

  private:
    void refillUpTo(Cycle now);

    MittsParams params_;
    std::vector<std::uint32_t> credits_;
    Cycle lastDeparture_ = 0;
    Cycle lastRefill_ = 0;
    std::uint64_t delayed_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace piton::arch

#endif // PITON_ARCH_MITTS_HH
