#include "arch/noc.hh"

#include <bit>

#include "common/logging.hh"

namespace piton::arch
{

namespace
{

/** Directions for directed links. */
enum Direction : int
{
    East = 0,
    West = 1,
    North = 2,
    South = 3,
    Eject = 4,
};

} // namespace

RegVal
makeHeaderFlit(TileId dst, TileId src, std::uint8_t payload_flits,
               std::uint8_t type)
{
    return (static_cast<RegVal>(dst) << 48)
           | (static_cast<RegVal>(src) << 40)
           | (static_cast<RegVal>(payload_flits) << 32)
           | static_cast<RegVal>(type);
}

NocNetwork::NocNetwork(const config::PitonParams &params,
                       const power::EnergyModel &energy,
                       power::EnergyLedger &ledger)
    : params_(params), energy_(energy), ledger_(ledger)
{
}

std::uint32_t
NocNetwork::hopsBetween(TileId a, TileId b) const
{
    return config::hopDistance(params_, a, b);
}

std::uint32_t
NocNetwork::turnsBetween(TileId a, TileId b) const
{
    const auto ca = config::tileCoord(params_, a);
    const auto cb = config::tileCoord(params_, b);
    return (ca.x != cb.x && ca.y != cb.y) ? 1 : 0;
}

std::uint64_t
NocNetwork::linkId(NocId net, TileId from, int direction) const
{
    return (static_cast<std::uint64_t>(net) << 40)
           | (static_cast<std::uint64_t>(from) << 8)
           | static_cast<std::uint64_t>(direction);
}

NocSendResult
NocNetwork::send(const Packet &pkt)
{
    piton_assert(!pkt.flits.empty(), "empty packet");
    piton_assert(pkt.src < params_.tileCount && pkt.dst < params_.tileCount,
                 "packet endpoints out of range");

    NocSendResult res;
    res.hops = hopsBetween(pkt.src, pkt.dst);
    res.turns = turnsBetween(pkt.src, pkt.dst);
    res.headLatency = res.hops + res.turns;
    res.packetLatency =
        res.headLatency + static_cast<std::uint32_t>(pkt.flits.size()) - 1;

    power::RailEnergy total;

    // Walk the XY route, streaming every flit over every directed link.
    auto cur = config::tileCoord(params_, pkt.src);
    const auto dst = config::tileCoord(params_, pkt.dst);
    while (cur.x != dst.x || cur.y != dst.y) {
        int dir;
        config::TileCoord next = cur;
        if (cur.x != dst.x) {
            dir = (dst.x > cur.x) ? East : West;
            next.x += (dst.x > cur.x) ? 1 : -1;
        } else {
            dir = (dst.y > cur.y) ? South : North;
            next.y += (dst.y > cur.y) ? 1 : -1;
        }
        const TileId from = config::tileIdAt(params_, cur.x, cur.y);
        const std::uint64_t link = linkId(pkt.net, from, dir);
        RegVal &last = linkState_[link];
        for (const RegVal flit : pkt.flits) {
            const auto toggles =
                static_cast<std::uint32_t>(std::popcount(last ^ flit));
            total += energy_.nocHopEnergy(
                toggles, power::EnergyModel::opposingPairs(last, flit));
            stats_.toggledBits += toggles;
            ++stats_.flitHops;
            last = flit;
        }
        cur = next;
    }

    // Destination router ejection (data-independent port cost).  The
    // ejection port has no tracked wire state — the cost is constant —
    // but each flit's traversal is charged to the ledger, so it counts
    // as a flit hop in the stats as well: energy-per-flit-hop derived
    // from (ledger energy / flitHops) must divide by the same events it
    // charged, including 0-hop (same-tile) routes.
    for (std::size_t i = 0; i < pkt.flits.size(); ++i) {
        total += energy_.nocHopEnergy(0);
        ++stats_.flitHops;
    }

    stats_.packets += 1;
    stats_.flits += pkt.flits.size();
    ledger_.add(power::Category::Noc, total);
    res.energyJ = total.total();
    return res;
}

} // namespace piton::arch
