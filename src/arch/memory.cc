#include "arch/memory.hh"

#include "common/logging.hh"

namespace piton::arch
{

MainMemory::Page &
MainMemory::pageFor(Addr addr)
{
    auto [it, inserted] = pages_.try_emplace(pageOf(addr));
    if (inserted)
        it->second.assign(kPageBytes / 8, 0);
    return it->second;
}

const MainMemory::Page *
MainMemory::pageForRead(Addr addr) const
{
    const auto it = pages_.find(pageOf(addr));
    return it == pages_.end() ? nullptr : &it->second;
}

RegVal
MainMemory::read64(Addr addr) const
{
    piton_assert((addr & 7) == 0, "unaligned 64-bit read at 0x%llx",
                 static_cast<unsigned long long>(addr));
    const Page *page = pageForRead(addr);
    return page ? (*page)[wordIndex(addr)] : 0;
}

void
MainMemory::write64(Addr addr, RegVal value)
{
    piton_assert((addr & 7) == 0, "unaligned 64-bit write at 0x%llx",
                 static_cast<unsigned long long>(addr));
    pageFor(addr)[wordIndex(addr)] = value;
}

void
MainMemory::readBlock(Addr addr, std::size_t bytes,
                      std::vector<RegVal> &out) const
{
    piton_assert((addr & 7) == 0 && (bytes & 7) == 0,
                 "unaligned block read");
    out.clear();
    out.reserve(bytes / 8);
    for (std::size_t off = 0; off < bytes; off += 8)
        out.push_back(read64(addr + off));
}

} // namespace piton::arch
