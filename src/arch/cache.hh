/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 *
 * Used for all four cache levels (L1I, L1D, L1.5, L2 slice).  Only tags
 * and per-line metadata live here — data contents stay in MainMemory
 * (the simulator keeps a single architectural copy and relies on the
 * transaction-level coherence model in MemorySystem for ordering).
 *
 * Line metadata carries a MESI state so the same array serves both the
 * private caches (which only use I/S/M semantics) and the L2 slices.
 */

#ifndef PITON_ARCH_CACHE_HH
#define PITON_ARCH_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "config/piton_params.hh"

namespace piton::arch
{

/** MESI stable states. */
enum class Mesi : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *mesiName(Mesi s);

struct CacheLine
{
    Addr tag = 0;       ///< line-aligned address
    Mesi state = Mesi::Invalid;
    Cycle lastUse = 0;  ///< for LRU

    bool valid() const { return state != Mesi::Invalid; }
    bool dirty() const { return state == Mesi::Modified; }
};

/** Result of a fill: the line that was evicted, if any. */
struct Eviction
{
    bool happened = false;
    Addr lineAddr = 0;
    Mesi state = Mesi::Invalid;
};

class CacheArray
{
  public:
    explicit CacheArray(const config::CacheParams &params);

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    Addr lineAlign(Addr a) const { return a & ~static_cast<Addr>(lineBytes_ - 1); }
    std::uint32_t setOf(Addr a) const
    {
        // Line size is asserted to be a power of two; sets almost
        // always are too, so the hot path is shift+mask (the modulo
        // fallback keeps odd geometries working).
        const Addr idx = a >> lineShift_;
        return setsPow2_ ? static_cast<std::uint32_t>(idx & (sets_ - 1))
                         : static_cast<std::uint32_t>(idx % sets_);
    }

    /** Look a line up; returns its state without touching LRU. */
    Mesi
    probe(Addr addr) const
    {
        const CacheLine *cl = find(addr);
        return cl ? cl->state : Mesi::Invalid;
    }

    /** Look a line up and update LRU on hit. */
    bool
    access(Addr addr, Cycle now)
    {
        CacheLine *cl = find(addr);
        if (!cl)
            return false;
        cl->lastUse = now;
        return true;
    }

    /** Mutable handle to a resident line, or nullptr.  Does not touch
     *  LRU; callers caching the pointer must revalidate tag+state on
     *  every use (fills can repurpose the slot).  Pointers stay alive
     *  for the array's lifetime (the line vector never reallocates). */
    CacheLine *lineAt(Addr addr) { return find(addr); }

    /** Change a resident line's state; false if the line is absent. */
    bool setState(Addr addr, Mesi state);

    /** Insert (or overwrite) a line, evicting the LRU victim. */
    Eviction fill(Addr addr, Mesi state, Cycle now);

    /** Invalidate if present; returns the previous state. */
    Mesi invalidate(Addr addr);

    /** Number of valid lines (diagnostics). */
    std::size_t validCount() const;

    /** Drop all contents (power-on reset). */
    void flushAll();

    /**
     * Checkpoint hook.  The pad_ stagger is derived from the host
     * allocation address and differs run to run, so only the
     * sets_ * ways_ real lines are serialized (geometry is
     * fingerprinted, not restored: the array must be constructed with
     * the same CacheParams first).
     */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        ar.ioExpect(sets_, "cache sets");
        ar.ioExpect(ways_, "cache ways");
        ar.ioExpect(lineBytes_, "cache line bytes");
        const std::size_t n = static_cast<std::size_t>(sets_) * ways_;
        for (std::size_t i = 0; i < n; ++i) {
            CacheLine &cl = lines_[pad_ + i];
            ar.io(cl.tag);
            ar.ioEnum(cl.state, static_cast<Mesi>(4)); // one past Modified
            ar.io(cl.lastUse);
        }
    }

  private:
    CacheLine *
    find(Addr addr)
    {
        const Addr line = lineAlign(addr);
        const std::size_t base =
            pad_ + static_cast<std::size_t>(setOf(addr)) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            CacheLine &cl = lines_[base + w];
            if (cl.valid() && cl.tag == line)
                return &cl;
        }
        return nullptr;
    }
    const CacheLine *
    find(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->find(addr);
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;  ///< log2(lineBytes_)
    bool setsPow2_;
    /**
     * Leading dummy entries in lines_, staggering each instance's hot
     * metadata across host-cache sets.  The 25 tiles run identical
     * programs at identical addresses, so without the stagger every
     * tile's hot line sits at the same offset of a same-sized
     * allocation and the per-cycle tile sweep thrashes a single host
     * L1 set.  Model-visible behaviour is unaffected.
     */
    std::uint32_t pad_ = 0;
    std::vector<CacheLine> lines_; // pad_ + sets_ * ways_, row-major
};

} // namespace piton::arch

#endif // PITON_ARCH_CACHE_HH
