#include "arch/piton_chip.hh"

#include <algorithm>
#include <cstring>
#include <functional>
#include <utility>

#include "checkpoint/archive.hh"
#include "checkpoint/program_table.hh"
#include "common/logging.hh"

namespace piton::arch
{

namespace
{

/**
 * Stable two-way merge of sorted charge runs by cycleDelta.  Equal
 * keys take from the left run first; the merge tree only ever pairs a
 * run of lower core indices on the left, so the merged order is the
 * global (cycle, core) replay order — the exact FP add order of
 * in-order stepping (DESIGN.md §12).
 */
void
mergeChargeRuns(const power::CapturedCharge *a, std::size_t na,
                const power::CapturedCharge *b, std::size_t nb,
                power::CapturedCharge *out)
{
    while (na != 0 && nb != 0) {
        if (b->cycleDelta < a->cycleDelta) {
            *out++ = *b++;
            --nb;
        } else {
            *out++ = *a++;
            --na;
        }
    }
    if (na != 0)
        std::memcpy(out, a, na * sizeof(*a));
    else if (nb != 0)
        std::memcpy(out, b, nb * sizeof(*b));
}

} // namespace

PitonChip::PitonChip(const config::PitonParams &params,
                     const chip::ChipInstance &instance,
                     const power::EnergyModel &energy, std::uint64_t seed)
    : params_(params), instance_(instance), energy_(energy)
{
    mem_ = std::make_unique<MemorySystem>(params_, energy_, ledger_,
                                          memory_, seed);
    tileEnergy_.resize(params_.tileCount);
    cores_.reserve(params_.tileCount);
    for (TileId t = 0; t < params_.tileCount; ++t) {
        cores_.push_back(std::make_unique<Core>(
            t, params_, *mem_, energy_, ledger_, tileEnergy_,
            instance_.dynFactor * instance_.tileFactor(t)));
    }
}

void
PitonChip::setEngineThreads(unsigned threads)
{
    const unsigned resolved = std::min<unsigned>(
        resolveThreadCount(threads), params_.tileCount);
    engineThreads_ = std::max(1u, resolved);
    // The gang is sized to the shard count; drop a stale one and let
    // the next sharded round rebuild it lazily (single-threaded runs
    // never pay for worker threads).
    if (gang_ && gang_->shards() != engineThreads_)
        gang_.reset();
    if (engineThreads_ == 1)
        gang_.reset();
}

void
PitonChip::resetEnergy()
{
    piton_assert(!ledger_.capturing(),
                 "resetEnergy called mid-round (capture in flight)");
    ledger_.reset();
    tileEnergy_.reset();
    runAheadRounds_ = 0;
    for (auto &log : chargeLogs_)
        log.clear();
    pauseHeap_.clear();
}

void
PitonChip::loadProgram(TileId tile, ThreadId tid,
                       const isa::Program *program,
                       const std::vector<std::pair<int, RegVal>> &init)
{
    piton_assert(tile < params_.tileCount, "tile %u out of range", tile);
    cores_[tile]->loadProgram(tid, program, init);
}

PitonChip::RunResult
PitonChip::run(Cycle max_cycles)
{
    return fastPath_ ? runFast(max_cycles) : runLegacy(max_cycles);
}

/**
 * Reference stepping: every core is visited at every stepped cycle.
 * Kept verbatim as the equivalence baseline for the event-driven fast
 * path (select with fastPath=false).
 */
PitonChip::RunResult
PitonChip::runLegacy(Cycle max_cycles)
{
    const Cycle end = now_ + max_cycles;
    RunResult res;
    while (now_ < end) {
        bool all_done = true;
        for (auto &c : cores_)
            all_done &= c->allThreadsDone();
        if (all_done) {
            res.allHalted = true;
            break;
        }

        for (auto &c : cores_)
            c->tick(now_);

        // Event skip: jump to the earliest future cycle with work.
        Cycle next = Core::kNever;
        for (auto &c : cores_)
            next = std::min(next, c->nextEventCycle(now_ + 1));
        if (next == Core::kNever) {
            res.allHalted = true;
            break;
        }
        now_ = std::min(std::max(now_ + 1, next), end);
    }
    res.cyclesElapsed = max_cycles - (end - now_);
    return res;
}

/**
 * Event-driven stepping.  A per-core next-event cache replaces the
 * legacy triple scan (allThreadsDone / tick / nextEventCycle over all
 * cores per stepped cycle): each iteration finds the earliest event
 * cycle and only touches cores with work there.  When a single core
 * owns the window up to the next other-core event, it batches
 * back-to-back issue locally (Core::runWindow) without returning to
 * this loop.
 *
 * Equivalence with runLegacy: cores are visited at exactly the cycles
 * where they have ready threads, in core-index order within a cycle,
 * so instructions issue — and energy is charged — in the identical
 * per-instruction order.  Legacy additionally calls tick() on cores
 * with no ready thread, but those calls only lazily prune completed
 * store-buffer entries, which is behaviourally invisible (every
 * consumer of the buffer re-drains or filters by completion cycle).
 */
PitonChip::RunResult
PitonChip::runFast(Cycle max_cycles)
{
    const Cycle end = now_ + max_cycles;
    RunResult res;
    const std::size_t n = cores_.size();
    // Refresh the cache on entry: loadProgram or direct Core
    // manipulation between run() calls happens out of band.
    nextAt_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        nextAt_[i] = cores_[i]->nextEventCycle(now_);

    // Per-instruction trace hooks observe the cross-core interleaving
    // directly, so run-ahead (which reorders core-local work) is off
    // for traced runs; the in-order per-cycle pass below handles them.
    bool traced = false;
    for (const auto &c : cores_)
        traced |= c->hasTraceHook();

    // Scan state: earliest event cycle, how many cores share it, the
    // index of the first such core, and the earliest event of any
    // *other* core (the batch horizon when exactly one core owns the
    // first event).  Cached entries never fall behind now_ (cores only
    // ever schedule forward), so no clamping is needed.
    Cycle first = Core::kNever;
    Cycle second = Core::kNever;
    std::size_t first_i = 0;
    std::uint32_t at_first = 0;
    const auto scan = [&] {
        first = second = Core::kNever;
        first_i = 0;
        at_first = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Cycle e = nextAt_[i];
            if (e == Core::kNever)
                continue;
            if (e < first) {
                second = first;
                first = e;
                first_i = i;
                at_first = 1;
            } else if (e == first) {
                ++at_first;
                second = e;
            } else if (e < second) {
                second = e;
            }
        }
    };
    scan();

    while (now_ < end) {
        if (first == Core::kNever) {
            res.allHalted = true;
            break;
        }
        if (first >= end) {
            now_ = end;
            break;
        }
        if (at_first == 1) {
            // Sole owner of [first, until]: batch issue core-locally.
            const Cycle until = std::min(second, end) - 1;
            const Core::WindowResult w =
                cores_[first_i]->runWindow(first, until);
            nextAt_[first_i] = w.next;
            now_ = w.last;
            scan();
        } else if (!traced) {
            // Multiple cores share this cycle: run a core-major
            // run-ahead round.  Each core executes its core-local
            // stretch in one contiguous slice, shared-memory ops are
            // serialized in global (cycle, core) order, and the charge
            // replay reconstructs the in-order ledger add sequence.
            now_ = runAheadRound(first, std::min(first + roundCycles(),
                                                 end));
            scan();
        } else {
            // Multiple cores share this cycle: interleave them in core
            // index order, exactly like the legacy per-cycle step.  The
            // pass recomputes the scan state from the updated events as
            // it goes, so the steady all-cores-active case never pays a
            // separate scan.
            const Cycle cycle = first;
            first = second = Core::kNever;
            first_i = 0;
            at_first = 0;
            for (std::size_t i = 0; i < n; ++i) {
                Cycle e = nextAt_[i];
                if (e <= cycle) { // kNever never compares <=
                    const Core::WindowResult w =
                        cores_[i]->runWindow(cycle, cycle);
                    e = w.next;
                    nextAt_[i] = e;
                }
                if (e == Core::kNever)
                    continue;
                if (e < first) {
                    second = first;
                    first = e;
                    first_i = i;
                    at_first = 1;
                } else if (e == first) {
                    ++at_first;
                    second = e;
                } else if (e < second) {
                    second = e;
                }
            }
            now_ = cycle;
        }
    }
    res.cyclesElapsed = max_cycles - (end - now_);
    return res;
}

Cycle
PitonChip::runAheadRound(Cycle start, Cycle lim)
{
    const std::size_t n = cores_.size();
    chargeLogs_.resize(n);
    pauseHeap_.clear();
    Cycle maxLast = start;
    ++runAheadRounds_;

    const auto note = [&](std::size_t i, const Core::AheadResult &r) {
        if (r.ticked && r.last > maxLast)
            maxLast = r.last;
        if (r.paused) {
            pauseHeap_.emplace_back(r.next, i);
            std::push_heap(pauseHeap_.begin(), pauseHeap_.end(),
                           std::greater<>{});
        } else {
            nextAt_[i] = r.next;
        }
    };

    // Phase 1: each participating core runs its core-local events in
    // [nextAt_, lim) back to back, pausing before the first op that
    // would touch the shared memory system.  Core-local slices touch
    // only the core's own state and its own tile's L1I (fills come
    // only from that tile's fetches; an L1I hit charges nothing to the
    // shared ledger), and every charge is diverted into the core-owned
    // log — so the slices of different cores share nothing and shard
    // cleanly.  Each shard owns a fixed contiguous tile range; the
    // serial note() merge afterwards runs in core-index order, so the
    // heap contents — and everything downstream — are independent of
    // the shard count (DESIGN.md §12).
    const bool sharded = engineThreads_ > 1;
    if (sharded) {
        if (!gang_)
            gang_ = std::make_unique<WorkerGang>(engineThreads_);
        const unsigned shards = gang_->shards();
        aheadResults_.resize(n);
        aheadRan_.assign(n, 0);
        gang_->run([&](unsigned shard) {
            const std::size_t lo = n * shard / shards;
            const std::size_t hi = n * (shard + 1) / shards;
            for (std::size_t i = lo; i < hi; ++i) {
                const Cycle e = nextAt_[i];
                if (e >= lim) // includes kNever
                    continue;
                cores_[i]->beginCapture(&chargeLogs_[i], start);
                aheadResults_[i] = cores_[i]->runAhead(e, lim);
                aheadRan_[i] = 1;
            }
        });
        for (std::size_t i = 0; i < n; ++i)
            if (aheadRan_[i])
                note(i, aheadResults_[i]);
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            const Cycle e = nextAt_[i];
            if (e >= lim) // includes kNever
                continue;
            cores_[i]->beginCapture(&chargeLogs_[i], start);
            note(i, cores_[i]->runAhead(e, lim));
        }
    }

    // Phase 2 (always serial): execute pending shared-memory ops in
    // global (cycle, core index) order — the order in-order stepping
    // would use — then let each core run ahead again until its next
    // shared op.  Keys pushed while draining are always larger than
    // the key popped, so the pop sequence stays globally sorted.  The
    // resumed core's charges keep appending to its own log; the memory
    // system's charges ride the chip ledger's capture into that same
    // log.
    while (!pauseHeap_.empty()) {
        std::pop_heap(pauseHeap_.begin(), pauseHeap_.end(),
                      std::greater<>{});
        const auto [c, i] = pauseHeap_.back();
        pauseHeap_.pop_back();
        cores_[i]->beginCapture(&chargeLogs_[i], start);
        ledger_.beginCapture(&chargeLogs_[i], start);
        note(i, cores_[i]->resumeShared(c, lim));
    }
    ledger_.endCapture();
    for (auto &core : cores_)
        core->endCapture();

    // Phase 3: replay the captured charges cycle-major, core-minor —
    // the exact add order of in-order stepping, so the ledger's
    // floating-point sums are bit-identical to the legacy path.  Each
    // core's log is already sorted by cycle; the walk visits the
    // distinct charge cycles (as offsets from `start`), skipping gaps.
    //
    // Sharded rounds split the replay: the category/total merge is one
    // global FP chain and must stay a serial scan, while the per-tile
    // sums — each of which depends only on its own core's log order —
    // are summed by the other shards in parallel over the same
    // read-only logs.  Serial and split replay perform the identical
    // double additions in the identical order per accumulator.
    //
    // To shrink the serial residue, the gang first tree-merges the
    // per-core logs into one contiguous (cycle, core)-ordered array:
    // adjacent sorted runs merge pairwise per level, pairs distributed
    // round-robin over the shards.  The merged content is a pure
    // function of the logs — the shard assignment only decides who
    // copies which pair — so it is bit-identical at any thread count.
    // The global FP chain then degenerates from an interleaved
    // 25-cursor walk (re-scanning every log per distinct cycle) to a
    // linear pass over contiguous memory (replayMerged), and the merge
    // itself — ~log2(tiles) copy passes — runs on all shards.
    if (sharded) {
        const unsigned shards = gang_->shards();
        std::size_t total = 0;
        for (const auto &log : chargeLogs_)
            total += log.size();
        mergeA_.resize(total);
        mergeB_.resize(total);
        // Level 1 merges adjacent per-core logs straight out of the
        // logs; segment s covers cores 2s and 2s+1, so offsets are the
        // prefix sums of the pair sizes.
        std::size_t nseg = (n + 1) / 2;
        mergeOff_.assign(nseg + 1, 0);
        for (std::size_t s = 0; s < nseg; ++s) {
            std::size_t len = chargeLogs_[2 * s].size();
            if (2 * s + 1 < n)
                len += chargeLogs_[2 * s + 1].size();
            mergeOff_[s + 1] = mergeOff_[s] + len;
        }
        std::vector<power::CapturedCharge> *cur = &mergeA_;
        std::vector<power::CapturedCharge> *nxt = &mergeB_;
        gang_->run([&](unsigned shard) {
            for (std::size_t s = shard; s < nseg; s += shards) {
                const auto &a = chargeLogs_[2 * s];
                const bool has_b = 2 * s + 1 < n;
                mergeChargeRuns(
                    a.data(), a.size(),
                    has_b ? chargeLogs_[2 * s + 1].data() : nullptr,
                    has_b ? chargeLogs_[2 * s + 1].size() : 0,
                    cur->data() + mergeOff_[s]);
            }
        });
        while (nseg > 1) {
            // Pair s of this level reads segments 2s/2s+1 and writes at
            // the left segment's offset (merging neighbours preserves
            // the prefix layout), so the next level's offsets are the
            // even entries of this one plus the total sentinel.
            const std::size_t half = (nseg + 1) / 2;
            gang_->run([&](unsigned shard) {
                for (std::size_t s = shard; s < half; s += shards) {
                    const std::size_t lo = mergeOff_[2 * s];
                    const std::size_t mid = mergeOff_[2 * s + 1];
                    const bool has_b = 2 * s + 1 < nseg;
                    const std::size_t hi =
                        has_b ? mergeOff_[2 * s + 2] : mid;
                    mergeChargeRuns(cur->data() + lo, mid - lo,
                                    has_b ? cur->data() + mid : nullptr,
                                    hi - mid, nxt->data() + lo);
                }
            });
            mergeOffNext_.assign(half + 1, 0);
            for (std::size_t s = 0; s < half; ++s)
                mergeOffNext_[s] = mergeOff_[2 * s];
            mergeOffNext_[half] = total;
            mergeOff_.swap(mergeOffNext_);
            std::swap(cur, nxt);
            nseg = half;
        }
        gang_->run([&](unsigned shard) {
            if (shard == 0) {
                ledger_.replayMerged(*cur);
                return;
            }
            const unsigned workers = shards - 1;
            const std::size_t lo = n * (shard - 1) / workers;
            const std::size_t hi = n * shard / workers;
            for (std::size_t i = lo; i < hi; ++i)
                for (const auto &cc : chargeLogs_[i])
                    if (cc.cat & power::kCapturedCoreBit)
                        tileEnergy_.add(i, cc.e);
        });
    } else {
        ledger_.replayCaptures(
            chargeLogs_, logPos_,
            [this](std::size_t i, const power::RailEnergy &e) {
                tileEnergy_.add(i, e);
            });
    }
    for (auto &log : chargeLogs_)
        log.clear();
    return maxLast;
}

std::uint64_t
PitonChip::totalInsts() const
{
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->totalInsts();
    return n;
}

std::array<std::uint64_t,
           static_cast<std::size_t>(isa::InstClass::NumClasses)>
PitonChip::classCounts() const
{
    std::array<std::uint64_t,
               static_cast<std::size_t>(isa::InstClass::NumClasses)>
        counts{};
    for (const auto &core : cores_) {
        for (ThreadId t = 0; t < core->threadCount(); ++t) {
            const auto &tc = core->thread(t).classCounts;
            for (std::size_t i = 0; i < counts.size(); ++i)
                counts[i] += tc[i];
        }
    }
    return counts;
}

void
PitonChip::setExecDrafting(bool enabled)
{
    for (auto &c : cores_)
        c->setExecDrafting(enabled);
}

void
PitonChip::setTraceHook(Core::InstTraceHook hook)
{
    for (auto &c : cores_)
        c->setTraceHook(hook);
}

std::uint64_t
PitonChip::draftedInsts() const
{
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->draftedInsts();
    return n;
}

std::vector<double>
PitonChip::tileCoreEnergyJ() const
{
    std::vector<double> out;
    out.reserve(tileEnergy_.size());
    for (std::size_t t = 0; t < tileEnergy_.size(); ++t)
        out.push_back(tileEnergy_.onChipCoreAndSramJ(t));
    return out;
}

std::vector<std::uint64_t>
PitonChip::tileInsts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(cores_.size());
    for (const auto &c : cores_)
        out.push_back(c->totalInsts());
    return out;
}

bool
PitonChip::allThreadsDone() const
{
    for (const auto &c : cores_)
        if (!c->allThreadsDone())
            return false;
    return true;
}

std::vector<std::uint64_t>
PitonChip::tileMemStallCycles() const
{
    std::vector<std::uint64_t> out;
    out.reserve(cores_.size());
    for (const auto &c : cores_)
        out.push_back(c->memStallCycles());
    return out;
}

void
PitonChip::enableBbv(std::uint32_t buckets)
{
    bbvBuckets_ = buckets;
    for (auto &c : cores_)
        c->enableBbv(buckets);
}

std::uint32_t
PitonChip::activeThreads() const
{
    std::uint32_t n = 0;
    for (const auto &c : cores_)
        for (ThreadId t = 0; t < c->threadCount(); ++t)
            n += (c->thread(t).status == ThreadStatus::Ready);
    return n;
}

void
PitonChip::serialize(ckpt::Archive &ar)
{
    ar.beginSection("chip.meta");
    ar.ioExpect(params_.tileCount, "tile count");
    ar.ioExpect(params_.threadsPerCore, "threads per core");
    ar.ioExpect(params_.storeBufferEntries, "store buffer entries");
    ar.io(now_);
    ar.endSection();

    // Program images first: cores serialize pointer fields through the
    // table.  Registration order is deterministic (tile-major,
    // thread-minor), so save and load agree on ids.
    ckpt::ProgramTable pt;
    ar.beginSection("chip.programs");
    if (ar.saving()) {
        for (const auto &core : cores_)
            for (ThreadId t = 0; t < core->threadCount(); ++t)
                pt.add(core->thread(t).program);
    }
    std::vector<std::unique_ptr<isa::Program>> restored;
    pt.serialize(ar, restored);
    ar.endSection();
    if (ar.loading()) {
        // Adopt the images immediately — and keep any previously
        // restored ones — so a CheckpointError thrown by a later
        // section can never leave a thread pointing at freed memory
        // (a failed restore leaves the chip inconsistent, but never
        // dangling).
        for (auto &p : restored)
            restoredPrograms_.push_back(std::move(p));
    }

    ar.beginSection("chip.ledger");
    ledger_.serialize(ar);
    ar.endSection();

    // Per-tile SoA accumulators (format v2; previously each core wrote
    // its own RailEnergy inside chip.cores).
    ar.beginSection("chip.tile_energy");
    tileEnergy_.serialize(ar);
    ar.endSection();

    ar.beginSection("chip.memory");
    memory_.serialize(ar);
    ar.endSection();

    ar.beginSection("chip.mem");
    mem_->serialize(ar);
    ar.endSection();

    // Cores last: the fetch-filter handles re-resolve against the
    // restored L1I arrays.
    ar.beginSection("chip.cores");
    for (auto &core : cores_)
        core->serialize(ar, pt);
    ar.endSection();

    // BBV histograms (format v4).  Always written — buckets 0 with an
    // empty payload when disabled — so restore re-establishes the exact
    // profiling state, counts included.
    ar.beginSection("chip.bbv");
    std::uint32_t buckets = bbvBuckets_;
    ar.io(buckets);
    ckpt::Archive::check(buckets == 0
                             || (buckets >= 2 && buckets <= (1u << 20)
                                 && (buckets & (buckets - 1)) == 0),
                         "bad BBV bucket count");
    const std::uint64_t expect =
        static_cast<std::uint64_t>(buckets) * cores_.size();
    ckpt::Archive::check(ar.ioSize(expect, 8) == expect,
                         "BBV payload size mismatch");
    if (ar.loading())
        enableBbv(buckets);
    for (auto &core : cores_)
        for (auto &v : core->bbvData())
            ar.io(v);
    ar.endSection();

    // nextAt_ and the run-ahead scratch are rebuilt on every run()
    // entry; they carry no cross-run state.  Restoring into a chip
    // that already ran sharded rounds must not inherit that run's
    // scratch or counters either (engineThreads_ itself is a speed
    // knob and deliberately survives, like fastPath_).
    if (ar.loading()) {
        runAheadRounds_ = 0;
        for (auto &log : chargeLogs_)
            log.clear();
        pauseHeap_.clear();
    }
}

std::vector<std::uint8_t>
PitonChip::saveBytes()
{
    ckpt::Archive ar = ckpt::Archive::forSave();
    serialize(ar);
    return ar.finish();
}

void
PitonChip::restoreBytes(const std::vector<std::uint8_t> &bytes)
{
    ckpt::Archive ar = ckpt::Archive::forLoad(bytes);
    serialize(ar);
}

void
PitonChip::save(const std::string &path)
{
    ckpt::writeFile(path, saveBytes());
}

void
PitonChip::restore(const std::string &path)
{
    restoreBytes(ckpt::readFile(path));
}

} // namespace piton::arch
