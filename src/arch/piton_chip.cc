#include "arch/piton_chip.hh"

#include <algorithm>

#include "common/logging.hh"

namespace piton::arch
{

PitonChip::PitonChip(const config::PitonParams &params,
                     const chip::ChipInstance &instance,
                     const power::EnergyModel &energy, std::uint64_t seed)
    : params_(params), instance_(instance), energy_(energy)
{
    mem_ = std::make_unique<MemorySystem>(params_, energy_, ledger_,
                                          memory_, seed);
    cores_.reserve(params_.tileCount);
    for (TileId t = 0; t < params_.tileCount; ++t) {
        cores_.push_back(std::make_unique<Core>(
            t, params_, *mem_, energy_, ledger_,
            instance_.dynFactor * instance_.tileFactor(t)));
    }
}

void
PitonChip::loadProgram(TileId tile, ThreadId tid,
                       const isa::Program *program,
                       const std::vector<std::pair<int, RegVal>> &init)
{
    piton_assert(tile < params_.tileCount, "tile %u out of range", tile);
    cores_[tile]->loadProgram(tid, program, init);
}

PitonChip::RunResult
PitonChip::run(Cycle max_cycles)
{
    const Cycle end = now_ + max_cycles;
    RunResult res;
    while (now_ < end) {
        bool all_done = true;
        for (auto &c : cores_)
            all_done &= c->allThreadsDone();
        if (all_done) {
            res.allHalted = true;
            break;
        }

        for (auto &c : cores_)
            c->tick(now_);

        // Event skip: jump to the earliest future cycle with work.
        Cycle next = Core::kNever;
        for (auto &c : cores_)
            next = std::min(next, c->nextEventCycle(now_ + 1));
        if (next == Core::kNever) {
            res.allHalted = true;
            break;
        }
        now_ = std::min(std::max(now_ + 1, next), end);
    }
    res.cyclesElapsed = max_cycles - (end - now_);
    return res;
}

std::uint64_t
PitonChip::totalInsts() const
{
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->totalInsts();
    return n;
}

std::array<std::uint64_t,
           static_cast<std::size_t>(isa::InstClass::NumClasses)>
PitonChip::classCounts() const
{
    std::array<std::uint64_t,
               static_cast<std::size_t>(isa::InstClass::NumClasses)>
        counts{};
    for (const auto &core : cores_) {
        for (ThreadId t = 0; t < core->threadCount(); ++t) {
            const auto &tc = core->thread(t).classCounts;
            for (std::size_t i = 0; i < counts.size(); ++i)
                counts[i] += tc[i];
        }
    }
    return counts;
}

void
PitonChip::setExecDrafting(bool enabled)
{
    for (auto &c : cores_)
        c->setExecDrafting(enabled);
}

void
PitonChip::setTraceHook(Core::InstTraceHook hook)
{
    for (auto &c : cores_)
        c->setTraceHook(hook);
}

std::uint64_t
PitonChip::draftedInsts() const
{
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->draftedInsts();
    return n;
}

std::vector<double>
PitonChip::tileCoreEnergyJ() const
{
    std::vector<double> out;
    out.reserve(cores_.size());
    for (const auto &c : cores_)
        out.push_back(c->coreEnergy().onChipCoreAndSram());
    return out;
}

std::vector<std::uint64_t>
PitonChip::tileInsts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(cores_.size());
    for (const auto &c : cores_)
        out.push_back(c->totalInsts());
    return out;
}

std::uint32_t
PitonChip::activeThreads() const
{
    std::uint32_t n = 0;
    for (const auto &c : cores_)
        for (ThreadId t = 0; t < c->threadCount(); ++t)
            n += (c->thread(t).status == ThreadStatus::Ready);
    return n;
}

} // namespace piton::arch
