/**
 * @file
 * The Piton core: a single-issue, six-stage, in-order SPARC-style core
 * with two-way fine-grained multithreading (a modified OpenSPARC T1).
 *
 * Modelled behaviours that the characterization depends on:
 *  - fine-grained thread interleaving: each cycle the issue slot goes
 *    round-robin to a ready thread, hiding long-latency instructions of
 *    the other thread (Section IV-H's multithreading-vs-multicore
 *    study);
 *  - instruction occupancy per Table VI (a thread cannot issue again
 *    until its previous instruction's latency elapses);
 *  - an eight-entry store buffer that drains one store per store
 *    latency; stores are issued speculatively and roll back when the
 *    buffer is full (the paper's stx(F) vs stx(NF) distinction);
 *  - load-hit speculation with rollback on a miss;
 *  - per-instruction energy charged with operand-value-dependent
 *    switching activity (Fig. 11's min/random/max operand series).
 */

#ifndef PITON_ARCH_CORE_HH
#define PITON_ARCH_CORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/mem_system.hh"
#include "common/types.hh"
#include "config/piton_params.hh"
#include "isa/alu.hh"
#include "isa/program.hh"
#include "power/energy_model.hh"

namespace piton::arch
{

enum class ThreadStatus : std::uint8_t
{
    Idle,    ///< no program loaded
    Ready,   ///< can issue when readyAt <= now
    Halted,  ///< executed Halt
};

struct ThreadState
{
    std::array<RegVal, isa::kNumIntRegs> regs{};
    std::array<RegVal, isa::kNumFpRegs> fregs{};
    isa::CondCodes cc;
    const isa::Program *program = nullptr;
    std::uint32_t pc = 0;
    ThreadStatus status = ThreadStatus::Idle;
    Cycle readyAt = 0;

    // Statistics.
    std::uint64_t instsExecuted = 0;
    /** Retired instructions per energy class (power-model fitting). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(isa::InstClass::NumClasses)>
        classCounts{};
    std::uint64_t loadRollbacks = 0;
    std::uint64_t storeRollbacks = 0;
    std::uint64_t memStallCycles = 0;
};

class Core
{
  public:
    Core(TileId tile, const config::PitonParams &params,
         MemorySystem &mem, const power::EnergyModel &energy,
         power::EnergyLedger &ledger, double dyn_factor = 1.0);

    TileId tileId() const { return tile_; }

    /**
     * Enable Execution Drafting (the Piton core's energy-efficiency
     * mechanism for similar code on the two threads, McKeown et al.
     * MICRO'14): when a thread issues the same static instruction its
     * sibling just executed, the duplicated front-end work is saved.
     */
    void setExecDrafting(bool enabled) { execDrafting_ = enabled; }
    bool execDrafting() const { return execDrafting_; }
    /** Instructions that issued drafted (diagnostics). */
    std::uint64_t draftedInsts() const { return draftedInsts_; }
    /** Hardware thread switches charged (diagnostics). */
    std::uint64_t threadSwitches() const { return threadSwitches_; }

    /**
     * Load a program onto a hardware thread.  Initial integer registers
     * may be seeded (workloads pass base addresses / thread ids here).
     */
    void loadProgram(ThreadId tid, const isa::Program *program,
                     const std::vector<std::pair<int, RegVal>> &init_regs = {});

    /**
     * Advance the core at cycle `now`.
     * @return true if an instruction issued this cycle.
     */
    bool tick(Cycle now);

    /** Earliest future cycle at which this core can do work, or
     *  `kNever` when all threads are idle/halted. */
    static constexpr Cycle kNever = ~Cycle{0};
    Cycle nextEventCycle(Cycle now) const;

    bool allThreadsDone() const;

    const ThreadState &thread(ThreadId tid) const { return threads_[tid]; }
    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(threads_.size());
    }
    std::uint64_t totalInsts() const;

    /** Cumulative core-local energy charged by this tile's core (exec,
     *  thread switches, store rollbacks) — the per-tile slice of the
     *  chip ledger the telemetry subsystem samples.  Shared-fabric
     *  energy (caches, NoC, off-chip) is charged by MemorySystem and
     *  is not tile-attributable. */
    const power::RailEnergy &coreEnergy() const { return coreEnergy_; }

    /** Store-buffer occupancy (diagnostics / tests). */
    std::size_t storeBufferDepth(Cycle now) const;

    /**
     * Per-instruction trace hook (gem5-style exec tracing): invoked
     * after every retired instruction with (tile, thread, cycle, pc,
     * instruction).  Empty function disables tracing.
     */
    using InstTraceHook = std::function<void(
        TileId, ThreadId, Cycle, Addr, const isa::Instruction &)>;
    void setTraceHook(InstTraceHook hook) { trace_ = std::move(hook); }

  private:
    void issue(ThreadState &t, ThreadId tid, Cycle now);
    /** Charge to the chip ledger and the per-tile accumulator. */
    void charge(power::Category c, const power::RailEnergy &e);
    void chargeExec(isa::InstClass cls, RegVal rs1, RegVal rs2);
    void drainStoreBuffer(Cycle now);
    /** Execution-Drafting check: does (program, pc) match the sibling
     *  thread's last issued instruction? Updates draft tracking. */
    bool draftCheck(ThreadId tid, const ThreadState &t);

    TileId tile_;
    const config::PitonParams &params_;
    MemorySystem &mem_;
    const power::EnergyModel &energy_;
    power::EnergyLedger &ledger_;
    double dynFactor_;
    isa::LatencyTable lat_;

    std::vector<ThreadState> threads_;
    power::RailEnergy coreEnergy_;
    std::uint32_t lastIssued_ = 0;
    bool execDrafting_ = false;
    std::uint64_t threadSwitches_ = 0;
    bool draftActive_ = false; ///< current instruction issues drafted
    std::uint64_t draftedInsts_ = 0;
    /** (program, pc) last issued per thread, for draft matching. */
    std::vector<std::pair<const isa::Program *, std::uint32_t>> lastIssue_;

    /** FIFO of in-flight store completions (<= storeBufferEntries). */
    std::vector<Cycle> storeBuffer_;
    Cycle lastStoreDrain_ = 0;

    InstTraceHook trace_;
};

} // namespace piton::arch

#endif // PITON_ARCH_CORE_HH
